//! Offline stand-in for `serde_json`.
//!
//! Re-exports the shared [`Value`] model from the `serde` shim and adds the
//! pieces this workspace uses: `to_string` / `to_string_pretty`, `from_str`
//! (a full JSON parser), `to_value`, and the `json!` macro (a tt-muncher
//! like upstream's, supporting nested object/array literals and arbitrary
//! interpolated expressions).

use std::fmt::Write as _;

pub use serde::{Error, Value};

pub type Result<T> = std::result::Result<T, Error>;

/// Convert any serializable value into a [`Value`] tree.
pub fn to_value<T: serde::Serialize + ?Sized>(value: &T) -> Value {
    value.to_value()
}

pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_compact(&value.to_value(), &mut out);
    Ok(out)
}

pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_pretty(&value.to_value(), &mut out, 0);
    Ok(out)
}

pub fn from_str<T: serde::Deserialize>(s: &str) -> Result<T> {
    let value = parse(s)?;
    T::from_value(&value)
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_number(f: f64, out: &mut String) {
    if f.is_finite() {
        if f.fract() == 0.0 && f.abs() < 1e15 {
            // Keep a trailing `.0` so the value round-trips as a float.
            let _ = write!(out, "{f:.1}");
        } else {
            let _ = write!(out, "{f}");
        }
    } else {
        // JSON has no NaN/Infinity; serde_json emits null.
        out.push_str("null");
    }
}

fn write_compact(v: &Value, out: &mut String) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(i) => {
            let _ = write!(out, "{i}");
        }
        Value::Float(f) => write_number(*f, out),
        Value::String(s) => write_escaped(s, out),
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_compact(item, out);
            }
            out.push(']');
        }
        Value::Object(entries) => {
            out.push('{');
            for (i, (k, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_escaped(k, out);
                out.push(':');
                write_compact(item, out);
            }
            out.push('}');
        }
    }
}

fn write_pretty(v: &Value, out: &mut String, indent: usize) {
    match v {
        Value::Array(items) if !items.is_empty() => {
            out.push_str("[\n");
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                for _ in 0..indent + 2 {
                    out.push(' ');
                }
                write_pretty(item, out, indent + 2);
            }
            out.push('\n');
            for _ in 0..indent {
                out.push(' ');
            }
            out.push(']');
        }
        Value::Object(entries) if !entries.is_empty() => {
            out.push_str("{\n");
            for (i, (k, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                for _ in 0..indent + 2 {
                    out.push(' ');
                }
                write_escaped(k, out);
                out.push_str(": ");
                write_pretty(item, out, indent + 2);
            }
            out.push('\n');
            for _ in 0..indent {
                out.push(' ');
            }
            out.push('}');
        }
        other => write_compact(other, out),
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

fn parse(s: &str) -> Result<Value> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::msg(format!(
            "trailing characters at offset {}",
            p.pos
        )));
    }
    Ok(v)
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::msg(format!(
                "expected `{}` at offset {}",
                b as char, self.pos
            )))
        }
    }

    fn literal(&mut self, word: &str) -> bool {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Value> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') if self.literal("null") => Ok(Value::Null),
            Some(b't') if self.literal("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.literal("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.string().map(Value::String),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                loop {
                    items.push(self.value()?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Value::Array(items));
                        }
                        _ => return Err(Error::msg(format!("bad array at offset {}", self.pos))),
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut entries = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Value::Object(entries));
                }
                loop {
                    self.skip_ws();
                    let key = self.string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    entries.push((key, self.value()?));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Value::Object(entries));
                        }
                        _ => return Err(Error::msg(format!("bad object at offset {}", self.pos))),
                    }
                }
            }
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            _ => Err(Error::msg(format!(
                "unexpected character at offset {}",
                self.pos
            ))),
        }
    }

    /// Reads four hex digits starting at `start` (the payload of a `\u`
    /// escape).
    fn hex4(&self, start: usize) -> Result<u32> {
        let hex = self
            .bytes
            .get(start..start + 4)
            .ok_or_else(|| Error::msg("truncated \\u escape"))?;
        u32::from_str_radix(
            std::str::from_utf8(hex).map_err(|_| Error::msg("bad \\u escape"))?,
            16,
        )
        .map_err(|_| Error::msg("bad \\u escape"))
    }

    fn string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let code = self.hex4(self.pos + 1)?;
                            self.pos += 4;
                            if (0xD800..0xDC00).contains(&code) {
                                // High surrogate: must be followed by `\uXXXX`
                                // with a low surrogate; combine the pair.
                                if self.bytes.get(self.pos + 1) != Some(&b'\\')
                                    || self.bytes.get(self.pos + 2) != Some(&b'u')
                                {
                                    return Err(Error::msg("unpaired high surrogate"));
                                }
                                let low = self.hex4(self.pos + 3)?;
                                if !(0xDC00..0xE000).contains(&low) {
                                    return Err(Error::msg("invalid low surrogate"));
                                }
                                self.pos += 6;
                                let c = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
                                out.push(
                                    char::from_u32(c)
                                        .ok_or_else(|| Error::msg("bad surrogate pair"))?,
                                );
                            } else if (0xDC00..0xE000).contains(&code) {
                                return Err(Error::msg("unpaired low surrogate"));
                            } else {
                                out.push(
                                    char::from_u32(code)
                                        .ok_or_else(|| Error::msg("bad \\u escape"))?,
                                );
                            }
                        }
                        _ => return Err(Error::msg("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one full UTF-8 encoded char.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| Error::msg("invalid utf-8"))?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
                None => return Err(Error::msg("unterminated string")),
            }
        }
    }

    fn number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        if is_float {
            text.parse::<f64>()
                .map(Value::Float)
                .map_err(|_| Error::msg(format!("bad number `{text}`")))
        } else {
            text.parse::<i64>()
                .map(Value::Int)
                .or_else(|_| text.parse::<f64>().map(Value::Float))
                .map_err(|_| Error::msg(format!("bad number `{text}`")))
        }
    }
}

/// Build a [`Value`] from a JSON literal with interpolated expressions,
/// mirroring `serde_json::json!`.
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    (true) => { $crate::Value::Bool(true) };
    (false) => { $crate::Value::Bool(false) };
    ([]) => { $crate::Value::Array(::std::vec::Vec::new()) };
    ([ $($tt:tt)+ ]) => {
        $crate::json_internal!(@array_elem [] () $($tt)+)
    };
    ({}) => { $crate::Value::Object(::std::vec::Vec::new()) };
    ({ $($tt:tt)+ }) => {
        $crate::json_internal!(@object_key [] $($tt)+)
    };
    ($other:expr) => { $crate::to_value(&$other) };
}

/// Implementation detail of [`json!`]: tt-munchers for object entries and
/// array elements. Completed entries accumulate in a bracketed list (each
/// packed as its own group, so arbitrary value tokens stay opaque) and a
/// single `Vec::from([...])` is emitted at the end. Commas inside
/// `()`/`[]`/`{}` groups are invisible to the muncher, so interpolated
/// expressions pass through unscathed.
#[doc(hidden)]
#[macro_export]
macro_rules! json_internal {
    // ---- object: expect a key (or the end, after a trailing comma) ----
    (@object_key [$($done:tt)*]) => {
        $crate::json_internal!(@object_end [$($done)*])
    };
    (@object_key [$($done:tt)*] $key:literal : $($rest:tt)*) => {
        $crate::json_internal!(@object_val [$($done)*] $key () $($rest)*)
    };
    // ---- object: munch value tokens for the pending key ----
    // comma ends the value
    (@object_val [$($done:tt)*] $key:literal ($($val:tt)+) , $($rest:tt)*) => {
        $crate::json_internal!(@object_key [$($done)* [$key ($($val)+)]] $($rest)*)
    };
    // end of input ends the value
    (@object_val [$($done:tt)*] $key:literal ($($val:tt)+)) => {
        $crate::json_internal!(@object_end [$($done)* [$key ($($val)+)]])
    };
    // otherwise accumulate one token
    (@object_val [$($done:tt)*] $key:literal ($($val:tt)*) $next:tt $($rest:tt)*) => {
        $crate::json_internal!(@object_val [$($done)*] $key ($($val)* $next) $($rest)*)
    };
    // ---- object: emit ----
    (@object_end [$([$key:literal ($($val:tt)+)])*]) => {
        $crate::Value::Object(::std::vec::Vec::from([
            $((::std::string::String::from($key), $crate::json!($($val)+)),)*
        ]))
    };
    // ---- array: munch one element's tokens ----
    (@array_elem [$($done:tt)*] ($($val:tt)+) , $($rest:tt)*) => {
        $crate::json_internal!(@array_elem [$($done)* (($($val)+))] () $($rest)*)
    };
    (@array_elem [$($done:tt)*] ($($val:tt)+)) => {
        $crate::json_internal!(@array_end [$($done)* (($($val)+))])
    };
    (@array_elem [$($done:tt)*] ($($val:tt)*) $next:tt $($rest:tt)*) => {
        $crate::json_internal!(@array_elem [$($done)*] ($($val)* $next) $($rest)*)
    };
    // end of input right after a trailing comma
    (@array_elem [$($done:tt)*] ()) => {
        $crate::json_internal!(@array_end [$($done)*])
    };
    // ---- array: emit ----
    (@array_end [$((($($val:tt)+)))*]) => {
        $crate::Value::Array(::std::vec::Vec::from([
            $($crate::json!($($val)+),)*
        ]))
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_macro_shapes() {
        let name = "abc";
        let xs = vec![1i64, 2, 3];
        let v = json!({
            "s": name,
            "n": 1,
            "f": 0.5,
            "neg": -2.5,
            "b": true,
            "null": null,
            "arr": [1, {"k": 2}, [3]],
            "interp": xs,
            "expr": 2 + 3,
            "nested": {"deep": {"er": 1}},
        });
        assert_eq!(v["s"].as_str(), Some("abc"));
        assert_eq!(v["n"].as_u64(), Some(1));
        assert_eq!(v["f"].as_f64(), Some(0.5));
        assert_eq!(v["neg"].as_f64(), Some(-2.5));
        assert_eq!(v["b"].as_bool(), Some(true));
        assert!(v["null"].is_null());
        assert_eq!(v["arr"][1]["k"].as_u64(), Some(2));
        assert_eq!(v["interp"].as_array().unwrap().len(), 3);
        assert_eq!(v["expr"].as_u64(), Some(5));
        assert_eq!(v["nested"]["deep"]["er"].as_u64(), Some(1));
    }

    #[test]
    fn round_trip_through_text() {
        let v = json!({"a": [1, 2.5, "x\n\"y\""], "b": {"c": null, "d": false}});
        let text = to_string(&v).unwrap();
        let back: Value = from_str(&text).unwrap();
        assert_eq!(v, back);
        let pretty = to_string_pretty(&v).unwrap();
        let back2: Value = from_str(&pretty).unwrap();
        assert_eq!(v, back2);
    }

    #[test]
    fn parser_handles_escapes_and_numbers() {
        let v: Value = from_str(r#"{"u": "A", "e": 1e3, "i": -7}"#).unwrap();
        assert_eq!(v["u"].as_str(), Some("A"));
        assert_eq!(v["e"].as_f64(), Some(1000.0));
        assert_eq!(v["i"].as_i64(), Some(-7));
    }

    #[test]
    fn surrogate_pairs_decode_to_one_code_point() {
        // Escaped surrogate pair decodes to one code point (U+1F600).
        let v: Value = from_str(r#""\ud83d\ude00""#).unwrap();
        assert_eq!(v.as_str(), Some("\u{1F600}"));
        // Raw (unescaped) multi-byte UTF-8 passes through unchanged.
        let v: Value = from_str("\"\u{e9}\u{4e2d}\u{1F600}\"").unwrap();
        assert_eq!(v.as_str(), Some("\u{e9}\u{4e2d}\u{1F600}"));
        // BMP escape below the surrogate range still decodes directly.
        let v: Value = from_str(r#""\u00e9""#).unwrap();
        assert_eq!(v.as_str(), Some("\u{e9}"));
        assert!(
            from_str::<Value>(r#""\ud83d""#).is_err(),
            "unpaired high surrogate"
        );
        assert!(
            from_str::<Value>(r#""\ude00""#).is_err(),
            "unpaired low surrogate"
        );
        assert!(
            from_str::<Value>(r#""\ud83dx""#).is_err(),
            "high surrogate not followed by escape"
        );
    }

    #[test]
    fn out_of_range_integers_error_instead_of_wrapping() {
        assert_eq!(
            from_str::<u8>("300").unwrap_err().to_string(),
            "300 out of range for u8"
        );
        assert!(from_str::<usize>("-1").is_err());
        assert!(
            from_str::<u64>("1e300").is_err(),
            "huge float must not cast to int"
        );
        assert_eq!(from_str::<u8>("255").unwrap(), 255);
        assert_eq!(from_str::<i64>("-7.0").unwrap(), -7);
    }
}
