//! Offline stand-in for `parking_lot`, backed by `std::sync`.
//!
//! Provides the `parking_lot` API shape this workspace uses: non-poisoning
//! `Mutex::lock()` returning a guard directly, and `Condvar::wait(&mut
//! guard)` taking the guard by reference. Poisoned std locks are recovered
//! with `into_inner` — a panicking worker thread must not wedge the
//! parameter server.

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync;

pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        let guard = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        MutexGuard { guard: Some(guard) }
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(guard) => Some(MutexGuard { guard: Some(guard) }),
            Err(sync::TryLockError::Poisoned(e)) => Some(MutexGuard {
                guard: Some(e.into_inner()),
            }),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(e) => e.into_inner(),
        }
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: fmt::Debug + ?Sized> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

/// Guard for [`Mutex`]. Holds the std guard in an `Option` so that
/// [`Condvar::wait`] can temporarily take ownership (std's `wait` consumes
/// and returns the guard, while parking_lot's takes `&mut`).
pub struct MutexGuard<'a, T: ?Sized> {
    guard: Option<sync::MutexGuard<'a, T>>,
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        self.guard.as_ref().expect("guard taken during wait")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.guard.as_mut().expect("guard taken during wait")
    }
}

#[derive(Default)]
pub struct Condvar {
    inner: sync::Condvar,
}

impl Condvar {
    pub const fn new() -> Self {
        Condvar {
            inner: sync::Condvar::new(),
        }
    }

    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let inner_guard = guard.guard.take().expect("guard taken during wait");
        let inner_guard = self
            .inner
            .wait(inner_guard)
            .unwrap_or_else(|e| e.into_inner());
        guard.guard = Some(inner_guard);
    }

    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::{Condvar, Mutex};
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn lock_and_mutate() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
    }

    #[test]
    fn condvar_wakes_waiter() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let pair2 = Arc::clone(&pair);
        let handle = thread::spawn(move || {
            let (lock, cv) = &*pair2;
            let mut ready = lock.lock();
            while !*ready {
                cv.wait(&mut ready);
            }
            42
        });
        {
            let (lock, cv) = &*pair;
            *lock.lock() = true;
            cv.notify_all();
        }
        assert_eq!(handle.join().unwrap(), 42);
    }
}
