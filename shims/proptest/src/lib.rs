//! Offline stand-in for `proptest`.
//!
//! Implements the subset this workspace uses: the `proptest!` macro with
//! `#![proptest_config(...)]`, range and `any::<T>()` strategies,
//! `prop_map`, `collection::{vec, btree_set}`, and the `prop_assert*`
//! macros. Differences from upstream: no shrinking (a failing case reports
//! its inputs but is not minimized), and the RNG is seeded purely from the
//! test name, so every run of a given test replays the same deterministic
//! case sequence.

use std::collections::BTreeSet;
use std::fmt;
use std::ops::{Range, RangeInclusive};

use rand::rngs::StdRng;
use rand::{Rng as _, RngCore, SeedableRng};

pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Just, ProptestConfig, Strategy,
        TestCaseError, TestRng,
    };
}

/// Deterministic RNG driving test-case generation.
pub struct TestRng {
    inner: StdRng,
}

impl TestRng {
    /// Seed derived from the test name (FNV-1a), so each test replays the
    /// same case sequence on every run.
    pub fn for_test(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        TestRng {
            inner: StdRng::seed_from_u64(h),
        }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }

    fn unit_f64(&mut self) -> f64 {
        self.inner.gen()
    }
}

/// Test-case failure, produced by the `prop_assert*` macros.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    Fail(String),
    Reject(String),
}

impl TestCaseError {
    pub fn fail(reason: impl Into<String>) -> Self {
        TestCaseError::Fail(reason.into())
    }

    pub fn reject(reason: impl Into<String>) -> Self {
        TestCaseError::Reject(reason.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TestCaseError::Fail(r) => write!(f, "{r}"),
            TestCaseError::Reject(r) => write!(f, "rejected: {r}"),
        }
    }
}

/// Runner configuration; only `cases` is interpreted.
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Upstream defaults to 256; this shim runs heavier simulation-backed
        // properties, so keep the per-test default moderate.
        ProptestConfig { cases: 64 }
    }
}

/// A generator of test values. Unlike upstream there is no value tree and
/// no shrinking; a strategy just samples.
pub trait Strategy {
    type Value: fmt::Debug;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<O: fmt::Debug, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map {
            strategy: self,
            mapper: f,
        }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    strategy: S,
    mapper: F,
}

impl<S: Strategy, O: fmt::Debug, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.mapper)(self.strategy.generate(rng))
    }
}

/// Always produces a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone + fmt::Debug> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_strategy_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}
impl_strategy_tuple! {
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}

macro_rules! impl_strategy_int_range {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.inner.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.inner.gen_range(self.clone())
            }
        }
    )*};
}
impl_strategy_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

/// Types with a canonical "anything" strategy (stands in for `Arbitrary`).
pub trait ArbitraryValue: Sized + fmt::Debug {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_uint {
    ($($t:ty),*) => {$(
        impl ArbitraryValue for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_uint!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl ArbitraryValue for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Strategy returned by [`any`].
pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

impl<T: ArbitraryValue> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// `any::<T>()` — the full range of `T`.
pub fn any<T: ArbitraryValue>() -> Any<T> {
    Any {
        _marker: std::marker::PhantomData,
    }
}

/// Collection size specification: a fixed length or a range of lengths.
#[derive(Debug, Clone)]
pub struct SizeRange {
    lo: usize,
    hi_exclusive: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange {
            lo: n,
            hi_exclusive: n + 1,
        }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            lo: r.start,
            hi_exclusive: r.end,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        SizeRange {
            lo: *r.start(),
            hi_exclusive: *r.end() + 1,
        }
    }
}

pub mod collection {
    use super::*;

    /// Strategy for `Vec`s of values from an element strategy.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.inner.gen_range(self.size.lo..self.size.hi_exclusive);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Strategy for `BTreeSet`s. Sampling may produce duplicates, so the
    /// requested size is an upper target: generation stops after enough
    /// attempts even if the set is still smaller (mirroring upstream's
    /// behavior of treating the size as best-effort for small domains).
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    pub fn btree_set<S>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        BTreeSetStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S> Strategy for BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord + fmt::Debug,
    {
        type Value = BTreeSet<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
            let target = rng.inner.gen_range(self.size.lo..self.size.hi_exclusive);
            let mut set = BTreeSet::new();
            let mut attempts = 0;
            while set.len() < target && attempts < target.saturating_mul(20) + 50 {
                set.insert(self.element.generate(rng));
                attempts += 1;
            }
            set
        }
    }
}

/// Unit-interval helper for float strategies (used by generated code only).
pub fn unit_f64(rng: &mut TestRng) -> f64 {
    rng.unit_f64()
}

/// Define property tests, mirroring `proptest::proptest!`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { config = $config; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { config = $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (config = $config:expr;) => {};
    (config = $config:expr;
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strategy:expr),* $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $config;
            let mut rng = $crate::TestRng::for_test(concat!(module_path!(), "::", stringify!($name)));
            for case in 0..config.cases {
                $(let $arg = $crate::Strategy::generate(&($strategy), &mut rng);)*
                let inputs = format!(
                    concat!($("\n  ", stringify!($arg), " = {:?}",)* ""),
                    $(&$arg),*
                );
                let result: ::std::result::Result<(), $crate::TestCaseError> = (|| {
                    $body
                    #[allow(unreachable_code)]
                    ::std::result::Result::Ok(())
                })();
                match result {
                    ::std::result::Result::Ok(()) => {}
                    ::std::result::Result::Err($crate::TestCaseError::Reject(_)) => {}
                    ::std::result::Result::Err($crate::TestCaseError::Fail(reason)) => {
                        panic!(
                            "proptest `{}` failed at case {}/{}: {}\ninputs:{}",
                            stringify!($name), case + 1, config.cases, reason, inputs
                        );
                    }
                }
            }
        }
        $crate::__proptest_items! { config = $config; $($rest)* }
    };
}

/// `prop_assert!` — fail the current case (returns `Err(TestCaseError)`).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($left), stringify!($right), left, right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `{} == {}`: {}\n  left: {:?}\n right: {:?}",
            stringify!($left), stringify!($right), format!($($fmt)+), left, right
        );
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left != *right,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($left), stringify!($right), left
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left != *right,
            "assertion failed: `{} != {}`: {}\n  both: {:?}",
            stringify!($left), stringify!($right), format!($($fmt)+), left
        );
    }};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn ranges_and_vec_strategies_sample_in_bounds() {
        let mut rng = TestRng::for_test("bounds");
        for _ in 0..200 {
            let x = (0.0f64..=1.0).generate(&mut rng);
            assert!((0.0..=1.0).contains(&x));
            let n = (1usize..6).generate(&mut rng);
            assert!((1..6).contains(&n));
            let v = crate::collection::vec(-1.0f32..1.0, 2..8).generate(&mut rng);
            assert!((2..8).contains(&v.len()));
            assert!(v.iter().all(|x| (-1.0..1.0).contains(x)));
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let mut a = TestRng::for_test("same");
        let mut b = TestRng::for_test("same");
        for _ in 0..16 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn macro_generates_runnable_tests(x in 0usize..10, y in any::<u64>()) {
            prop_assert!(x < 10);
            prop_assert_ne!(x, 10);
            let _ = y;
            prop_assert_eq!(x + 1, 1 + x);
        }
    }

    proptest! {
        #[test]
        fn default_config_form(v in crate::collection::vec(0u8..4, 3)) {
            prop_assert_eq!(v.len(), 3);
        }
    }
}
