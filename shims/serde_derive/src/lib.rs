//! Offline stand-in for `serde_derive`.
//!
//! `syn`/`quote` are unavailable in this offline build, so the derive input
//! is parsed directly from the raw `TokenStream`. Supported shapes — which
//! cover every derive site in this workspace — are structs with named
//! fields and enums whose variants are all unit variants. Anything else
//! produces a `compile_error!` naming this file.

use proc_macro::{Delimiter, TokenStream, TokenTree};

enum Shape {
    /// `struct Name { f1: T1, ... }`
    Struct { name: String, fields: Vec<String> },
    /// `enum Name { A, B, ... }` (unit variants only)
    UnitEnum { name: String, variants: Vec<String> },
}

fn compile_error(msg: &str) -> TokenStream {
    format!("compile_error!({msg:?});").parse().unwrap()
}

/// Skip one attribute if the iterator is positioned at `#` (doc comments
/// included). Returns whether an attribute was consumed. `#[serde(...)]`
/// is rejected outright: this shim implements no serde attributes, and
/// silently ignoring one (rename/skip/default/…) would change the wire
/// format relative to what the real serde_derive produces from the same
/// source.
fn skip_attr(
    iter: &mut std::iter::Peekable<proc_macro::token_stream::IntoIter>,
) -> Result<bool, String> {
    if matches!(iter.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
        iter.next();
        // The bracket group `[...]` of the attribute.
        if let Some(TokenTree::Group(g)) = iter.next() {
            if matches!(
                g.stream().into_iter().next(),
                Some(TokenTree::Ident(id)) if id.to_string() == "serde"
            ) {
                return Err(format!(
                    "serde_derive shim: `#[{}]` is not supported (no serde attributes are \
                     implemented; remove the attribute or vendor the real serde_derive)",
                    g.stream()
                ));
            }
        }
        Ok(true)
    } else {
        Ok(false)
    }
}

/// Skip a visibility qualifier (`pub`, `pub(crate)`, ...).
fn skip_vis(iter: &mut std::iter::Peekable<proc_macro::token_stream::IntoIter>) {
    if matches!(iter.peek(), Some(TokenTree::Ident(id)) if id.to_string() == "pub") {
        iter.next();
        if matches!(iter.peek(), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
        {
            iter.next();
        }
    }
}

fn parse_shape(input: TokenStream) -> Result<Shape, String> {
    let mut iter = input.into_iter().peekable();
    loop {
        while skip_attr(&mut iter)? {}
        skip_vis(&mut iter);
        match iter.next() {
            Some(TokenTree::Ident(id)) if id.to_string() == "struct" => {
                let name = match iter.next() {
                    Some(TokenTree::Ident(id)) => id.to_string(),
                    other => return Err(format!("expected struct name, got {other:?}")),
                };
                match iter.next() {
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                        return Ok(Shape::Struct {
                            name,
                            fields: parse_named_fields(g.stream())?,
                        });
                    }
                    Some(TokenTree::Punct(p)) if p.as_char() == '<' => {
                        return Err(format!(
                            "serde_derive shim: generic type `{name}` unsupported"
                        ));
                    }
                    _ => {
                        return Err(format!(
                            "serde_derive shim: only structs with named fields are supported \
                             (struct `{name}`)"
                        ));
                    }
                }
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "enum" => {
                let name = match iter.next() {
                    Some(TokenTree::Ident(id)) => id.to_string(),
                    other => return Err(format!("expected enum name, got {other:?}")),
                };
                match iter.next() {
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                        return Ok(Shape::UnitEnum {
                            variants: parse_unit_variants(g.stream(), &name)?,
                            name,
                        });
                    }
                    _ => return Err(format!("serde_derive shim: malformed enum `{name}`")),
                }
            }
            Some(_) => continue,
            None => return Err("serde_derive shim: no struct or enum found".into()),
        }
    }
}

fn parse_named_fields(body: TokenStream) -> Result<Vec<String>, String> {
    let mut iter = body.into_iter().peekable();
    let mut fields = Vec::new();
    loop {
        while skip_attr(&mut iter)? {}
        skip_vis(&mut iter);
        let name = match iter.next() {
            Some(TokenTree::Ident(id)) => id.to_string(),
            Some(other) => return Err(format!("expected field name, got {other:?}")),
            None => break,
        };
        match iter.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => return Err(format!("expected `:` after field `{name}`, got {other:?}")),
        }
        fields.push(name);
        // Skip the type: everything up to the next comma at angle-depth 0.
        // Commas inside `( )` / `[ ]` are invisible (whole groups are single
        // tokens); only `< >` needs explicit depth tracking.
        let mut angle_depth = 0i32;
        for tt in iter.by_ref() {
            if let TokenTree::Punct(p) = &tt {
                match p.as_char() {
                    '<' => angle_depth += 1,
                    '>' => angle_depth -= 1,
                    ',' if angle_depth == 0 => break,
                    _ => {}
                }
            }
        }
    }
    Ok(fields)
}

fn parse_unit_variants(body: TokenStream, enum_name: &str) -> Result<Vec<String>, String> {
    let mut iter = body.into_iter().peekable();
    let mut variants = Vec::new();
    loop {
        while skip_attr(&mut iter)? {}
        let name = match iter.next() {
            Some(TokenTree::Ident(id)) => id.to_string(),
            Some(other) => return Err(format!("expected variant name, got {other:?}")),
            None => break,
        };
        match iter.next() {
            None => {
                variants.push(name);
                break;
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ',' => variants.push(name),
            Some(TokenTree::Group(_)) => {
                return Err(format!(
                    "serde_derive shim: enum `{enum_name}` variant `{name}` carries data; \
                     only unit variants are supported"
                ));
            }
            Some(other) => {
                return Err(format!(
                    "unexpected token after variant `{name}`: {other:?}"
                ))
            }
        }
    }
    Ok(variants)
}

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let shape = match parse_shape(input) {
        Ok(s) => s,
        Err(e) => return compile_error(&e),
    };
    let code = match shape {
        Shape::Struct { name, fields } => {
            let pushes: String = fields
                .iter()
                .map(|f| {
                    format!(
                        "entries.push((::std::string::String::from({f:?}), \
                         ::serde::Serialize::to_value(&self.{f})));"
                    )
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         let mut entries: ::std::vec::Vec<(::std::string::String, ::serde::Value)> = ::std::vec::Vec::new();\n\
                         {pushes}\n\
                         ::serde::Value::Object(entries)\n\
                     }}\n\
                 }}"
            )
        }
        Shape::UnitEnum { name, variants } => {
            let arms: String = variants
                .iter()
                .map(|v| {
                    format!(
                        "{name}::{v} => ::serde::Value::String(::std::string::String::from({v:?})),"
                    )
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         match self {{ {arms} }}\n\
                     }}\n\
                 }}"
            )
        }
    };
    code.parse().unwrap()
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let shape = match parse_shape(input) {
        Ok(s) => s,
        Err(e) => return compile_error(&e),
    };
    let code = match shape {
        Shape::Struct { name, fields } => {
            let inits: String = fields
                .iter()
                .map(|f| format!("{f}: ::serde::de_field(v, {f:?})?,"))
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n\
                         if v.as_object().is_none() {{\n\
                             return ::std::result::Result::Err(::serde::Error::msg(\
                                 concat!(\"expected object for struct \", {name:?})));\n\
                         }}\n\
                         ::std::result::Result::Ok(Self {{ {inits} }})\n\
                     }}\n\
                 }}"
            )
        }
        Shape::UnitEnum { name, variants } => {
            let arms: String = variants
                .iter()
                .map(|v| format!("{v:?} => ::std::result::Result::Ok({name}::{v}),"))
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n\
                         match v.as_str() {{\n\
                             ::std::option::Option::Some(s) => match s {{\n\
                                 {arms}\n\
                                 other => ::std::result::Result::Err(::serde::Error::msg(\
                                     format!(concat!(\"unknown variant `{{}}` of \", {name:?}), other))),\n\
                             }},\n\
                             ::std::option::Option::None => ::std::result::Result::Err(\
                                 ::serde::Error::msg(concat!(\"expected string for enum \", {name:?}))),\n\
                         }}\n\
                     }}\n\
                 }}"
            )
        }
    };
    code.parse().unwrap()
}
