//! Offline stand-in for `criterion`.
//!
//! Provides the API shape used by this workspace's benches (`Criterion`,
//! `Bencher::iter` / `iter_batched`, `criterion_group!`, `criterion_main!`,
//! `black_box`) with a simple wall-clock measurement loop instead of
//! criterion's statistical machinery: per sample the routine runs in a
//! timed batch, and the mean/min over samples is reported on stdout.

use std::time::{Duration, Instant};

pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// How batched inputs are grouped; accepted for API compatibility, the
/// shim times one input per iteration regardless.
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 20,
            measurement_time: Duration::from_secs(1),
        }
    }
}

impl Criterion {
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let mut bencher = Bencher {
            samples: Vec::with_capacity(self.sample_size),
            sample_size: self.sample_size,
            budget: self.measurement_time,
        };
        f(&mut bencher);
        let samples = &bencher.samples;
        if samples.is_empty() {
            println!("{id:<40} no samples collected");
        } else {
            let mean = samples.iter().sum::<f64>() / samples.len() as f64;
            let min = samples.iter().cloned().fold(f64::INFINITY, f64::min);
            println!(
                "{id:<40} mean {:>12} min {:>12} ({} samples)",
                format_ns(mean),
                format_ns(min),
                samples.len()
            );
        }
        self
    }
}

fn format_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.2} s", ns / 1_000_000_000.0)
    }
}

/// Per-benchmark measurement state handed to the closure of
/// [`Criterion::bench_function`].
pub struct Bencher {
    /// Mean per-iteration time of each sample, nanoseconds.
    samples: Vec<f64>,
    sample_size: usize,
    budget: Duration,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Warm up and estimate a batch size that keeps each sample cheap.
        let warmup_start = Instant::now();
        black_box(routine());
        let once = warmup_start.elapsed().max(Duration::from_nanos(1));
        let per_sample = (self.budget / (self.sample_size as u32)).max(Duration::from_micros(10));
        let batch = (per_sample.as_nanos() / once.as_nanos()).clamp(1, 10_000) as usize;

        let deadline = Instant::now() + self.budget;
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            let elapsed = start.elapsed();
            self.samples.push(elapsed.as_nanos() as f64 / batch as f64);
            if Instant::now() > deadline {
                break;
            }
        }
    }

    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let deadline = Instant::now() + self.budget;
        for _ in 0..self.sample_size {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.samples.push(start.elapsed().as_nanos() as f64);
            if Instant::now() > deadline {
                break;
            }
        }
    }
}

/// Define a benchmark group, mirroring `criterion_group!` (both forms).
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Define the benchmark entry point, mirroring `criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
