//! Offline stand-in for `serde`.
//!
//! Real serde serializes through visitor-based `Serializer`/`Deserializer`
//! traits; this shim collapses that architecture into a single JSON-like
//! [`Value`] tree, which is all this workspace needs (derived structs and
//! unit enums round-tripped through `serde_json`). `#[derive(Serialize,
//! Deserialize)]` is provided by the sibling `serde_derive` shim and maps
//! structs to objects and unit enum variants to strings — the same wire
//! shape as upstream `serde_json` defaults, so swapping the real crates
//! back in does not change any serialized output.

use std::collections::{BTreeMap, HashMap};
use std::fmt;

pub use serde_derive::{Deserialize, Serialize};

/// JSON-like value tree shared by the `serde` and `serde_json` shims
/// (`serde_json::Value` re-exports this type).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    /// Integral number (serialized without a decimal point).
    Int(i64),
    /// Floating-point number.
    Float(f64),
    String(String),
    Array(Vec<Value>),
    /// Insertion-ordered object entries.
    Object(Vec<(String, Value)>),
}

impl Value {
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    pub fn as_object(&self) -> Option<&Vec<(String, Value)>> {
        match self {
            Value::Object(entries) => Some(entries),
            _ => None,
        }
    }

    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Float(f) => Some(*f),
            _ => None,
        }
    }

    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Int(i) if *i >= 0 => Some(*i as u64),
            _ => None,
        }
    }

    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }
}

const NULL: Value = Value::Null;

/// `value["key"]` object access; missing keys yield `Null` like serde_json.
impl std::ops::Index<&str> for Value {
    type Output = Value;

    fn index(&self, key: &str) -> &Value {
        self.get(key).unwrap_or(&NULL)
    }
}

/// `value[i]` array access; out-of-bounds yields `Null` like serde_json.
impl std::ops::Index<usize> for Value {
    type Output = Value;

    fn index(&self, index: usize) -> &Value {
        match self {
            Value::Array(items) => items.get(index).unwrap_or(&NULL),
            _ => &NULL,
        }
    }
}

/// Serialization/deserialization error.
#[derive(Debug, Clone)]
pub struct Error(pub String);

impl Error {
    pub fn msg(m: impl Into<String>) -> Self {
        Error(m.into())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for Error {}

/// Conversion into the shim's [`Value`] model (stands in for `serde::Serialize`).
pub trait Serialize {
    fn to_value(&self) -> Value;
}

/// Conversion from the shim's [`Value`] model (stands in for `serde::Deserialize`).
pub trait Deserialize: Sized {
    fn from_value(v: &Value) -> Result<Self, Error>;
}

/// Helper used by derived `Deserialize` impls: look up a field, treating a
/// missing key as `Null` (so `Option` fields tolerate absence).
pub fn de_field<T: Deserialize>(v: &Value, field: &str) -> Result<T, Error> {
    let inner = v.get(field).unwrap_or(&NULL);
    T::from_value(inner).map_err(|e| Error(format!("field `{field}`: {e}")))
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_bool().ok_or_else(|| Error::msg("expected bool"))
    }
}

macro_rules! impl_serde_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Int(*self as i64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let i = match v {
                    Value::Int(i) => *i,
                    // Tolerate a float that is exactly integral (JSON has one
                    // number type; `1.0` and `1` are the same number).
                    Value::Float(f)
                        if f.fract() == 0.0 && (i64::MIN as f64..=i64::MAX as f64).contains(f) =>
                    {
                        *f as i64
                    }
                    _ => return Err(Error::msg(concat!("expected ", stringify!($t)))),
                };
                <$t>::try_from(i).map_err(|_| {
                    Error(format!(concat!("{} out of range for ", stringify!($t)), i))
                })
            }
        }
    )*};
}
impl_serde_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_serde_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Float(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                v.as_f64()
                    .map(|f| f as $t)
                    .ok_or_else(|| Error::msg(concat!("expected ", stringify!($t))))
            }
        }
    )*};
}
impl_serde_float!(f32, f64);

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_str()
            .map(str::to_owned)
            .ok_or_else(|| Error::msg("expected string"))
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_owned())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_array()
            .ok_or_else(|| Error::msg("expected array"))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

macro_rules! impl_serde_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let items = v.as_array().ok_or_else(|| Error::msg("expected tuple array"))?;
                let expected = [$($idx),+].len();
                if items.len() != expected {
                    return Err(Error(format!("expected {expected}-tuple, got {} items", items.len())));
                }
                Ok(($($name::from_value(&items[$idx])?,)+))
            }
        }
    )*};
}
impl_serde_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.clone(), v.to_value()))
                .collect(),
        )
    }
}

impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_object()
            .ok_or_else(|| Error::msg("expected object"))?
            .iter()
            .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
            .collect()
    }
}

impl<V: Serialize> Serialize for HashMap<String, V> {
    fn to_value(&self) -> Value {
        let mut entries: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| (k.clone(), v.to_value()))
            .collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Object(entries)
    }
}

impl<V: Deserialize> Deserialize for HashMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_object()
            .ok_or_else(|| Error::msg("expected object"))?
            .iter()
            .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
            .collect()
    }
}
