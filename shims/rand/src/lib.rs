//! Offline stand-in for the `rand` crate (0.8 API subset).
//!
//! The build environment has no access to crates.io, so this workspace
//! vendors the exact API surface it uses: `RngCore`, `SeedableRng`, `Rng`
//! (`gen`, `gen_range`, `gen_bool`), and `rngs::StdRng`. `StdRng` here is
//! xoshiro256++ seeded via SplitMix64 — deterministic, `Clone`, and
//! statistically solid for simulation workloads, but NOT the same stream as
//! upstream `rand`'s ChaCha12-based `StdRng` and not cryptographically
//! secure.

use std::fmt;
use std::ops::{Range, RangeInclusive};

/// Error type mirroring `rand::Error`. The shimmed generators are
/// infallible, so this is only ever constructed by downstream code.
#[derive(Debug)]
pub struct Error;

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "random number generator error")
    }
}

impl std::error::Error for Error {}

/// Core trait for random number generators.
pub trait RngCore {
    fn next_u32(&mut self) -> u32;
    fn next_u64(&mut self) -> u64;
    fn fill_bytes(&mut self, dest: &mut [u8]);
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
        self.fill_bytes(dest);
        Ok(())
    }
}

/// A generator that can be instantiated from a fixed-size seed.
pub trait SeedableRng: Sized {
    type Seed: Sized + Default + AsMut<[u8]>;

    fn from_seed(seed: Self::Seed) -> Self;

    /// Expand a `u64` into a full seed with SplitMix64 (the same scheme
    /// upstream `rand` uses).
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// Types producible by [`Rng::gen`] (the `Standard` distribution).
pub trait Standard: Sized {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_uint {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_uint!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    /// Uniform in `[0, 1)` with 24 bits of precision.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges samplable by [`Rng::gen_range`].
pub trait SampleRange<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let offset = (rng.next_u64() as u128) % span;
                (self.start as i128 + offset as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "gen_range: empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let offset = (rng.next_u64() as u128) % span;
                (start as i128 + offset as i128) as $t
            }
        }
    )*};
}
impl_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let unit = <$t as Standard>::sample(rng);
                self.start + (self.end - self.start) * unit
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "gen_range: empty range");
                let unit = <$t as Standard>::sample(rng);
                start + (end - start) * unit
            }
        }
    )*};
}
impl_range_float!(f32, f64);

/// Convenience methods over [`RngCore`], mirroring `rand::Rng`.
pub trait Rng: RngCore {
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator standing in for `rand::rngs::StdRng`.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }

        fn fill_bytes(&mut self, dest: &mut [u8]) {
            for chunk in dest.chunks_mut(8) {
                let bytes = self.next_u64().to_le_bytes();
                chunk.copy_from_slice(&bytes[..chunk.len()]);
            }
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, word) in s.iter_mut().enumerate() {
                let mut b = [0u8; 8];
                b.copy_from_slice(&seed[i * 8..i * 8 + 8]);
                *word = u64::from_le_bytes(b);
            }
            // xoshiro must not start from the all-zero state.
            if s == [0; 4] {
                s = [
                    0x9E37_79B9_7F4A_7C15,
                    0xBF58_476D_1CE4_E5B9,
                    0x94D0_49BB_1331_11EB,
                    1,
                ];
            }
            StdRng { s }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..32 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(StdRng::seed_from_u64(7).next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x: f64 = rng.gen_range(-1.0..1.0);
            assert!((-1.0..1.0).contains(&x));
            let n: usize = rng.gen_range(0..3);
            assert!(n < 3);
            let m: u64 = rng.gen_range(5..=5);
            assert_eq!(m, 5);
        }
    }

    #[test]
    fn unit_floats_in_range() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..1000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }
}
