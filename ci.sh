#!/usr/bin/env bash
# CI gate for the Sync-Switch workspace. Mirrors what a hosted workflow
# would run; keep it green locally before pushing.
#
#   ./ci.sh           # full gate
#   ./ci.sh --fast    # skip the release build (debug build + tests only)
set -euo pipefail
cd "$(dirname "$0")"

fast=0
[[ "${1:-}" == "--fast" ]] && fast=1

step() { printf '\n==> %s\n' "$*"; }

if [[ $fast -eq 0 ]]; then
    step "cargo build --release (tier-1, part 1)"
    cargo build --release
fi

step "cargo test -q --workspace (tier-1, part 2)"
cargo test -q --workspace

step "cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

step "cargo bench --no-run --workspace (bench targets must keep compiling)"
cargo bench --no-run --workspace

step "ps_throughput smoke (machine-readable bench JSON must emit and parse)"
smoke_json="$(mktemp -t ps_throughput_smoke.XXXXXX.json)"
trap 'rm -f "$smoke_json"' EXIT
rm -f "$smoke_json"
PS_BENCH_FAST=1 PS_BENCH_OUT="$smoke_json" cargo bench -p sync-switch-bench --bench ps_throughput
[[ -s "$smoke_json" ]] || { echo "ps_throughput smoke did not write $smoke_json" >&2; exit 1; }
cargo run -q -p sync-switch-bench --bin bench_json_check -- "$smoke_json"

step "cargo build --examples"
cargo build --examples

printf '\nCI gate passed.\n'
