#!/usr/bin/env bash
# CI gate for the Sync-Switch workspace, split into named stages so the
# hosted workflow (.github/workflows/ci.yml) gets per-stage failure
# attribution. Keep it green locally before pushing.
#
#   ./ci.sh                   # every stage in order
#   ./ci.sh --fast            # debug-profile stages only (fmt, test,
#                             # clippy, examples) — skips everything that
#                             # would trigger a release/bench-profile build,
#                             # including the multi-process cluster stage
#   ./ci.sh --stage <name>    # run one stage (repeatable)
#   ./ci.sh --list            # print stage names
#
# On any stage failure the EXIT trap collects diagnostics (cluster child
# logs, bench JSON, golden exhibits, tree diff) into ci-artifacts/, which
# the hosted workflow uploads.
set -euo pipefail
cd "$(dirname "$0")"

STAGES=(fmt build test transport workloads chaos clippy bench-compile bench-smoke exhibits examples cluster)
# Stages skipped by --fast: each of these compiles the release or bench
# profile, which dwarfs the debug stages' wall time.
RELEASE_STAGES=(build bench-compile bench-smoke exhibits cluster)

step() { printf '\n==> %s\n' "$*"; }

# Matches the cluster binaries spawned out of this repo's target dir (and
# nothing else — not this script, not cargo).
CLUSTER_PROC_RE='target/(debug|release)/ps-(serve|worker)'

# PID ledger for cluster children: the ClusterHarness appends every child
# PID it spawns when PS_CLUSTER_PID_FILE is set. Cleanup below is scoped to
# these PIDs — a pattern `pkill` would also hit cluster processes belonging
# to a concurrent run in another checkout of this repo.
CLUSTER_PID_FILE="target/tmp/ci-cluster.$$.pids"
mkdir -p "$(dirname "$CLUSTER_PID_FILE")"
rm -f "$CLUSTER_PID_FILE"
export PS_CLUSTER_PID_FILE="$PWD/$CLUSTER_PID_FILE"

# Ledger PIDs that are still alive and still one of this repo's cluster
# binaries — the /proc cmdline check guards against PID reuse by an
# unrelated process after a child exited. Always exits 0: an exited child
# (the normal case) is simply not listed, and under `set -e` a nonzero
# return here would abort the caller's command substitution. The stderr
# redirect precedes the input redirect so bash's own "No such file" open
# error for a reaped PID is silenced too.
live_cluster_pids() {
    [[ -f "$CLUSTER_PID_FILE" ]] || return 0
    local pid cmd
    while IFS= read -r pid; do
        [[ "$pid" =~ ^[0-9]+$ ]] || continue
        cmd="$(tr '\0' ' ' 2>/dev/null < "/proc/$pid/cmdline" || true)"
        if [[ "$cmd" =~ $CLUSTER_PROC_RE ]]; then
            printf '%s\n' "$pid"
        fi
    done < "$CLUSTER_PID_FILE"
    return 0
}

# ---- failure artifacts ----------------------------------------------------

CURRENT_STAGE=""
SMOKE_JSON=""

# Collects whatever a post-mortem needs into ci-artifacts/ (uploaded by the
# hosted workflow on failure): the failed stage name, every cluster child
# log/spec/report under target/tmp, the committed and freshly measured
# bench JSON, the golden exhibits, and any tree drift a stage left behind.
collect_artifacts() {
    local stage="$1" dest="ci-artifacts"
    rm -rf "$dest"
    mkdir -p "$dest"
    {
        echo "failed stage: $stage"
        echo "commit: $(git rev-parse HEAD 2>/dev/null || echo unknown)"
        date -u +"when: %Y-%m-%dT%H:%M:%SZ"
    } > "$dest/FAILURE.txt"
    # Cluster harness run dirs: per-child logs, spec, worker reports, the
    # ps-worker Chrome traces (*.trace.json), the per-server metrics
    # snapshots (*.metrics.json), and the merged cluster-metrics.json.
    if [[ -d target/tmp ]]; then
        while IFS= read -r f; do
            local rel="${f#target/tmp/}"
            mkdir -p "$dest/cluster/$(dirname "$rel")"
            cp "$f" "$dest/cluster/$rel"
        done < <(find target/tmp -type f \( -name '*.log' -o -name '*.json' \) 2>/dev/null)
    fi
    # Bench baseline + the smoke sweep that was measured against it.
    cp BENCH_*.json "$dest"/ 2>/dev/null || true
    if [[ -n "$SMOKE_JSON" && -s "$SMOKE_JSON" ]]; then
        cp "$SMOKE_JSON" "$dest/ps_throughput_smoke.json"
    fi
    # Golden exhibits plus any drift a stage left in the working tree
    # (e.g. a --update someone forgot to commit).
    cp -r goldens "$dest/goldens" 2>/dev/null || true
    git status --short > "$dest/git-status.txt" 2>/dev/null || true
    git diff > "$dest/git-diff.patch" 2>/dev/null || true
    echo "collected failure artifacts into $dest/" >&2
}

on_exit() {
    local code=$?
    # Reap any cluster child that outlived its harness — a leaked ps-serve
    # squats on its spec port and poisons the next run. Only PIDs this
    # run's harnesses recorded in the ledger are touched.
    local pid
    while IFS= read -r pid; do
        kill -9 "$pid" 2>/dev/null || true
    done < <(live_cluster_pids)
    rm -f "$CLUSTER_PID_FILE"
    if [[ -n "$SMOKE_JSON" ]]; then
        rm -f "$SMOKE_JSON"
    fi
    if [[ $code -ne 0 && -n "$CURRENT_STAGE" ]]; then
        collect_artifacts "$CURRENT_STAGE"
    fi
}
trap on_exit EXIT

# ---- stages ---------------------------------------------------------------

# cargo fmt --check: formatting drift fails fast, before any compilation.
stage_fmt() {
    cargo fmt --all --check
}

# Tier-1, part 1: the release build every bench/exhibit stage reuses.
stage_build() {
    cargo build --release
}

# Tier-1, part 2.
stage_test() {
    cargo test -q --workspace
}

# Transport-tier smoke: the wire-protocol integration tests (channel + TCP
# loopback, BSP ≡ sequential SGD) under a hard timeout, so a hung socket
# or a lost wakeup in a serving loop fails the gate fast instead of
# wedging it. Build first without the timeout — compilation time must not
# eat the test budget.
stage_transport() {
    cargo test -q -p sync-switch-ps --test transport --no-run
    # timeout signals the whole process group (cargo + the test binary);
    # TERM first for clean output, KILL 10s later if a socket is wedged.
    timeout -k 10 120 \
        cargo test -q -p sync-switch-ps --test transport || {
        echo "transport tests failed or timed out (120s budget)" >&2
        return 1
    }
}

# Workload-breadth convergence harness: every registered trainable workload
# (MLP, conv, sparse embedding) trains under BSP, ASP, SSP(2), and a
# BSP→ASP switch on the real PS tier, gated on per-workload loss
# thresholds. Hard KILL timeout: a convergence stall must fail the gate,
# not wedge it. Built first so compilation does not eat the run budget.
stage_workloads() {
    cargo test -q -p sync-switch-ps --test workloads --no-run
    timeout -sKILL 180 \
        cargo test -q -p sync-switch-ps --test workloads || {
        echo "workload convergence harness failed or timed out (180s budget)" >&2
        return 1
    }
}

# Chaos suite: every trainable workload under BSP and ASP on a TCP tier
# with seeded fault injection (dropped replies, stragglers) plus a mid-run
# server kill healed from a supervisor checkpoint, and the hot-lr
# divergence specimen absorbed by the watchdog. Hard KILL timeout: a
# wedged retry loop or a dead server that never heals must fail the gate,
# not hang it. Built first so compilation does not eat the run budget.
stage_chaos() {
    cargo test -q -p sync-switch-ps --test chaos --no-run
    timeout -sKILL 180 \
        cargo test -q -p sync-switch-ps --test chaos || {
        echo "chaos suite failed or timed out (180s budget)" >&2
        return 1
    }
}

stage_clippy() {
    cargo clippy --workspace --all-targets -- -D warnings
}

# Bench targets must keep compiling even when we don't run them.
stage_bench_compile() {
    cargo bench --no-run --workspace
}

# Machine-readable bench JSON must emit, parse, and not regress the
# committed trajectory beyond 30% — generous enough to absorb CI-box
# noise, tight enough to catch a real transport/engine regression.
# Escape hatch for known-slow boxes (throttled laptops, saturated CI):
#   BENCH_BASELINE_SKIP=1 ./ci.sh --stage bench-smoke   # report-only
bench_smoke_measure() {
    rm -f "$SMOKE_JSON"
    PS_BENCH_FAST=1 PS_BENCH_OUT="$SMOKE_JSON" \
        cargo bench -p sync-switch-bench --bench ps_throughput
    [[ -s "$SMOKE_JSON" ]] || {
        echo "ps_throughput smoke did not write $SMOKE_JSON" >&2
        return 1
    }
    cargo run -q -p sync-switch-bench --bin bench_json_check -- "$SMOKE_JSON"
}

bench_smoke_baseline() {
    cargo run -q -p sync-switch-bench --bin bench_json_check -- "$SMOKE_JSON" \
        --baseline BENCH_ps_throughput.json --tolerance-pct 30 "$@"
}

stage_bench_smoke() {
    SMOKE_JSON="$(mktemp -t ps_throughput_smoke.XXXXXX.json)"
    # The FAST-profile micro-configs are scheduler-sensitive; a single
    # re-measure absorbs transient CPU-contention noise — both for the
    # telemetry-overhead gate inside bench_json_check and for the
    # baseline comparison below — while a real regression fails both
    # measurements.
    if ! bench_smoke_measure; then
        echo "bench gate tripped — re-measuring once to rule out scheduler noise" >&2
        bench_smoke_measure
    fi
    if [[ "${BENCH_BASELINE_SKIP:-0}" == "1" ]]; then
        echo "BENCH_BASELINE_SKIP=1: baseline comparison is report-only" >&2
        bench_smoke_baseline --report-only
        return 0
    fi
    if ! bench_smoke_baseline; then
        echo "baseline regression — re-measuring once to rule out scheduler noise" >&2
        bench_smoke_measure
        bench_smoke_baseline
    fi
}

# Exhibit golden gate: fig5 (knee) and table2 (search costs) regenerated
# and compared against goldens/ with per-field tolerances. A failure here
# means the paper exhibits drifted; refresh intentionally with
# `cargo run --release -p sync-switch-bench --bin exhibit_check -- --update`.
stage_exhibits() {
    cargo run --release -q -p sync-switch-bench --bin exhibit_check
}

stage_examples() {
    cargo build --examples
}

# Multi-process cluster: real `ps-serve` + `ps-worker` OS processes over
# real TCP (spawned by tests/cluster.rs via the ClusterHarness), driven to
# the convergence gate under BSP and ASP, including a mid-run server
# SIGKILL healed through the supervisor respawn path. Release profile —
# the crash-timing windows in the test assume release-speed training.
# Hard KILL timeout: a wedged handshake or heal loop must fail the gate,
# not hang it; the EXIT trap reaps any orphaned child processes.
stage_cluster() {
    cargo test -q --release --test cluster --no-run
    rm -f "$CLUSTER_PID_FILE"
    PS_CLUSTER_TEST=1 timeout -sKILL 180 \
        cargo test -q --release --test cluster || {
        echo "cluster suite failed or timed out (180s budget)" >&2
        return 1
    }
    # Zero tolerance for leaked children: the harness guarantees teardown,
    # and this pins that guarantee at the process table — judged against
    # the PIDs this stage's harnesses actually spawned, so a concurrent
    # run elsewhere on the machine cannot fail (or mask) the check.
    local orphans pid
    orphans="$(live_cluster_pids)"
    if [[ -n "$orphans" ]]; then
        echo "orphaned cluster processes left behind:" >&2
        while IFS= read -r pid; do
            ps -o pid=,args= -p "$pid" >&2 || true
        done <<< "$orphans"
        return 1
    fi
    # Telemetry contract at the file level, independent of the in-test
    # assertions: every harness run dir (identified by its spec.json) must
    # hold a metrics snapshot from each ps-serve, a Chrome trace from each
    # ps-worker, and worker reports embedding the scraped server stats.
    local spec dir bad=0
    while IFS= read -r spec; do
        dir="$(dirname "$spec")"
        if ! compgen -G "$dir/server-*.metrics.json" >/dev/null; then
            echo "cluster run $dir: no ps-serve metrics snapshot" >&2
            bad=1
        fi
        if ! compgen -G "$dir/worker-*.trace.json" >/dev/null; then
            echo "cluster run $dir: no ps-worker trace file" >&2
            bad=1
        fi
        local rep
        for rep in "$dir"/worker-*.report.json; do
            [[ -f "$rep" ]] || continue
            if ! grep -q '"server_stats"' "$rep"; then
                echo "cluster run $dir: $(basename "$rep") embeds no scraped server stats" >&2
                bad=1
            fi
        done
    done < <(find target/tmp -maxdepth 2 -name spec.json 2>/dev/null)
    return "$bad"
}

# ---- driver ---------------------------------------------------------------

RAN_STAGES=()
RAN_TIMES=()

run_stage() {
    local name="$1"
    local fn="stage_${name//-/_}"
    if ! declare -F "$fn" >/dev/null; then
        echo "unknown stage '$name' (try: ${STAGES[*]})" >&2
        exit 2
    fi
    step "stage: $name"
    CURRENT_STAGE="$name"
    local t0=$SECONDS
    "$fn"
    RAN_STAGES+=("$name")
    RAN_TIMES+=("$((SECONDS - t0))")
    CURRENT_STAGE=""
}

print_timing_summary() {
    [[ ${#RAN_STAGES[@]} -gt 0 ]] || return 0
    local total=0 i
    printf '\n%-16s %8s\n' "stage" "wall (s)"
    for i in "${!RAN_STAGES[@]}"; do
        printf '%-16s %8s\n' "${RAN_STAGES[$i]}" "${RAN_TIMES[$i]}"
        total=$((total + RAN_TIMES[i]))
    done
    printf '%-16s %8s\n' "total" "$total"
}

fast=0
selected=()
while [[ $# -gt 0 ]]; do
    case "$1" in
        --fast) fast=1 ;;
        --stage)
            [[ $# -ge 2 ]] || { echo "--stage requires a name" >&2; exit 2; }
            selected+=("$2")
            shift
            ;;
        --list)
            printf '%s\n' "${STAGES[@]}"
            exit 0
            ;;
        *)
            echo "unknown argument '$1'" >&2
            echo "usage: ./ci.sh [--fast] [--stage <name>]... [--list]" >&2
            exit 2
            ;;
    esac
    shift
done

if [[ ${#selected[@]} -gt 0 ]]; then
    for name in "${selected[@]}"; do
        run_stage "$name"
    done
else
    for name in "${STAGES[@]}"; do
        if [[ $fast -eq 1 ]] && [[ " ${RELEASE_STAGES[*]} " == *" $name "* ]]; then
            continue
        fi
        run_stage "$name"
    done
fi

print_timing_summary
printf '\nCI gate passed.\n'
