#!/usr/bin/env bash
# CI gate for the Sync-Switch workspace, split into named stages so the
# hosted workflow (.github/workflows/ci.yml) gets per-stage failure
# attribution. Keep it green locally before pushing.
#
#   ./ci.sh                   # every stage in order
#   ./ci.sh --fast            # debug-profile stages only (fmt, test,
#                             # clippy, examples) — skips everything that
#                             # would trigger a release/bench-profile build
#   ./ci.sh --stage <name>    # run one stage (repeatable)
#   ./ci.sh --list            # print stage names
set -euo pipefail
cd "$(dirname "$0")"

STAGES=(fmt build test transport workloads chaos clippy bench-compile bench-smoke exhibits examples)
# Stages skipped by --fast: each of these compiles the release or bench
# profile, which dwarfs the debug stages' wall time.
RELEASE_STAGES=(build bench-compile bench-smoke exhibits)

step() { printf '\n==> %s\n' "$*"; }

# cargo fmt --check: formatting drift fails fast, before any compilation.
stage_fmt() {
    cargo fmt --all --check
}

# Tier-1, part 1: the release build every bench/exhibit stage reuses.
stage_build() {
    cargo build --release
}

# Tier-1, part 2.
stage_test() {
    cargo test -q --workspace
}

# Transport-tier smoke: the wire-protocol integration tests (channel + TCP
# loopback, BSP ≡ sequential SGD) under a hard timeout, so a hung socket
# or a lost wakeup in a serving loop fails the gate fast instead of
# wedging it. Build first without the timeout — compilation time must not
# eat the test budget.
stage_transport() {
    cargo test -q -p sync-switch-ps --test transport --no-run
    # timeout signals the whole process group (cargo + the test binary);
    # TERM first for clean output, KILL 10s later if a socket is wedged.
    timeout -k 10 120 \
        cargo test -q -p sync-switch-ps --test transport || {
        echo "transport tests failed or timed out (120s budget)" >&2
        return 1
    }
}

# Workload-breadth convergence harness: every registered trainable workload
# (MLP, conv, sparse embedding) trains under BSP, ASP, SSP(2), and a
# BSP→ASP switch on the real PS tier, gated on per-workload loss
# thresholds. Hard KILL timeout: a convergence stall must fail the gate,
# not wedge it. Built first so compilation does not eat the run budget.
stage_workloads() {
    cargo test -q -p sync-switch-ps --test workloads --no-run
    timeout -sKILL 180 \
        cargo test -q -p sync-switch-ps --test workloads || {
        echo "workload convergence harness failed or timed out (180s budget)" >&2
        return 1
    }
}

# Chaos suite: every trainable workload under BSP and ASP on a TCP tier
# with seeded fault injection (dropped replies, stragglers) plus a mid-run
# server kill healed from a supervisor checkpoint, and the hot-lr
# divergence specimen absorbed by the watchdog. Hard KILL timeout: a
# wedged retry loop or a dead server that never heals must fail the gate,
# not hang it. Built first so compilation does not eat the run budget.
stage_chaos() {
    cargo test -q -p sync-switch-ps --test chaos --no-run
    timeout -sKILL 180 \
        cargo test -q -p sync-switch-ps --test chaos || {
        echo "chaos suite failed or timed out (180s budget)" >&2
        return 1
    }
}

stage_clippy() {
    cargo clippy --workspace --all-targets -- -D warnings
}

# Bench targets must keep compiling even when we don't run them.
stage_bench_compile() {
    cargo bench --no-run --workspace
}

# Machine-readable bench JSON must emit, parse, and not regress the
# committed trajectory. The regression check runs in report-only mode: the
# smoke sweep is short and CI boxes are noisy, so it warns rather than
# failing the gate (tighten to a hard failure once box-to-box variance is
# understood).
stage_bench_smoke() {
    local smoke_json
    smoke_json="$(mktemp -t ps_throughput_smoke.XXXXXX.json)"
    # EXIT (not RETURN): under set -e a failing command exits the whole
    # script, and RETURN traps do not run on shell exit.
    # shellcheck disable=SC2064  # expand now: the name is fixed at mktemp time
    trap "rm -f '$smoke_json'" EXIT
    rm -f "$smoke_json"
    PS_BENCH_FAST=1 PS_BENCH_OUT="$smoke_json" \
        cargo bench -p sync-switch-bench --bench ps_throughput
    [[ -s "$smoke_json" ]] || {
        echo "ps_throughput smoke did not write $smoke_json" >&2
        return 1
    }
    cargo run -q -p sync-switch-bench --bin bench_json_check -- "$smoke_json"
    cargo run -q -p sync-switch-bench --bin bench_json_check -- "$smoke_json" \
        --baseline BENCH_ps_throughput.json --tolerance-pct 30 --report-only
}

# Exhibit golden gate: fig5 (knee) and table2 (search costs) regenerated
# and compared against goldens/ with per-field tolerances. A failure here
# means the paper exhibits drifted; refresh intentionally with
# `cargo run --release -p sync-switch-bench --bin exhibit_check -- --update`.
stage_exhibits() {
    cargo run --release -q -p sync-switch-bench --bin exhibit_check
}

stage_examples() {
    cargo build --examples
}

run_stage() {
    local name="$1"
    local fn="stage_${name//-/_}"
    if ! declare -F "$fn" >/dev/null; then
        echo "unknown stage '$name' (try: ${STAGES[*]})" >&2
        exit 2
    fi
    step "stage: $name"
    "$fn"
}

fast=0
selected=()
while [[ $# -gt 0 ]]; do
    case "$1" in
        --fast) fast=1 ;;
        --stage)
            [[ $# -ge 2 ]] || { echo "--stage requires a name" >&2; exit 2; }
            selected+=("$2")
            shift
            ;;
        --list)
            printf '%s\n' "${STAGES[@]}"
            exit 0
            ;;
        *)
            echo "unknown argument '$1'" >&2
            echo "usage: ./ci.sh [--fast] [--stage <name>]... [--list]" >&2
            exit 2
            ;;
    esac
    shift
done

if [[ ${#selected[@]} -gt 0 ]]; then
    for name in "${selected[@]}"; do
        run_stage "$name"
    done
else
    for name in "${STAGES[@]}"; do
        if [[ $fast -eq 1 ]] && [[ " ${RELEASE_STAGES[*]} " == *" $name "* ]]; then
            continue
        fi
        run_stage "$name"
    done
fi

printf '\nCI gate passed.\n'
