//! Integration tests of the real parameter-server execution path: the same
//! policy engine driving actual worker threads.

use std::time::Duration;

use sync_switch::prelude::*;
use sync_switch::ps_backend::PsBackend;
use sync_switch_nn::{Dataset, Network};
use sync_switch_ps::{Trainer, TrainerConfig};
use sync_switch_workloads::LrSchedule;

fn small_setup(workers: usize, total: u64) -> ExperimentSetup {
    let mut setup = ExperimentSetup::one();
    setup.cluster_size = workers;
    setup.workload.hyper.total_steps = total;
    setup.workload.hyper.batch_size = 8;
    setup.workload.hyper.learning_rate = 0.03;
    setup.workload.hyper.lr_schedule = LrSchedule::piecewise(vec![(total / 2, 0.1)]);
    setup
}

fn dataset(seed: u64) -> (Dataset, Dataset) {
    Dataset::gaussian_blobs(4, 100, 8, 0.35, seed).split(0.25)
}

#[test]
fn hybrid_training_beats_pure_asp_accuracy_on_hard_problem() {
    // A harder dataset (high overlap) where stale gradients hurt: the
    // hybrid schedule should match BSP-quality training.
    let data = Dataset::gaussian_blobs(6, 120, 10, 0.55, 7);
    let (train, test) = data.split(0.25);
    let total = 300u64;

    let accuracy_for = |fraction: f64| -> f64 {
        let mut setup = small_setup(4, total);
        setup.workload.hyper.learning_rate = 0.05;
        let mut backend = PsBackend::new(
            Network::mlp(10, &[24, 12], 6, 7),
            train.clone(),
            test.clone(),
            4,
            7,
        );
        let mut policy = SyncSwitchPolicy::new(fraction, 4);
        policy.eval_interval = 100;
        policy.tta_target = Some(0.99); // effectively disabled
        let report = ClusterManager::new(policy)
            .run(&mut backend, &setup)
            .expect("run completes");
        report.converged_accuracy.expect("completed")
    };

    let bsp = accuracy_for(1.0);
    let hybrid = accuracy_for(0.5);
    // The hybrid run must land in BSP's neighbourhood; real SGD noise on a
    // small problem allows a few points of slack.
    assert!(
        (bsp - hybrid).abs() < 0.10,
        "hybrid {hybrid} should track BSP {bsp}"
    );
    assert!(hybrid > 0.5, "hybrid should have learned: {hybrid}");
}

#[test]
fn wall_clock_asp_beats_bsp_with_straggler() {
    // A real straggler thread slows BSP (barrier) far more than ASP.
    let (train, test) = dataset(9);
    let time_for = |protocol: SyncProtocol| -> f64 {
        let cfg = TrainerConfig::new(4, 8, 0.03, 0.9)
            .with_seed(9)
            .with_straggler(0, Duration::from_millis(2));
        let mut trainer = Trainer::new(
            Network::mlp(8, &[16], 4, 9),
            train.clone(),
            test.clone(),
            cfg,
        );
        let seg = trainer.run_segment(protocol, 80).expect("completes");
        seg.wall_time.as_secs_f64()
    };
    let bsp = time_for(SyncProtocol::Bsp);
    let asp = time_for(SyncProtocol::Asp);
    // BSP pays the 2ms straggler penalty at every barrier round; ASP only
    // on the straggler's own (fewer) steps.
    assert!(
        asp < bsp * 0.75,
        "ASP {asp:.3}s should beat straggled BSP {bsp:.3}s"
    );
}

#[test]
fn measured_staleness_grows_with_worker_count() {
    let (train, test) = dataset(11);
    let staleness_for = |workers: usize| -> f64 {
        let cfg = TrainerConfig::new(workers, 4, 0.02, 0.9).with_seed(11);
        let mut trainer = Trainer::new(
            Network::mlp(8, &[16], 4, 11),
            train.clone(),
            test.clone(),
            cfg,
        );
        let seg = trainer
            .run_segment(SyncProtocol::Asp, 300)
            .expect("completes");
        seg.staleness.mean()
    };
    let s2 = staleness_for(2);
    let s8 = staleness_for(8);
    assert!(
        s8 > s2,
        "staleness should grow with concurrency: 2w {s2} vs 8w {s8}"
    );
    assert!(s8 > 0.5, "8 workers must produce real staleness, got {s8}");
}

#[test]
fn full_policy_pipeline_with_greedy_online_policy() {
    let (train, test) = dataset(13);
    let setup = small_setup(4, 240);
    let mut backend = PsBackend::new(Network::mlp(8, &[16], 4, 13), train, test, 4, 13);
    backend.inject_straggler(3, Duration::from_millis(4));
    let mut policy = SyncSwitchPolicy::new(0.5, 4).with_online(OnlinePolicyKind::Greedy);
    policy.eval_interval = 60;
    policy.detect_chunk = 8;
    policy.tta_target = Some(0.99);
    let report = ClusterManager::new(policy)
        .run(&mut backend, &setup)
        .expect("run completes");
    assert!(report.completed());
    assert_eq!(report.total_steps, 240);
    // The greedy policy reacted to the (permanent) straggler: it switched
    // to ASP early, so ASP ran for more than the planned half.
    assert!(
        report.asp_steps > 120,
        "greedy should have detoured to ASP: asp_steps {}",
        report.asp_steps
    );
    assert!(!report.switches.is_empty());
}

#[test]
fn checkpoint_restart_preserves_training_across_protocols() {
    let (train, test) = dataset(17);
    let cfg = TrainerConfig::new(3, 8, 0.03, 0.9).with_seed(17);
    let mut trainer = Trainer::new(Network::mlp(8, &[16], 4, 17), train, test, cfg);
    trainer
        .run_segment(SyncProtocol::Bsp, 40)
        .expect("bsp segment");
    let ck = trainer.checkpoint();
    let acc_at_ck = trainer.evaluate();

    // Continue with ASP, then roll back and verify state equality.
    trainer
        .run_segment(SyncProtocol::Asp, 60)
        .expect("asp segment");
    trainer.restore(&ck).expect("restore succeeds");
    assert_eq!(trainer.global_step(), 40);
    let acc_restored = trainer.evaluate();
    assert!(
        (acc_at_ck - acc_restored).abs() < 1e-12,
        "restored accuracy must match exactly"
    );
    // Binary round trip through the serialized form also restores.
    let bytes = ck.to_bytes();
    let back = sync_switch_ps::Checkpoint::from_bytes(&bytes).expect("parse");
    trainer.restore(&back).expect("restore from bytes");
    assert_eq!(trainer.global_step(), 40);
}
