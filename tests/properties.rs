//! Cross-crate property-based tests (proptest) of the core invariants.

use proptest::prelude::*;

use sync_switch::prelude::*;
use sync_switch_convergence::converged_accuracy_stats;
use sync_switch_core::{AnalyticOracle, ConfigPolicy, NoiselessOracle};
use sync_switch_workloads::HyperParams;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Analytic converged accuracy is monotone non-decreasing in the BSP
    /// fraction for every setup (the basis for the binary search).
    #[test]
    fn accuracy_monotone_in_bsp_fraction(
        raw in proptest::collection::vec(0.0f64..=1.0, 2..8),
        setup_idx in 0usize..2, // setups 1 and 2 (3 has the divergence cliff)
    ) {
        let setup = [SetupId::One, SetupId::Two][setup_idx];
        let mut fs = raw;
        fs.sort_by(f64::total_cmp);
        let mut prev = f64::NEG_INFINITY;
        for f in fs {
            let s = converged_accuracy_stats(setup, f);
            prop_assert!(!s.diverges);
            prop_assert!(s.mean >= prev - 1e-12);
            prev = s.mean;
        }
    }

    /// Predicted time fraction is monotone increasing in the BSP fraction
    /// and bounded by [1/r, 1].
    #[test]
    fn time_fraction_monotone_and_bounded(f1 in 0.0f64..=1.0, f2 in 0.0f64..=1.0) {
        let calib = CalibrationTargets::for_setup(SetupId::One);
        let (lo, hi) = if f1 <= f2 { (f1, f2) } else { (f2, f1) };
        let t_lo = calib.time_fraction_at(lo);
        let t_hi = calib.time_fraction_at(hi);
        prop_assert!(t_lo <= t_hi + 1e-12);
        prop_assert!(t_lo >= 1.0 / calib.asp_over_bsp_throughput - 1e-12);
        prop_assert!(t_hi <= 1.0 + 1e-12);
    }

    /// The binary search always terminates within M probes, returns a
    /// fraction in [0, 1], and every probe lies strictly between the
    /// current bounds — for arbitrary noise seeds and run counts.
    #[test]
    fn binary_search_invariants(seed in 0u64..10_000, runs in 1usize..6) {
        let setup = ExperimentSetup::one();
        let mut oracle = AnalyticOracle::new(&setup, seed);
        let outcome = BinarySearchTuner::new()
            .with_runs(runs.min(3), runs)
            .search(&mut oracle)
            .expect("search succeeds");
        prop_assert_eq!(outcome.probes.len(), 5);
        prop_assert!((0.0..=1.0).contains(&outcome.timing.switch_fraction));
        for p in &outcome.probes {
            prop_assert!(p.fraction > 0.0 && p.fraction < 1.0);
            prop_assert_eq!(p.accuracies.len() + p.diverged_runs, runs);
        }
        // The result equals the last accepted probe (or 1.0 if none).
        let last_accepted = outcome
            .probes
            .iter()
            .filter(|p| p.accepted)
            .map(|p| p.fraction)
            .fold(1.0f64, f64::min);
        prop_assert_eq!(outcome.timing.switch_fraction, last_accepted);
    }

    /// The noiseless search is idempotent: re-running it returns the same
    /// policy (determinism of the ground truth).
    #[test]
    fn noiseless_search_deterministic(seed in 0u64..1000) {
        let setup = ExperimentSetup::one();
        let run = |s| {
            let mut oracle = NoiselessOracle(AnalyticOracle::new(&setup, s));
            BinarySearchTuner::new()
                .with_target(0.919)
                .search(&mut oracle)
                .expect("search succeeds")
                .timing
                .switch_fraction
        };
        prop_assert_eq!(run(seed), run(seed + 1));
        prop_assert_eq!(run(seed), 0.0625);
    }

    /// Configuration policy scaling laws hold for any cluster size: BSP
    /// global batch and learning rate scale linearly with the active
    /// worker count; ASP always uses the base values.
    #[test]
    fn config_policy_linear_scaling(n in 1usize..64, active_frac in 0.1f64..=1.0) {
        let hyper = HyperParams::resnet_cifar();
        let policy = ConfigPolicy::new(n);
        let active = ((n as f64 * active_frac).ceil() as usize).clamp(1, n);
        let bsp = policy.for_protocol_with_active(&hyper, SyncProtocol::Bsp, active);
        prop_assert_eq!(bsp.global_batch, active * hyper.batch_size);
        prop_assert!((bsp.learning_rate - active as f64 * hyper.learning_rate).abs() < 1e-9);
        prop_assert_eq!(bsp.momentum, hyper.momentum);
        let asp = policy.for_protocol_with_active(&hyper, SyncProtocol::Asp, active);
        prop_assert_eq!(asp.global_batch, hyper.batch_size);
        prop_assert!((asp.learning_rate - hyper.learning_rate).abs() < 1e-9);
    }

    /// Manager invariants hold for arbitrary switch fractions on setup 1:
    /// exact step accounting, monotone eval timeline, and a single planned
    /// switch (when the fraction is interior).
    #[test]
    fn manager_invariants_for_any_fraction(frac_pct in 0u32..=100, seed in 0u64..500) {
        let fraction = f64::from(frac_pct) / 100.0;
        let setup = ExperimentSetup::one();
        let mut backend = SimBackend::new(&setup, seed);
        let report = ClusterManager::new(SyncSwitchPolicy::new(fraction, 8))
            .run(&mut backend, &setup)
            .expect("valid policy");
        prop_assert!(report.completed());
        prop_assert!(report.total_steps >= 64_000);
        // BSP budget respected within one BSP round (8 units).
        let budget = (fraction * 64_000.0).round() as u64;
        prop_assert!(report.bsp_steps >= budget);
        prop_assert!(report.bsp_steps <= budget + 8);
        let expected_switches = usize::from(fraction > 0.0 && fraction < 1.0);
        prop_assert_eq!(report.switches.len(), expected_switches);
        for w in report.evals.windows(2) {
            prop_assert!(w[1].time_s >= w[0].time_s);
        }
    }
}
