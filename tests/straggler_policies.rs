//! Integration tests of transient-straggler handling (paper §VI-B3).

use sync_switch::prelude::*;
use sync_switch_core::SimBackend as Backend;

fn run(
    setup: &ExperimentSetup,
    online: OnlinePolicyKind,
    scenario: StragglerScenario,
    seed: u64,
) -> TrainingReport {
    let policy = SyncSwitchPolicy::paper_policy(setup).with_online(online);
    let mut backend = Backend::new(setup, seed).with_scenario(scenario);
    ClusterManager::new(policy)
        .run(&mut backend, setup)
        .expect("valid policy")
}

fn mean<I: IntoIterator<Item = f64>>(xs: I) -> f64 {
    let v: Vec<f64> = xs.into_iter().collect();
    v.iter().sum::<f64>() / v.len() as f64
}

#[test]
fn elastic_policy_preserves_accuracy_and_beats_baseline() {
    let setup = ExperimentSetup::one();
    let seeds = [1u64, 2, 3];
    let scenario = || StragglerScenario::moderate(60.0, 150.0);

    let baseline: Vec<TrainingReport> = seeds
        .iter()
        .map(|&s| run(&setup, OnlinePolicyKind::Baseline, scenario(), s))
        .collect();
    let elastic: Vec<TrainingReport> = seeds
        .iter()
        .map(|&s| run(&setup, OnlinePolicyKind::Elastic, scenario(), s))
        .collect();

    let base_acc = mean(baseline.iter().map(|r| r.converged_accuracy.unwrap()));
    let elastic_acc = mean(elastic.iter().map(|r| r.converged_accuracy.unwrap()));
    assert!(
        (base_acc - elastic_acc).abs() < 0.006,
        "elastic must preserve accuracy: {base_acc} vs {elastic_acc}"
    );

    let base_t = mean(baseline.iter().map(|r| r.total_time_s));
    let elastic_t = mean(elastic.iter().map(|r| r.total_time_s));
    assert!(
        elastic_t < base_t,
        "elastic should be faster: {elastic_t} vs {base_t} (paper: 1.11x)"
    );
    // Both injected stragglers were evicted, then the cluster restored.
    for r in &elastic {
        let evicted: Vec<usize> = r.removed_workers.iter().map(|&(_, w)| w).collect();
        assert!(
            evicted.contains(&0) && evicted.contains(&1),
            "evicted {evicted:?}"
        );
    }
}

#[test]
fn greedy_policy_costs_accuracy() {
    let setup = ExperimentSetup::one();
    let scenario = || StragglerScenario::mild(150.0);
    let baseline = run(&setup, OnlinePolicyKind::Baseline, scenario(), 5);
    let greedy = run(&setup, OnlinePolicyKind::Greedy, scenario(), 5);
    // Two extra switches (BSP→ASP→BSP) around the episode.
    assert!(
        greedy.switches.len() >= 3,
        "greedy should add switches: {}",
        greedy.switches.len()
    );
    let base_acc = baseline.converged_accuracy.unwrap();
    let greedy_acc = greedy.converged_accuracy.unwrap();
    assert!(
        base_acc - greedy_acc > 0.008,
        "greedy costs accuracy (paper ~2%): {base_acc} vs {greedy_acc}"
    );
}

#[test]
fn straggler_free_runs_are_untouched_by_online_policies() {
    // With no stragglers, all three online policies behave identically in
    // switches, evictions, and accuracy.
    let setup = ExperimentSetup::one();
    for online in OnlinePolicyKind::all() {
        let r = run(&setup, online, StragglerScenario::none(), 7);
        assert_eq!(r.switches.len(), 1, "{online}: only the planned switch");
        assert!(r.removed_workers.is_empty(), "{online}: no evictions");
        let acc = r.converged_accuracy.unwrap();
        assert!((acc - 0.919).abs() < 0.012, "{online}: accuracy {acc}");
    }
}

#[test]
fn stragglers_after_the_switch_are_harmless() {
    // An episode landing in the ASP phase should not trigger any online
    // reaction and should barely affect total time (paper: once in ASP,
    // the job is immune).
    let setup = ExperimentSetup::one();
    let late = StragglerScenario {
        name: "late".into(),
        episodes: vec![sync_switch_cluster::StragglerEpisode {
            worker: 2,
            start_s: 1_200.0, // ASP phase (switch ends ~700s incl. init)
            duration_s: 100.0,
            added_latency_s: 0.030,
        }],
    };
    let clean = run(
        &setup,
        OnlinePolicyKind::Elastic,
        StragglerScenario::none(),
        9,
    );
    let slowed = run(&setup, OnlinePolicyKind::Elastic, late, 9);
    assert!(
        slowed.removed_workers.is_empty(),
        "no eviction after switch"
    );
    assert_eq!(slowed.switches.len(), 1);
    let ratio = slowed.total_time_s / clean.total_time_s;
    assert!(
        ratio < 1.05,
        "late straggler should cost <5% time, cost {ratio}"
    );
}

#[test]
fn baseline_pays_for_stragglers_under_bsp() {
    let setup = ExperimentSetup::one();
    let clean = run(
        &setup,
        OnlinePolicyKind::Baseline,
        StragglerScenario::none(),
        11,
    );
    let slowed = run(
        &setup,
        OnlinePolicyKind::Baseline,
        StragglerScenario::moderate(60.0, 150.0),
        11,
    );
    assert!(
        slowed.total_time_s > clean.total_time_s * 1.05,
        "BSP-phase stragglers must cost the baseline time: {} vs {}",
        slowed.total_time_s,
        clean.total_time_s
    );
}
