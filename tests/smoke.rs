//! Workspace smoke test: constructs every public training backend through
//! the facade and runs one tiny end-to-end job on each. This guards the
//! workspace wiring itself — manifests, facade re-exports, and the serde
//! round-trip of reports — against future drift: if a `prelude` item stops
//! resolving or a crate drops out of the dependency graph, this file stops
//! compiling.

use sync_switch::prelude::*;
use sync_switch_nn::{Dataset, Network};
use sync_switch_workloads::LrSchedule;

/// The simulator backend end-to-end: paper setup 1 at full scale (cheap in
/// virtual time), with the paper's own policy.
#[test]
fn sim_backend_runs_paper_policy() {
    let setup = ExperimentSetup::one();
    let policy = SyncSwitchPolicy::paper_policy(&setup);
    let mut backend = SimBackend::new(&setup, 42);
    let report = ClusterManager::new(policy)
        .run(&mut backend, &setup)
        .expect("sim run completes");
    assert!(report.completed());
    assert_eq!(report.total_steps, setup.workload.hyper.total_steps);
    assert!(report.converged_accuracy.expect("converged") > 0.90);

    // The report round-trips through the JSON layer (guards the serde
    // derive wiring for every type the report embeds).
    let json = serde_json::to_string(&report).expect("report serializes");
    let back: TrainingReport = serde_json::from_str(&json).expect("report deserializes");
    assert_eq!(back, report);
}

/// The real parameter-server backend end-to-end: a laptop-scale job on
/// synthetic blobs with real worker threads and one BSP→ASP switch.
#[test]
fn ps_backend_runs_tiny_job() {
    let (train, test) = Dataset::gaussian_blobs(4, 80, 8, 0.35, 9).split(0.25);
    let mut setup = ExperimentSetup::one();
    setup.cluster_size = 2;
    setup.workload.hyper.total_steps = 80;
    setup.workload.hyper.batch_size = 8;
    setup.workload.hyper.learning_rate = 0.04;
    setup.workload.hyper.lr_schedule = LrSchedule::piecewise(vec![(40, 0.1)]);

    let mut backend = PsBackend::new(Network::mlp(8, &[12], 4, 9), train, test, 2, 9);
    let mut policy = SyncSwitchPolicy::new(0.25, 2);
    policy.eval_interval = 40;
    policy.tta_target = Some(0.5);
    let report = ClusterManager::new(policy)
        .run(&mut backend, &setup)
        .expect("ps run completes");
    assert!(report.completed());
    assert_eq!(report.total_steps, 80);
    assert_eq!(report.switches.len(), 1);
}

/// Every facade module re-export resolves and the prelude covers the types
/// the quick-start needs.
#[test]
fn facade_reexports_resolve() {
    // Touch one item from each re-exported module so the paths stay live.
    let _ = sync_switch::tensor::Tensor::zeros(&[2, 2]);
    let _ = sync_switch::sim::SimTime::from_secs(1.0);
    let _ = sync_switch::nn::Network::mlp(4, &[4], 2, 0);
    let _ = sync_switch::workloads::SetupId::all();
    let _ = sync_switch::convergence::MomentumScaling::Baseline;
    let _ = sync_switch::cluster::StragglerScenario::none();
    let _ = sync_switch::core::SyncProtocol::Bsp;
    let _ = sync_switch::ps::TrainerConfig::new(2, 4, 0.1, 0.9);

    // Prelude items used as values/types.
    let _tuner = BinarySearchTuner::new();
    let _targets = CalibrationTargets::for_setup(SetupId::One);
    let _rng = DetRng::new(7);
    let _scenario = StragglerScenario::none();
    let _sim: fn(&ExperimentSetup, u64) -> ClusterSim = |s, seed| ClusterSim::new(s, seed);
}
