//! Integration tests of the offline timing-policy search (Algorithm 1)
//! running against *full simulated trainings* (not the analytic oracle).

use sync_switch::prelude::*;
use sync_switch_core::SimOracle;

#[test]
fn full_pipeline_search_finds_paper_policy_setup1() {
    let setup = ExperimentSetup::one();
    let mut oracle = SimOracle::new(&setup, 1234);
    let outcome = BinarySearchTuner::new()
        .with_runs(3, 3)
        .search(&mut oracle)
        .expect("search succeeds");
    assert_eq!(
        outcome.timing.switch_fraction, 0.0625,
        "search should find P1 = 6.25%"
    );
    // Five probes at the dyadic fractions.
    let fractions: Vec<f64> = outcome.probes.iter().map(|p| p.fraction).collect();
    assert_eq!(fractions, vec![0.5, 0.25, 0.125, 0.0625, 0.03125]);
    // The last probe (below the knee) must be rejected.
    assert!(!outcome.probes[4].accepted);
    // Search cost: 3 pilots + 15 trials ≈ 7.6x BSP (paper Table II: 7.62X
    // for the (No,3,3) setting).
    assert!(
        (6.0..9.5).contains(&outcome.search_cost_vs_bsp),
        "cost {}",
        outcome.search_cost_vs_bsp
    );
}

#[test]
fn full_pipeline_search_rejects_divergent_probes_setup3() {
    let setup = ExperimentSetup::three();
    let mut oracle = SimOracle::new(&setup, 77);
    let outcome = BinarySearchTuner::new()
        .with_runs(1, 1)
        .search(&mut oracle)
        .expect("search succeeds");
    assert_eq!(
        outcome.timing.switch_fraction, 0.5,
        "setup 3 ground truth is the first LR decay"
    );
    for probe in &outcome.probes {
        if probe.fraction < 0.5 {
            assert_eq!(probe.diverged_runs, 1, "sub-50% probes diverge");
            assert!(!probe.accepted);
        }
    }
}

#[test]
fn recurring_search_skips_pilots_and_is_cheaper() {
    let setup = ExperimentSetup::one();
    let mut fresh = SimOracle::new(&setup, 55);
    let cold = BinarySearchTuner::new()
        .with_runs(3, 3)
        .search(&mut fresh)
        .expect("search succeeds");
    let mut warm_oracle = SimOracle::new(&setup, 56);
    let warm = BinarySearchTuner::new()
        .with_runs(0, 3)
        .with_target(cold.target_accuracy)
        .search(&mut warm_oracle)
        .expect("search succeeds");
    assert!(
        warm.search_cost_vs_bsp < cold.search_cost_vs_bsp - 2.0,
        "recurring search should skip ~3 BSP pilots: {} vs {}",
        warm.search_cost_vs_bsp,
        cold.search_cost_vs_bsp
    );
}
