//! End-to-end integration: the full Sync-Switch pipeline on all three
//! experiment setups, checked against the paper's calibration endpoints.

use sync_switch::prelude::*;

fn run(setup: &ExperimentSetup, policy: SyncSwitchPolicy, seed: u64) -> TrainingReport {
    let mut backend = SimBackend::new(setup, seed);
    ClusterManager::new(policy)
        .run(&mut backend, setup)
        .expect("valid policy")
}

fn mean<I: IntoIterator<Item = f64>>(xs: I) -> f64 {
    let v: Vec<f64> = xs.into_iter().collect();
    v.iter().sum::<f64>() / v.len() as f64
}

#[test]
fn setup1_reproduces_headline_numbers() {
    let setup = ExperimentSetup::one();
    let seeds = [1u64, 2, 3, 4, 5];

    let bsp: Vec<TrainingReport> = seeds
        .iter()
        .map(|&s| run(&setup, SyncSwitchPolicy::static_bsp(8), s))
        .collect();
    let asp: Vec<TrainingReport> = seeds
        .iter()
        .map(|&s| run(&setup, SyncSwitchPolicy::static_asp(8), s))
        .collect();
    let ss: Vec<TrainingReport> = seeds
        .iter()
        .map(|&s| run(&setup, SyncSwitchPolicy::paper_policy(&setup), s))
        .collect();

    // Converged accuracy: BSP 0.919, ASP 0.892, Sync-Switch ≈ BSP.
    let bsp_acc = mean(bsp.iter().map(|r| r.converged_accuracy.unwrap()));
    let asp_acc = mean(asp.iter().map(|r| r.converged_accuracy.unwrap()));
    let ss_acc = mean(ss.iter().map(|r| r.converged_accuracy.unwrap()));
    assert!((bsp_acc - 0.919).abs() < 0.008, "BSP accuracy {bsp_acc}");
    assert!((asp_acc - 0.892).abs() < 0.010, "ASP accuracy {asp_acc}");
    assert!(bsp_acc - ss_acc < 0.010, "SS {ss_acc} vs BSP {bsp_acc}");
    assert!(ss_acc - asp_acc > 0.015, "SS {ss_acc} vs ASP {asp_acc}");

    // Time: SS ≈ 20% of BSP (paper 19.5%), ASP ≈ 15% (paper 15.2%).
    let bsp_t = mean(bsp.iter().map(|r| r.total_time_s));
    let ss_frac = mean(ss.iter().map(|r| r.total_time_s)) / bsp_t;
    let asp_frac = mean(asp.iter().map(|r| r.total_time_s)) / bsp_t;
    assert!(
        (0.15..0.27).contains(&ss_frac),
        "SS time fraction {ss_frac}"
    );
    assert!(
        (0.12..0.20).contains(&asp_frac),
        "ASP time fraction {asp_frac}"
    );
    assert!(asp_frac < ss_frac, "ASP must be fastest");

    // Switch overhead ~1.7% of the run (paper §VI-C2).
    let ovh = mean(ss.iter().map(|r| r.overhead_fraction()));
    assert!((0.005..0.05).contains(&ovh), "overhead fraction {ovh}");
}

#[test]
fn setup2_reproduces_headline_numbers() {
    let setup = ExperimentSetup::two();
    let bsp = run(&setup, SyncSwitchPolicy::static_bsp(8), 10);
    let asp = run(&setup, SyncSwitchPolicy::static_asp(8), 10);
    let ss = run(&setup, SyncSwitchPolicy::paper_policy(&setup), 10);

    assert!((bsp.converged_accuracy.unwrap() - 0.746).abs() < 0.012);
    assert!((asp.converged_accuracy.unwrap() - 0.708).abs() < 0.015);
    let ss_frac = ss.total_time_s / bsp.total_time_s;
    // Paper: 60.1% of BSP time.
    assert!((0.45..0.72).contains(&ss_frac), "setup2 SS time {ss_frac}");
    assert_eq!(ss.bsp_steps, 16_000); // 12.5% of 128k
}

#[test]
fn setup3_divergence_and_recovery() {
    let setup = ExperimentSetup::three();
    // Pure ASP diverges early (before the first LR decay).
    for seed in [20u64, 21, 22] {
        let asp = run(&setup, SyncSwitchPolicy::static_asp(16), seed);
        assert!(asp.diverged_at.is_some(), "seed {seed} should diverge");
        assert!(
            asp.diverged_at.unwrap() < 32_000,
            "divergence should precede the first decay"
        );
        assert!(asp.converged_accuracy.is_none());
    }
    // Switching below 50% also diverges.
    let early = run(&setup, SyncSwitchPolicy::new(0.25, 16), 23);
    assert!(early.diverged_at.is_some());
    // The paper's P3 (50%) completes at BSP-level accuracy.
    let ss = run(&setup, SyncSwitchPolicy::paper_policy(&setup), 23);
    assert!(ss.completed());
    let acc = ss.converged_accuracy.unwrap();
    assert!((acc - 0.922).abs() < 0.010, "setup3 SS accuracy {acc}");
    let bsp = run(&setup, SyncSwitchPolicy::static_bsp(16), 23);
    let frac = ss.total_time_s / bsp.total_time_s;
    assert!((0.45..0.62).contains(&frac), "setup3 SS time {frac}");
}

#[test]
fn reports_are_internally_consistent() {
    let setup = ExperimentSetup::one();
    let r = run(&setup, SyncSwitchPolicy::paper_policy(&setup), 30);
    // Step accounting.
    assert!(r.bsp_steps + r.asp_steps >= r.total_steps);
    assert_eq!(r.bsp_steps, 4_000);
    // Evals are monotone in step and time, covering [0, total].
    assert_eq!(r.evals.first().unwrap().step, 0);
    assert!(r.evals.last().unwrap().step >= 64_000);
    for w in r.evals.windows(2) {
        assert!(w[1].step > w[0].step);
        assert!(w[1].time_s >= w[0].time_s);
    }
    // The switch record sits at the policy point with real overhead.
    assert_eq!(r.switches.len(), 1);
    assert_eq!(r.switches[0].from, SyncProtocol::Bsp);
    assert_eq!(r.switches[0].to, SyncProtocol::Asp);
    assert!(r.switches[0].overhead_s > 10.0);
    // Loss ends far below its start and the curve is finite throughout.
    assert!(r.final_loss < 0.1);
    assert!(r.evals.iter().all(|e| e.loss.is_finite()));
}

#[test]
fn time_to_accuracy_speedups_match_table1_shape() {
    let setup = ExperimentSetup::one();
    let mut speedups = Vec::new();
    for seed in [40u64, 41, 42] {
        let bsp = run(&setup, SyncSwitchPolicy::static_bsp(8), seed);
        let ss = run(&setup, SyncSwitchPolicy::paper_policy(&setup), seed);
        if let (Some(b), Some(s)) = (bsp.tta_s, ss.tta_s) {
            speedups.push(b / s);
        }
    }
    assert!(!speedups.is_empty(), "TTA must be reached");
    let m = mean(speedups.iter().copied());
    assert!((2.5..6.0).contains(&m), "TTA speedup {m} (paper 3.99X)");
}

#[test]
fn asp_never_reaches_bsp_level_accuracy() {
    // Table I lists TTA-vs-ASP as N/A: ASP never crosses the threshold.
    let setup = ExperimentSetup::one();
    for seed in [50u64, 51] {
        let asp = run(&setup, SyncSwitchPolicy::static_asp(8), seed);
        assert!(
            asp.tta_s.is_none(),
            "ASP should not reach the BSP threshold"
        );
    }
}

#[test]
fn deterministic_given_seed() {
    let setup = ExperimentSetup::one();
    let a = run(&setup, SyncSwitchPolicy::paper_policy(&setup), 99);
    let b = run(&setup, SyncSwitchPolicy::paper_policy(&setup), 99);
    assert_eq!(a.total_time_s, b.total_time_s);
    assert_eq!(a.converged_accuracy, b.converged_accuracy);
    assert_eq!(a.evals.len(), b.evals.len());
}
