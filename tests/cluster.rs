//! Multi-process cluster tests: real `ps-serve` and `ps-worker` OS
//! processes over real TCP, orchestrated by
//! [`sync_switch::harness::ClusterHarness`].
//!
//! The process-spawning tests are gated behind `PS_CLUSTER_TEST=1` (the CI
//! `cluster` stage sets it) so the tier-1 `cargo test` sweep stays fast and
//! hermetic; without the variable they print a skip notice and pass. The
//! spec round-trip tests always run.

use std::net::TcpListener;
use std::path::PathBuf;
use std::time::Duration;

use sync_switch::deploy::{ClusterSpec, ControllerSpec, SegmentSpec, WorkerReport};
use sync_switch::harness::ClusterHarness;
use sync_switch::workloads::TrainableKind;

/// Whether the gated multi-process tests should run.
fn cluster_tests_enabled(test: &str) -> bool {
    if std::env::var("PS_CLUSTER_TEST").as_deref() == Ok("1") {
        true
    } else {
        eprintln!("skipping {test}: set PS_CLUSTER_TEST=1 to run multi-process cluster tests");
        false
    }
}

/// `n` distinct loopback addresses that are free right now: bind them all
/// simultaneously, record, release. A later `ps-serve` re-binds them
/// (SO_REUSEADDR makes the quick re-bind safe); the race window against
/// other processes grabbing a freed port is the standard price of
/// ephemeral-port tests and fails loudly, not flakily silent.
fn free_addrs(n: usize) -> Vec<String> {
    let listeners: Vec<TcpListener> = (0..n)
        .map(|_| TcpListener::bind("127.0.0.1:0").expect("bind probe"))
        .collect();
    listeners
        .iter()
        .map(|l| l.local_addr().expect("addr").to_string())
        .collect()
}

fn harness(spec: ClusterSpec, dir_tag: &str) -> ClusterHarness {
    let dir = PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join(dir_tag);
    let _ = std::fs::remove_dir_all(&dir);
    ClusterHarness::new(
        spec,
        env!("CARGO_BIN_EXE_ps-serve"),
        env!("CARGO_BIN_EXE_ps-worker"),
        dir,
    )
    .expect("harness")
}

fn assert_all_converged(reports: &[WorkerReport], segments: usize) {
    for (w, r) in reports.iter().enumerate() {
        assert_eq!(r.segments.len(), segments, "worker {w} segment count");
        assert!(r.finite, "worker {w} saw non-finite parameters");
        assert!(
            r.converged,
            "worker {w} did not converge: loss {} vs gate {}",
            r.final_loss, r.loss_threshold
        );
    }
}

/// The cluster-wide telemetry contract, asserted after a successful run:
/// every `ps-serve` left its periodic metrics snapshot behind (the file
/// that survives a SIGKILL), every worker embedded a live wire scrape of
/// the full tier in its report and dumped its Chrome trace, and the
/// harness can merge all of it into one `cluster-metrics.json`.
fn assert_cluster_telemetry(h: &ClusterHarness, reports: &[WorkerReport]) {
    let servers = h.spec().servers.len();
    for i in 0..servers {
        let path = h.metrics_path(i);
        // The dump is periodic, so the file lags live state by up to one
        // interval — a fast run can finish before the first post-traffic
        // dump lands. Poll a few intervals before judging the content.
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        let snap = loop {
            let snap = std::fs::read_to_string(&path).unwrap_or_else(|e| {
                panic!("server {i} wrote no metrics snapshot at {path:?}: {e}")
            });
            // 0x01 is PUSH_SHARD — a server that served training must have
            // counted pushes in its per-opcode table.
            if snap.contains("\"0x01\"") {
                break snap;
            }
            assert!(
                std::time::Instant::now() < deadline,
                "server {i} snapshot still counts no pushes: {snap}"
            );
            std::thread::sleep(Duration::from_millis(50));
        };
        assert!(
            snap.contains(&format!("\"server\":{i}")),
            "snapshot {path:?} is not server {i}'s: {snap}"
        );
    }
    for (w, r) in reports.iter().enumerate() {
        assert_eq!(
            r.server_stats.len(),
            servers,
            "worker {w} scraped {} of {servers} servers",
            r.server_stats.len()
        );
        for s in &r.server_stats {
            assert!(
                s.push_requests > 0 && s.total_requests > s.push_requests,
                "worker {w} scraped an implausible summary from server {}: {s:?}",
                s.server
            );
        }
        let trace_path = h.worker_trace_path(w);
        let trace = std::fs::read_to_string(&trace_path)
            .unwrap_or_else(|e| panic!("worker {w} wrote no trace at {trace_path:?}: {e}"));
        assert!(trace.contains("\"traceEvents\""), "not a Chrome trace");
        assert!(
            trace.contains("\"step\""),
            "worker {w} trace records no training steps"
        );
    }
    let merged_path = h
        .write_cluster_metrics(reports)
        .expect("merge cluster metrics");
    let merged = std::fs::read_to_string(merged_path).expect("read merged metrics");
    assert!(merged.contains("\"servers\"") && merged.contains("\"workers\""));
    assert!(merged.contains("\"push_requests\""));
}

/// The happy path *and* the readiness handshake in one scenario: workers
/// are spawned before any server exists, keep re-dialing, and the run
/// converges under BSP then ASP once the tier comes up late. The adaptive
/// sync controller rides along: every worker runs its segments through the
/// controller and must record its decisions (with reasons) in the report.
#[test]
fn cluster_converges_with_late_binding_servers() {
    if !cluster_tests_enabled("cluster_converges_with_late_binding_servers") {
        return;
    }
    let spec = ClusterSpec::standard(TrainableKind::MlpBlobs, free_addrs(2), 11)
        // The barrier threshold is floored so on this homogeneous clean
        // tier the promote decision hinges on loss stability and wire
        // health — guaranteeing at least one decision fires per worker.
        .with_controller(ControllerSpec {
            promote_barrier_frac: 0.0,
            ..ControllerSpec::default()
        });
    let mut h = harness(spec, "late-bind");
    // Workers first: nothing is listening yet.
    h.spawn_workers(2).expect("spawn workers");
    std::thread::sleep(Duration::from_millis(300));
    h.spawn_servers().expect("spawn servers");
    h.wait_servers_ready(Duration::from_secs(10))
        .expect("servers ready");

    // ≥2 ps-serve + ≥2 ps-worker real OS processes.
    let pids = h.child_pids();
    assert_eq!(pids.len(), 4);
    for pid in &pids {
        assert!(
            PathBuf::from(format!("/proc/{pid}")).exists(),
            "child {pid} is not a live OS process"
        );
    }

    let reports = h.wait_workers(Duration::from_secs(120)).expect("reports");
    assert_eq!(reports.len(), 2);
    assert_all_converged(&reports, 2);
    for r in &reports {
        assert_eq!(r.segments[0].protocol, "bsp");
        assert_eq!(r.segments[1].protocol, "asp");
        assert!(r.segments.iter().all(|s| s.steps > 0));
    }
    // The controller closed the loop in every worker process: one decision
    // per segment, each carrying a non-empty reason, and on this clean
    // stable tier the post-warmup decision promotes BSP→ASP.
    for (w, r) in reports.iter().enumerate() {
        assert!(
            !r.controller_decisions.is_empty(),
            "worker {w} recorded no controller decisions"
        );
        for d in &r.controller_decisions {
            assert!(
                !d.reason.is_empty(),
                "worker {w} decision {} has no reason",
                d.segment
            );
        }
        assert!(
            r.controller_decisions.iter().any(|d| d.switched()),
            "worker {w} never switched protocol; decisions: {:?}",
            r.controller_decisions
        );
    }
    // The switch landed in the worker traces as a protocol_switch event.
    let combined: String = (0..reports.len())
        .map(|w| std::fs::read_to_string(h.worker_trace_path(w)).unwrap_or_default())
        .collect();
    assert!(
        combined.contains("\"protocol_switch\""),
        "no worker trace records the controller's switch"
    );
    assert_cluster_telemetry(&h, &reports);

    // Leak-free teardown: shutdown reaps every child.
    let server_pids = h.child_pids();
    h.shutdown();
    for pid in server_pids {
        assert!(
            !PathBuf::from(format!("/proc/{pid}")).exists(),
            "child {pid} leaked past shutdown"
        );
    }
}

/// The crash drill: SIGKILL one server mid-run, respawn it (as a cluster
/// manager would), and pin that the workers heal the fresh instance via
/// the supervisor's nonce-change detection and still converge.
#[test]
fn cluster_survives_mid_run_server_sigkill() {
    if !cluster_tests_enabled("cluster_survives_mid_run_server_sigkill") {
        return;
    }
    let mut spec = ClusterSpec::standard(TrainableKind::MlpBlobs, free_addrs(2), 23);
    // Stretch the run so the kill lands mid-training: ~15 ms per step puts
    // the BSP segment alone around 3 s of wall time.
    spec.step_delay_ms = 15;
    spec.segments = vec![SegmentSpec::bsp(200), SegmentSpec::asp(150)];
    let mut h = harness(spec, "sigkill");
    h.spawn_servers().expect("spawn servers");
    h.wait_servers_ready(Duration::from_secs(10))
        .expect("servers ready");
    h.spawn_workers(2).expect("spawn workers");

    // Let training get well underway, then kill server 0 outright.
    std::thread::sleep(Duration::from_millis(1_500));
    h.sigkill_server(0);
    std::thread::sleep(Duration::from_millis(750));
    h.respawn_server(0).expect("respawn");

    let reports = h.wait_workers(Duration::from_secs(150)).expect("reports");
    assert_eq!(reports.len(), 2);
    assert_all_converged(&reports, 2);
    let healed: u64 = reports.iter().map(|r| r.healed_servers).sum();
    assert!(
        healed >= 1,
        "no worker healed the respawned server — the kill missed the run"
    );
    let retried: u64 = reports
        .iter()
        .flat_map(|r| &r.segments)
        .map(|s| s.crash_retries)
        .sum();
    assert!(retried >= 1, "no segment was rolled back and re-run");
    assert_cluster_telemetry(&h, &reports);
    // The crash itself must be visible in the telemetry: some worker's
    // supervisor observed the respawned instance (nonce change) and traced
    // the kill/heal pair.
    let combined: String = (0..reports.len())
        .map(|w| std::fs::read_to_string(h.worker_trace_path(w)).unwrap_or_default())
        .collect();
    assert!(
        combined.contains("\"server_heal\""),
        "no worker trace records the heal of the respawned server"
    );
}

// ---- always-on spec units (no processes) ----

#[test]
fn spec_json_round_trips_with_every_workload() {
    for kind in TrainableKind::all() {
        let spec = ClusterSpec::standard(kind, vec!["127.0.0.1:7701".into()], 3);
        let parsed = ClusterSpec::from_json(&spec.to_json()).expect("round trip");
        assert_eq!(parsed, spec);
        assert_eq!(parsed.workload_kind().unwrap(), kind);
    }
}

#[test]
fn spec_rejects_malformed_json_and_bad_layouts() {
    assert!(ClusterSpec::from_json("{not json").is_err());
    assert!(ClusterSpec::from_json("{}").is_err());
    let mut spec = ClusterSpec::standard(TrainableKind::MlpBlobs, free_addrs(1), 3);
    spec.shards = 0;
    assert!(ClusterSpec::from_json(&spec.to_json()).is_err());
}

#[test]
fn harness_refuses_an_invalid_spec() {
    let mut spec = ClusterSpec::standard(TrainableKind::MlpBlobs, vec!["bogus".into()], 3);
    spec.workload = "mlp_blobs".into();
    let dir = PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join("invalid-spec");
    let err = ClusterHarness::new(spec, "ps-serve", "ps-worker", dir).unwrap_err();
    assert_eq!(err.kind(), std::io::ErrorKind::InvalidInput);
}
