//! # Sync-Switch
//!
//! A Rust reproduction of **"Sync-Switch: Hybrid Parameter Synchronization
//! for Distributed Deep Learning"** (Li, Mangoubi, Xu, Guo — ICDCS 2021).
//!
//! Sync-Switch trains the early portion of a distributed deep-learning job
//! with Bulk Synchronous Parallel (BSP) synchronization and the remainder
//! with Asynchronous Parallel (ASP), combining BSP's converged accuracy with
//! ASP's throughput. This workspace implements the full system: the policy
//! engine (protocol / timing / configuration / straggler-aware online
//! policies), a real multi-threaded parameter server, a neural-network
//! training substrate, a discrete-event cluster simulator, a staleness-aware
//! convergence surrogate, and a benchmark harness that regenerates every
//! table and figure of the paper's evaluation.
//!
//! This crate is a facade that re-exports the workspace members under short
//! module names.
//!
//! # Quick start
//!
//! ```
//! use sync_switch::prelude::*;
//!
//! // Run Sync-Switch on the paper's experiment setup 1 (ResNet32/CIFAR-10,
//! // 8 workers) with the policy the paper derived for it (switch at 6.25%).
//! let setup = ExperimentSetup::one();
//! let policy = SyncSwitchPolicy::paper_policy(&setup);
//! let mut backend = SimBackend::new(&setup, 42);
//! let report = ClusterManager::new(policy).run(&mut backend, &setup).unwrap();
//! assert!(report.converged_accuracy.unwrap() > 0.90);
//! ```

pub mod deploy;
pub mod harness;
pub mod ps_backend;

pub use sync_switch_cluster as cluster;
pub use sync_switch_convergence as convergence;
pub use sync_switch_core as core;
pub use sync_switch_nn as nn;
pub use sync_switch_ps as ps;
pub use sync_switch_sim as sim;
pub use sync_switch_tensor as tensor;
pub use sync_switch_workloads as workloads;

/// Commonly used items, re-exported for convenience.
pub mod prelude {
    pub use crate::ps_backend::PsBackend;
    pub use sync_switch_cluster::{ClusterSim, StragglerScenario};
    pub use sync_switch_convergence::TrajectoryModel;
    pub use sync_switch_core::{
        BinarySearchTuner, ClusterManager, ConfigPolicy, OnlinePolicyKind, SimBackend,
        SyncProtocol, SyncSwitchPolicy, TimingPolicy, TrainingBackend, TrainingReport,
    };
    pub use sync_switch_sim::{DetRng, SimTime};
    pub use sync_switch_workloads::{CalibrationTargets, ExperimentSetup, SetupId, Workload};
}
