//! A [`TrainingBackend`] over the real multi-threaded parameter server.
//!
//! This is the laptop-scale execution path: the same `ClusterManager` and
//! policies that drive the cluster simulator drive real worker threads,
//! real BSP barriers, and real stale gradients from
//! [`sync_switch_ps::Trainer`].

use std::time::Duration;

use sync_switch_convergence::MomentumScaling;
use sync_switch_core::{AdjustedConfig, BackendChunk, CoreError, TrainingBackend};
use sync_switch_nn::{Dataset, Network};
use sync_switch_ps::{PsError, ServerTopology, Trainer, TrainerConfig};
use sync_switch_sim::SimTime;
use sync_switch_workloads::SyncProtocol;

/// Drives a real in-process parameter server under the Sync-Switch policy
/// engine.
///
/// Time is wall-clock: `now()` reports the accumulated wall time of
/// executed segments and switches, expressed as [`SimTime`].
///
/// # Example
///
/// ```
/// use sync_switch::ps_backend::PsBackend;
/// use sync_switch_core::{ClusterManager, SyncSwitchPolicy};
/// use sync_switch_nn::{Dataset, Network};
/// use sync_switch_workloads::ExperimentSetup;
///
/// let data = Dataset::gaussian_blobs(4, 80, 8, 0.35, 7);
/// let (train, test) = data.split(0.25);
/// let mut setup = ExperimentSetup::one();
/// setup.cluster_size = 4;
/// setup.workload.hyper.total_steps = 120;
/// setup.workload.hyper.batch_size = 8;
/// setup.workload.hyper.learning_rate = 0.04;
/// setup.workload.hyper.lr_schedule =
///     sync_switch_workloads::LrSchedule::piecewise(vec![(60, 0.1)]);
/// let mut backend = PsBackend::new(Network::mlp(8, &[16], 4, 7), train, test, 4, 7);
/// let mut policy = SyncSwitchPolicy::new(0.25, 4);
/// policy.eval_interval = 40;
/// policy.tta_target = Some(0.60);
/// let report = ClusterManager::new(policy).run(&mut backend, &setup).unwrap();
/// assert!(report.completed());
/// assert_eq!(report.total_steps, 120);
/// ```
pub struct PsBackend {
    trainer: Trainer,
    elapsed: SimTime,
    diverged_at: Option<u64>,
    workers: usize,
}

impl std::fmt::Debug for PsBackend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PsBackend")
            .field("workers", &self.workers)
            .field("step", &self.trainer.global_step())
            .finish()
    }
}

impl PsBackend {
    /// Creates a backend training `model` on `train`/`test` with `workers`
    /// worker threads on the default single in-process parameter store.
    pub fn new(model: Network, train: Dataset, test: Dataset, workers: usize, seed: u64) -> Self {
        Self::with_topology(model, train, test, workers, seed, ServerTopology::single())
    }

    /// Creates a backend whose parameter-server tier uses `topology` —
    /// multi-server sharding and, through
    /// [`ServerTopology::with_transport`], the channel or TCP wire backend.
    /// The policy engine runs unchanged; the wire cost it pays surfaces in
    /// `TrainingReport::transport_wire_s`.
    pub fn with_topology(
        model: Network,
        train: Dataset,
        test: Dataset,
        workers: usize,
        seed: u64,
        topology: ServerTopology,
    ) -> Self {
        // Placeholder hyper-parameters; every chunk overwrites them from
        // the AdjustedConfig the policy engine provides.
        let cfg = TrainerConfig::new(workers, 1, 0.1, 0.9)
            .with_seed(seed)
            .with_topology(topology);
        PsBackend {
            trainer: Trainer::new(model, train, test, cfg),
            elapsed: SimTime::ZERO,
            diverged_at: None,
            workers,
        }
    }

    /// Injects a persistent straggler delay on one worker (testing and
    /// demos; transient scenarios can clear it between chunks).
    pub fn inject_straggler(&mut self, worker: usize, delay: Duration) {
        let mut cfg = self.trainer.config().clone();
        cfg.straggler_delay[worker] = Some(delay);
        self.trainer
            .set_config(cfg)
            .expect("straggler injection keeps config valid");
    }

    /// Clears all injected stragglers.
    pub fn clear_stragglers(&mut self) {
        let mut cfg = self.trainer.config().clone();
        cfg.clear_stragglers();
        self.trainer
            .set_config(cfg)
            .expect("clearing stragglers keeps config valid");
    }

    /// Access to the underlying trainer.
    pub fn trainer(&self) -> &Trainer {
        &self.trainer
    }
}

impl TrainingBackend for PsBackend {
    fn step(&self) -> u64 {
        self.trainer.global_step()
    }

    fn now(&self) -> SimTime {
        self.elapsed
    }

    fn cluster_size(&self) -> usize {
        self.workers
    }

    fn active_workers(&self) -> usize {
        self.trainer.config().active_workers().len()
    }

    fn run_chunk(&mut self, cfg: &AdjustedConfig, steps: u64) -> Result<BackendChunk, CoreError> {
        let mut tcfg = self.trainer.config().clone();
        tcfg.per_worker_batch = cfg.per_worker_batch;
        tcfg.learning_rate = cfg.learning_rate;
        tcfg.momentum = cfg.momentum;
        self.trainer
            .set_config(tcfg)
            .map_err(|e| CoreError::Backend(e.to_string()))?;
        match self.trainer.run_segment(cfg.protocol, steps) {
            Ok(report) => {
                self.elapsed += SimTime::from_secs(report.wall_time.as_secs_f64());
                let batch = cfg.per_worker_batch;
                Ok(BackendChunk {
                    steps_done: report.steps,
                    elapsed: SimTime::from_secs(report.wall_time.as_secs_f64()),
                    per_worker_images_per_sec: report
                        .worker_profiles
                        .iter()
                        .map(|p| (p.steps() > 0).then(|| p.images_per_sec(batch)))
                        .collect(),
                    mean_staleness: report.staleness.mean(),
                    wire_time_s: report.transport.total_wire_s(),
                    wire_retries: report.transport.retries,
                    wire_reconnects: report.transport.reconnects,
                })
            }
            Err(PsError::Diverged { step }) => {
                self.diverged_at = Some(step);
                Err(CoreError::Diverged { step })
            }
            Err(e) => Err(CoreError::Backend(e.to_string())),
        }
    }

    fn apply_switch_overhead(&mut self, _from: SyncProtocol, _to: SyncProtocol) -> SimTime {
        // The real switch mechanism: checkpoint, propagate, restore.
        let t0 = std::time::Instant::now();
        let ck = self.trainer.checkpoint();
        self.trainer
            .restore(&ck)
            .expect("checkpoint from the same trainer always restores");
        let dt = SimTime::from_secs(t0.elapsed().as_secs_f64());
        self.elapsed += dt;
        dt
    }

    fn apply_momentum_variant(&mut self, variant: MomentumScaling) {
        let mut cfg = self.trainer.config().clone();
        cfg.momentum = variant.effective_momentum(0, self.workers, cfg.momentum);
        if self
            .trainer
            .set_config(cfg)
            .is_ok_and(|()| variant == MomentumScaling::Zero)
        {
            self.trainer.reset_velocity();
        }
    }

    fn eval_accuracy(&mut self) -> f64 {
        self.trainer.evaluate()
    }

    fn training_loss(&self) -> f64 {
        f64::from(self.trainer.training_loss())
    }

    fn is_diverged(&self) -> bool {
        self.diverged_at.is_some()
    }

    fn remove_worker(&mut self, worker: usize) -> bool {
        let mut cfg = self.trainer.config().clone();
        if cfg.excluded_workers.contains(&worker) {
            return false;
        }
        cfg.excluded_workers.push(worker);
        self.trainer.set_config(cfg).is_ok()
    }

    fn restore_workers(&mut self) {
        let mut cfg = self.trainer.config().clone();
        cfg.excluded_workers.clear();
        self.trainer
            .set_config(cfg)
            .expect("restoring workers keeps config valid");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sync_switch_core::{ClusterManager, OnlinePolicyKind, SyncSwitchPolicy};
    use sync_switch_workloads::{ExperimentSetup, LrSchedule};

    fn small_setup(workers: usize, total: u64) -> ExperimentSetup {
        let mut setup = ExperimentSetup::one();
        setup.cluster_size = workers;
        setup.workload.hyper.total_steps = total;
        setup.workload.hyper.batch_size = 8;
        setup.workload.hyper.learning_rate = 0.04;
        setup.workload.hyper.lr_schedule = LrSchedule::piecewise(vec![(total / 2, 0.1)]);
        setup
    }

    fn backend(workers: usize, seed: u64) -> PsBackend {
        let data = Dataset::gaussian_blobs(4, 80, 8, 0.35, seed);
        let (train, test) = data.split(0.25);
        PsBackend::new(Network::mlp(8, &[16], 4, seed), train, test, workers, seed)
    }

    #[test]
    fn manager_drives_real_ps_end_to_end() {
        let setup = small_setup(4, 200);
        let mut b = backend(4, 1);
        let mut policy = SyncSwitchPolicy::new(0.25, 4);
        policy.eval_interval = 50;
        policy.tta_target = Some(0.5);
        let report = ClusterManager::new(policy).run(&mut b, &setup).unwrap();
        assert!(report.completed());
        assert_eq!(report.total_steps, 200);
        assert_eq!(report.switches.len(), 1);
        assert_eq!(report.bsp_steps, 50);
        assert_eq!(report.asp_steps, 150);
        // Real training should have learned something on 4 blobs.
        let acc = report.converged_accuracy.unwrap();
        assert!(acc > 0.5, "accuracy {acc}");
    }

    #[test]
    fn elastic_policy_evicts_real_straggler() {
        let setup = small_setup(4, 160);
        let mut b = backend(4, 2);
        b.inject_straggler(2, Duration::from_millis(4));
        let mut policy = SyncSwitchPolicy::new(0.5, 4).with_online(OnlinePolicyKind::Elastic);
        policy.eval_interval = 80;
        policy.detect_chunk = 8;
        policy.tta_target = Some(0.5);
        let report = ClusterManager::new(policy).run(&mut b, &setup).unwrap();
        assert!(report.completed());
        assert!(
            report.removed_workers.iter().any(|&(_, w)| w == 2),
            "straggler 2 should be evicted, got {:?}",
            report.removed_workers
        );
        // Cluster restored for the ASP phase.
        assert_eq!(b.active_workers(), 4);
    }

    #[test]
    fn manager_drives_transport_tier_and_reports_wire_time() {
        // The same policy engine over a channel-transport PS tier: every
        // push/pull crosses the wire protocol, and the report accounts the
        // measured wire time.
        let setup = small_setup(4, 120);
        let data = Dataset::gaussian_blobs(4, 80, 8, 0.35, 5);
        let (train, test) = data.split(0.25);
        let mut b = PsBackend::with_topology(
            Network::mlp(8, &[16], 4, 5),
            train,
            test,
            4,
            5,
            sync_switch_ps::ServerTopology::new(2, 4)
                .with_transport(sync_switch_ps::TransportKind::Channel),
        );
        assert_eq!(b.trainer().server_count(), 2);
        let mut policy = SyncSwitchPolicy::new(0.25, 4);
        policy.eval_interval = 60;
        policy.tta_target = Some(0.99); // effectively disabled
        let report = ClusterManager::new(policy).run(&mut b, &setup).unwrap();
        assert!(report.completed());
        assert_eq!(report.total_steps, 120);
        assert!(
            report.transport_wire_s > 0.0,
            "wire time must be accounted: {}",
            report.transport_wire_s
        );
        assert!(b.trainer().transport_stats().total_ops() > 0);
    }

    #[test]
    fn switch_overhead_is_measured() {
        let mut b = backend(3, 3);
        let dt = b.apply_switch_overhead(SyncProtocol::Bsp, SyncProtocol::Asp);
        assert!(dt.as_secs() >= 0.0);
        assert_eq!(b.now(), dt);
    }
}
