//! The cluster specification shared by every process of a real
//! (multi-process) Sync-Switch deployment.
//!
//! A cluster run involves three kinds of process — `ps-serve` (one per
//! parameter server), `ps-worker` (one per training client), and the
//! harness that spawns them — and they must agree *exactly* on the tier
//! layout: which workload (and therefore how many parameters), how many
//! shards, which server owns which shards, and which address each server
//! answers on. [`ClusterSpec`] is that agreement, serialized as a JSON file
//! every process reads; the wire-level `Hello` handshake then verifies at
//! runtime that each server really was launched from the same spec
//! (`NetRouter::handshake` refuses a tier whose shard ownership disagrees).
//!
//! [`WorkerReport`] is the other half of the contract: the JSON document a
//! `ps-worker` writes on exit, which the harness parses to judge the run.

use std::net::SocketAddr;
use std::time::Duration;

use serde::{Deserialize, Serialize};
use sync_switch_ps::transport::wire::op;
use sync_switch_ps::{ControllerConfig, RetryPolicy, ServerStatsSnapshot, TrainerConfig};
use sync_switch_workloads::{SyncProtocol, TrainableKind};

/// One training segment of a cluster run: a synchronization discipline and
/// a step budget.
///
/// `protocol` is a lowercase string rather than the [`SyncProtocol`] enum so
/// the spec can also name the SSP extension (`"ssp"`), which lives outside
/// the paper's BSP/ASP pair; [`SegmentSpec::parse_protocol`] maps it back.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SegmentSpec {
    /// `"bsp"`, `"asp"`, or `"ssp"` (case-insensitive).
    pub protocol: String,
    /// Global steps to run under this protocol.
    pub steps: u64,
    /// Staleness bound for an `"ssp"` segment; ignored otherwise.
    pub ssp_bound: u64,
}

impl SegmentSpec {
    /// A BSP segment of `steps` steps.
    pub fn bsp(steps: u64) -> Self {
        SegmentSpec {
            protocol: "bsp".into(),
            steps,
            ssp_bound: 0,
        }
    }

    /// An ASP segment of `steps` steps.
    pub fn asp(steps: u64) -> Self {
        SegmentSpec {
            protocol: "asp".into(),
            steps,
            ssp_bound: 0,
        }
    }

    /// An SSP segment of `steps` steps with the given staleness bound.
    pub fn ssp(steps: u64, bound: u64) -> Self {
        SegmentSpec {
            protocol: "ssp".into(),
            steps,
            ssp_bound: bound,
        }
    }

    /// Resolves the protocol string: `Some(protocol)` for `"bsp"`/`"asp"`,
    /// `None` for `"ssp"` (the caller dispatches to the SSP runner).
    ///
    /// # Errors
    ///
    /// Returns the unrecognized string.
    pub fn parse_protocol(&self) -> Result<Option<SyncProtocol>, String> {
        match self.protocol.to_ascii_lowercase().as_str() {
            "bsp" => Ok(Some(SyncProtocol::Bsp)),
            "asp" => Ok(Some(SyncProtocol::Asp)),
            "ssp" => Ok(None),
            other => Err(format!(
                "unknown protocol {other:?} (expected \"bsp\", \"asp\", or \"ssp\")"
            )),
        }
    }
}

/// The policy block that puts a `ps-worker` under the online adaptive
/// [`SyncController`] instead of blindly executing the spec's protocol
/// strings.
///
/// When present, the spec's segment list still defines the step budgets
/// (and the first segment's protocol seeds the starting discipline), but
/// from then on each BSP/ASP segment runs under whatever protocol the
/// controller last decided on: the worker scrapes the bus after every
/// segment and may promote BSP→ASP, demote ASP→BSP, or retune the SSP
/// bound, recording every decision (with its reason) in the
/// [`WorkerReport`].
///
/// The thresholds mirror [`ControllerConfig`]; see that type for the named
/// telemetry signal behind each one.
///
/// [`SyncController`]: sync_switch_ps::SyncController
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ControllerSpec {
    /// Segments observed before the first promote decision.
    pub warmup_segments: u64,
    /// Barrier-wait fraction at which BSP promotes to ASP.
    pub promote_barrier_frac: f64,
    /// Loss-stability slack factor required for promotion.
    pub promote_loss_slack: f64,
    /// `wire.retries` delta above which ASP demotes to BSP.
    pub demote_retry_limit: u64,
    /// Loss blow-up factor at which ASP demotes to BSP.
    pub demote_loss_factor: f64,
    /// Mean `engine.staleness` above which ASP demotes to BSP.
    pub demote_staleness_limit: f64,
}

impl Default for ControllerSpec {
    fn default() -> Self {
        let cfg = ControllerConfig::default();
        ControllerSpec {
            warmup_segments: cfg.warmup_segments,
            promote_barrier_frac: cfg.promote_barrier_frac,
            promote_loss_slack: f64::from(cfg.promote_loss_slack),
            demote_retry_limit: cfg.demote_retry_limit,
            demote_loss_factor: f64::from(cfg.demote_loss_factor),
            demote_staleness_limit: cfg.demote_staleness_limit,
        }
    }
}

impl ControllerSpec {
    /// The in-process controller policy this spec block describes
    /// (remaining [`ControllerConfig`] knobs keep their defaults).
    pub fn to_config(&self) -> ControllerConfig {
        ControllerConfig {
            warmup_segments: self.warmup_segments,
            promote_barrier_frac: self.promote_barrier_frac,
            promote_loss_slack: self.promote_loss_slack as f32,
            demote_retry_limit: self.demote_retry_limit,
            demote_loss_factor: self.demote_loss_factor as f32,
            demote_staleness_limit: self.demote_staleness_limit,
            ..ControllerConfig::default()
        }
    }

    /// Validates the thresholds.
    ///
    /// # Errors
    ///
    /// Returns a description of the first inconsistency.
    pub fn validate(&self) -> Result<(), String> {
        if !(0.0..=1.0).contains(&self.promote_barrier_frac) {
            return Err(format!(
                "promote_barrier_frac {} outside [0, 1]",
                self.promote_barrier_frac
            ));
        }
        if self.promote_loss_slack < 1.0 {
            return Err(format!(
                "promote_loss_slack {} below 1.0 would reject an improving loss",
                self.promote_loss_slack
            ));
        }
        if self.demote_loss_factor <= 1.0 {
            return Err(format!(
                "demote_loss_factor {} must exceed 1.0",
                self.demote_loss_factor
            ));
        }
        if self.demote_staleness_limit <= 0.0 {
            return Err(format!(
                "demote_staleness_limit {} must be positive",
                self.demote_staleness_limit
            ));
        }
        Ok(())
    }
}

/// The complete, serializable description of a multi-process cluster run.
///
/// Every process derives everything else it needs from this: a `ps-serve`
/// builds the seeded workload model to obtain the tier's initial parameters
/// (all processes build the *same* model, so no parameter shipping is
/// needed at startup), binds `servers[index]`, and serves; a `ps-worker`
/// connects to all of `servers`, validates the layout via the handshake,
/// and runs `segments` in order.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClusterSpec {
    /// Trainable workload name: `"mlp_blobs"`, `"conv_shifted"`, or
    /// `"sparse_embedding"` (see [`TrainableKind::name`]).
    pub workload: String,
    /// Seed for the workload build — model init and dataset generation.
    /// Identical across processes by construction (it is in the spec).
    pub seed: u64,
    /// Number of parameter shards in the tier.
    pub shards: usize,
    /// One `host:port` per parameter server, in server-index order. The
    /// length of this list *is* the server count.
    pub servers: Vec<String>,
    /// Worker threads per `ps-worker` process.
    pub workers_per_proc: usize,
    /// Stage-2 reconciliation period in completed pushes.
    pub sync_every: u64,
    /// Training segments, run in order by every worker process.
    pub segments: Vec<SegmentSpec>,
    /// Artificial per-step delay (milliseconds) injected into every worker
    /// thread. Real workloads here are tiny, so an undelayed release-mode
    /// run finishes in milliseconds — too fast for a mid-run fault to land.
    /// A few ms per step stretches the run into the window where the
    /// harness's SIGKILL is genuinely *mid-training*.
    pub step_delay_ms: u64,
    /// Per-operation wire timeout, milliseconds ([`RetryPolicy`]).
    pub op_timeout_ms: u64,
    /// Wire retries after the initial attempt ([`RetryPolicy`]).
    pub max_retries: u32,
    /// First backoff sleep, milliseconds ([`RetryPolicy`]).
    pub backoff_base_ms: u64,
    /// Backoff ceiling, milliseconds ([`RetryPolicy`]).
    pub backoff_max_ms: u64,
    /// Readiness-handshake budget, seconds: how long a worker keeps
    /// re-dialing servers that have not bound their listeners yet.
    pub handshake_secs: u64,
    /// How long a worker waits for a crashed server to be respawned before
    /// giving up on healing, seconds.
    pub heal_secs: u64,
    /// Optional adaptive-controller policy. Absent (or JSON `null`) means
    /// the worker executes the spec's protocol strings verbatim, as before.
    pub controller: Option<ControllerSpec>,
}

impl ClusterSpec {
    /// A ready-to-run spec for `servers` × `worker_procs` processes on the
    /// given addresses, training `workload` with its registered
    /// hyper-parameters and a BSP→ASP split of its step budget.
    pub fn standard(workload: TrainableKind, servers: Vec<String>, seed: u64) -> Self {
        let hyper = workload.hyper();
        let half = hyper.total_steps / 2;
        ClusterSpec {
            workload: workload.name().to_string(),
            seed,
            shards: 4,
            servers,
            workers_per_proc: 2,
            sync_every: 1,
            segments: vec![
                SegmentSpec::bsp(half),
                SegmentSpec::asp(hyper.total_steps - half),
            ],
            step_delay_ms: 0,
            op_timeout_ms: 2_000,
            max_retries: 3,
            backoff_base_ms: 5,
            backoff_max_ms: 100,
            handshake_secs: 20,
            heal_secs: 20,
            controller: None,
        }
    }

    /// The same spec with the adaptive sync controller enabled.
    pub fn with_controller(mut self, controller: ControllerSpec) -> Self {
        self.controller = Some(controller);
        self
    }

    /// Resolves the workload name to its [`TrainableKind`].
    ///
    /// # Errors
    ///
    /// Returns the unrecognized name and the registry of valid ones.
    pub fn workload_kind(&self) -> Result<TrainableKind, String> {
        TrainableKind::all()
            .into_iter()
            .find(|k| k.name() == self.workload)
            .ok_or_else(|| {
                let known: Vec<&str> = TrainableKind::all().iter().map(|k| k.name()).collect();
                format!(
                    "unknown workload {:?} (expected one of {known:?})",
                    self.workload
                )
            })
    }

    /// Parses `servers` into socket addresses, in server-index order.
    ///
    /// # Errors
    ///
    /// Returns the first unparseable entry.
    pub fn server_addrs(&self) -> Result<Vec<SocketAddr>, String> {
        self.servers
            .iter()
            .map(|s| {
                s.parse::<SocketAddr>()
                    .map_err(|e| format!("bad server address {s:?}: {e}"))
            })
            .collect()
    }

    /// The client-side retry policy encoded in the spec.
    pub fn retry(&self) -> RetryPolicy {
        RetryPolicy {
            op_timeout_ms: self.op_timeout_ms,
            max_retries: self.max_retries,
            backoff_base_ms: self.backoff_base_ms,
            backoff_max_ms: self.backoff_max_ms,
        }
    }

    /// The readiness-handshake deadline.
    pub fn handshake_deadline(&self) -> Duration {
        Duration::from_secs(self.handshake_secs)
    }

    /// The heal-wait deadline for a crashed server.
    pub fn heal_deadline(&self) -> Duration {
        Duration::from_secs(self.heal_secs)
    }

    /// The [`TrainerConfig`] a worker process derives from this spec: the
    /// workload's registered hyper-parameters, the spec's worker count and
    /// shard count, and an optional per-step straggler delay on every
    /// worker thread (see [`ClusterSpec::step_delay_ms`]).
    ///
    /// # Errors
    ///
    /// Returns a description of the first inconsistency.
    pub fn trainer_config(&self) -> Result<TrainerConfig, String> {
        let kind = self.workload_kind()?;
        let hyper = kind.hyper();
        let mut cfg = TrainerConfig::new(
            self.workers_per_proc,
            hyper.batch_size,
            hyper.learning_rate,
            hyper.momentum,
        )
        .with_seed(self.seed);
        cfg.shards = self.shards;
        if self.step_delay_ms > 0 {
            for w in 0..self.workers_per_proc {
                cfg = cfg.with_straggler(w, Duration::from_millis(self.step_delay_ms));
            }
        }
        cfg.validate()?;
        Ok(cfg)
    }

    /// Validates the spec end to end — every derived view must resolve.
    ///
    /// # Errors
    ///
    /// Returns a description of the first inconsistency.
    pub fn validate(&self) -> Result<(), String> {
        let kind = self.workload_kind()?;
        self.server_addrs()?;
        if self.servers.is_empty() {
            return Err("spec names no servers".into());
        }
        if self.shards == 0 {
            return Err("shards must be positive".into());
        }
        if self.servers.len() > self.shards {
            return Err(format!(
                "{} servers for {} shards: a server would own no shard",
                self.servers.len(),
                self.shards
            ));
        }
        if self.sync_every == 0 {
            return Err("sync_every must be positive".into());
        }
        if self.segments.is_empty() {
            return Err("spec names no training segments".into());
        }
        for seg in &self.segments {
            seg.parse_protocol()?;
            if seg.steps == 0 {
                return Err(format!("segment {:?} has zero steps", seg.protocol));
            }
        }
        let (model, train, _) = kind.build(self.seed);
        if self.shards > model.params_flat().len() {
            return Err(format!(
                "{} shards for {} parameters",
                self.shards,
                model.params_flat().len()
            ));
        }
        if train.len() < self.workers_per_proc {
            return Err("more worker threads than training examples".into());
        }
        if let Some(controller) = &self.controller {
            controller.validate()?;
        }
        self.trainer_config()?;
        Ok(())
    }

    /// Serializes the spec as pretty JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("spec serializes")
    }

    /// Parses a spec from JSON and validates it.
    ///
    /// # Errors
    ///
    /// Returns the parse or validation failure.
    pub fn from_json(json: &str) -> Result<Self, String> {
        let spec: ClusterSpec = serde_json::from_str(json).map_err(|e| format!("{e:?}"))?;
        spec.validate()?;
        Ok(spec)
    }
}

/// Per-segment outcome inside a [`WorkerReport`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SegmentOutcome {
    /// Protocol string of the segment spec that produced this outcome.
    pub protocol: String,
    /// Global steps completed.
    pub steps: u64,
    /// Wall-clock duration, milliseconds.
    pub wall_time_ms: u64,
    /// Cluster throughput, steps per second.
    pub steps_per_sec: f64,
    /// Mean training loss over the segment's last recorded steps.
    pub final_loss: f64,
    /// Stage-2 reconciliation rounds completed during the segment.
    pub sync_rounds: u64,
    /// Servers this worker healed (checkpoint-replayed after detecting a
    /// respawned instance) while retrying this segment.
    pub healed_servers: u64,
    /// Times the segment was rolled back to its starting checkpoint and
    /// re-run after a server crash.
    pub crash_retries: u64,
}

/// A serializable digest of one server's [`ServerStatsSnapshot`], scraped
/// over the `Stats` wire frame just before a `ps-worker` exits and embedded
/// in its [`WorkerReport`].
///
/// This is the harness's cross-process consistency hook: the worker knows
/// how many pushes/pulls/syncs *it* issued ([`TransportStats`]), the server
/// knows how many it *served*, and on a clean network the two must agree.
/// Only the aggregate numbers travel — the full snapshot (per-shard apply
/// vectors, apply-latency histogram) stays in the server's own periodic
/// metrics dump.
///
/// [`TransportStats`]: sync_switch_ps::TransportStats
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServerStatsSummary {
    /// The answering server's index.
    pub server: u32,
    /// Requests served across every opcode.
    pub total_requests: u64,
    /// Dense + sparse shard pushes served.
    pub push_requests: u64,
    /// Committed-view pulls served.
    pub pull_requests: u64,
    /// Stage-2 reconciliations served (periodic sync rounds + drains).
    pub sync_requests: u64,
    /// Cumulative inbound request payload bytes.
    pub bytes_in: u64,
    /// Cumulative outbound reply payload bytes.
    pub bytes_out: u64,
    /// Sequenced requests answered from the dedup cache — each one is a
    /// retried mutation the server refused to apply twice.
    pub dedup_hits: u64,
    /// Gradient applies recorded by the server's apply histogram.
    pub applies: u64,
    /// Mean apply latency, nanoseconds (0 with no applies).
    pub mean_apply_ns: u64,
}

impl ServerStatsSummary {
    /// Digests a scraped snapshot into report form.
    pub fn from_snapshot(snap: &ServerStatsSnapshot) -> Self {
        let applies = snap.apply_ns.count;
        ServerStatsSummary {
            server: snap.server,
            total_requests: snap.total_requests(),
            push_requests: snap.requests_for(op::PUSH_SHARD)
                + snap.requests_for(op::PUSH_SHARD_SPARSE),
            pull_requests: snap.requests_for(op::PULL_COMMITTED),
            sync_requests: snap.requests_for(op::SYNC_ROUND) + snap.requests_for(op::DRAIN),
            bytes_in: snap.bytes_in,
            bytes_out: snap.bytes_out,
            dedup_hits: snap.dedup_hits,
            applies,
            mean_apply_ns: snap.apply_ns.sum.checked_div(applies).unwrap_or(0),
        }
    }
}

/// One adaptive-controller decision, as serialized into a
/// [`WorkerReport`]. Mirrors [`DecisionRecord`] with the protocols as
/// strings so the document stays self-describing.
///
/// [`DecisionRecord`]: sync_switch_ps::DecisionRecord
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ControllerDecision {
    /// Zero-based index of the controller-observed segment.
    pub segment: u64,
    /// Protocol the segment ran under.
    pub from: String,
    /// Protocol the next segment runs under.
    pub to: String,
    /// The SSP bound as retuned after this segment.
    pub ssp_bound: u64,
    /// Why the controller decided this.
    pub reason: String,
}

impl ControllerDecision {
    /// Report form of an in-process decision record.
    pub fn from_record(d: &sync_switch_ps::DecisionRecord) -> Self {
        ControllerDecision {
            segment: d.segment,
            from: d.from.to_string(),
            to: d.to.to_string(),
            ssp_bound: d.ssp_bound,
            reason: d.reason.clone(),
        }
    }

    /// Whether this decision changed the protocol.
    pub fn switched(&self) -> bool {
        self.from != self.to
    }
}

/// The JSON document a `ps-worker` process writes on exit — the harness's
/// only window into what happened inside the worker.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkerReport {
    /// Workload name, echoed from the spec.
    pub workload: String,
    /// Per-segment outcomes, in spec order.
    pub segments: Vec<SegmentOutcome>,
    /// Training loss on the probe batch after the final segment.
    pub final_loss: f64,
    /// The workload's registered convergence gate.
    pub loss_threshold: f64,
    /// Whether `final_loss` cleared the gate.
    pub converged: bool,
    /// Top-1 accuracy on the held-out test set after the final segment.
    pub accuracy: f64,
    /// Whether every parameter on every server was finite at exit.
    pub finite: bool,
    /// Total servers healed across all segments.
    pub healed_servers: u64,
    /// Per-server request accounting scraped over the `Stats` wire frame
    /// just before exit, in server-index order. A server that could not be
    /// scraped (crashed and never respawned) is simply absent.
    pub server_stats: Vec<ServerStatsSummary>,
    /// Every adaptive-controller decision taken during the run, in order.
    /// Empty when the spec carried no [`ControllerSpec`].
    pub controller_decisions: Vec<ControllerDecision>,
}

impl WorkerReport {
    /// Serializes the report as pretty JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("report serializes")
    }

    /// Parses a report from JSON.
    ///
    /// # Errors
    ///
    /// Returns the parse failure.
    pub fn from_json(json: &str) -> Result<Self, String> {
        serde_json::from_str(json).map_err(|e| format!("{e:?}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> ClusterSpec {
        ClusterSpec::standard(
            TrainableKind::MlpBlobs,
            vec!["127.0.0.1:7001".into(), "127.0.0.1:7002".into()],
            7,
        )
    }

    #[test]
    fn standard_spec_validates_and_derives() {
        let s = spec();
        assert!(s.validate().is_ok());
        assert_eq!(s.workload_kind().unwrap(), TrainableKind::MlpBlobs);
        assert_eq!(s.server_addrs().unwrap().len(), 2);
        assert_eq!(s.retry().op_timeout_ms, 2_000);
        let cfg = s.trainer_config().unwrap();
        assert_eq!(cfg.workers, 2);
        assert_eq!(cfg.shards, 4);
        assert_eq!(cfg.seed, 7);
    }

    #[test]
    fn spec_round_trips_through_json() {
        let s = spec();
        let parsed = ClusterSpec::from_json(&s.to_json()).expect("round trip");
        assert_eq!(parsed, s);
    }

    #[test]
    fn report_round_trips_through_json() {
        let r = WorkerReport {
            workload: "mlp_blobs".into(),
            segments: vec![SegmentOutcome {
                protocol: "bsp".into(),
                steps: 120,
                wall_time_ms: 44,
                steps_per_sec: 2700.0,
                final_loss: 0.51,
                sync_rounds: 9,
                healed_servers: 1,
                crash_retries: 1,
            }],
            final_loss: 0.4,
            loss_threshold: 0.9,
            converged: true,
            accuracy: 0.85,
            finite: true,
            healed_servers: 1,
            server_stats: vec![ServerStatsSummary {
                server: 0,
                total_requests: 310,
                push_requests: 240,
                pull_requests: 60,
                sync_requests: 10,
                bytes_in: 88_000,
                bytes_out: 91_000,
                dedup_hits: 2,
                applies: 240,
                mean_apply_ns: 1_450,
            }],
            controller_decisions: vec![ControllerDecision {
                segment: 1,
                from: "Bsp".into(),
                to: "Asp".into(),
                ssp_bound: 3,
                reason: "barrier-wait fraction 0.41 >= 0.25 with stable loss".into(),
            }],
        };
        let parsed = WorkerReport::from_json(&r.to_json()).expect("round trip");
        assert_eq!(parsed, r);
        assert!(parsed.controller_decisions[0].switched());
    }

    #[test]
    fn controller_spec_round_trips_and_maps_to_the_policy() {
        let s = spec().with_controller(ControllerSpec {
            promote_barrier_frac: 0.1,
            demote_retry_limit: 2,
            ..ControllerSpec::default()
        });
        assert!(s.validate().is_ok());
        let parsed = ClusterSpec::from_json(&s.to_json()).expect("round trip");
        assert_eq!(parsed, s);
        let cfg = parsed.controller.as_ref().unwrap().to_config();
        assert_eq!(cfg.promote_barrier_frac, 0.1);
        assert_eq!(cfg.demote_retry_limit, 2);
        assert_eq!(
            cfg.warmup_segments,
            sync_switch_ps::ControllerConfig::default().warmup_segments
        );
    }

    #[test]
    fn specs_without_a_controller_block_still_parse() {
        // Backward compatibility: a spec JSON written before the controller
        // existed has no "controller" key at all.
        let s = spec();
        let json = s.to_json();
        let idx = json
            .find("\"controller\"")
            .expect("spec JSON names the key");
        let comma = json[..idx].rfind(',').expect("a field precedes it");
        let line_end = idx + json[idx..].find('\n').unwrap_or(json.len() - idx);
        let stripped = format!("{}{}", &json[..comma], &json[line_end..]);
        assert!(!stripped.contains("\"controller\""));
        let parsed = ClusterSpec::from_json(&stripped).expect("legacy spec parses");
        assert_eq!(parsed.controller, None);
    }

    #[test]
    fn bad_controller_thresholds_are_refused() {
        let mut s = spec().with_controller(ControllerSpec::default());
        s.controller.as_mut().unwrap().promote_barrier_frac = 1.5;
        assert!(s.validate().is_err());

        let mut s = spec().with_controller(ControllerSpec::default());
        s.controller.as_mut().unwrap().promote_loss_slack = 0.5;
        assert!(s.validate().is_err());

        let mut s = spec().with_controller(ControllerSpec::default());
        s.controller.as_mut().unwrap().demote_loss_factor = 1.0;
        assert!(s.validate().is_err());

        let mut s = spec().with_controller(ControllerSpec::default());
        s.controller.as_mut().unwrap().demote_staleness_limit = 0.0;
        assert!(s.validate().is_err());
    }

    #[test]
    fn summary_digests_a_snapshot() {
        let mut snap = ServerStatsSnapshot {
            server: 3,
            bytes_in: 1_000,
            bytes_out: 2_000,
            dedup_hits: 5,
            ..ServerStatsSnapshot::default()
        };
        snap.requests[op::PUSH_SHARD as usize] = 40;
        snap.requests[op::PUSH_SHARD_SPARSE as usize] = 10;
        snap.requests[op::PULL_COMMITTED as usize] = 25;
        snap.requests[op::SYNC_ROUND as usize] = 7;
        snap.requests[op::DRAIN as usize] = 3;
        snap.requests[op::HELLO as usize] = 2;
        snap.apply_ns.count = 50;
        snap.apply_ns.sum = 5_000;
        let s = ServerStatsSummary::from_snapshot(&snap);
        assert_eq!(s.server, 3);
        assert_eq!(s.total_requests, 87);
        assert_eq!(s.push_requests, 50);
        assert_eq!(s.pull_requests, 25);
        assert_eq!(s.sync_requests, 10);
        assert_eq!(s.bytes_in, 1_000);
        assert_eq!(s.bytes_out, 2_000);
        assert_eq!(s.dedup_hits, 5);
        assert_eq!(s.applies, 50);
        assert_eq!(s.mean_apply_ns, 100);
    }

    #[test]
    fn segment_protocols_parse() {
        assert_eq!(
            SegmentSpec::bsp(1).parse_protocol(),
            Ok(Some(SyncProtocol::Bsp))
        );
        assert_eq!(
            SegmentSpec::asp(1).parse_protocol(),
            Ok(Some(SyncProtocol::Asp))
        );
        assert_eq!(SegmentSpec::ssp(1, 3).parse_protocol(), Ok(None));
        let mut bad = SegmentSpec::bsp(1);
        bad.protocol = "dsp".into();
        assert!(bad.parse_protocol().is_err());
    }

    #[test]
    fn invalid_specs_are_refused() {
        let mut s = spec();
        s.workload = "resnet152".into();
        assert!(s.validate().is_err());

        let mut s = spec();
        s.servers = vec!["not-an-addr".into()];
        assert!(s.validate().is_err());

        let mut s = spec();
        s.servers.clear();
        assert!(s.validate().is_err());

        let mut s = spec();
        s.shards = 1; // fewer shards than servers
        assert!(s.validate().is_err());

        let mut s = spec();
        s.segments.clear();
        assert!(s.validate().is_err());

        let mut s = spec();
        s.segments[0].steps = 0;
        assert!(s.validate().is_err());

        let mut s = spec();
        s.segments[0].protocol = "nope".into();
        assert!(s.validate().is_err());

        let mut s = spec();
        s.sync_every = 0;
        assert!(s.validate().is_err());
    }
}
