//! Multi-process cluster orchestration: spawn a tier of `ps-serve`
//! processes and a set of `ps-worker` processes from one [`ClusterSpec`],
//! wait for readiness, inject crashes, collect worker reports, and tear
//! everything down leak-free.
//!
//! The harness is deliberately dumb about training — it never touches the
//! wire protocol beyond a TCP connect probe. Layout validation is the
//! workers' job (`NetRouter::handshake`), crash recovery is the workers'
//! job (`ServerSupervisor::heal_respawned`); the harness only manages
//! *processes*: fork, SIGKILL, respawn, reap. That split mirrors a real
//! deployment, where the cluster manager restarts containers and the
//! training job is responsible for its own state.

use std::fs::{self, File};
use std::io;
use std::net::TcpStream;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

use crate::deploy::{ClusterSpec, WorkerReport};

/// A child process that is guaranteed dead once this guard drops.
///
/// `Drop` sends SIGKILL and reaps the zombie, so a panicking test (or a
/// harness abandoned halfway through a scenario) cannot leak `ps-serve`
/// listeners that poison later runs by squatting on their ports.
#[derive(Debug)]
pub struct ChildGuard {
    /// Display name, e.g. `ps-serve-0`.
    name: String,
    child: Child,
    /// Combined stdout+stderr log of the child.
    log_path: PathBuf,
}

impl ChildGuard {
    /// Spawns `cmd` with stdout and stderr appended to `log_path`.
    ///
    /// When `PS_CLUSTER_PID_FILE` names a file, the new child's PID is
    /// appended to it (one per line). CI uses this ledger to scope its
    /// exit-trap cleanup to processes *this* run spawned, instead of
    /// pattern-killing every `ps-serve`/`ps-worker` on the machine.
    fn spawn(name: String, mut cmd: Command, log_path: PathBuf) -> io::Result<Self> {
        let log = File::create(&log_path)?;
        let log2 = log.try_clone()?;
        let child = cmd
            .stdin(Stdio::null())
            .stdout(Stdio::from(log))
            .stderr(Stdio::from(log2))
            .spawn()?;
        if let Ok(ledger) = std::env::var("PS_CLUSTER_PID_FILE") {
            if !ledger.is_empty() {
                use std::io::Write;
                if let Ok(mut f) = fs::OpenOptions::new()
                    .create(true)
                    .append(true)
                    .open(&ledger)
                {
                    let _ = writeln!(f, "{}", child.id());
                }
            }
        }
        Ok(ChildGuard {
            name,
            child,
            log_path,
        })
    }

    /// The child's OS process id.
    pub fn pid(&self) -> u32 {
        self.child.id()
    }

    /// The child's display name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Path of the child's combined stdout+stderr log.
    pub fn log_path(&self) -> &Path {
        &self.log_path
    }

    /// Whether the child is still running (non-blocking).
    pub fn is_running(&mut self) -> bool {
        matches!(self.child.try_wait(), Ok(None))
    }

    /// SIGKILLs the child and reaps it. Idempotent.
    pub fn kill_now(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }

    /// The tail of the child's log, for failure diagnostics.
    fn log_tail(&self, lines: usize) -> String {
        let text = fs::read_to_string(&self.log_path).unwrap_or_default();
        let all: Vec<&str> = text.lines().collect();
        let start = all.len().saturating_sub(lines);
        all[start..].join("\n")
    }
}

impl Drop for ChildGuard {
    fn drop(&mut self) {
        self.kill_now();
    }
}

/// Orchestrates one multi-process cluster run.
///
/// # Example shape (as the gated integration tests use it)
///
/// ```ignore
/// let mut h = ClusterHarness::new(spec, serve_bin, worker_bin, dir)?;
/// h.spawn_servers()?;
/// h.wait_servers_ready(Duration::from_secs(10))?;
/// h.spawn_workers(2)?;
/// h.sigkill_server(0);           // mid-run crash
/// h.respawn_server(0)?;          // "the cluster manager restarts it"
/// let reports = h.wait_workers(Duration::from_secs(120))?;
/// ```
///
/// Dropping the harness kills every remaining child.
#[derive(Debug)]
pub struct ClusterHarness {
    spec: ClusterSpec,
    dir: PathBuf,
    spec_path: PathBuf,
    serve_bin: PathBuf,
    worker_bin: PathBuf,
    servers: Vec<Option<ChildGuard>>,
    workers: Vec<ChildGuard>,
}

impl ClusterHarness {
    /// Prepares a harness in `dir` (created if missing): validates the
    /// spec and writes it to `dir/spec.json` for the children to read.
    ///
    /// `serve_bin` / `worker_bin` are the `ps-serve` / `ps-worker`
    /// executables (tests pass `env!("CARGO_BIN_EXE_ps-serve")`).
    ///
    /// # Errors
    ///
    /// Returns spec-validation failures as [`io::ErrorKind::InvalidInput`]
    /// and filesystem failures verbatim.
    pub fn new(
        spec: ClusterSpec,
        serve_bin: impl Into<PathBuf>,
        worker_bin: impl Into<PathBuf>,
        dir: impl Into<PathBuf>,
    ) -> io::Result<Self> {
        let dir = dir.into();
        spec.validate()
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidInput, e))?;
        fs::create_dir_all(&dir)?;
        let spec_path = dir.join("spec.json");
        fs::write(&spec_path, spec.to_json())?;
        let server_count = spec.servers.len();
        Ok(ClusterHarness {
            spec,
            dir,
            spec_path,
            serve_bin: serve_bin.into(),
            worker_bin: worker_bin.into(),
            servers: (0..server_count).map(|_| None).collect(),
            workers: Vec::new(),
        })
    }

    /// The run directory (spec, logs, reports).
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The spec this harness was built from.
    pub fn spec(&self) -> &ClusterSpec {
        &self.spec
    }

    /// Spawns (or respawns) server `i` as a `ps-serve` process on the
    /// spec's `servers[i]` address. Any previous incarnation is killed
    /// first, and the new one logs to `ps-serve-<i>.<gen>.log` so crash
    /// forensics keep both incarnations' output.
    ///
    /// # Errors
    ///
    /// Propagates the spawn failure.
    pub fn spawn_server(&mut self, i: usize) -> io::Result<()> {
        assert!(i < self.servers.len(), "server {i} out of range");
        if let Some(old) = self.servers[i].take() {
            drop(old); // kill + reap
        }
        let gen = fs::read_dir(&self.dir)?
            .filter_map(|e| e.ok())
            .filter(|e| {
                e.file_name()
                    .to_string_lossy()
                    .starts_with(&format!("ps-serve-{i}."))
            })
            .count();
        let log = self.dir.join(format!("ps-serve-{i}.{gen}.log"));
        let mut cmd = Command::new(&self.serve_bin);
        cmd.arg("--spec")
            .arg(&self.spec_path)
            .arg("--index")
            .arg(i.to_string());
        self.servers[i] = Some(ChildGuard::spawn(format!("ps-serve-{i}"), cmd, log)?);
        Ok(())
    }

    /// Spawns every server of the tier.
    ///
    /// # Errors
    ///
    /// Propagates the first spawn failure.
    pub fn spawn_servers(&mut self) -> io::Result<()> {
        for i in 0..self.servers.len() {
            self.spawn_server(i)?;
        }
        Ok(())
    }

    /// Waits until every spawned server's listener accepts a TCP
    /// connection — the harness-level readiness handshake. (Workers
    /// additionally run the wire-level `Hello` handshake that validates
    /// layout; this probe only proves the ports are live.)
    ///
    /// # Errors
    ///
    /// Names the first server that did not come up within `deadline`,
    /// with its log tail.
    pub fn wait_servers_ready(&mut self, deadline: Duration) -> Result<(), String> {
        let addrs = self.spec.server_addrs().map_err(|e| e.to_string())?;
        let start = Instant::now();
        for (i, addr) in addrs.iter().enumerate() {
            if self.servers[i].is_none() {
                continue; // not spawned (deliberately late) — not ours to wait on
            }
            loop {
                if TcpStream::connect_timeout(addr, Duration::from_millis(250)).is_ok() {
                    break;
                }
                let guard = self.servers[i].as_mut().expect("spawned");
                if !guard.is_running() {
                    return Err(format!(
                        "{} exited before binding {addr}\n--- log tail ---\n{}",
                        guard.name(),
                        guard.log_tail(30)
                    ));
                }
                if start.elapsed() >= deadline {
                    return Err(format!(
                        "server {i} not ready on {addr} within {deadline:?}"
                    ));
                }
                std::thread::sleep(Duration::from_millis(50));
            }
        }
        Ok(())
    }

    /// Spawns `n` `ps-worker` processes; worker `w` writes its report to
    /// `worker-<w>.report.json` and logs to `ps-worker-<w>.log`.
    ///
    /// # Errors
    ///
    /// Propagates the first spawn failure.
    pub fn spawn_workers(&mut self, n: usize) -> io::Result<()> {
        for _ in 0..n {
            let w = self.workers.len();
            let log = self.dir.join(format!("ps-worker-{w}.log"));
            let mut cmd = Command::new(&self.worker_bin);
            cmd.arg("--spec")
                .arg(&self.spec_path)
                .arg("--report")
                .arg(self.report_path(w));
            self.workers
                .push(ChildGuard::spawn(format!("ps-worker-{w}"), cmd, log)?);
        }
        Ok(())
    }

    /// Report path of worker `w`.
    pub fn report_path(&self, w: usize) -> PathBuf {
        self.dir.join(format!("worker-{w}.report.json"))
    }

    /// Chrome-trace path of worker `w` (written by `ps-worker` next to its
    /// report; load it in `chrome://tracing` or Perfetto).
    pub fn worker_trace_path(&self, w: usize) -> PathBuf {
        self.dir.join(format!("worker-{w}.trace.json"))
    }

    /// Metrics-snapshot path of server `i` (written periodically by
    /// `ps-serve` next to the spec; survives the SIGKILL as the final
    /// snapshot of whichever incarnation died last).
    pub fn metrics_path(&self, i: usize) -> PathBuf {
        self.dir.join(format!("server-{i}.metrics.json"))
    }

    /// Merges the per-process telemetry of a finished run into one
    /// cluster-wide `cluster-metrics.json` in the run directory: every
    /// server's last dumped stats snapshot (verbatim, with its per-opcode
    /// request counts) plus every worker's scraped
    /// [`ServerStatsSummary`](crate::deploy::ServerStatsSummary) rows.
    /// Returns the written path.
    ///
    /// The server files are already JSON objects, so the merge is textual
    /// assembly — no parse step that could drop fields it doesn't know.
    ///
    /// # Errors
    ///
    /// Fails if any server never wrote its snapshot (a `ps-serve` that
    /// dumps nothing is a telemetry regression, not a tolerable gap) or on
    /// filesystem errors.
    pub fn write_cluster_metrics(&self, reports: &[WorkerReport]) -> io::Result<PathBuf> {
        let mut out = String::with_capacity(4096);
        out.push_str("{\n  \"servers\": [\n");
        for i in 0..self.servers.len() {
            let path = self.metrics_path(i);
            let snap = fs::read_to_string(&path).map_err(|e| {
                io::Error::new(
                    e.kind(),
                    format!(
                        "server {i} wrote no metrics snapshot at {}: {e}",
                        path.display()
                    ),
                )
            })?;
            if i > 0 {
                out.push_str(",\n");
            }
            out.push_str("    ");
            out.push_str(snap.trim());
        }
        out.push_str("\n  ],\n  \"workers\": [\n");
        for (w, report) in reports.iter().enumerate() {
            if w > 0 {
                out.push_str(",\n");
            }
            let scraped = serde_json::to_string(&report.server_stats)
                .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, format!("{e:?}")))?;
            out.push_str(&format!(
                "    {{\"worker\": {w}, \"server_stats\": {scraped}}}"
            ));
        }
        out.push_str("\n  ]\n}\n");
        let path = self.dir.join("cluster-metrics.json");
        fs::write(&path, &out)?;
        Ok(path)
    }

    /// SIGKILLs server `i` — the mid-run crash. The listener vanishes with
    /// the process; workers' in-flight operations fail and their
    /// supervisors start waiting for a respawn.
    pub fn sigkill_server(&mut self, i: usize) {
        if let Some(guard) = self.servers[i].as_mut() {
            guard.kill_now();
        }
    }

    /// Respawns server `i` at its spec address (fresh instance, fresh
    /// nonce, spec-initial state) and waits for its listener.
    ///
    /// # Errors
    ///
    /// Propagates spawn and readiness failures.
    pub fn respawn_server(&mut self, i: usize) -> Result<(), String> {
        self.spawn_server(i).map_err(|e| e.to_string())?;
        self.wait_servers_ready(Duration::from_secs(10))
    }

    /// Waits for every worker process to exit, then parses their reports.
    /// Servers keep running (they serve forever) — call
    /// [`shutdown`](Self::shutdown) or drop the harness to stop them.
    ///
    /// # Errors
    ///
    /// Returns a diagnostic (with log tails) if a worker exits nonzero,
    /// fails to produce a parseable report, or the deadline passes.
    pub fn wait_workers(&mut self, deadline: Duration) -> Result<Vec<WorkerReport>, String> {
        let start = Instant::now();
        loop {
            let all_done = self.workers.iter_mut().all(|w| !w.is_running());
            if all_done {
                break;
            }
            if start.elapsed() >= deadline {
                let stuck: Vec<&str> = self
                    .workers
                    .iter_mut()
                    .filter_map(|w| {
                        if w.is_running() {
                            Some(w.name.as_str())
                        } else {
                            None
                        }
                    })
                    .collect();
                return Err(format!(
                    "workers {stuck:?} still running after {deadline:?}"
                ));
            }
            std::thread::sleep(Duration::from_millis(50));
        }
        let mut reports = Vec::new();
        for w in 0..self.workers.len() {
            let guard = &mut self.workers[w];
            let status = guard.child.wait().map_err(|e| e.to_string())?;
            if !status.success() {
                return Err(format!(
                    "{} exited with {status}\n--- log tail ---\n{}",
                    guard.name,
                    guard.log_tail(40)
                ));
            }
            let path = self.report_path(w);
            let json = fs::read_to_string(&path)
                .map_err(|e| format!("worker {w} wrote no report at {}: {e}", path.display()))?;
            reports.push(
                WorkerReport::from_json(&json)
                    .map_err(|e| format!("worker {w} report unparseable: {e}"))?,
            );
        }
        Ok(reports)
    }

    /// Kills every remaining child (servers and workers). Also run by
    /// `Drop`; exposed so tests can assert the post-shutdown state.
    pub fn shutdown(&mut self) {
        for guard in self.servers.iter_mut().flatten() {
            guard.kill_now();
        }
        for guard in &mut self.workers {
            guard.kill_now();
        }
    }

    /// Pids of all children ever spawned and not yet respawned-over, for
    /// leak checks.
    pub fn child_pids(&self) -> Vec<u32> {
        self.servers
            .iter()
            .flatten()
            .map(ChildGuard::pid)
            .chain(self.workers.iter().map(ChildGuard::pid))
            .collect()
    }
}

impl Drop for ClusterHarness {
    fn drop(&mut self) {
        self.shutdown();
    }
}
