//! `ps-serve` — one parameter-server process of a real Sync-Switch
//! cluster.
//!
//! Reads a [`ClusterSpec`] JSON file, builds the spec's seeded workload
//! model to obtain the tier's initial parameters (every process of the
//! cluster builds the same model, so no parameter shipping is needed at
//! startup), binds the spec address for its server index, prints a
//! readiness line, and serves the full wire protocol — pushes, pulls,
//! stage-2 sync rounds, snapshot/restore, and the `Hello` identity
//! handshake — until killed. There is no graceful-shutdown path on
//! purpose: the process *is* the server, and the harness stops it the way
//! a cluster manager would, with a signal.
//!
//! ```text
//! ps-serve --spec cluster.json --index 0
//! ```

use std::path::{Path, PathBuf};
use std::process::ExitCode;
use std::time::Duration;

use sync_switch::deploy::ClusterSpec;
use sync_switch::ps::TcpServerHost;

/// How often the serving loop dumps its stats snapshot to the metrics
/// file. The process has no graceful-shutdown path (the harness SIGKILLs
/// it), so the periodic dump *is* the final snapshot — the interval bounds
/// how much accounting a kill can lose.
const METRICS_DUMP_EVERY: Duration = Duration::from_millis(100);

/// Where this server's metrics dump goes: `server-<index>.metrics.json`
/// next to the spec file, i.e. in the harness's run directory.
fn metrics_path(spec_path: &str, index: usize) -> PathBuf {
    let dir = Path::new(spec_path).parent().unwrap_or(Path::new("."));
    dir.join(format!("server-{index}.metrics.json"))
}

/// Writes `json` to `path` via a same-directory temp file and rename, so a
/// reader (the harness merging cluster metrics mid-run) never observes a
/// half-written snapshot.
fn write_atomic(path: &Path, json: &str) -> std::io::Result<()> {
    let tmp = path.with_extension("json.tmp");
    std::fs::write(&tmp, json)?;
    std::fs::rename(&tmp, path)
}

/// Parsed command line of `ps-serve`.
///
/// The binary deliberately takes almost nothing on the command line: the
/// entire tier layout lives in the spec file, shared verbatim with every
/// other process of the cluster, and the only per-process fact is *which*
/// server this one is.
#[derive(Debug)]
struct ServeConfig {
    /// Path of the [`ClusterSpec`] JSON file.
    spec_path: String,
    /// This process's server index into the spec's `servers` list — it
    /// binds `servers[index]` and owns that index's shard range.
    index: usize,
}

impl ServeConfig {
    /// Parses `--spec <path> --index <n>` (both required).
    fn from_args(args: impl Iterator<Item = String>) -> Result<Self, String> {
        let mut spec_path = None;
        let mut index = None;
        let mut args = args.peekable();
        while let Some(arg) = args.next() {
            match arg.as_str() {
                "--spec" => spec_path = Some(args.next().ok_or("--spec needs a path")?),
                "--index" => {
                    let v = args.next().ok_or("--index needs a number")?;
                    index = Some(
                        v.parse::<usize>()
                            .map_err(|e| format!("bad --index: {e}"))?,
                    );
                }
                other => {
                    return Err(format!(
                        "unknown argument {other:?} (usage: ps-serve --spec <file> --index <n>)"
                    ))
                }
            }
        }
        Ok(ServeConfig {
            spec_path: spec_path.ok_or("missing --spec <file>")?,
            index: index.ok_or("missing --index <n>")?,
        })
    }
}

fn run() -> Result<(), String> {
    let cfg = ServeConfig::from_args(std::env::args().skip(1))?;
    let json = std::fs::read_to_string(&cfg.spec_path)
        .map_err(|e| format!("cannot read spec {}: {e}", cfg.spec_path))?;
    let spec = ClusterSpec::from_json(&json)?;
    let addrs = spec.server_addrs()?;
    if cfg.index >= addrs.len() {
        return Err(format!(
            "--index {} out of range: spec names {} servers",
            cfg.index,
            addrs.len()
        ));
    }
    // Every process builds the same seeded model; its flattened parameters
    // are the tier's agreed initial state.
    let kind = spec.workload_kind()?;
    let (model, _train, _test) = kind.build(spec.seed);
    let initial = model.params_flat();
    let host = TcpServerHost::bind(
        addrs[cfg.index],
        &initial,
        spec.shards,
        addrs.len(),
        cfg.index,
    )
    .map_err(|e| format!("cannot bind {}: {e}", addrs[cfg.index]))?;
    // The readiness line: printed only after the listener is accepting.
    // The harness and the workers do not parse it (readiness is probed
    // over the wire), but the log line pins down startup timing.
    println!(
        "ps-serve ready server={} addr={} workload={} params={} shards={} nonce={:#018x}",
        cfg.index,
        host.local_addr(),
        spec.workload,
        initial.len(),
        spec.shards,
        host.nonce(),
    );
    // Serve until killed. The accept loop runs on its own thread; the main
    // thread becomes the telemetry loop, dumping the request-accounting
    // snapshot so a live scrape-by-file is always at most one interval
    // stale — and so the file left behind after a SIGKILL is a bounded-lag
    // final snapshot.
    let metrics = metrics_path(&cfg.spec_path, cfg.index);
    loop {
        if let Err(e) = write_atomic(&metrics, &host.stats_snapshot().to_json()) {
            eprintln!("ps-serve: cannot write metrics {}: {e}", metrics.display());
        }
        std::thread::sleep(METRICS_DUMP_EVERY);
    }
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("ps-serve: {msg}");
            ExitCode::FAILURE
        }
    }
}
