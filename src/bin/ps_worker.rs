//! `ps-worker` — one training-client process of a real Sync-Switch
//! cluster.
//!
//! Reads the same [`ClusterSpec`] JSON file as the `ps-serve` tier, builds
//! the seeded workload, dials every server, validates the tier layout with
//! the wire `Hello` handshake (retrying until late-starting servers bind),
//! then runs the spec's BSP/ASP/SSP segments in order over the remote tier
//! and writes a [`WorkerReport`] JSON document on exit.
//!
//! Crash recovery: the worker checkpoints at every segment boundary (both
//! its own trainer checkpoint and the per-server supervisor snapshots). If
//! a segment dies on an unreachable server — surfacing as
//! `PsError::WorkerPanicked`/`ConnLost`/`Timeout`/`RetriesExhausted` — the
//! worker waits for the cluster manager to respawn the server
//! (`ServerSupervisor::heal_respawned`, which detects the respawn by its
//! changed instance nonce and replays the snapshot), rolls the tier back
//! to the segment-start checkpoint, and re-runs the segment.
//!
//! ```text
//! ps-worker --spec cluster.json --report worker-0.report.json
//! ```

use std::process::ExitCode;

use sync_switch::deploy::{
    ClusterSpec, ControllerDecision, SegmentOutcome, ServerStatsSummary, WorkerReport,
};
use sync_switch::ps::{NetPort, PsError, ServerSupervisor, SyncController, Trainer, WorkerPort};

/// Parsed command line of `ps-worker`.
///
/// As with `ps-serve`, everything about the run — workload, segments,
/// server addresses, retry budgets — comes from the shared spec file; the
/// command line only says where the spec is and where to leave the report.
#[derive(Debug)]
struct WorkerConfig {
    /// Path of the [`ClusterSpec`] JSON file.
    spec_path: String,
    /// Path the [`WorkerReport`] JSON is written to on success.
    report_path: String,
}

impl WorkerConfig {
    /// Parses `--spec <path> --report <path>` (both required).
    fn from_args(args: impl Iterator<Item = String>) -> Result<Self, String> {
        let mut spec_path = None;
        let mut report_path = None;
        let mut args = args.peekable();
        while let Some(arg) = args.next() {
            match arg.as_str() {
                "--spec" => spec_path = Some(args.next().ok_or("--spec needs a path")?),
                "--report" => report_path = Some(args.next().ok_or("--report needs a path")?),
                other => {
                    return Err(format!(
                    "unknown argument {other:?} (usage: ps-worker --spec <file> --report <file>)"
                ))
                }
            }
        }
        Ok(WorkerConfig {
            spec_path: spec_path.ok_or("missing --spec <file>")?,
            report_path: report_path.ok_or("missing --report <file>")?,
        })
    }
}

/// Whether a segment failure means "a server became unreachable" (worth
/// waiting out a respawn and retrying) as opposed to a training failure
/// like divergence (fatal).
fn is_crash(e: &PsError) -> bool {
    matches!(
        e,
        PsError::WorkerPanicked { .. }
            | PsError::ConnLost { .. }
            | PsError::Timeout { .. }
            | PsError::RetriesExhausted { .. }
    )
}

/// Crash-retry budget per segment: each retry already waits out a full
/// respawn, so repeated exhaustion means the tier is not coming back.
const MAX_CRASH_RETRIES: u64 = 3;

/// Where this worker's Chrome trace goes: `foo.report.json` →
/// `foo.trace.json`, or `<report>.trace.json` when the report path does not
/// follow the harness's naming.
fn trace_path_for(report_path: &str) -> String {
    match report_path.strip_suffix(".report.json") {
        Some(stem) => format!("{stem}.trace.json"),
        None => format!("{report_path}.trace.json"),
    }
}

fn run() -> Result<(), String> {
    let cfg = WorkerConfig::from_args(std::env::args().skip(1))?;
    let json = std::fs::read_to_string(&cfg.spec_path)
        .map_err(|e| format!("cannot read spec {}: {e}", cfg.spec_path))?;
    let spec = ClusterSpec::from_json(&json)?;
    let kind = spec.workload_kind()?;
    let (model, train, test) = kind.build(spec.seed);
    let param_count = model.params_flat().len();
    let addrs = spec.server_addrs()?;

    let port = NetPort::connect(
        param_count,
        spec.shards,
        &addrs,
        spec.sync_every,
        spec.retry(),
    )
    .map_err(|e| format!("connect: {e}"))?;
    // Readiness handshake: keeps re-dialing servers that have not bound
    // yet, then verifies every server's identity and shard slice against
    // this spec before a single gradient moves.
    let infos = port
        .router()
        .handshake(spec.handshake_deadline())
        .map_err(|e| format!("handshake: {e}"))?;
    for info in &infos {
        println!(
            "ps-worker connected server={} shards={}+{} nonce={:#018x}",
            info.server, info.first_shard, info.shard_count, info.nonce
        );
    }

    let trainer_cfg = spec.trainer_config()?;
    let mut trainer = Trainer::with_port(model, train, test, trainer_cfg, WorkerPort::Net(port));
    let mut sup = ServerSupervisor::new(addrs.len());
    sup.checkpoint(trainer.net_router().expect("net data plane"))
        .map_err(|e| format!("initial checkpoint: {e}"))?;
    let mut ck = trainer.checkpoint();

    // The adaptive controller, when the spec asks for one: BSP/ASP
    // segments then run under whatever protocol the controller last
    // decided on (the first segment's protocol seeds the discipline), and
    // every decision is recorded into the report.
    let mut controller = spec
        .controller
        .as_ref()
        .map(|c| SyncController::new(c.to_config()));
    if controller.is_some() {
        if let Some(first) = spec.segments.first() {
            if let Some(p) = first.parse_protocol()? {
                // A zero-step segment records the starting protocol
                // without training a step.
                trainer
                    .run_segment(p, 0)
                    .map_err(|e| format!("seed protocol: {e}"))?;
            }
        }
    }

    let mut outcomes: Vec<SegmentOutcome> = Vec::new();
    let mut healed_total = 0u64;
    for seg in &spec.segments {
        let protocol = seg.parse_protocol()?;
        let mut crash_retries = 0u64;
        let mut healed_seg = 0u64;
        let report = loop {
            let res = match (&mut controller, protocol) {
                (Some(ctl), Some(_)) => ctl.run_segment(&mut trainer, seg.steps),
                // An SSP segment under the controller uses the measured
                // (retuned) bound, floored by the spec's.
                (Some(ctl), None) => {
                    trainer.run_ssp_segment(seg.ssp_bound.max(ctl.ssp_bound()), seg.steps)
                }
                (None, Some(p)) => trainer.run_segment(p, seg.steps),
                (None, None) => trainer.run_ssp_segment(seg.ssp_bound, seg.steps),
            };
            match res {
                Ok(report) => break report,
                Err(e) if is_crash(&e) && crash_retries < MAX_CRASH_RETRIES => {
                    eprintln!(
                        "ps-worker: segment {:?} hit {e}; waiting for the tier to heal",
                        seg.protocol
                    );
                    let healed = sup
                        .heal_respawned(
                            trainer.net_router().expect("net data plane"),
                            spec.heal_deadline(),
                        )
                        .map_err(|e| format!("tier did not heal: {e}"))?;
                    // Roll the whole tier back to the segment-start
                    // checkpoint so the re-run starts from a consistent
                    // state (the heal itself only replays the respawned
                    // server's snapshot).
                    trainer.restore(&ck).map_err(|e| format!("rollback: {e}"))?;
                    trainer.drain_sync();
                    healed_seg += healed as u64;
                    crash_retries += 1;
                    eprintln!(
                        "ps-worker: healed {healed} server(s), retrying segment {:?} \
                         (attempt {})",
                        seg.protocol,
                        crash_retries + 1
                    );
                }
                Err(e) => return Err(format!("segment {:?} failed: {e}", seg.protocol)),
            }
        };
        println!(
            "ps-worker segment {:?} done: {} steps in {:?} ({:.0} steps/s), final loss {:.4}",
            seg.protocol,
            report.steps,
            report.wall_time,
            report.steps_per_sec(),
            report.final_loss
        );
        outcomes.push(SegmentOutcome {
            protocol: seg.protocol.clone(),
            steps: report.steps,
            wall_time_ms: report.wall_time.as_millis() as u64,
            steps_per_sec: report.steps_per_sec(),
            final_loss: f64::from(report.final_loss),
            sync_rounds: report.sync_rounds,
            healed_servers: healed_seg,
            crash_retries,
        });
        healed_total += healed_seg;
        // Segment boundary: quiesce stage-2, then re-checkpoint both
        // layers (trainer state for rollback, per-server snapshots +
        // nonces for respawn detection).
        trainer.drain_sync();
        ck = trainer.checkpoint();
        sup.checkpoint(trainer.net_router().expect("net data plane"))
            .map_err(|e| format!("segment checkpoint: {e}"))?;
    }

    // Final telemetry sweep: scrape every server's request accounting over
    // the `Stats` wire frame (a crashed-and-gone server scrapes as `None`
    // and is simply absent from the report) and dump this process's trace
    // ring next to the report for chrome://tracing.
    let server_stats: Vec<ServerStatsSummary> = trainer
        .net_router()
        .expect("net data plane")
        .scrape_all_stats()
        .iter()
        .flatten()
        .map(ServerStatsSummary::from_snapshot)
        .collect();
    if let Some(bus) = trainer.telemetry() {
        let trace_path = trace_path_for(&cfg.report_path);
        let trace = bus.trace.chrome_trace_json(u64::from(std::process::id()));
        if let Err(e) = std::fs::write(&trace_path, trace) {
            eprintln!("ps-worker: cannot write trace {trace_path}: {e}");
        }
    }

    let controller_decisions: Vec<ControllerDecision> = controller
        .as_ref()
        .map(|ctl| {
            ctl.decisions()
                .iter()
                .map(ControllerDecision::from_record)
                .collect()
        })
        .unwrap_or_default();
    for d in &controller_decisions {
        println!(
            "ps-worker controller segment {}: {} -> {} (ssp bound {}): {}",
            d.segment, d.from, d.to, d.ssp_bound, d.reason
        );
    }

    let final_loss = trainer.training_loss();
    let threshold = kind.loss_threshold();
    let report = WorkerReport {
        workload: spec.workload.clone(),
        segments: outcomes,
        final_loss: f64::from(final_loss),
        loss_threshold: f64::from(threshold),
        converged: final_loss.is_finite() && final_loss < threshold,
        accuracy: trainer.evaluate(),
        finite: trainer.check_finite(),
        healed_servers: healed_total,
        server_stats,
        controller_decisions,
    };
    std::fs::write(&cfg.report_path, report.to_json())
        .map_err(|e| format!("cannot write report {}: {e}", cfg.report_path))?;
    println!(
        "ps-worker done: loss {:.4} (gate {threshold}), accuracy {:.3}, converged={}",
        report.final_loss, report.accuracy, report.converged
    );
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("ps-worker: {msg}");
            ExitCode::FAILURE
        }
    }
}
