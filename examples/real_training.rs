//! Real distributed training on the in-process parameter server: worker
//! threads, a real BSP barrier, real stale gradients — driven by the same
//! Sync-Switch policy engine as the simulations.
//!
//! ```sh
//! cargo run --release --example real_training
//! ```

use std::time::Duration;

use sync_switch::prelude::*;
use sync_switch_nn::{Dataset, Network};
use sync_switch_ps::{ServerTopology, Trainer, TrainerConfig, TransportKind};
use sync_switch_workloads::{LrSchedule, TrainableKind};

fn main() {
    // A real classification problem: 4-class synthetic images, sharded
    // across 4 worker threads.
    let data = Dataset::synthetic_images(4, 200, 8, 0.35, 42);
    let (train, test) = data.split(0.2);
    println!(
        "Dataset: {} train / {} test examples, {} classes, {}-dim features",
        train.len(),
        test.len(),
        train.classes(),
        train.dim()
    );

    // --- 1. Protocol comparison at the parameter-server level ------------
    let make_trainer = || {
        Trainer::new(
            Network::mlp(64, &[48, 24], 4, 42),
            train.clone(),
            test.clone(),
            TrainerConfig::new(4, 16, 0.08, 0.9).with_seed(42),
        )
    };

    println!("\nStatic protocol comparison (400 steps, 4 workers):");
    for protocol in [SyncProtocol::Bsp, SyncProtocol::Asp] {
        let mut trainer = make_trainer();
        let mut wall = Duration::ZERO;
        let mut staleness = sync_switch_ps::StalenessHistogram::new();
        for _ in 0..8 {
            let seg = trainer.run_segment(protocol, 50).expect("training runs");
            wall += seg.wall_time;
            staleness.merge(&seg.staleness);
        }
        println!(
            "  {protocol}: accuracy {:.3}  wall {:.2?}  mean gradient staleness {:.2} (max {})",
            trainer.evaluate(),
            wall,
            staleness.mean(),
            staleness.max().unwrap_or(0),
        );
    }

    // --- 2. Full Sync-Switch pipeline over the real backend --------------
    println!("\nSync-Switch over the real parameter server (25% BSP, then ASP):");
    let mut setup = ExperimentSetup::one();
    setup.cluster_size = 4;
    setup.workload.hyper.total_steps = 400;
    setup.workload.hyper.batch_size = 16;
    setup.workload.hyper.learning_rate = 0.02; // per-worker η; BSP uses n·η
    setup.workload.hyper.lr_schedule = LrSchedule::piecewise(vec![(200, 0.1), (300, 0.01)]);

    let mut backend = PsBackend::new(
        Network::mlp(64, &[48, 24], 4, 42),
        train.clone(),
        test.clone(),
        4,
        42,
    );
    // Slow one worker down mid-run to exercise the elastic policy.
    backend.inject_straggler(1, Duration::from_millis(3));

    let mut policy = SyncSwitchPolicy::new(0.25, 4).with_online(OnlinePolicyKind::Elastic);
    policy.eval_interval = 50;
    policy.detect_chunk = 10;
    policy.tta_target = Some(0.8);
    let report = ClusterManager::new(policy)
        .run(&mut backend, &setup)
        .expect("valid policy");

    println!(
        "  completed {} steps in {:.2} s of wall time",
        report.total_steps, report.total_time_s
    );
    println!(
        "  BSP steps: {}, ASP steps: {}, switches: {}, evicted workers: {:?}",
        report.bsp_steps,
        report.asp_steps,
        report.switches.len(),
        report
            .removed_workers
            .iter()
            .map(|&(_, w)| w)
            .collect::<Vec<_>>(),
    );
    println!(
        "  converged accuracy: {:.3}",
        report.converged_accuracy.unwrap_or(0.0)
    );
    if let Some(tta) = report.tta_s {
        println!(
            "  reached {:.0}% accuracy after {tta:.2} s",
            report.tta_target * 100.0
        );
    }

    // --- 3. Workload breadth: the trainable registry ---------------------
    // Every registered workload (dense MLP, conv-with-locality, sparse
    // embedding) runs through the identical Trainer code path.
    println!("\nTrainable workload registry (BSP then ASP, 120 steps each):");
    for kind in TrainableKind::all() {
        let (model, train, test) = kind.build(42);
        let h = kind.hyper();
        let cfg = TrainerConfig::new(4, h.batch_size, h.learning_rate, h.momentum).with_seed(42);
        let mut t = Trainer::new(model, train, test, cfg);
        let before = t.evaluate();
        t.run_segment(SyncProtocol::Bsp, 120).expect("bsp runs");
        t.run_segment(SyncProtocol::Asp, 120).expect("asp runs");
        println!(
            "  {kind:<17} accuracy {before:.3} -> {:.3}  loss {:.3}{}",
            t.evaluate(),
            t.training_loss(),
            if kind.has_sparse_gradients() {
                "  (sparse gradients)"
            } else {
                ""
            }
        );
    }

    // The sparse push path in wire terms: the embedding workload over the
    // channel transport, touched-rows-only vs forced-dense pushes.
    println!("\nSparse vs dense ASP pushes (sparse_embedding, channel, 2 servers):");
    for (label, sparse) in [("sparse", true), ("dense", false)] {
        let (model, train, test) = TrainableKind::SparseEmbedding.build(42);
        let h = TrainableKind::SparseEmbedding.hyper();
        let cfg = TrainerConfig::new(4, h.batch_size, h.learning_rate, h.momentum)
            .with_seed(42)
            .with_sparse_push(sparse)
            .with_topology(ServerTopology::new(2, 4).with_transport(TransportKind::Channel));
        let mut t = Trainer::new(model, train, test, cfg);
        let r = t.run_segment(SyncProtocol::Asp, 100).expect("asp runs");
        println!(
            "  {label:<7} push payload {:>9} bytes over {} round trips",
            r.transport.push.bytes_out, r.transport.push.ops
        );
    }
}
