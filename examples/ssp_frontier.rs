//! The synchronization-protocol frontier (paper Fig. 1), measured: BSP,
//! SSP at several staleness bounds, ASP, and Sync-Switch — on a cluster
//! with one mildly slow worker, where the protocols actually separate.
//!
//! Also demonstrates SSP on the *real* parameter server: the bounded-
//! staleness gate throttling fast worker threads.
//!
//! ```sh
//! cargo run --release --example ssp_frontier
//! ```

use std::time::Duration;

use sync_switch::prelude::*;
use sync_switch_cluster::ClusterSim;
use sync_switch_convergence::PhaseInput;
use sync_switch_nn::{Dataset, Network};
use sync_switch_ps::{Trainer, TrainerConfig};

fn main() {
    let setup = ExperimentSetup::one();
    let batch = setup.workload.hyper.batch_size;
    let total = setup.workload.hyper.total_steps;
    let scenario = StragglerScenario::constant(1, 0.010);
    let n = setup.cluster_size;

    println!("Simulated frontier (setup 1, one worker +10ms):\n");
    println!("{:<22} {:>12} {:>10}", "approach", "img/s", "accuracy");

    // BSP / ASP / Sync-Switch through the full pipeline.
    for (name, policy) in [
        ("BSP", SyncSwitchPolicy::static_bsp(n)),
        ("ASP", SyncSwitchPolicy::static_asp(n)),
        ("Sync-Switch @6.25%", SyncSwitchPolicy::paper_policy(&setup)),
    ] {
        let mut backend = SimBackend::new(&setup, 7).with_scenario(scenario.clone());
        let r = ClusterManager::new(policy)
            .run(&mut backend, &setup)
            .expect("valid policy");
        println!(
            "{:<22} {:>12.0} {:>10.3}",
            name,
            r.throughput_images_per_sec(batch),
            r.converged_accuracy.unwrap_or(0.0)
        );
    }

    // SSP at several bounds: throughput from the simulator, accuracy from
    // the surrogate at the iteration-bounded effective staleness.
    for bound in [1u64, 3, 16] {
        let mut sim = ClusterSim::new(&setup, 7);
        sim.set_scenario(scenario.clone());
        let stats = sim.run_ssp(total, bound);
        let eff = stats.mean_staleness.min(bound as f64);
        let mut t = TrajectoryModel::new(&setup, 7);
        while t.step() < total {
            let steps = 2_000.min(total - t.step());
            t.advance(steps, &PhaseInput::asp(eff));
        }
        println!(
            "{:<22} {:>12.0} {:>10.3}",
            format!("SSP (s={bound})"),
            stats.cluster_images_per_sec(batch),
            t.current_ceiling()
        );
    }

    // The same gate on real threads.
    println!("\nReal parameter server, 4 workers, worker 0 slowed by 3 ms:");
    let data = Dataset::gaussian_blobs(4, 100, 8, 0.35, 7);
    let (train, test) = data.split(0.25);
    for bound in [0u64, 2, 1_000] {
        let cfg = TrainerConfig::new(4, 8, 0.04, 0.9)
            .with_seed(7)
            .with_straggler(0, Duration::from_millis(3));
        let mut trainer = Trainer::new(
            Network::mlp(8, &[16], 4, 7),
            train.clone(),
            test.clone(),
            cfg,
        );
        let seg = trainer.run_ssp_segment(bound, 120).expect("ssp runs");
        let per_worker: Vec<usize> = seg.worker_profiles.iter().map(|p| p.steps()).collect();
        println!(
            "  bound {bound:>4}: wall {:>7.1?}  steps/worker {:?}  mean staleness {:.2}",
            seg.wall_time,
            per_worker,
            seg.staleness.mean()
        );
    }
    println!("\nTighter bounds equalize worker progress (throttling to the straggler);");
    println!("loose bounds recover ASP throughput with unbounded parameter age.");
}
