//! The synchronization-protocol frontier (paper Fig. 1), measured: BSP,
//! SSP at several staleness bounds, ASP, and Sync-Switch — on a cluster
//! with one mildly slow worker, where the protocols actually separate.
//!
//! Also runs the same staleness sweep on the *real* parameter server —
//! worker threads against a channel-transport PS tier — and prints the
//! sim-vs-real staleness delta per bound, then calibrates the simulator's
//! `NetworkModel` against the wire latencies the transport tier measured.
//!
//! ```sh
//! cargo run --release --example ssp_frontier
//! ```

use std::time::Duration;

use sync_switch::prelude::*;
use sync_switch_cluster::{ClusterSim, NetworkModel};
use sync_switch_convergence::PhaseInput;
use sync_switch_nn::{Dataset, Network};
use sync_switch_ps::{ServerTopology, Trainer, TrainerConfig, TransportKind};

fn main() {
    let setup = ExperimentSetup::one();
    let batch = setup.workload.hyper.batch_size;
    let total = setup.workload.hyper.total_steps;
    let scenario = StragglerScenario::constant(1, 0.010);
    let n = setup.cluster_size;

    println!("Simulated frontier (setup 1, one worker +10ms):\n");
    println!("{:<22} {:>12} {:>10}", "approach", "img/s", "accuracy");

    // BSP / ASP / Sync-Switch through the full pipeline.
    for (name, policy) in [
        ("BSP", SyncSwitchPolicy::static_bsp(n)),
        ("ASP", SyncSwitchPolicy::static_asp(n)),
        ("Sync-Switch @6.25%", SyncSwitchPolicy::paper_policy(&setup)),
    ] {
        let mut backend = SimBackend::new(&setup, 7).with_scenario(scenario.clone());
        let r = ClusterManager::new(policy)
            .run(&mut backend, &setup)
            .expect("valid policy");
        println!(
            "{:<22} {:>12.0} {:>10.3}",
            name,
            r.throughput_images_per_sec(batch),
            r.converged_accuracy.unwrap_or(0.0)
        );
    }

    // SSP at several bounds: throughput from the simulator, accuracy from
    // the surrogate at the iteration-bounded effective staleness.
    for bound in [1u64, 3, 16] {
        let mut sim = ClusterSim::new(&setup, 7);
        sim.set_scenario(scenario.clone());
        let stats = sim.run_ssp(total, bound);
        let eff = stats.mean_staleness.min(bound as f64);
        let mut t = TrajectoryModel::new(&setup, 7);
        while t.step() < total {
            let steps = 2_000.min(total - t.step());
            t.advance(steps, &PhaseInput::asp(eff));
        }
        println!(
            "{:<22} {:>12.0} {:>10.3}",
            format!("SSP (s={bound})"),
            stats.cluster_images_per_sec(batch),
            t.current_ceiling()
        );
    }

    // The same staleness sweep, sim vs the real PS. The real tier runs on
    // the channel transport — 2 servers behind the wire protocol, every
    // push/pull/sync crossing the message boundary — so both sides of the
    // comparison pay a synchronization cost, and the staleness the sim
    // models can be checked against staleness that was measured.
    println!("\nSSP staleness, simulated vs real PS (channel transport, 4 workers,");
    println!("worker 0 slowed by 3 ms, 240 steps per bound):");
    println!(
        "{:<8} {:>10} {:>10} {:>10}  real steps/worker",
        "bound", "sim", "real", "delta"
    );
    let data = Dataset::gaussian_blobs(4, 100, 8, 0.35, 7);
    let (train, test) = data.split(0.25);
    let mut wire = sync_switch_ps::TransportStats::default();
    let mut rows: Vec<(u64, f64, f64)> = Vec::new();
    for bound in [0u64, 1, 2, 4, 1_000] {
        // Simulated mean staleness at this bound (same cluster shape, the
        // sim's 10 ms straggler standing in for the 3 ms thread delay).
        let mut sim = ClusterSim::new(&setup, 7);
        sim.set_scenario(scenario.clone());
        let sim_staleness = sim.run_ssp(total, bound).mean_staleness.min(bound as f64);

        // Measured mean staleness on real worker threads over the wire.
        let cfg = TrainerConfig::new(4, 8, 0.04, 0.9)
            .with_seed(7)
            .with_straggler(0, Duration::from_millis(3))
            .with_topology(ServerTopology::new(2, 4).with_transport(TransportKind::Channel));
        let mut trainer = Trainer::new(
            Network::mlp(8, &[16], 4, 7),
            train.clone(),
            test.clone(),
            cfg,
        );
        let seg = trainer.run_ssp_segment(bound, 240).expect("ssp runs");
        let real = seg.staleness.mean();
        let per_worker: Vec<usize> = seg.worker_profiles.iter().map(|p| p.steps()).collect();
        println!(
            "{:<8} {:>10.2} {:>10.2} {:>+10.2}  {:?}",
            bound,
            sim_staleness,
            real,
            real - sim_staleness,
            per_worker
        );
        rows.push((bound, sim_staleness, real));
        wire = seg.transport;
    }
    println!("\nTighter bounds equalize worker progress (throttling to the straggler);");
    println!("loose bounds recover ASP throughput with unbounded parameter age.");
    println!("The sim caps staleness at the bound; the real tier adds the committed-");
    println!("view lag of two-stage sync on top of the gate (delta > 0 at tight bounds),");
    println!("while at loose bounds real thread scheduling stays below the sim's cap.");

    // Close the loop on that lag: the tightest bound isolates it (the gate
    // contributes nothing at s=0, so whatever staleness the real tier still
    // measures *is* the committed-view lag). Feed it back into the
    // simulator and re-predict the sweep with the calibrated model.
    let (tight_bound, tight_sim, tight_real) = rows[0];
    let lag = (tight_real - tight_sim).max(0.0);
    println!("\nCommitted-view lag measured at bound {tight_bound}: {lag:.2} updates; feeding it");
    println!("back through ClusterSim::set_committed_view_lag and re-predicting:");
    println!(
        "{:<8} {:>10} {:>10} {:>10}",
        "bound", "sim+lag", "real", "delta"
    );
    for &(bound, _, real) in &rows {
        let mut sim = ClusterSim::new(&setup, 7);
        sim.set_scenario(scenario.clone());
        sim.set_committed_view_lag(lag);
        // The cap shifts with the lag: the gate still bounds the scheduling
        // term at `bound`, and the committed view trails by `lag` on top.
        let corrected = sim
            .run_ssp(total, bound)
            .mean_staleness
            .min(bound as f64 + lag);
        println!(
            "{:<8} {:>10.2} {:>10.2} {:>+10.2}",
            bound,
            corrected,
            real,
            real - corrected
        );
    }

    // Calibration hook: fit the simulator's network model to the wire
    // latencies the transport tier just measured (push acks are tiny, pull
    // replies carry the parameter slice — two sizes, two unknowns).
    println!(
        "\nWire cost measured on the last run ({} round trips):",
        wire.total_ops()
    );
    for (name, op) in [
        ("push", wire.push),
        ("pull", wire.pull),
        ("sync", wire.sync),
    ] {
        println!(
            "  {name:<5} {:>8} ops  {:>9.1} µs/op  {:>8.0} B/op",
            op.ops,
            op.mean_us(),
            op.mean_round_trip_bytes()
        );
    }
    match NetworkModel::fit_wire_samples(&wire.latency_samples()) {
        Some(model) => println!(
            "Calibrated NetworkModel: base latency {:.1} µs, bandwidth {:.2} GB/s\n\
             (gcp_default assumes 500 µs / 2 GB/s — loopback queues are that much cheaper\n\
             than a real NIC, which is exactly what the fit is for).",
            model.base_latency_s * 1e6,
            model.bandwidth_bps / 1e9
        ),
        None => println!(
            "Calibration unidentifiable on this run (latency-dominated samples) — \
             sticking with gcp_default."
        ),
    }
}
