//! Quickstart: run Sync-Switch on the paper's experiment setup 1 and
//! compare it against the static BSP and ASP baselines.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use sync_switch::prelude::*;

fn main() {
    // Experiment setup 1: ResNet32 on CIFAR-10, 8 × K80 (simulated).
    let setup = ExperimentSetup::one();
    println!(
        "Workload: {} on {}, {} workers, {} steps",
        setup.workload.model.name,
        setup.workload.dataset.name,
        setup.cluster_size,
        setup.workload.hyper.total_steps
    );

    // The policy the paper derived for this setup: train the first 6.25%
    // of the workload with BSP, then switch to ASP.
    let policy = SyncSwitchPolicy::paper_policy(&setup);
    println!(
        "Policy: [BSP, ASP] switching at {:.3}% of the workload\n",
        policy.timing.switch_fraction * 100.0
    );

    let mut rows = Vec::new();
    for (name, p) in [
        ("BSP (static)", SyncSwitchPolicy::static_bsp(8)),
        ("ASP (static)", SyncSwitchPolicy::static_asp(8)),
        ("Sync-Switch", policy),
    ] {
        let mut backend = SimBackend::new(&setup, 42);
        let report = ClusterManager::new(p)
            .run(&mut backend, &setup)
            .expect("valid policy");
        rows.push((name, report));
    }

    let bsp_time = rows[0].1.total_time_s;
    println!(
        "{:<14} {:>10} {:>12} {:>10} {:>10}",
        "config", "accuracy", "time (min)", "vs BSP", "switches"
    );
    for (name, r) in &rows {
        println!(
            "{:<14} {:>10} {:>12.1} {:>9.1}% {:>10}",
            name,
            r.converged_accuracy
                .map_or("diverged".to_string(), |a| format!("{a:.3}")),
            r.total_time_s / 60.0,
            100.0 * r.total_time_s / bsp_time,
            r.switches.len(),
        );
    }

    let ss = &rows[2].1;
    println!(
        "\nSync-Switch switched at step {} and spent {:.0} s ({:.1}% of the run) on switch overhead.",
        ss.switches[0].step,
        ss.total_switch_overhead_s(),
        100.0 * ss.overhead_fraction()
    );
    if let (Some(ss_tta), Some(bsp_tta)) = (ss.tta_s, rows[0].1.tta_s) {
        println!(
            "Time-to-accuracy ({:.3}): {:.1} min vs BSP {:.1} min — {:.2}x speedup.",
            ss.tta_target,
            ss_tta / 60.0,
            bsp_tta / 60.0,
            bsp_tta / ss_tta
        );
    }
}
