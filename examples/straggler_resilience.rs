//! Online straggler handling: baseline vs greedy vs elastic policies under
//! the paper's transient-straggler scenarios (§VI-B3, Fig. 15).
//!
//! ```sh
//! cargo run --release --example straggler_resilience
//! ```

use sync_switch::prelude::*;
use sync_switch_core::SimBackend as Backend;

fn run(
    setup: &ExperimentSetup,
    online: OnlinePolicyKind,
    scenario: StragglerScenario,
    seed: u64,
) -> TrainingReport {
    let policy = SyncSwitchPolicy::paper_policy(setup).with_online(online);
    let mut backend = Backend::new(setup, seed).with_scenario(scenario);
    ClusterManager::new(policy)
        .run(&mut backend, setup)
        .expect("valid policy")
}

fn main() {
    let setup = ExperimentSetup::one();
    let scenarios = [
        (
            "mild (1 straggler x 1 occurrence, +10ms)",
            StragglerScenario::mild(150.0),
        ),
        (
            "moderate (2 stragglers x 4 occurrences, +30ms)",
            StragglerScenario::moderate(60.0, 150.0),
        ),
    ];

    for (name, scenario) in scenarios {
        println!("Scenario: {name}");
        let baseline = run(&setup, OnlinePolicyKind::Baseline, scenario.clone(), 11);
        for online in OnlinePolicyKind::all() {
            let r = run(&setup, online, scenario.clone(), 11);
            println!(
                "  {:<9} accuracy {:.3}  time {:>6.1} min ({:.3}x baseline)  switches {}  evictions {:?}",
                online.to_string(),
                r.converged_accuracy.unwrap_or(0.0),
                r.total_time_s / 60.0,
                r.total_time_s / baseline.total_time_s,
                r.switches.len(),
                r.removed_workers.iter().map(|&(_, w)| w).collect::<Vec<_>>(),
            );
        }
        println!();
    }

    println!("Takeaways (matching the paper):");
    println!(" - the greedy policy's extra switches cost accuracy — the paper rejects it;");
    println!(" - the elastic policy evicts stragglers for the rest of the BSP budget,");
    println!("   preserving accuracy and beating the baseline on time;");
    println!(" - after the planned switch to ASP the job is immune to transient stragglers.");
}
