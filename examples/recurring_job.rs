//! Offline timing-policy search for a recurring job (paper Algorithm 1).
//!
//! A practitioner faces a new workload: Sync-Switch launches pilot jobs,
//! binary-searches the switch timing, and amortizes the search cost over
//! the job's recurrences.
//!
//! ```sh
//! cargo run --release --example recurring_job
//! ```

use sync_switch::prelude::*;
use sync_switch_core::{SimOracle, TrainingOracle, TrialResult};

fn main() {
    let setup = ExperimentSetup::one();
    println!(
        "Searching the switch timing for {} on {} ({} workers)…\n",
        setup.workload.model.name, setup.workload.dataset.name, setup.cluster_size
    );

    // The oracle runs full (simulated) trainings through the same pipeline
    // a live deployment would use.
    let mut oracle = SimOracle::new(&setup, 7);

    // First recurrence: no known target accuracy — pay for BSP pilot runs.
    let tuner = BinarySearchTuner::new().with_runs(3, 3);
    let outcome = tuner.search(&mut oracle).expect("search succeeds");

    println!(
        "Target accuracy A = {:.3} (from 3 BSP pilot runs), β = {:.2}",
        outcome.target_accuracy, tuner.beta
    );
    println!("\nProbed switch timings:");
    for probe in &outcome.probes {
        println!(
            "  {:>7.3}%  mean acc {:.4}  ({} runs{})  -> {}",
            probe.fraction * 100.0,
            probe.accuracies.iter().sum::<f64>() / probe.accuracies.len().max(1) as f64,
            probe.accuracies.len(),
            if probe.diverged_runs > 0 {
                format!(", {} diverged", probe.diverged_runs)
            } else {
                String::new()
            },
            if probe.accepted {
                "accept (move up)"
            } else {
                "reject (move down)"
            },
        );
    }
    println!(
        "\nFound timing policy: switch at {:.3}% (paper's P1: 6.25%)",
        outcome.timing.switch_fraction * 100.0
    );
    println!(
        "Search cost: {:.2}x one BSP training",
        outcome.search_cost_vs_bsp
    );

    // How quickly does the search pay for itself on recurrences?
    let calib = CalibrationTargets::for_setup(setup.id);
    let per_job_saving = 1.0 - calib.time_fraction_at(outcome.timing.switch_fraction);
    println!(
        "Each recurrence saves {:.1}% of a BSP training; the search amortizes after ~{:.0} recurrences.",
        100.0 * per_job_saving,
        outcome.search_cost_vs_bsp / per_job_saving
    );

    // Later recurrences reuse the recorded target accuracy, skipping pilots.
    let recurring = BinarySearchTuner::new()
        .with_runs(0, 3)
        .with_target(outcome.target_accuracy);
    let verify: TrialResult = oracle.run_trial(outcome.timing.switch_fraction);
    let re_outcome = recurring.search(&mut oracle).expect("search succeeds");
    println!(
        "\nRecurring-job search (target known): {:.2}x BSP, found {:.3}%.",
        re_outcome.search_cost_vs_bsp,
        re_outcome.timing.switch_fraction * 100.0
    );
    println!(
        "Verification run at the found timing: accuracy {:.3}, time {:.1}% of BSP.",
        verify.accuracy.unwrap_or(f64::NAN),
        100.0 * verify.time_vs_bsp
    );
}
