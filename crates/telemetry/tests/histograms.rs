//! Property tests pinning the log2-bucket histogram: the bucket
//! boundaries partition `u64` exactly, every recorded value lands in the
//! bucket whose bounds contain it, and merging per-thread snapshots is
//! indistinguishable from recording everything into one histogram.

use proptest::prelude::*;
use sync_switch_telemetry::{
    bucket_bounds, bucket_index, Histogram, HistogramSnapshot, HIST_BUCKETS,
};

#[test]
fn bucket_bounds_partition_u64_exactly() {
    // Contiguity: each bucket starts one past the previous bucket's end.
    let (lo0, hi0) = bucket_bounds(0);
    assert_eq!((lo0, hi0), (0, 0));
    let mut prev_hi = hi0;
    for i in 1..HIST_BUCKETS {
        let (lo, hi) = bucket_bounds(i);
        assert_eq!(lo, prev_hi + 1, "gap or overlap before bucket {i}");
        assert!(lo <= hi, "inverted bounds at bucket {i}");
        prev_hi = hi;
    }
    // Coverage: the last bucket reaches the top of the domain.
    assert_eq!(prev_hi, u64::MAX);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Every value lands in exactly the bucket whose inclusive bounds
    /// contain it.
    #[test]
    fn values_land_in_their_bucket(v in any::<u64>()) {
        let i = bucket_index(v);
        prop_assert!(i < HIST_BUCKETS);
        let (lo, hi) = bucket_bounds(i);
        prop_assert!(lo <= v && v <= hi, "{v} outside bucket {i} = [{lo},{hi}]");
        // And in no other bucket: the partition test above makes buckets
        // disjoint, so containment in one bucket is uniqueness.
    }

    /// Bucket edges are handled exactly: a bound's value indexes back to
    /// the bucket that owns it.
    #[test]
    fn bucket_edges_round_trip(i in 0usize..HIST_BUCKETS) {
        let (lo, hi) = bucket_bounds(i);
        prop_assert_eq!(bucket_index(lo), i);
        prop_assert_eq!(bucket_index(hi), i);
    }

    /// Recording through the atomic histogram produces the same snapshot
    /// as computing bucket counts by hand.
    #[test]
    fn recorded_values_are_counted_in_the_right_bucket(
        values in proptest::collection::vec(any::<u64>(), 0..200),
    ) {
        let h = Histogram::default();
        let mut expect = vec![0u64; HIST_BUCKETS];
        for &v in &values {
            h.record(v);
            expect[bucket_index(v)] += 1;
        }
        let snap = h.snapshot();
        prop_assert_eq!(&snap.buckets, &expect);
        prop_assert_eq!(snap.count, values.len() as u64);
        prop_assert_eq!(
            snap.sum,
            values.iter().fold(0u64, |a, &v| a.wrapping_add(v))
        );
        prop_assert_eq!(snap.max, values.iter().copied().max().unwrap_or(0));
    }

    /// Merging per-thread snapshots equals one histogram that saw every
    /// sample — the invariant the cluster-wide rollup rests on.
    #[test]
    fn merged_snapshots_equal_the_sum_of_parts(
        parts in proptest::collection::vec(
            proptest::collection::vec(0u64..1_000_000, 0..50),
            1..6,
        ),
    ) {
        let combined = Histogram::default();
        let mut merged = HistogramSnapshot::default();
        for part in &parts {
            let h = Histogram::default();
            for &v in part {
                h.record(v);
                combined.record(v);
            }
            merged.merge(&h.snapshot());
        }
        prop_assert_eq!(merged, combined.snapshot());
    }
}
