//! The telemetry bus of the Sync-Switch reproduction: one dependency-free
//! crate shared by every layer of the PS tier — trainer loops, the wire
//! transport, the servers, and the cluster binaries.
//!
//! Three pieces, all cheap enough for the hot path:
//!
//! * [`MetricsRegistry`] — named atomic [`Counter`]s, [`Gauge`]s, and
//!   fixed log2-bucket [`Histogram`]s. Instruments are acquired once
//!   (one lock + map insert) and then recorded lock-free; a
//!   [`MetricsSnapshot`] is a consistent-enough point-in-time read that
//!   serializes itself to JSON without any serde machinery.
//! * [`Tracer`] — a bounded ring buffer of typed [`TraceEvent`]s (step
//!   spans, barrier waits, push retries, sync rounds, server kills and
//!   heals, watchdog rollbacks, protocol switches) exportable as Chrome
//!   trace-event JSON, so a full chaos run can be opened in
//!   `chrome://tracing` (or <https://ui.perfetto.dev>).
//! * [`ServerStats`] / [`ServerStatsSnapshot`] — the server-side request
//!   accounting (per-opcode counts, payload bytes, seq-dedup hits,
//!   per-shard apply time) that the `Stats` wire frame ships to scrapers.
//!
//! The crate is deliberately free of dependencies (not even the workspace
//! shims): it sits under the per-step path of every worker thread and
//! inside every `ps-serve` process, and its JSON output must not drag a
//! serializer into the server binary.

use std::collections::BTreeMap;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::Arc;
use std::sync::Mutex;
use std::time::Instant;

// ---------------------------------------------------------------------------
// JSON helpers (hand-rolled: no serde in this crate by design)
// ---------------------------------------------------------------------------

/// Appends `s` as a JSON string literal (quoted, escaped) to `out`.
fn push_json_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Appends `ns` nanoseconds as a JSON number of *microseconds* with
/// sub-microsecond precision — the unit Chrome trace events use.
fn push_micros(out: &mut String, ns: u64) {
    out.push_str(&format!("{}.{:03}", ns / 1_000, ns % 1_000));
}

// ---------------------------------------------------------------------------
// Instruments
// ---------------------------------------------------------------------------

/// A monotonically increasing event count. Lock-free; `Relaxed` ordering
/// throughout — telemetry publishes nothing through its own values.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A last-write-wins signed level (queue depths, live worker counts).
#[derive(Debug, Default)]
pub struct Gauge(AtomicI64);

impl Gauge {
    /// Overwrites the level.
    #[inline]
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Adjusts the level by `delta` (may be negative).
    #[inline]
    pub fn add(&self, delta: i64) {
        self.0.fetch_add(delta, Ordering::Relaxed);
    }

    /// Current level.
    #[inline]
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Number of histogram buckets: bucket 0 holds exactly `{0}`, bucket `i`
/// (1..=64) holds `[2^(i-1), 2^i - 1]` — together an exact partition of
/// `u64` (pinned by proptest in `tests/histograms.rs`).
pub const HIST_BUCKETS: usize = 65;

/// The bucket index a value lands in.
#[inline]
pub fn bucket_index(v: u64) -> usize {
    if v == 0 {
        0
    } else {
        64 - v.leading_zeros() as usize
    }
}

/// Inclusive `[lower, upper]` bounds of bucket `i`.
///
/// # Panics
///
/// Panics if `i >= HIST_BUCKETS`.
pub fn bucket_bounds(i: usize) -> (u64, u64) {
    assert!(i < HIST_BUCKETS, "bucket {i} out of range");
    if i == 0 {
        (0, 0)
    } else if i == 64 {
        (1 << 63, u64::MAX)
    } else {
        (1 << (i - 1), (1 << i) - 1)
    }
}

/// A fixed log2-bucket histogram of `u64` samples (durations in ns,
/// payload sizes in bytes). Recording is lock-free: one `fetch_add` per
/// bucket/count/sum plus a `fetch_max`; cheap enough to sit on the
/// server's per-request apply path.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; HIST_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }
}

impl Histogram {
    /// Records one sample.
    #[inline]
    pub fn record(&self, v: u64) {
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// A point-in-time copy. Counters are read individually (`Relaxed`),
    /// so a snapshot taken under concurrent recording may be skewed by
    /// in-flight samples — fine for statistics, never for correctness.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
            buckets: self
                .buckets
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect(),
        }
    }
}

/// Thread-local accumulation buffer for a [`Histogram`]: samples land in
/// plain fields (a handful of scalar ops, no shared cache lines), and
/// reach the shared atomic histogram only on [`flush_into`] — one batch of
/// `fetch_add`s per flush instead of four contended RMWs per sample.
///
/// This is what a per-step hot loop records into: with several worker
/// threads hammering the same histogram every few microseconds, the atomic
/// cache-line traffic of direct [`Histogram::record`] calls is measurable;
/// a local buffer flushed at loop exit is not.
///
/// [`flush_into`]: LocalHistogram::flush_into
#[derive(Debug, Clone)]
pub struct LocalHistogram {
    count: u64,
    sum: u64,
    max: u64,
    buckets: [u64; HIST_BUCKETS],
}

impl Default for LocalHistogram {
    fn default() -> Self {
        LocalHistogram {
            count: 0,
            sum: 0,
            max: 0,
            buckets: [0; HIST_BUCKETS],
        }
    }
}

impl LocalHistogram {
    /// An empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one sample locally.
    #[inline]
    pub fn record(&mut self, v: u64) {
        self.buckets[bucket_index(v)] += 1;
        self.count += 1;
        self.sum = self.sum.wrapping_add(v);
        self.max = self.max.max(v);
    }

    /// Samples recorded since the last flush.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Adds the buffered samples to `h` and resets the buffer. A no-op
    /// when empty, so calling it unconditionally at loop exit is free.
    pub fn flush_into(&mut self, h: &Histogram) {
        if self.count == 0 {
            return;
        }
        for (slot, &n) in h.buckets.iter().zip(&self.buckets) {
            if n > 0 {
                slot.fetch_add(n, Ordering::Relaxed);
            }
        }
        h.count.fetch_add(self.count, Ordering::Relaxed);
        h.sum.fetch_add(self.sum, Ordering::Relaxed);
        h.max.fetch_max(self.max, Ordering::Relaxed);
        *self = Self::default();
    }
}

/// A plain (non-atomic) histogram state: what crosses the wire and what
/// merges across threads, servers, and processes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Total recorded samples.
    pub count: u64,
    /// Sum of all samples (wraps on overflow, like the atomic it mirrors).
    pub sum: u64,
    /// Largest recorded sample.
    pub max: u64,
    /// Per-bucket counts; always `HIST_BUCKETS` entries.
    pub buckets: Vec<u64>,
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        HistogramSnapshot {
            count: 0,
            sum: 0,
            max: 0,
            buckets: vec![0; HIST_BUCKETS],
        }
    }
}

impl HistogramSnapshot {
    /// Element-wise accumulate: after merging every per-thread snapshot
    /// into one, the result equals a single histogram that saw all samples
    /// (pinned by proptest).
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        self.count = self.count.wrapping_add(other.count);
        self.sum = self.sum.wrapping_add(other.sum);
        self.max = self.max.max(other.max);
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a = a.wrapping_add(*b);
        }
    }

    /// Mean sample value, or 0.0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Appends this snapshot as a JSON object. Buckets are emitted
    /// sparsely, keyed by the bucket's lower bound.
    fn write_json(&self, out: &mut String) {
        out.push_str(&format!(
            "{{\"count\":{},\"sum\":{},\"max\":{},\"mean\":{:.1},\"buckets\":{{",
            self.count,
            self.sum,
            self.max,
            self.mean()
        ));
        let mut first = true;
        for (i, &n) in self.buckets.iter().enumerate() {
            if n == 0 {
                continue;
            }
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str(&format!("\"{}\":{}", bucket_bounds(i).0, n));
        }
        out.push_str("}}");
    }
}

// ---------------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------------

/// A named registry of instruments. Acquisition (`counter`/`gauge`/
/// `histogram`) takes a lock and interns the name; the returned `Arc`
/// handle is then recorded through lock-free, so hot paths acquire once
/// and keep the handle.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    counters: Mutex<BTreeMap<String, Arc<Counter>>>,
    gauges: Mutex<BTreeMap<String, Arc<Gauge>>>,
    histograms: Mutex<BTreeMap<String, Arc<Histogram>>>,
}

impl MetricsRegistry {
    /// A fresh, empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// The counter named `name`, created on first use.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        let mut map = self.counters.lock().expect("metrics registry poisoned");
        match map.get(name) {
            Some(c) => Arc::clone(c),
            None => {
                let c = Arc::new(Counter::default());
                map.insert(name.to_string(), Arc::clone(&c));
                c
            }
        }
    }

    /// The gauge named `name`, created on first use.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        let mut map = self.gauges.lock().expect("metrics registry poisoned");
        match map.get(name) {
            Some(g) => Arc::clone(g),
            None => {
                let g = Arc::new(Gauge::default());
                map.insert(name.to_string(), Arc::clone(&g));
                g
            }
        }
    }

    /// The histogram named `name`, created on first use.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        let mut map = self.histograms.lock().expect("metrics registry poisoned");
        match map.get(name) {
            Some(h) => Arc::clone(h),
            None => {
                let h = Arc::new(Histogram::default());
                map.insert(name.to_string(), Arc::clone(&h));
                h
            }
        }
    }

    /// A point-in-time copy of every instrument.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            counters: self
                .counters
                .lock()
                .expect("metrics registry poisoned")
                .iter()
                .map(|(k, v)| (k.clone(), v.get()))
                .collect(),
            gauges: self
                .gauges
                .lock()
                .expect("metrics registry poisoned")
                .iter()
                .map(|(k, v)| (k.clone(), v.get()))
                .collect(),
            histograms: self
                .histograms
                .lock()
                .expect("metrics registry poisoned")
                .iter()
                .map(|(k, v)| (k.clone(), v.snapshot()))
                .collect(),
        }
    }
}

/// A plain copy of a registry's instruments, mergeable across threads and
/// processes (the `ClusterHarness` folds per-process snapshots into one
/// cluster-wide report) and serializable to JSON without serde.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsSnapshot {
    /// Counter name → value.
    pub counters: BTreeMap<String, u64>,
    /// Gauge name → level.
    pub gauges: BTreeMap<String, i64>,
    /// Histogram name → snapshot.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

impl MetricsSnapshot {
    /// Accumulates `other` into `self`: counters and gauges add, same-name
    /// histograms merge bucket-wise, unknown names are inserted.
    pub fn merge(&mut self, other: &MetricsSnapshot) {
        for (k, v) in &other.counters {
            *self.counters.entry(k.clone()).or_insert(0) += v;
        }
        for (k, v) in &other.gauges {
            *self.gauges.entry(k.clone()).or_insert(0) += v;
        }
        for (k, v) in &other.histograms {
            self.histograms.entry(k.clone()).or_default().merge(v);
        }
    }

    /// The whole snapshot as one JSON object.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(256);
        out.push_str("{\"counters\":{");
        for (i, (k, v)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            push_json_str(&mut out, k);
            out.push_str(&format!(":{v}"));
        }
        out.push_str("},\"gauges\":{");
        for (i, (k, v)) in self.gauges.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            push_json_str(&mut out, k);
            out.push_str(&format!(":{v}"));
        }
        out.push_str("},\"histograms\":{");
        for (i, (k, v)) in self.histograms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            push_json_str(&mut out, k);
            out.push(':');
            v.write_json(&mut out);
        }
        out.push_str("}}");
        out
    }
}

// ---------------------------------------------------------------------------
// Event tracing
// ---------------------------------------------------------------------------

/// The typed events the tier emits. Spans carry a duration; the rest are
/// instants.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceKind {
    /// One worker training step (pull → compute → push), a span.
    Step { worker: u64, step: u64 },
    /// Time a worker spent blocked on the BSP barrier or the SSP gate, a
    /// span.
    BarrierWait { worker: u64 },
    /// A wire request attempt failed and is being re-sent (instant).
    PushRetry { server: u64, attempt: u64 },
    /// One stage-2 reconciliation round (drains included), a span.
    SyncRound { round: u64 },
    /// A server was killed, or detected dead (instant).
    ServerKill { server: u64 },
    /// A server was healed — revived/respawned and re-seeded (instant).
    ServerHeal { server: u64 },
    /// The divergence watchdog rolled the tier back to a checkpoint
    /// (instant).
    WatchdogRollback { trips: u64 },
    /// A protocol switch was executed (instant). `reason` names the
    /// decision that drove it — the watchdog's rollback, or one of the
    /// adaptive controller's scraped-signal predicates — so a trace reader
    /// can tell *why* the tier changed discipline, not just that it did.
    ProtocolSwitch {
        from: String,
        to: String,
        reason: String,
    },
}

impl TraceKind {
    /// Stable event name (used in the Chrome export and in assertions).
    pub fn name(&self) -> &'static str {
        match self {
            TraceKind::Step { .. } => "step",
            TraceKind::BarrierWait { .. } => "barrier_wait",
            TraceKind::PushRetry { .. } => "push_retry",
            TraceKind::SyncRound { .. } => "sync_round",
            TraceKind::ServerKill { .. } => "server_kill",
            TraceKind::ServerHeal { .. } => "server_heal",
            TraceKind::WatchdogRollback { .. } => "watchdog_rollback",
            TraceKind::ProtocolSwitch { .. } => "protocol_switch",
        }
    }

    /// Chrome trace category.
    fn cat(&self) -> &'static str {
        match self {
            TraceKind::Step { .. } | TraceKind::BarrierWait { .. } => "worker",
            TraceKind::PushRetry { .. } | TraceKind::SyncRound { .. } => "wire",
            TraceKind::ServerKill { .. } | TraceKind::ServerHeal { .. } => "fault",
            TraceKind::WatchdogRollback { .. } | TraceKind::ProtocolSwitch { .. } => "control",
        }
    }

    /// Chrome thread lane: workers on their worker id, fault events on the
    /// server id, control-plane events on lane 0.
    fn tid(&self) -> u64 {
        match *self {
            TraceKind::Step { worker, .. } | TraceKind::BarrierWait { worker } => worker,
            TraceKind::ServerKill { server } | TraceKind::ServerHeal { server } => server,
            TraceKind::PushRetry { server, .. } => server,
            _ => 0,
        }
    }

    /// Appends the event's `args` object.
    fn write_args(&self, out: &mut String) {
        match self {
            TraceKind::Step { worker, step } => {
                out.push_str(&format!("{{\"worker\":{worker},\"step\":{step}}}"));
            }
            TraceKind::BarrierWait { worker } => {
                out.push_str(&format!("{{\"worker\":{worker}}}"));
            }
            TraceKind::PushRetry { server, attempt } => {
                out.push_str(&format!("{{\"server\":{server},\"attempt\":{attempt}}}"));
            }
            TraceKind::SyncRound { round } => {
                out.push_str(&format!("{{\"round\":{round}}}"));
            }
            TraceKind::ServerKill { server } | TraceKind::ServerHeal { server } => {
                out.push_str(&format!("{{\"server\":{server}}}"));
            }
            TraceKind::WatchdogRollback { trips } => {
                out.push_str(&format!("{{\"trips\":{trips}}}"));
            }
            TraceKind::ProtocolSwitch { from, to, reason } => {
                out.push_str("{\"from\":");
                push_json_str(out, from);
                out.push_str(",\"to\":");
                push_json_str(out, to);
                out.push_str(",\"reason\":");
                push_json_str(out, reason);
                out.push('}');
            }
        }
    }
}

/// One recorded event: a kind plus its time window relative to the
/// tracer's epoch. `dur_ns == 0` renders as a Chrome instant event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    pub kind: TraceKind,
    /// Start offset from the tracer's epoch, nanoseconds.
    pub start_ns: u64,
    /// Span length in nanoseconds; 0 for instants.
    pub dur_ns: u64,
}

#[derive(Debug, Default)]
struct TraceRing {
    events: VecDeque<TraceEvent>,
    dropped: u64,
}

/// A bounded ring buffer of [`TraceEvent`]s. When full, the oldest event
/// is evicted (and counted), so a long run keeps its most recent window —
/// the part a post-mortem wants — at a hard memory cap.
#[derive(Debug)]
pub struct Tracer {
    epoch: Instant,
    capacity: usize,
    ring: Mutex<TraceRing>,
}

/// Default event capacity (~64Ki events ≈ a few MB).
pub const DEFAULT_TRACE_CAPACITY: usize = 65_536;

impl Default for Tracer {
    fn default() -> Self {
        Tracer::new(DEFAULT_TRACE_CAPACITY)
    }
}

impl Tracer {
    /// A tracer holding at most `capacity` events (minimum 1).
    pub fn new(capacity: usize) -> Self {
        Tracer {
            epoch: Instant::now(),
            capacity: capacity.max(1),
            ring: Mutex::new(TraceRing::default()),
        }
    }

    /// Nanoseconds since this tracer's epoch — the timestamp base every
    /// event uses. Take it *before* the work when recording a span.
    #[inline]
    pub fn now_ns(&self) -> u64 {
        self.epoch.elapsed().as_nanos() as u64
    }

    /// Records an instantaneous event stamped now.
    pub fn instant(&self, kind: TraceKind) {
        let now = self.now_ns();
        self.record(kind, now, 0);
    }

    /// Records a span that started at `start_ns` (from [`Self::now_ns`])
    /// and ends now.
    pub fn span(&self, kind: TraceKind, start_ns: u64) {
        let dur = self.now_ns().saturating_sub(start_ns);
        self.record(kind, start_ns, dur.max(1));
    }

    /// Records a fully specified event.
    pub fn record(&self, kind: TraceKind, start_ns: u64, dur_ns: u64) {
        let mut ring = self.ring.lock().expect("tracer poisoned");
        if ring.events.len() >= self.capacity {
            ring.events.pop_front();
            ring.dropped += 1;
        }
        ring.events.push_back(TraceEvent {
            kind,
            start_ns,
            dur_ns,
        });
    }

    /// Drains `events` into the ring under one lock — the flush half of a
    /// thread-local event buffer. A hot loop pushes onto a plain `Vec` and
    /// flushes periodically, paying the ring mutex once per batch instead
    /// of once per event.
    pub fn record_batch(&self, events: &mut Vec<TraceEvent>) {
        if events.is_empty() {
            return;
        }
        let mut ring = self.ring.lock().expect("tracer poisoned");
        for e in events.drain(..) {
            if ring.events.len() >= self.capacity {
                ring.events.pop_front();
                ring.dropped += 1;
            }
            ring.events.push_back(e);
        }
    }

    /// Copies out the retained events, oldest first.
    pub fn events(&self) -> Vec<TraceEvent> {
        self.ring
            .lock()
            .expect("tracer poisoned")
            .events
            .iter()
            .cloned()
            .collect()
    }

    /// Events evicted because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.ring.lock().expect("tracer poisoned").dropped
    }

    /// Retained event count.
    pub fn len(&self) -> usize {
        self.ring.lock().expect("tracer poisoned").events.len()
    }

    /// Whether no events are retained.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Retained event counts keyed by [`TraceKind::name`] — what the chaos
    /// gate asserts coverage on.
    pub fn counts_by_name(&self) -> BTreeMap<&'static str, u64> {
        let ring = self.ring.lock().expect("tracer poisoned");
        let mut out = BTreeMap::new();
        for e in &ring.events {
            *out.entry(e.kind.name()).or_insert(0) += 1;
        }
        out
    }

    /// The retained window as a Chrome trace-event JSON document
    /// (`{"traceEvents": [...]}`), loadable in `chrome://tracing` or
    /// Perfetto. Spans render as complete (`"ph":"X"`) events, instants as
    /// `"ph":"i"`; `pid` distinguishes processes when a cluster's traces
    /// are merged.
    pub fn chrome_trace_json(&self, pid: u64) -> String {
        let ring = self.ring.lock().expect("tracer poisoned");
        let mut out = String::with_capacity(64 + ring.events.len() * 96);
        out.push_str("{\"traceEvents\":[");
        for (i, e) in ring.events.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("{\"name\":\"");
            out.push_str(e.kind.name());
            out.push_str("\",\"cat\":\"");
            out.push_str(e.kind.cat());
            out.push_str("\",\"ph\":\"");
            out.push_str(if e.dur_ns > 0 { "X" } else { "i" });
            out.push_str("\",\"ts\":");
            push_micros(&mut out, e.start_ns);
            if e.dur_ns > 0 {
                out.push_str(",\"dur\":");
                push_micros(&mut out, e.dur_ns);
            } else {
                // Instant scope: process-wide.
                out.push_str(",\"s\":\"p\"");
            }
            out.push_str(&format!(",\"pid\":{pid},\"tid\":{}", e.kind.tid()));
            out.push_str(",\"args\":");
            e.kind.write_args(&mut out);
            out.push('}');
        }
        out.push_str("]}");
        out
    }
}

// ---------------------------------------------------------------------------
// The bus
// ---------------------------------------------------------------------------

/// One process's telemetry: a metrics registry plus an event tracer,
/// shared by `Arc` across worker threads, the transport, and the control
/// plane. A `None` handle everywhere means telemetry is off and costs one
/// branch.
#[derive(Debug, Default)]
pub struct Telemetry {
    pub metrics: MetricsRegistry,
    pub trace: Tracer,
}

impl Telemetry {
    /// A bus with the default trace capacity.
    pub fn new() -> Self {
        Self::default()
    }

    /// A bus whose tracer holds at most `trace_capacity` events.
    pub fn with_trace_capacity(trace_capacity: usize) -> Self {
        Telemetry {
            metrics: MetricsRegistry::new(),
            trace: Tracer::new(trace_capacity),
        }
    }
}

// ---------------------------------------------------------------------------
// Server-side stats (what the `Stats` wire frame carries)
// ---------------------------------------------------------------------------

/// Per-opcode slots tracked by [`ServerStats`]. Request opcodes are small
/// (`0x01..=0x0d` today); anything outside the range is clamped into the
/// last slot rather than dropped.
pub const OPCODE_SLOTS: usize = 32;

#[inline]
fn opcode_slot(opcode: u8) -> usize {
    (opcode as usize).min(OPCODE_SLOTS - 1)
}

/// The lock-free request accounting a `PsServer` keeps: per-opcode request
/// counts, request/reply payload bytes, sequenced-dedup cache hits, and
/// apply timing (a log2 histogram overall plus cumulative ns/count per
/// owned shard). Lives on the server, recorded by every connection
/// handler, snapshotted by the `Stats` wire frame.
#[derive(Debug)]
pub struct ServerStats {
    requests: [AtomicU64; OPCODE_SLOTS],
    bytes_in: AtomicU64,
    bytes_out: AtomicU64,
    dedup_hits: AtomicU64,
    apply: Histogram,
    shard_apply_ns: Vec<AtomicU64>,
    shard_applies: Vec<AtomicU64>,
}

impl ServerStats {
    /// Accounting for a server owning `shards` local shards.
    pub fn new(shards: usize) -> Self {
        ServerStats {
            requests: std::array::from_fn(|_| AtomicU64::new(0)),
            bytes_in: AtomicU64::new(0),
            bytes_out: AtomicU64::new(0),
            dedup_hits: AtomicU64::new(0),
            apply: Histogram::default(),
            shard_apply_ns: (0..shards).map(|_| AtomicU64::new(0)).collect(),
            shard_applies: (0..shards).map(|_| AtomicU64::new(0)).collect(),
        }
    }

    /// Records one inbound request of `opcode` with `bytes` payload bytes.
    #[inline]
    pub fn record_request(&self, opcode: u8, bytes: usize) {
        self.requests[opcode_slot(opcode)].fetch_add(1, Ordering::Relaxed);
        self.bytes_in.fetch_add(bytes as u64, Ordering::Relaxed);
    }

    /// Records `bytes` reply payload bytes.
    #[inline]
    pub fn record_reply(&self, bytes: usize) {
        self.bytes_out.fetch_add(bytes as u64, Ordering::Relaxed);
    }

    /// Records a sequenced request answered from the dedup cache.
    #[inline]
    pub fn record_dedup_hit(&self) {
        self.dedup_hits.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one gradient apply on local shard `shard` taking `ns`.
    #[inline]
    pub fn record_apply(&self, shard: usize, ns: u64) {
        self.apply.record(ns);
        if let Some(s) = self.shard_apply_ns.get(shard) {
            s.fetch_add(ns, Ordering::Relaxed);
        }
        if let Some(s) = self.shard_applies.get(shard) {
            s.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// A point-in-time copy, stamped with the server's id.
    pub fn snapshot(&self, server: u32) -> ServerStatsSnapshot {
        ServerStatsSnapshot {
            server,
            requests: self
                .requests
                .iter()
                .map(|c| c.load(Ordering::Relaxed))
                .collect(),
            bytes_in: self.bytes_in.load(Ordering::Relaxed),
            bytes_out: self.bytes_out.load(Ordering::Relaxed),
            dedup_hits: self.dedup_hits.load(Ordering::Relaxed),
            apply_ns: self.apply.snapshot(),
            shard_apply_ns: self
                .shard_apply_ns
                .iter()
                .map(|c| c.load(Ordering::Relaxed))
                .collect(),
            shard_applies: self
                .shard_applies
                .iter()
                .map(|c| c.load(Ordering::Relaxed))
                .collect(),
        }
    }
}

/// The plain server-stats state the `Stats` wire frame round-trips and
/// `ps-serve` dumps to disk. Byte-exact codec pinned by proptest in the
/// ps crate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServerStatsSnapshot {
    /// The answering server's index.
    pub server: u32,
    /// Request count per opcode slot; always `OPCODE_SLOTS` entries,
    /// indexed by request opcode.
    pub requests: Vec<u64>,
    /// Cumulative inbound request payload bytes.
    pub bytes_in: u64,
    /// Cumulative outbound reply payload bytes.
    pub bytes_out: u64,
    /// Sequenced requests answered from the dedup cache (replayed acks).
    pub dedup_hits: u64,
    /// Apply-duration histogram (nanoseconds) over every gradient apply.
    pub apply_ns: HistogramSnapshot,
    /// Cumulative apply nanoseconds per owned (local) shard.
    pub shard_apply_ns: Vec<u64>,
    /// Apply count per owned (local) shard.
    pub shard_applies: Vec<u64>,
}

impl Default for ServerStatsSnapshot {
    fn default() -> Self {
        ServerStatsSnapshot {
            server: 0,
            requests: vec![0; OPCODE_SLOTS],
            bytes_in: 0,
            bytes_out: 0,
            dedup_hits: 0,
            apply_ns: HistogramSnapshot::default(),
            shard_apply_ns: Vec::new(),
            shard_applies: Vec::new(),
        }
    }
}

impl ServerStatsSnapshot {
    /// Total requests across every opcode.
    pub fn total_requests(&self) -> u64 {
        self.requests.iter().sum()
    }

    /// The count for one request opcode.
    pub fn requests_for(&self, opcode: u8) -> u64 {
        self.requests[opcode_slot(opcode)]
    }

    /// Accumulates `other` (another server, or a later scrape of the same
    /// one) into `self` for a cluster-wide rollup. Per-shard vectors are
    /// appended — different servers own disjoint shard slices.
    pub fn merge(&mut self, other: &ServerStatsSnapshot) {
        for (a, b) in self.requests.iter_mut().zip(&other.requests) {
            *a = a.wrapping_add(*b);
        }
        self.bytes_in = self.bytes_in.wrapping_add(other.bytes_in);
        self.bytes_out = self.bytes_out.wrapping_add(other.bytes_out);
        self.dedup_hits = self.dedup_hits.wrapping_add(other.dedup_hits);
        self.apply_ns.merge(&other.apply_ns);
        self.shard_apply_ns.extend_from_slice(&other.shard_apply_ns);
        self.shard_applies.extend_from_slice(&other.shard_applies);
    }

    /// The snapshot as one JSON object (what `ps-serve` writes to its
    /// metrics file).
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(512);
        out.push_str(&format!("{{\"server\":{},\"requests\":{{", self.server));
        let mut first = true;
        for (op, &n) in self.requests.iter().enumerate() {
            if n == 0 {
                continue;
            }
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str(&format!("\"{op:#04x}\":{n}"));
        }
        out.push_str(&format!(
            "}},\"total_requests\":{},\"bytes_in\":{},\"bytes_out\":{},\"dedup_hits\":{},\"apply_ns\":",
            self.total_requests(),
            self.bytes_in,
            self.bytes_out,
            self.dedup_hits
        ));
        self.apply_ns.write_json(&mut out);
        out.push_str(",\"shard_apply_ns\":[");
        for (i, v) in self.shard_apply_ns.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&v.to_string());
        }
        out.push_str("],\"shard_applies\":[");
        for (i, v) in self.shard_applies.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&v.to_string());
        }
        out.push_str("]}");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges_round_trip_through_a_snapshot() {
        let reg = MetricsRegistry::new();
        let c = reg.counter("worker.steps");
        c.inc();
        c.add(4);
        // Same name → same instrument.
        reg.counter("worker.steps").inc();
        let g = reg.gauge("workers.live");
        g.set(4);
        g.add(-1);
        let snap = reg.snapshot();
        assert_eq!(snap.counters["worker.steps"], 6);
        assert_eq!(snap.gauges["workers.live"], 3);
    }

    #[test]
    fn histogram_records_into_log2_buckets() {
        let h = Histogram::default();
        for v in [0u64, 1, 2, 3, 4, 1023, 1024, u64::MAX] {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 8);
        assert_eq!(s.max, u64::MAX);
        assert_eq!(s.buckets[0], 1, "zero bucket");
        assert_eq!(s.buckets[1], 1, "{{1}}");
        assert_eq!(s.buckets[2], 2, "[2,3]");
        assert_eq!(s.buckets[3], 1, "[4,7]");
        assert_eq!(s.buckets[10], 1, "[512,1023]");
        assert_eq!(s.buckets[11], 1, "[1024,2047]");
        assert_eq!(s.buckets[64], 1, "top bucket");
    }

    #[test]
    fn snapshot_merge_accumulates() {
        let reg_a = MetricsRegistry::new();
        let reg_b = MetricsRegistry::new();
        reg_a.counter("x").add(2);
        reg_b.counter("x").add(3);
        reg_b.counter("only_b").inc();
        reg_a.histogram("h").record(5);
        reg_b.histogram("h").record(900);
        let mut merged = reg_a.snapshot();
        merged.merge(&reg_b.snapshot());
        assert_eq!(merged.counters["x"], 5);
        assert_eq!(merged.counters["only_b"], 1);
        assert_eq!(merged.histograms["h"].count, 2);
        assert_eq!(merged.histograms["h"].sum, 905);
    }

    #[test]
    fn snapshot_json_is_well_formed() {
        let reg = MetricsRegistry::new();
        reg.counter("a\"b").inc();
        reg.gauge("g").set(-7);
        reg.histogram("h").record(3);
        let json = reg.snapshot().to_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"a\\\"b\":1"), "escaped key: {json}");
        assert!(json.contains("\"g\":-7"));
        assert!(json.contains("\"count\":1"));
    }

    #[test]
    fn tracer_ring_is_bounded_and_counts_drops() {
        let t = Tracer::new(4);
        for step in 0..10 {
            t.instant(TraceKind::Step { worker: 0, step });
        }
        assert_eq!(t.len(), 4);
        assert_eq!(t.dropped(), 6);
        let events = t.events();
        // The *newest* window is retained.
        assert!(matches!(events[0].kind, TraceKind::Step { step: 6, .. }));
        assert!(matches!(events[3].kind, TraceKind::Step { step: 9, .. }));
    }

    #[test]
    fn spans_measure_nonzero_durations() {
        let t = Tracer::default();
        let t0 = t.now_ns();
        std::thread::sleep(std::time::Duration::from_millis(2));
        t.span(TraceKind::BarrierWait { worker: 3 }, t0);
        let e = &t.events()[0];
        assert!(e.dur_ns >= 1_000_000, "slept 2ms, recorded {}", e.dur_ns);
        assert_eq!(e.kind.name(), "barrier_wait");
    }

    #[test]
    fn chrome_export_emits_one_record_per_event() {
        let t = Tracer::default();
        let t0 = t.now_ns();
        t.span(TraceKind::Step { worker: 1, step: 9 }, t0);
        t.instant(TraceKind::ServerKill { server: 2 });
        t.instant(TraceKind::ProtocolSwitch {
            from: "Bsp".into(),
            to: "Asp".into(),
            reason: "barrier-wait fraction 0.41 over threshold".into(),
        });
        let json = t.chrome_trace_json(7);
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.contains("\"name\":\"step\""));
        assert!(json.contains("\"ph\":\"X\""), "span phase: {json}");
        assert!(json.contains("\"name\":\"server_kill\""));
        assert!(json.contains("\"ph\":\"i\""), "instant phase: {json}");
        assert!(json.contains("\"pid\":7"));
        assert!(json.contains(
            "\"from\":\"Bsp\",\"to\":\"Asp\",\"reason\":\"barrier-wait fraction 0.41 over threshold\""
        ));
        let counts = t.counts_by_name();
        assert_eq!(counts["step"], 1);
        assert_eq!(counts["server_kill"], 1);
        assert_eq!(counts["protocol_switch"], 1);
    }

    #[test]
    fn server_stats_accumulate_and_snapshot() {
        let s = ServerStats::new(3);
        s.record_request(0x01, 100);
        s.record_request(0x01, 50);
        s.record_request(0x02, 1);
        s.record_request(0xff, 2); // clamped into the last slot
        s.record_reply(9);
        s.record_dedup_hit();
        s.record_apply(1, 500);
        s.record_apply(1, 700);
        s.record_apply(9, 10); // out-of-range shard: histogram only
        let snap = s.snapshot(4);
        assert_eq!(snap.server, 4);
        assert_eq!(snap.requests_for(0x01), 2);
        assert_eq!(snap.requests_for(0x02), 1);
        assert_eq!(snap.requests[OPCODE_SLOTS - 1], 1);
        assert_eq!(snap.total_requests(), 4);
        assert_eq!(snap.bytes_in, 153);
        assert_eq!(snap.bytes_out, 9);
        assert_eq!(snap.dedup_hits, 1);
        assert_eq!(snap.apply_ns.count, 3);
        assert_eq!(snap.shard_apply_ns[1], 1200);
        assert_eq!(snap.shard_applies[1], 2);
        assert_eq!(snap.shard_applies[0], 0);
        let json = snap.to_json();
        assert!(json.contains("\"server\":4"));
        assert!(json.contains("\"0x01\":2"), "{json}");
        assert!(json.contains("\"total_requests\":4"));
    }

    #[test]
    fn server_stats_merge_rolls_up_a_tier() {
        let a = ServerStats::new(1);
        let b = ServerStats::new(2);
        a.record_request(0x01, 10);
        b.record_request(0x01, 20);
        b.record_request(0x03, 5);
        a.record_apply(0, 100);
        b.record_apply(1, 200);
        let mut merged = a.snapshot(0);
        merged.merge(&b.snapshot(1));
        assert_eq!(merged.requests_for(0x01), 2);
        assert_eq!(merged.requests_for(0x03), 1);
        assert_eq!(merged.bytes_in, 35);
        assert_eq!(merged.apply_ns.count, 2);
        assert_eq!(merged.shard_applies, vec![1, 0, 1]);
    }
}
