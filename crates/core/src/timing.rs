//! Timing policy and the offline binary-search tuner (paper Algorithm 1).

use serde::{Deserialize, Serialize};

use sync_switch_convergence::converged_accuracy_stats;
use sync_switch_sim::DetRng;
use sync_switch_workloads::{CalibrationTargets, ExperimentSetup};

use crate::backend::SimBackend;
use crate::error::CoreError;
use crate::manager::ClusterManager;
use crate::policy::SyncSwitchPolicy;

/// When to switch from BSP to ASP, as a fraction of the total workload.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TimingPolicy {
    /// BSP fraction of the workload in `[0, 1]`; 0 = pure ASP, 1 = pure
    /// BSP.
    pub switch_fraction: f64,
}

impl TimingPolicy {
    /// A timing policy switching after `fraction` of the workload.
    ///
    /// # Panics
    ///
    /// Panics if `fraction` is outside `[0, 1]`.
    pub fn at_fraction(fraction: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&fraction),
            "switch fraction must be in [0,1], got {fraction}"
        );
        TimingPolicy {
            switch_fraction: fraction,
        }
    }

    /// The switch step for a workload of `total_steps`.
    pub fn switch_step(&self, total_steps: u64) -> u64 {
        (self.switch_fraction * total_steps as f64).round() as u64
    }
}

/// Outcome of one trial training during the search.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrialResult {
    /// Converged accuracy; `None` when the run diverged.
    pub accuracy: Option<f64>,
    /// Total training time normalized to a full-BSP run.
    pub time_vs_bsp: f64,
}

/// Anything that can run a trial training at a given BSP fraction: the full
/// simulation pipeline, a live cluster, or a fast analytic sampler.
pub trait TrainingOracle {
    /// Runs one trial with the first `fraction` of the workload under BSP.
    fn run_trial(&mut self, fraction: f64) -> TrialResult;
}

/// Record of one probed switch fraction.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ProbeRecord {
    /// Fraction probed.
    pub fraction: f64,
    /// Converged accuracies of the R runs (diverged runs omitted).
    pub accuracies: Vec<f64>,
    /// Number of diverged runs.
    pub diverged_runs: usize,
    /// Whether the probe was accepted (mean within `A ± β`).
    pub accepted: bool,
}

/// Result of the binary search.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SearchOutcome {
    /// The found timing policy (the final `upper` of Algorithm 1).
    pub timing: TimingPolicy,
    /// Target accuracy `A` used for acceptance.
    pub target_accuracy: f64,
    /// Every probe in order.
    pub probes: Vec<ProbeRecord>,
    /// Total search cost in BSP-training-equivalents (sum of normalized
    /// trial times, including the runs that established `A`).
    pub search_cost_vs_bsp: f64,
}

/// Paper Algorithm 1: binary search over switch timings.
///
/// For a given workload, finds a switching point whose converged accuracy
/// is within `β` of the BSP target while switching as early as possible.
/// The paper's pseudo-code accumulates `α′` across iterations — an evident
/// typo; we reset the accumulator per probed setting.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BinarySearchTuner {
    /// Accuracy acceptance margin `β` (paper uses 0.01 in §VI-C1).
    pub beta: f64,
    /// Number of settings `M` to explore.
    pub max_settings: usize,
    /// Runs `R` per probed setting.
    pub runs_per_setting: usize,
    /// Runs used to establish the target accuracy `A` when it is not
    /// provided (the full-BSP pilot runs).
    pub bsp_runs: usize,
    /// Known target accuracy `A` (recurring jobs provide it from history).
    pub target_accuracy: Option<f64>,
}

impl Default for BinarySearchTuner {
    fn default() -> Self {
        BinarySearchTuner {
            beta: 0.01,
            max_settings: 5,
            runs_per_setting: 5,
            bsp_runs: 5,
            target_accuracy: None,
        }
    }
}

impl BinarySearchTuner {
    /// Creates a tuner with the paper's defaults (β = 0.01, M = 5, R = 5).
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the runs per setting (and pilot runs) — the cost/robustness
    /// trade-off of Tables IV–VI.
    pub fn with_runs(mut self, bsp_runs: usize, candidate_runs: usize) -> Self {
        self.bsp_runs = bsp_runs;
        self.runs_per_setting = candidate_runs;
        self
    }

    /// Provides a known target accuracy (recurring jobs).
    pub fn with_target(mut self, target: f64) -> Self {
        self.target_accuracy = Some(target);
        self
    }

    /// Runs the search against an oracle.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidPolicy`] when the configuration cannot
    /// establish a target accuracy (no target and zero BSP runs).
    pub fn search<O: TrainingOracle>(&self, oracle: &mut O) -> Result<SearchOutcome, CoreError> {
        let mut cost = 0.0;
        let target = match self.target_accuracy {
            Some(a) => a,
            None => {
                if self.bsp_runs == 0 {
                    return Err(CoreError::InvalidPolicy(
                        "need a target accuracy or at least one BSP pilot run".into(),
                    ));
                }
                let mut sum = 0.0;
                let mut count = 0usize;
                for _ in 0..self.bsp_runs {
                    let r = oracle.run_trial(1.0);
                    cost += r.time_vs_bsp;
                    if let Some(a) = r.accuracy {
                        sum += a;
                        count += 1;
                    }
                }
                if count == 0 {
                    return Err(CoreError::Backend(
                        "all BSP pilot runs failed to converge".into(),
                    ));
                }
                sum / count as f64
            }
        };

        let mut upper = 1.0f64;
        let mut lower = 0.0f64;
        let mut probes = Vec::with_capacity(self.max_settings);
        for _ in 0..self.max_settings {
            let fraction = (upper + lower) / 2.0;
            let mut accs = Vec::with_capacity(self.runs_per_setting);
            let mut diverged = 0usize;
            for _ in 0..self.runs_per_setting {
                let r = oracle.run_trial(fraction);
                cost += r.time_vs_bsp;
                match r.accuracy {
                    Some(a) => accs.push(a),
                    None => diverged += 1,
                }
            }
            // A setting with any diverged run cannot satisfy the accuracy
            // constraint.
            let accepted = if diverged > 0 || accs.is_empty() {
                false
            } else {
                let mean = accs.iter().sum::<f64>() / accs.len() as f64;
                (mean - target).abs() <= self.beta
            };
            probes.push(ProbeRecord {
                fraction,
                accuracies: accs,
                diverged_runs: diverged,
                accepted,
            });
            if accepted {
                upper = fraction;
            } else {
                lower = fraction;
            }
        }

        Ok(SearchOutcome {
            timing: TimingPolicy::at_fraction(upper),
            target_accuracy: target,
            probes,
            search_cost_vs_bsp: cost,
        })
    }
}

/// Oracle running full simulated trainings through the manager pipeline.
#[derive(Debug)]
pub struct SimOracle {
    setup: ExperimentSetup,
    seed: u64,
    trials: u64,
    bsp_reference_s: f64,
}

impl SimOracle {
    /// Creates an oracle for a setup; trial seeds derive from `seed`.
    pub fn new(setup: &ExperimentSetup, seed: u64) -> Self {
        SimOracle {
            setup: setup.clone(),
            seed,
            trials: 0,
            bsp_reference_s: 0.0,
        }
    }

    fn bsp_reference(&mut self) -> f64 {
        if self.bsp_reference_s == 0.0 {
            let policy = SyncSwitchPolicy::static_bsp(self.setup.cluster_size);
            let mut backend = SimBackend::new(&self.setup, self.seed.wrapping_add(999_983));
            let report = ClusterManager::new(policy)
                .run(&mut backend, &self.setup)
                .expect("BSP reference run cannot fail");
            self.bsp_reference_s = report.total_time_s;
        }
        self.bsp_reference_s
    }
}

impl TrainingOracle for SimOracle {
    fn run_trial(&mut self, fraction: f64) -> TrialResult {
        let reference = self.bsp_reference();
        self.trials += 1;
        let seed = self
            .seed
            .wrapping_mul(6364136223846793005)
            .wrapping_add(self.trials);
        let policy = SyncSwitchPolicy::new(fraction, self.setup.cluster_size);
        let mut backend = SimBackend::new(&self.setup, seed);
        match ClusterManager::new(policy).run(&mut backend, &self.setup) {
            Ok(report) => TrialResult {
                accuracy: if report.diverged_at.is_some() {
                    None
                } else {
                    report.converged_accuracy
                },
                time_vs_bsp: report.total_time_s / reference,
            },
            Err(_) => TrialResult {
                accuracy: None,
                time_vs_bsp: 0.05,
            },
        }
    }
}

/// Fast oracle sampling from the closed-form accuracy/time models — the
/// paper's own search-cost methodology ("we use all our training logs and
/// simulate each search setting 1000 times", §VI-C1).
#[derive(Debug, Clone)]
pub struct AnalyticOracle {
    calib: CalibrationTargets,
    rng: DetRng,
    /// Normalized cost of a run that diverges (detected within the first
    /// few hundred steps).
    pub divergence_cost: f64,
    /// Normalized per-run overhead (switching, checkpointing).
    pub overhead_cost: f64,
}

impl AnalyticOracle {
    /// Creates an analytic oracle for a setup.
    pub fn new(setup: &ExperimentSetup, seed: u64) -> Self {
        AnalyticOracle {
            calib: CalibrationTargets::for_setup(setup.id),
            rng: DetRng::new(seed).derive("analytic-oracle", setup.id.index() as u64),
            divergence_cost: 0.015,
            overhead_cost: 0.005,
        }
    }

    /// Deterministic mean-only trial (no run-to-run noise) — used to define
    /// the search's ground truth.
    pub fn noiseless_trial(&self, fraction: f64) -> TrialResult {
        let stats = converged_accuracy_stats(self.calib.setup, fraction);
        if stats.diverges {
            TrialResult {
                accuracy: None,
                time_vs_bsp: self.divergence_cost,
            }
        } else {
            TrialResult {
                accuracy: Some(stats.mean),
                time_vs_bsp: self.calib.time_fraction_at(fraction) + self.overhead_cost,
            }
        }
    }
}

impl TrainingOracle for AnalyticOracle {
    fn run_trial(&mut self, fraction: f64) -> TrialResult {
        let stats = converged_accuracy_stats(self.calib.setup, fraction);
        if stats.diverges {
            return TrialResult {
                accuracy: None,
                time_vs_bsp: self.divergence_cost,
            };
        }
        let acc = stats.mean + stats.sigma * self.rng.standard_normal();
        TrialResult {
            accuracy: Some(acc),
            time_vs_bsp: self.calib.time_fraction_at(fraction) + self.overhead_cost,
        }
    }
}

/// A wrapper oracle that returns noiseless means — the ground truth of the
/// Monte-Carlo success-probability analysis.
#[derive(Debug, Clone)]
pub struct NoiselessOracle(pub AnalyticOracle);

impl TrainingOracle for NoiselessOracle {
    fn run_trial(&mut self, fraction: f64) -> TrialResult {
        self.0.noiseless_trial(fraction)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sync_switch_workloads::SetupId;

    fn ground_truth(setup: &ExperimentSetup) -> f64 {
        let oracle = AnalyticOracle::new(setup, 0);
        let mut noiseless = NoiselessOracle(oracle);
        let tuner = BinarySearchTuner::new()
            .with_target(CalibrationTargets::for_setup(setup.id).bsp_accuracy);
        tuner.search(&mut noiseless).unwrap().timing.switch_fraction
    }

    #[test]
    fn timing_policy_step_computation() {
        let t = TimingPolicy::at_fraction(0.0625);
        assert_eq!(t.switch_step(64_000), 4_000);
        assert_eq!(TimingPolicy::at_fraction(0.0).switch_step(64_000), 0);
        assert_eq!(TimingPolicy::at_fraction(1.0).switch_step(64_000), 64_000);
    }

    #[test]
    fn noiseless_search_recovers_paper_policies() {
        // P1 = 6.25 %, P2 = 12.5 %, P3 = 50 % (paper Table I).
        assert_eq!(ground_truth(&ExperimentSetup::one()), 0.0625);
        assert_eq!(ground_truth(&ExperimentSetup::two()), 0.125);
        assert_eq!(ground_truth(&ExperimentSetup::three()), 0.5);
    }

    #[test]
    fn search_probes_at_most_m_settings() {
        let setup = ExperimentSetup::one();
        let mut oracle = AnalyticOracle::new(&setup, 1);
        let outcome = BinarySearchTuner::new()
            .with_target(0.919)
            .search(&mut oracle)
            .unwrap();
        assert_eq!(outcome.probes.len(), 5);
        // First probe is always the midpoint 50%.
        assert_eq!(outcome.probes[0].fraction, 0.5);
    }

    #[test]
    fn search_cost_matches_table2_baseline() {
        // Setting (No, 5, 5) on setup 1 costs ≈ 12.7× BSP (paper Table II).
        let setup = ExperimentSetup::one();
        let mut oracle = AnalyticOracle::new(&setup, 2);
        let outcome = BinarySearchTuner::new().search(&mut oracle).unwrap();
        assert!(
            (11.0..14.5).contains(&outcome.search_cost_vs_bsp),
            "cost {}",
            outcome.search_cost_vs_bsp
        );
    }

    #[test]
    fn recurring_job_skips_pilot_runs() {
        let setup = ExperimentSetup::one();
        let mut oracle = AnalyticOracle::new(&setup, 3);
        let outcome = BinarySearchTuner::new()
            .with_target(0.919)
            .search(&mut oracle)
            .unwrap();
        // (Yes, 0, 5) ≈ 7.7× BSP (paper Table II).
        assert!(
            (6.8..8.8).contains(&outcome.search_cost_vs_bsp),
            "cost {}",
            outcome.search_cost_vs_bsp
        );
    }

    #[test]
    fn divergent_settings_are_rejected() {
        let setup = ExperimentSetup::three();
        let mut oracle = AnalyticOracle::new(&setup, 4);
        let outcome = BinarySearchTuner::new()
            .with_target(0.923)
            .search(&mut oracle)
            .unwrap();
        assert_eq!(outcome.timing.switch_fraction, 0.5);
        // Probes below 50% all diverged.
        for p in &outcome.probes {
            if p.fraction < 0.5 {
                assert!(!p.accepted);
                assert_eq!(p.diverged_runs, 5);
            }
        }
        let _ = SetupId::Three;
    }

    #[test]
    fn no_target_and_no_pilots_is_an_error() {
        let setup = ExperimentSetup::one();
        let mut oracle = AnalyticOracle::new(&setup, 5);
        let tuner = BinarySearchTuner::new().with_runs(0, 5);
        assert!(tuner.search(&mut oracle).is_err());
    }

    #[test]
    #[should_panic(expected = "must be in [0,1]")]
    fn bad_fraction_panics() {
        let _ = TimingPolicy::at_fraction(1.2);
    }
}
