//! Training reports: the measured outcome of one orchestrated job.

use serde::{Deserialize, Serialize};

use sync_switch_workloads::{SetupId, SyncProtocol};

use crate::online::OnlinePolicyKind;

/// One accuracy/loss evaluation point.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EvalPoint {
    /// Global step of the evaluation.
    pub step: u64,
    /// Time since training start, seconds.
    pub time_s: f64,
    /// Top-1 test accuracy.
    pub accuracy: f64,
    /// Training loss.
    pub loss: f64,
}

/// One executed protocol switch.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SwitchRecord {
    /// Step at which the switch happened.
    pub step: u64,
    /// Time since training start, seconds.
    pub time_s: f64,
    /// Protocol switched from.
    pub from: SyncProtocol,
    /// Protocol switched to.
    pub to: SyncProtocol,
    /// Overhead of the switch (checkpoint + propagate + restart), seconds.
    pub overhead_s: f64,
}

/// The complete record of one training job run under Sync-Switch.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrainingReport {
    /// Which experiment setup was run.
    pub setup: SetupId,
    /// The BSP fraction of the timing policy in force.
    pub policy_fraction: f64,
    /// The online policy in force.
    pub online: OnlinePolicyKind,
    /// Accuracy/loss evaluations over the run.
    pub evals: Vec<EvalPoint>,
    /// Protocol switches (including online-policy switches).
    pub switches: Vec<SwitchRecord>,
    /// Elastic-policy worker evictions as `(step, worker)`.
    pub removed_workers: Vec<(u64, usize)>,
    /// Converged test accuracy (`None` when the run diverged).
    pub converged_accuracy: Option<f64>,
    /// Time at which the convergence criterion first held, seconds.
    pub converged_time_s: Option<f64>,
    /// Total training time for the full workload, seconds.
    pub total_time_s: f64,
    /// Total workload in steps.
    pub total_steps: u64,
    /// Steps executed under BSP.
    pub bsp_steps: u64,
    /// Steps executed under ASP.
    pub asp_steps: u64,
    /// Time-to-accuracy: first time the accuracy threshold was reached.
    pub tta_s: Option<f64>,
    /// The accuracy threshold used for TTA.
    pub tta_target: f64,
    /// Step at which the run diverged, if it did.
    pub diverged_at: Option<u64>,
    /// Training loss at the end of the run.
    pub final_loss: f64,
    /// Total seconds workers spent blocked on the parameter-server wire
    /// (0 on the simulator and on in-process tiers; populated when the
    /// backend runs a transport-backed PS).
    pub transport_wire_s: f64,
    /// Wire operations re-sent after a failure (0 on the simulator, on
    /// in-process tiers, and — by design — on a clean network).
    pub transport_retries: u64,
    /// Connections to parameter servers re-established after breaking.
    pub transport_reconnects: u64,
}

impl TrainingReport {
    /// Mean cluster throughput over the run, in images/s, given the
    /// per-step batch size `B` (each workload unit consumes one mini-batch).
    pub fn throughput_images_per_sec(&self, batch: usize) -> f64 {
        if self.total_time_s <= 0.0 {
            return 0.0;
        }
        (self.total_steps as f64 * batch as f64) / self.total_time_s
    }

    /// Total switch overhead across the run, seconds.
    pub fn total_switch_overhead_s(&self) -> f64 {
        self.switches.iter().map(|s| s.overhead_s).sum()
    }

    /// Fraction of the run spent on switch overhead.
    pub fn overhead_fraction(&self) -> f64 {
        if self.total_time_s <= 0.0 {
            return 0.0;
        }
        self.total_switch_overhead_s() / self.total_time_s
    }

    /// Whether the run completed without divergence.
    pub fn completed(&self) -> bool {
        self.diverged_at.is_none()
    }

    /// The accuracy trajectory as `(step, accuracy)` pairs.
    pub fn accuracy_curve(&self) -> Vec<(u64, f64)> {
        self.evals.iter().map(|e| (e.step, e.accuracy)).collect()
    }

    /// The loss trajectory as `(step, loss)` pairs.
    pub fn loss_curve(&self) -> Vec<(u64, f64)> {
        self.evals.iter().map(|e| (e.step, e.loss)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_report() -> TrainingReport {
        TrainingReport {
            setup: SetupId::One,
            policy_fraction: 0.0625,
            online: OnlinePolicyKind::Baseline,
            evals: vec![
                EvalPoint {
                    step: 2000,
                    time_s: 100.0,
                    accuracy: 0.5,
                    loss: 1.0,
                },
                EvalPoint {
                    step: 4000,
                    time_s: 150.0,
                    accuracy: 0.9,
                    loss: 0.1,
                },
            ],
            switches: vec![SwitchRecord {
                step: 4000,
                time_s: 120.0,
                from: SyncProtocol::Bsp,
                to: SyncProtocol::Asp,
                overhead_s: 36.0,
            }],
            removed_workers: vec![],
            converged_accuracy: Some(0.917),
            converged_time_s: Some(1500.0),
            total_time_s: 1800.0,
            total_steps: 64_000,
            bsp_steps: 4_000,
            asp_steps: 60_000,
            tta_s: Some(1400.0),
            tta_target: 0.913,
            diverged_at: None,
            final_loss: 0.01,
            transport_wire_s: 0.0,
            transport_retries: 0,
            transport_reconnects: 0,
        }
    }

    #[test]
    fn throughput_and_overhead() {
        let r = sample_report();
        let thr = r.throughput_images_per_sec(128);
        assert!((thr - 64_000.0 * 128.0 / 1800.0).abs() < 1e-9);
        assert_eq!(r.total_switch_overhead_s(), 36.0);
        assert!((r.overhead_fraction() - 0.02).abs() < 1e-9);
        assert!(r.completed());
    }

    #[test]
    fn curves_extract() {
        let r = sample_report();
        assert_eq!(r.accuracy_curve(), vec![(2000, 0.5), (4000, 0.9)]);
        assert_eq!(r.loss_curve()[1], (4000, 0.1));
    }

    #[test]
    fn serde_round_trip() {
        let r = sample_report();
        let json = serde_json::to_string(&r).unwrap();
        let back: TrainingReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back, r);
    }
}
