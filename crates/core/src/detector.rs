//! Sliding-window straggler detection (paper §IV-B2).
//!
//! "A worker `k` is identified as a straggler if its training throughput
//! over a sliding window `S_k` is lower than the difference between the
//! cluster average and standard deviation `S − σ`, for a number of
//! consecutive detection windows."

use sync_switch_sim::SlidingWindow;

/// Per-worker throughput monitor with hysteresis.
///
/// Beyond the paper's `mean − σ` rule, the bound is floored at a minimum
/// *relative* slowdown (default 10%): per-step GPU jitter makes some worker
/// sit below `mean − σ` in almost every window of a healthy cluster, and
/// without the floor the detector would flap on noise. Real stragglers in
/// the paper's scenarios run 50–70% below the mean, far past the floor.
#[derive(Debug, Clone)]
pub struct StragglerDetector {
    windows: Vec<SlidingWindow>,
    below_streak: Vec<u32>,
    above_streak: Vec<u32>,
    flagged: Vec<bool>,
    consecutive_required: u32,
    min_relative_gap: f64,
}

impl StragglerDetector {
    /// Creates a detector for `workers` workers using throughput windows of
    /// `window` observations; a worker is (un)flagged after
    /// `consecutive_required` consecutive windows below (above) the
    /// `mean − σ` bound.
    ///
    /// # Panics
    ///
    /// Panics if any argument is zero.
    pub fn new(workers: usize, window: usize, consecutive_required: u32) -> Self {
        assert!(workers > 0, "need at least one worker");
        assert!(consecutive_required > 0, "need at least one window");
        StragglerDetector {
            windows: (0..workers).map(|_| SlidingWindow::new(window)).collect(),
            below_streak: vec![0; workers],
            above_streak: vec![0; workers],
            flagged: vec![false; workers],
            consecutive_required,
            min_relative_gap: 0.10,
        }
    }

    /// Overrides the minimum relative slowdown required to flag a worker.
    ///
    /// # Panics
    ///
    /// Panics if `gap` is not in `[0, 1)`.
    pub fn with_min_relative_gap(mut self, gap: f64) -> Self {
        assert!((0.0..1.0).contains(&gap), "gap must be in [0,1)");
        self.min_relative_gap = gap;
        self
    }

    /// Number of workers monitored.
    pub fn workers(&self) -> usize {
        self.windows.len()
    }

    /// Feeds one throughput observation per worker (`None` for workers that
    /// did no work this interval, e.g. evicted ones — they are skipped).
    ///
    /// # Panics
    ///
    /// Panics if `observations.len()` differs from the worker count.
    pub fn observe(&mut self, observations: &[Option<f64>]) {
        assert_eq!(
            observations.len(),
            self.windows.len(),
            "observation count mismatch"
        );
        for (w, obs) in observations.iter().enumerate() {
            if let Some(x) = obs {
                self.windows[w].push(*x);
            }
        }
        // Cluster statistics over workers with data this round. Workers
        // whose window has not filled yet are not judged — single noisy
        // samples would otherwise trip the bound during warm-up.
        let means: Vec<(usize, f64)> = self
            .windows
            .iter()
            .enumerate()
            .filter(|(w, win)| observations[*w].is_some() && win.is_full())
            .map(|(w, win)| (w, win.mean()))
            .collect();
        if means.len() < 2 {
            return;
        }
        let cluster_mean = means.iter().map(|(_, m)| m).sum::<f64>() / means.len() as f64;
        let var = means
            .iter()
            .map(|(_, m)| (m - cluster_mean).powi(2))
            .sum::<f64>()
            / means.len() as f64;
        let bound = cluster_mean - var.sqrt().max(self.min_relative_gap * cluster_mean);

        for (w, m) in means {
            if m < bound {
                self.below_streak[w] += 1;
                self.above_streak[w] = 0;
                if self.below_streak[w] >= self.consecutive_required {
                    self.flagged[w] = true;
                }
            } else {
                self.above_streak[w] += 1;
                self.below_streak[w] = 0;
                if self.above_streak[w] >= self.consecutive_required {
                    self.flagged[w] = false;
                }
            }
        }
    }

    /// Currently flagged stragglers.
    pub fn stragglers(&self) -> Vec<usize> {
        self.flagged
            .iter()
            .enumerate()
            .filter_map(|(w, &f)| f.then_some(w))
            .collect()
    }

    /// Whether any worker is currently flagged.
    pub fn any_straggler(&self) -> bool {
        self.flagged.iter().any(|&f| f)
    }

    /// Clears all state (used after cluster reconfiguration).
    pub fn reset(&mut self) {
        for w in &mut self.windows {
            w.clear();
        }
        self.below_streak.iter_mut().for_each(|s| *s = 0);
        self.above_streak.iter_mut().for_each(|s| *s = 0);
        self.flagged.iter_mut().for_each(|f| *f = false);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn uniform_obs(workers: usize, v: f64) -> Vec<Option<f64>> {
        vec![Some(v); workers]
    }

    #[test]
    fn uniform_cluster_is_never_flagged() {
        let mut d = StragglerDetector::new(8, 4, 2);
        for _ in 0..50 {
            d.observe(&uniform_obs(8, 700.0));
        }
        assert!(!d.any_straggler());
    }

    #[test]
    fn jittered_healthy_cluster_is_not_flagged() {
        let mut d = StragglerDetector::new(8, 4, 3);
        for i in 0..60u32 {
            let obs: Vec<Option<f64>> = (0..8)
                .map(|w| Some(700.0 + f64::from((i + w) % 7) * 4.0))
                .collect();
            d.observe(&obs);
        }
        assert!(!d.any_straggler(), "flagged {:?}", d.stragglers());
    }

    #[test]
    fn slow_worker_is_flagged_after_consecutive_windows() {
        let mut d = StragglerDetector::new(4, 3, 2);
        // Warm up healthy.
        for _ in 0..5 {
            d.observe(&uniform_obs(4, 700.0));
        }
        // Worker 2 collapses.
        let mut obs = uniform_obs(4, 700.0);
        obs[2] = Some(200.0);
        d.observe(&obs);
        // Needs window means to drop and 2 consecutive detections.
        assert!(!d.any_straggler(), "too early to flag");
        d.observe(&obs);
        d.observe(&obs);
        d.observe(&obs);
        assert_eq!(d.stragglers(), vec![2]);
    }

    #[test]
    fn recovered_worker_is_unflagged() {
        let mut d = StragglerDetector::new(4, 2, 2);
        for _ in 0..4 {
            d.observe(&uniform_obs(4, 700.0));
        }
        let mut slow = uniform_obs(4, 700.0);
        slow[1] = Some(100.0);
        for _ in 0..6 {
            d.observe(&slow);
        }
        assert_eq!(d.stragglers(), vec![1]);
        // Recovery: window must flush the slow samples, then streak clears.
        for _ in 0..8 {
            d.observe(&uniform_obs(4, 700.0));
        }
        assert!(!d.any_straggler(), "should recover: {:?}", d.stragglers());
    }

    #[test]
    fn skipped_workers_are_ignored() {
        let mut d = StragglerDetector::new(3, 2, 2);
        for _ in 0..4 {
            d.observe(&uniform_obs(3, 500.0));
        }
        // Worker 0 evicted: only 1 and 2 observed; no flags on 0.
        for _ in 0..6 {
            d.observe(&[None, Some(500.0), Some(500.0)]);
        }
        assert!(!d.any_straggler());
    }

    #[test]
    fn reset_clears_flags() {
        // Three workers: with two, mean − σ equals the slow worker's own
        // throughput and the strict inequality never fires.
        let mut d = StragglerDetector::new(3, 2, 1);
        d.observe(&[Some(700.0), Some(700.0), Some(100.0)]);
        d.observe(&[Some(700.0), Some(700.0), Some(100.0)]);
        assert!(d.any_straggler());
        d.reset();
        assert!(!d.any_straggler());
    }

    #[test]
    fn two_worker_cluster_cannot_distinguish_straggler() {
        // Degenerate case: mean − σ coincides with the slower worker, so
        // the rule (a strict inequality) never flags — smaller clusters
        // need a different bound, which the paper sidesteps by using n ≥ 8.
        let mut d = StragglerDetector::new(2, 2, 1);
        for _ in 0..10 {
            d.observe(&[Some(700.0), Some(100.0)]);
        }
        assert!(!d.any_straggler());
    }

    #[test]
    #[should_panic(expected = "observation count mismatch")]
    fn wrong_observation_count_panics() {
        let mut d = StragglerDetector::new(3, 2, 1);
        d.observe(&[Some(1.0)]);
    }
}
