//! The bundled Sync-Switch policy: protocol order + timing + configuration
//! + online straggler handling.

use serde::{Deserialize, Serialize};

use sync_switch_convergence::MomentumScaling;
use sync_switch_workloads::{CalibrationTargets, ExperimentSetup};

use crate::config::ConfigPolicy;
use crate::error::CoreError;
use crate::online::OnlinePolicyKind;
use crate::timing::TimingPolicy;

/// The complete set of policies governing one training job.
///
/// The *protocol policy* is implicit and fixed: BSP first, then ASP — the
/// paper shows the reverse order wastes the ASP time and risks saddle-point
/// stalls (Remark A.3), and its Fig. 5a confirms BSP→ASP dominates.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SyncSwitchPolicy {
    /// When to switch from BSP to ASP.
    pub timing: TimingPolicy,
    /// How to adjust hyper-parameters on the switch.
    pub config: ConfigPolicy,
    /// How to react to transient stragglers.
    pub online: OnlinePolicyKind,
    /// Test-accuracy evaluation interval in steps (paper: every 2 000 ASP
    /// steps, on the standalone cluster manager).
    pub eval_interval: u64,
    /// Chunk size (in workload units) between straggler-detector
    /// observations during the BSP phase.
    pub detect_chunk: u64,
    /// Sliding-window length of the straggler detector.
    pub detector_window: usize,
    /// Consecutive below-bound windows required to flag a straggler.
    pub detector_consecutive: u32,
    /// Minimum relative slowdown required to flag a straggler (0 = the
    /// paper's raw `mean − σ` rule; the default 0.10 suppresses jitter
    /// false positives — see the ablation exhibit).
    pub detector_min_gap: f64,
    /// Optional explicit time-to-accuracy threshold; when `None` the
    /// manager uses the calibrated BSP accuracy minus two run-sigmas.
    pub tta_target: Option<f64>,
}

impl SyncSwitchPolicy {
    /// A policy with the paper's defaults for a given switch fraction.
    ///
    /// # Panics
    ///
    /// Panics if `fraction` is outside `[0, 1]` or `cluster_size == 0`.
    pub fn new(fraction: f64, cluster_size: usize) -> Self {
        SyncSwitchPolicy {
            timing: TimingPolicy::at_fraction(fraction),
            config: ConfigPolicy::new(cluster_size),
            online: OnlinePolicyKind::Baseline,
            eval_interval: 2_000,
            detect_chunk: 64,
            detector_window: 3,
            detector_consecutive: 2,
            detector_min_gap: 0.10,
            tta_target: None,
        }
    }

    /// The policy the paper derived for an experiment setup (Table I):
    /// P1 = 6.25 %, P2 = 12.5 %, P3 = 50 %.
    pub fn paper_policy(setup: &ExperimentSetup) -> Self {
        let calib = CalibrationTargets::for_setup(setup.id);
        Self::new(calib.policy_fraction(), setup.cluster_size)
    }

    /// Pure-BSP baseline (never switches).
    pub fn static_bsp(cluster_size: usize) -> Self {
        Self::new(1.0, cluster_size)
    }

    /// Pure-ASP baseline (switches immediately).
    pub fn static_asp(cluster_size: usize) -> Self {
        Self::new(0.0, cluster_size)
    }

    /// Selects an online straggler policy.
    pub fn with_online(mut self, online: OnlinePolicyKind) -> Self {
        self.online = online;
        self
    }

    /// Selects a momentum-scaling variant for the ASP phase (Fig. 8b
    /// ablation).
    pub fn with_momentum_scaling(mut self, scaling: MomentumScaling) -> Self {
        self.config = self.config.with_momentum_scaling(scaling);
        self
    }

    /// Validates internal consistency.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidPolicy`] describing the first problem.
    pub fn validate(&self) -> Result<(), CoreError> {
        if !(0.0..=1.0).contains(&self.timing.switch_fraction) {
            return Err(CoreError::InvalidPolicy(format!(
                "switch fraction {} outside [0,1]",
                self.timing.switch_fraction
            )));
        }
        if self.eval_interval == 0 {
            return Err(CoreError::InvalidPolicy("eval interval is zero".into()));
        }
        if self.detect_chunk == 0 {
            return Err(CoreError::InvalidPolicy("detect chunk is zero".into()));
        }
        if !(0.0..1.0).contains(&self.detector_min_gap) {
            return Err(CoreError::InvalidPolicy(format!(
                "detector min gap {} outside [0,1)",
                self.detector_min_gap
            )));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sync_switch_workloads::SetupId;

    #[test]
    fn paper_policies_match_table1() {
        let p1 = SyncSwitchPolicy::paper_policy(&ExperimentSetup::one());
        let p2 = SyncSwitchPolicy::paper_policy(&ExperimentSetup::two());
        let p3 = SyncSwitchPolicy::paper_policy(&ExperimentSetup::three());
        assert_eq!(p1.timing.switch_fraction, 0.0625);
        assert_eq!(p2.timing.switch_fraction, 0.125);
        assert_eq!(p3.timing.switch_fraction, 0.5);
        assert_eq!(p3.config.cluster_size, 16);
        let _ = SetupId::all();
    }

    #[test]
    fn static_baselines() {
        assert_eq!(SyncSwitchPolicy::static_bsp(8).timing.switch_fraction, 1.0);
        assert_eq!(SyncSwitchPolicy::static_asp(8).timing.switch_fraction, 0.0);
    }

    #[test]
    fn builders_compose() {
        let p = SyncSwitchPolicy::new(0.25, 8)
            .with_online(OnlinePolicyKind::Elastic)
            .with_momentum_scaling(MomentumScaling::Zero);
        assert_eq!(p.online, OnlinePolicyKind::Elastic);
        assert_eq!(p.config.momentum_scaling, MomentumScaling::Zero);
        assert!(p.validate().is_ok());
    }

    #[test]
    fn validation_catches_bad_values() {
        let mut p = SyncSwitchPolicy::new(0.5, 8);
        p.eval_interval = 0;
        assert!(p.validate().is_err());
        let mut p = SyncSwitchPolicy::new(0.5, 8);
        p.timing.switch_fraction = 1.5;
        assert!(p.validate().is_err());
    }
}
