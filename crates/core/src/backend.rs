//! The execution-backend abstraction and the simulation backend.

use sync_switch_cluster::{ActuatorMode, ClusterSim, OverheadModel, StragglerScenario};
use sync_switch_convergence::{MomentumScaling, PhaseInput, TrajectoryModel};
use sync_switch_sim::SimTime;
use sync_switch_workloads::{ExperimentSetup, SyncProtocol};

use crate::config::AdjustedConfig;
use crate::error::CoreError;

/// Metrics of one executed chunk of training.
#[derive(Debug, Clone)]
pub struct BackendChunk {
    /// Workload units actually completed (may exceed the request when BSP
    /// rounds don't divide evenly).
    pub steps_done: u64,
    /// Time the chunk took.
    pub elapsed: SimTime,
    /// Per-worker own-work throughput in images/s (`None` for workers that
    /// did no work — removed or excluded).
    pub per_worker_images_per_sec: Vec<Option<f64>>,
    /// Mean measured gradient staleness of the chunk.
    pub mean_staleness: f64,
    /// Seconds workers spent blocked on the PS wire during the chunk
    /// (0 for the simulator and for in-process parameter servers; real
    /// transport-backed tiers report their measured per-op wire time).
    pub wire_time_s: f64,
    /// Wire requests re-sent after a failure during the chunk (0 for the
    /// simulator and in-process tiers).
    pub wire_retries: u64,
    /// Connections re-established during the chunk.
    pub wire_reconnects: u64,
}

/// An execution substrate Sync-Switch can drive: either the cluster
/// simulator ([`SimBackend`]) or a real parameter-server deployment.
///
/// The manager calls `run_chunk` repeatedly, interleaving protocol switches
/// (with [`TrainingBackend::apply_switch_overhead`]), elastic worker
/// eviction, and accuracy evaluations.
pub trait TrainingBackend {
    /// Steps (workload units) completed so far.
    fn step(&self) -> u64;

    /// Current (virtual or wall) time.
    fn now(&self) -> SimTime;

    /// Number of workers in the cluster.
    fn cluster_size(&self) -> usize;

    /// Number of currently active workers.
    fn active_workers(&self) -> usize;

    /// Runs `steps` workload units under the given configuration.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Diverged`] when training diverges during the
    /// chunk.
    fn run_chunk(&mut self, cfg: &AdjustedConfig, steps: u64) -> Result<BackendChunk, CoreError>;

    /// Records a protocol switch and accounts its overhead (checkpoint +
    /// reconfigure + restart). Returns the overhead duration.
    fn apply_switch_overhead(&mut self, from: SyncProtocol, to: SyncProtocol) -> SimTime;

    /// Applies a momentum-scaling variant at the start of the ASP phase.
    fn apply_momentum_variant(&mut self, variant: MomentumScaling);

    /// Evaluates test accuracy at the current step.
    fn eval_accuracy(&mut self) -> f64;

    /// Current (smoothed) training loss.
    fn training_loss(&self) -> f64;

    /// Whether the run has diverged.
    fn is_diverged(&self) -> bool;

    /// Removes a worker (elastic policy). Returns `false` when unsupported
    /// or already removed.
    fn remove_worker(&mut self, worker: usize) -> bool;

    /// Restores all removed workers.
    fn restore_workers(&mut self);
}

/// The simulation backend: cluster simulator for time/throughput plus the
/// convergence surrogate for loss/accuracy.
#[derive(Debug, Clone)]
pub struct SimBackend {
    cluster: ClusterSim,
    trajectory: TrajectoryModel,
    overhead: OverheadModel,
    setup: ExperimentSetup,
    init_time: SimTime,
    actuator: ActuatorMode,
}

impl SimBackend {
    /// Creates a backend for an experiment setup; cluster initialization
    /// time (paper Table III, parallel actuator) is accounted at creation.
    pub fn new(setup: &ExperimentSetup, seed: u64) -> Self {
        Self::with_actuator(setup, seed, ActuatorMode::Parallel)
    }

    /// Creates a backend using the given configuration-actuator mode —
    /// Sync-Switch's parallel actuator, or the sequential baseline the
    /// paper's Table III compares against (an ablation handle).
    pub fn with_actuator(setup: &ExperimentSetup, seed: u64, actuator: ActuatorMode) -> Self {
        let mut overhead = OverheadModel::new(seed);
        let init = overhead.sample(setup.cluster_size, actuator);
        let mut cluster = ClusterSim::new(setup, seed);
        cluster.advance(init.init);
        SimBackend {
            cluster,
            trajectory: TrajectoryModel::new(setup, seed),
            overhead,
            setup: setup.clone(),
            init_time: init.init,
            actuator,
        }
    }

    /// Installs a straggler scenario on the simulated cluster.
    pub fn with_scenario(mut self, scenario: StragglerScenario) -> Self {
        self.cluster.set_scenario(scenario);
        self
    }

    /// Cluster initialization time charged at construction.
    pub fn init_time(&self) -> SimTime {
        self.init_time
    }

    /// The underlying cluster simulator (read access for diagnostics).
    pub fn cluster(&self) -> &ClusterSim {
        &self.cluster
    }

    /// The experiment setup this backend simulates.
    pub fn setup(&self) -> &ExperimentSetup {
        &self.setup
    }

    /// Workers currently inside a straggler episode (ground truth — the
    /// detector must *discover* this from throughput alone).
    pub fn ground_truth_stragglers(&self) -> Vec<usize> {
        self.cluster.active_stragglers_now()
    }
}

impl TrainingBackend for SimBackend {
    fn step(&self) -> u64 {
        self.trajectory.step()
    }

    fn now(&self) -> SimTime {
        self.cluster.now()
    }

    fn cluster_size(&self) -> usize {
        self.cluster.cluster_size()
    }

    fn active_workers(&self) -> usize {
        self.cluster.active_count()
    }

    fn run_chunk(&mut self, cfg: &AdjustedConfig, steps: u64) -> Result<BackendChunk, CoreError> {
        if steps == 0 {
            return Ok(BackendChunk {
                steps_done: 0,
                elapsed: SimTime::ZERO,
                per_worker_images_per_sec: vec![None; self.cluster.cluster_size()],
                mean_staleness: 0.0,
                wire_time_s: 0.0,
                wire_retries: 0,
                wire_reconnects: 0,
            });
        }
        self.cluster.set_batch(cfg.per_worker_batch);
        let stats = match cfg.protocol {
            SyncProtocol::Bsp => self.cluster.run_bsp(steps),
            SyncProtocol::Asp => self.cluster.run_asp(steps),
        };
        let input = PhaseInput {
            protocol: cfg.protocol,
            staleness: stats.mean_staleness,
            momentum: cfg.momentum_scaling,
        };
        self.trajectory.advance(stats.units, &input);
        if let Some(step) = self.trajectory.diverged_at() {
            return Err(CoreError::Diverged { step });
        }
        Ok(BackendChunk {
            steps_done: stats.units,
            elapsed: stats.elapsed,
            per_worker_images_per_sec: stats
                .per_worker_images_per_sec
                .iter()
                .map(|&r| if r > 0.0 { Some(r) } else { None })
                .collect(),
            mean_staleness: stats.mean_staleness,
            wire_time_s: 0.0,
            wire_retries: 0,
            wire_reconnects: 0,
        })
    }

    fn apply_switch_overhead(&mut self, from: SyncProtocol, to: SyncProtocol) -> SimTime {
        let sample = self
            .overhead
            .sample(self.cluster.cluster_size(), self.actuator);
        self.cluster.advance(sample.switch);
        self.trajectory.record_switch(from, to);
        sample.switch
    }

    fn apply_momentum_variant(&mut self, variant: MomentumScaling) {
        self.trajectory.apply_momentum_variant(variant);
    }

    fn eval_accuracy(&mut self) -> f64 {
        self.trajectory.eval_accuracy()
    }

    fn training_loss(&self) -> f64 {
        self.trajectory.training_loss()
    }

    fn is_diverged(&self) -> bool {
        self.trajectory.is_diverged()
    }

    fn remove_worker(&mut self, worker: usize) -> bool {
        self.cluster.remove_worker(worker)
    }

    fn restore_workers(&mut self) {
        self.cluster.restore_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ConfigPolicy;

    #[test]
    fn sim_backend_runs_chunks() {
        let setup = ExperimentSetup::one();
        let mut b = SimBackend::new(&setup, 1);
        let policy = ConfigPolicy::new(8);
        let bsp = policy.for_protocol(&setup.workload.hyper, SyncProtocol::Bsp);
        let chunk = b.run_chunk(&bsp, 800).unwrap();
        assert_eq!(chunk.steps_done, 800);
        assert_eq!(b.step(), 800);
        assert!(chunk.elapsed.as_secs() > 0.0);
        assert_eq!(chunk.mean_staleness, 0.0);
        assert!(chunk.per_worker_images_per_sec.iter().all(|r| r.is_some()));
    }

    #[test]
    fn init_overhead_charged() {
        let setup = ExperimentSetup::one();
        let b = SimBackend::new(&setup, 2);
        assert!(b.now().as_secs() > 30.0, "init time {:?}", b.now());
        assert_eq!(b.now(), b.init_time());
    }

    #[test]
    fn asp_chunk_reports_staleness() {
        let setup = ExperimentSetup::one();
        let mut b = SimBackend::new(&setup, 3);
        let policy = ConfigPolicy::new(8);
        let asp = policy.for_protocol(&setup.workload.hyper, SyncProtocol::Asp);
        let chunk = b.run_chunk(&asp, 2000).unwrap();
        assert!(chunk.mean_staleness > 5.0);
    }

    #[test]
    fn divergence_propagates_as_error() {
        let setup = ExperimentSetup::three();
        let mut b = SimBackend::new(&setup, 4);
        let policy = ConfigPolicy::new(16);
        let asp = policy.for_protocol(&setup.workload.hyper, SyncProtocol::Asp);
        let mut diverged = false;
        for _ in 0..8 {
            match b.run_chunk(&asp, 2000) {
                Err(CoreError::Diverged { step }) => {
                    assert!(step < 16_000);
                    diverged = true;
                    break;
                }
                Ok(_) => {}
                Err(e) => panic!("unexpected {e}"),
            }
        }
        assert!(diverged, "setup 3 pure ASP must diverge");
        assert!(b.is_diverged());
    }

    #[test]
    fn switch_overhead_advances_clock() {
        let setup = ExperimentSetup::one();
        let mut b = SimBackend::new(&setup, 5);
        let before = b.now();
        let dt = b.apply_switch_overhead(SyncProtocol::Bsp, SyncProtocol::Asp);
        assert!(dt.as_secs() > 10.0 && dt.as_secs() < 90.0, "switch {dt}");
        assert_eq!(b.now(), before + dt);
    }

    #[test]
    fn worker_removal_round_trip() {
        let setup = ExperimentSetup::one();
        let mut b = SimBackend::new(&setup, 6);
        assert!(b.remove_worker(3));
        assert!(!b.remove_worker(3));
        assert_eq!(b.active_workers(), 7);
        b.restore_workers();
        assert_eq!(b.active_workers(), 8);
    }
}
