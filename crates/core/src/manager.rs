//! The cluster manager: orchestrates one training job over a backend,
//! applying the timing, configuration, and online policies.

use sync_switch_workloads::{CalibrationTargets, ExperimentSetup, SyncProtocol};

use crate::backend::TrainingBackend;
use crate::detector::StragglerDetector;
use crate::error::CoreError;
use crate::online::OnlinePolicyKind;
use crate::policy::SyncSwitchPolicy;
use crate::report::{EvalPoint, SwitchRecord, TrainingReport};

/// Convergence criterion: accuracy range over this many consecutive
/// evaluations must be within [`CONVERGENCE_EPSILON`] (paper §VI-A: "has
/// not changed for more than 0.1% for five evaluations").
const CONVERGENCE_WINDOW: usize = 5;
const CONVERGENCE_EPSILON: f64 = 0.002;

/// Drives a [`TrainingBackend`] through a complete training job according
/// to a [`SyncSwitchPolicy`], producing a [`TrainingReport`].
///
/// This is the standalone "cluster manager" of the paper's architecture
/// (Fig. 9): it consumes profiler metrics, decides protocol switches and
/// elastic reconfigurations, and evaluates the model on a cadence.
#[derive(Debug, Clone)]
pub struct ClusterManager {
    policy: SyncSwitchPolicy,
}

impl ClusterManager {
    /// Creates a manager for a policy.
    pub fn new(policy: SyncSwitchPolicy) -> Self {
        ClusterManager { policy }
    }

    /// The policy in force.
    pub fn policy(&self) -> &SyncSwitchPolicy {
        &self.policy
    }

    /// Runs the full workload on `backend`.
    ///
    /// Divergence is reported *in* the returned report (`diverged_at`
    /// set, `converged_accuracy` `None`), matching how the paper treats
    /// failed ASP runs as data points.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidPolicy`] if the policy is inconsistent.
    pub fn run<B: TrainingBackend>(
        &self,
        backend: &mut B,
        setup: &ExperimentSetup,
    ) -> Result<TrainingReport, CoreError> {
        self.policy.validate()?;
        let hyper = &setup.workload.hyper;
        let total = hyper.total_steps;
        let switch_budget = self.policy.timing.switch_step(total);
        let calib = CalibrationTargets::for_setup(setup.id);
        let tta_target = self
            .policy
            .tta_target
            .unwrap_or(calib.bsp_accuracy - 2.0 * calib.accuracy_sigma);

        let mut detector = StragglerDetector::new(
            backend.cluster_size(),
            self.policy.detector_window,
            self.policy.detector_consecutive,
        )
        .with_min_relative_gap(self.policy.detector_min_gap);

        let start_time = backend.now();
        let mut evals: Vec<EvalPoint> = Vec::new();
        let mut switches: Vec<SwitchRecord> = Vec::new();
        let mut removed: Vec<(u64, usize)> = Vec::new();
        let mut diverged_at: Option<u64> = None;
        let mut bsp_steps: u64 = 0;
        let mut asp_steps: u64 = 0;
        let mut transport_wire_s: f64 = 0.0;
        let mut transport_retries: u64 = 0;
        let mut transport_reconnects: u64 = 0;

        // Protocol state. `greedy_detour` marks a temporary ASP excursion
        // taken by the greedy policy before the BSP budget is met.
        let mut protocol = if switch_budget == 0 {
            SyncProtocol::Asp
        } else {
            SyncProtocol::Bsp
        };
        let mut greedy_detour = false;
        if protocol == SyncProtocol::Asp {
            backend.apply_momentum_variant(self.policy.config.momentum_scaling);
        }

        let mut next_eval = self.policy.eval_interval;
        evals.push(EvalPoint {
            step: 0,
            time_s: 0.0,
            accuracy: backend.eval_accuracy(),
            loss: backend.training_loss(),
        });

        while backend.step() < total && diverged_at.is_none() {
            let effective = if greedy_detour {
                SyncProtocol::Asp
            } else {
                protocol
            };
            let remaining = total - backend.step();
            // Chunk sizing: fine-grained while straggler reaction matters
            // (BSP phase with an online policy), otherwise up to the next
            // evaluation point.
            let to_eval = next_eval.saturating_sub(backend.step()).max(1);
            let mut chunk = match (effective, self.policy.online) {
                (SyncProtocol::Bsp, _) => self.policy.detect_chunk.min(to_eval),
                (SyncProtocol::Asp, OnlinePolicyKind::Greedy) if greedy_detour => {
                    self.policy.detect_chunk.min(to_eval)
                }
                _ => to_eval,
            }
            .min(remaining);
            if protocol == SyncProtocol::Bsp && !greedy_detour {
                chunk = chunk.min(switch_budget - bsp_steps);
            }
            chunk = chunk.max(1);

            let cfg = self.policy.config.for_protocol_with_active(
                hyper,
                effective,
                backend.active_workers(),
            );
            let result = backend.run_chunk(&cfg, chunk);
            let chunk_stats = match result {
                Ok(c) => c,
                Err(CoreError::Diverged { step }) => {
                    diverged_at = Some(step);
                    break;
                }
                Err(e) => return Err(e),
            };
            match effective {
                SyncProtocol::Bsp => bsp_steps += chunk_stats.steps_done,
                SyncProtocol::Asp => asp_steps += chunk_stats.steps_done,
            }
            transport_wire_s += chunk_stats.wire_time_s;
            transport_retries += chunk_stats.wire_retries;
            transport_reconnects += chunk_stats.wire_reconnects;

            // Feed the straggler detector and react per the online policy,
            // but only while the BSP budget is unmet (after the main switch
            // the job is immune to transient stragglers).
            let before_main_switch = protocol == SyncProtocol::Bsp;
            if before_main_switch {
                // Partial chunks at evaluation boundaries carry fewer rounds
                // and proportionally noisier throughput samples; feeding
                // them to the detector causes false positives.
                if chunk_stats.steps_done >= self.policy.detect_chunk {
                    detector.observe(&chunk_stats.per_worker_images_per_sec);
                }
                match self.policy.online {
                    OnlinePolicyKind::Baseline => {}
                    OnlinePolicyKind::Greedy => {
                        if !greedy_detour && detector.any_straggler() {
                            let overhead =
                                backend.apply_switch_overhead(SyncProtocol::Bsp, SyncProtocol::Asp);
                            switches.push(SwitchRecord {
                                step: backend.step(),
                                time_s: (backend.now() - start_time).as_secs(),
                                from: SyncProtocol::Bsp,
                                to: SyncProtocol::Asp,
                                overhead_s: overhead.as_secs(),
                            });
                            greedy_detour = true;
                        } else if greedy_detour && !detector.any_straggler() {
                            let overhead =
                                backend.apply_switch_overhead(SyncProtocol::Asp, SyncProtocol::Bsp);
                            switches.push(SwitchRecord {
                                step: backend.step(),
                                time_s: (backend.now() - start_time).as_secs(),
                                from: SyncProtocol::Asp,
                                to: SyncProtocol::Bsp,
                                overhead_s: overhead.as_secs(),
                            });
                            greedy_detour = false;
                        }
                    }
                    OnlinePolicyKind::Elastic => {
                        for s in detector.stragglers() {
                            if backend.remove_worker(s) {
                                removed.push((backend.step(), s));
                            }
                        }
                    }
                }
            }

            // The main, planned BSP→ASP switch.
            if protocol == SyncProtocol::Bsp && bsp_steps >= switch_budget {
                if !removed.is_empty() {
                    backend.restore_workers();
                    detector.reset();
                }
                if switch_budget < total {
                    let overhead =
                        backend.apply_switch_overhead(SyncProtocol::Bsp, SyncProtocol::Asp);
                    backend.apply_momentum_variant(self.policy.config.momentum_scaling);
                    switches.push(SwitchRecord {
                        step: backend.step(),
                        time_s: (backend.now() - start_time).as_secs(),
                        from: SyncProtocol::Bsp,
                        to: SyncProtocol::Asp,
                        overhead_s: overhead.as_secs(),
                    });
                }
                protocol = SyncProtocol::Asp;
                greedy_detour = false;
            }

            while backend.step() >= next_eval {
                evals.push(EvalPoint {
                    step: next_eval,
                    time_s: (backend.now() - start_time).as_secs(),
                    accuracy: backend.eval_accuracy(),
                    loss: backend.training_loss(),
                });
                next_eval += self.policy.eval_interval;
            }
        }

        let total_time_s = (backend.now() - start_time).as_secs();
        // Final evaluation at the end of the workload.
        if diverged_at.is_none() && evals.last().map(|e| e.step) != Some(backend.step()) {
            evals.push(EvalPoint {
                step: backend.step(),
                time_s: total_time_s,
                accuracy: backend.eval_accuracy(),
                loss: backend.training_loss(),
            });
        }

        let (converged_accuracy, converged_time_s) = if diverged_at.is_some() {
            (None, None)
        } else {
            match detect_convergence(&evals) {
                Some(i) => (Some(evals[i].accuracy), Some(evals[i].time_s)),
                None => (evals.last().map(|e| e.accuracy), None),
            }
        };
        let tta_s = evals
            .iter()
            .find(|e| e.accuracy >= tta_target)
            .map(|e| e.time_s);

        Ok(TrainingReport {
            setup: setup.id,
            policy_fraction: self.policy.timing.switch_fraction,
            online: self.policy.online,
            final_loss: evals.last().map(|e| e.loss).unwrap_or(f64::INFINITY),
            evals,
            switches,
            removed_workers: removed,
            converged_accuracy,
            converged_time_s,
            total_time_s,
            total_steps: backend.step(),
            bsp_steps,
            asp_steps,
            tta_s,
            tta_target,
            diverged_at,
            transport_wire_s,
            transport_retries,
            transport_reconnects,
        })
    }
}

/// Index of the first evaluation at which the convergence criterion holds.
fn detect_convergence(evals: &[EvalPoint]) -> Option<usize> {
    if evals.len() < CONVERGENCE_WINDOW {
        return None;
    }
    for i in (CONVERGENCE_WINDOW - 1)..evals.len() {
        let window = &evals[i + 1 - CONVERGENCE_WINDOW..=i];
        let min = window
            .iter()
            .map(|e| e.accuracy)
            .fold(f64::INFINITY, f64::min);
        let max = window
            .iter()
            .map(|e| e.accuracy)
            .fold(f64::NEG_INFINITY, f64::max);
        if max - min <= CONVERGENCE_EPSILON {
            return Some(i);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::SimBackend;

    fn run_policy(setup: &ExperimentSetup, policy: SyncSwitchPolicy, seed: u64) -> TrainingReport {
        let mut backend = SimBackend::new(setup, seed);
        ClusterManager::new(policy)
            .run(&mut backend, setup)
            .expect("run should not error")
    }

    #[test]
    fn bsp_baseline_full_run() {
        let setup = ExperimentSetup::one();
        let r = run_policy(&setup, SyncSwitchPolicy::static_bsp(8), 1);
        assert!(r.completed());
        assert_eq!(r.asp_steps, 0);
        assert!(r.bsp_steps >= 64_000);
        assert!(r.switches.is_empty(), "static BSP never switches");
        let acc = r.converged_accuracy.unwrap();
        assert!((acc - 0.919).abs() < 0.01, "BSP accuracy {acc}");
    }

    #[test]
    fn asp_baseline_full_run() {
        let setup = ExperimentSetup::one();
        let r = run_policy(&setup, SyncSwitchPolicy::static_asp(8), 2);
        assert!(r.completed());
        assert_eq!(r.bsp_steps, 0);
        let acc = r.converged_accuracy.unwrap();
        assert!((acc - 0.892).abs() < 0.012, "ASP accuracy {acc}");
    }

    #[test]
    fn paper_policy_setup1_time_and_accuracy() {
        let setup = ExperimentSetup::one();
        let ss = run_policy(&setup, SyncSwitchPolicy::paper_policy(&setup), 3);
        let bsp = run_policy(&setup, SyncSwitchPolicy::static_bsp(8), 3);
        let asp = run_policy(&setup, SyncSwitchPolicy::static_asp(8), 3);

        // Accuracy: Sync-Switch ≈ BSP, clearly above ASP.
        let ss_acc = ss.converged_accuracy.unwrap();
        let asp_acc = asp.converged_accuracy.unwrap();
        let bsp_acc = bsp.converged_accuracy.unwrap();
        assert!(bsp_acc - ss_acc < 0.012, "SS {ss_acc} vs BSP {bsp_acc}");
        assert!(ss_acc > asp_acc + 0.01, "SS {ss_acc} vs ASP {asp_acc}");

        // Time: ~19.5% of BSP (paper Fig. 10a), accept 14–28%.
        let frac = ss.total_time_s / bsp.total_time_s;
        assert!((0.14..0.28).contains(&frac), "time fraction {frac}");

        // Exactly one switch at ~6.25% of the workload.
        assert_eq!(ss.switches.len(), 1);
        let sw = ss.switches[0];
        assert!(
            (3_900..=4_200).contains(&sw.step),
            "switch step {}",
            sw.step
        );
        assert_eq!(ss.bsp_steps, 4_000);
        // Switch overhead is tens of seconds, a small fraction of the run.
        assert!(sw.overhead_s > 10.0 && sw.overhead_s < 90.0);
        assert!(ss.overhead_fraction() < 0.06);
    }

    #[test]
    fn tta_speedup_near_4x_setup1() {
        let setup = ExperimentSetup::one();
        let ss = run_policy(&setup, SyncSwitchPolicy::paper_policy(&setup), 4);
        let bsp = run_policy(&setup, SyncSwitchPolicy::static_bsp(8), 4);
        let (ss_tta, bsp_tta) = (ss.tta_s.expect("ss tta"), bsp.tta_s.expect("bsp tta"));
        let speedup = bsp_tta / ss_tta;
        assert!(
            (2.5..6.5).contains(&speedup),
            "TTA speedup {speedup} (paper: 3.99)"
        );
    }

    #[test]
    fn setup3_asp_diverges_sync_switch_survives() {
        let setup = ExperimentSetup::three();
        let asp = run_policy(&setup, SyncSwitchPolicy::static_asp(16), 5);
        assert!(asp.diverged_at.is_some(), "pure ASP must diverge");
        assert!(asp.converged_accuracy.is_none());

        let ss = run_policy(&setup, SyncSwitchPolicy::paper_policy(&setup), 5);
        assert!(ss.completed(), "P3 (switch at 50%) must survive");
        let acc = ss.converged_accuracy.unwrap();
        assert!((acc - 0.922).abs() < 0.01, "setup3 SS accuracy {acc}");
    }

    #[test]
    fn eval_cadence_covers_run() {
        let setup = ExperimentSetup::one();
        let r = run_policy(&setup, SyncSwitchPolicy::paper_policy(&setup), 6);
        // 64k steps / 2k interval = 32 evals, + initial.
        assert!(r.evals.len() >= 32, "evals {}", r.evals.len());
        assert_eq!(r.evals[0].step, 0);
        assert_eq!(r.evals.last().unwrap().step, 64_000);
        // Time is monotone along the curve.
        for w in r.evals.windows(2) {
            assert!(w[1].time_s >= w[0].time_s);
        }
    }

    #[test]
    fn convergence_detection_window() {
        let flat = |acc: f64, step: u64| EvalPoint {
            step,
            time_s: step as f64,
            accuracy: acc,
            loss: 0.1,
        };
        // Rising then flat: converges at the 5th flat point.
        let mut evals = vec![flat(0.5, 0), flat(0.7, 1), flat(0.8, 2), flat(0.9, 3)];
        for i in 0..6 {
            evals.push(flat(0.918 + 0.0001 * i as f64, 4 + i));
        }
        let idx = detect_convergence(&evals).expect("should converge");
        assert_eq!(idx, 8); // first window of 5 inside the flat tail
                            // A noisy curve never converges.
        let noisy: Vec<EvalPoint> = (0..10u32)
            .map(|i| flat(0.5 + 0.05 * f64::from(i % 2), u64::from(i)))
            .collect();
        assert!(detect_convergence(&noisy).is_none());
    }
}
