//! Error types for the policy engine.

use std::error::Error;
use std::fmt;

/// Errors surfaced while orchestrating a training job.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum CoreError {
    /// The run diverged (non-finite / runaway loss) — the failure mode of
    /// ASP in paper experiment setup 3.
    Diverged {
        /// Global step at which divergence was detected.
        step: u64,
    },
    /// A policy is internally inconsistent (e.g. a switch fraction outside
    /// `[0, 1]`).
    InvalidPolicy(String),
    /// The execution backend reported a failure.
    Backend(String),
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::Diverged { step } => write!(f, "training diverged at step {step}"),
            CoreError::InvalidPolicy(msg) => write!(f, "invalid policy: {msg}"),
            CoreError::Backend(msg) => write!(f, "backend failure: {msg}"),
        }
    }
}

impl Error for CoreError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert_eq!(
            CoreError::Diverged { step: 9 }.to_string(),
            "training diverged at step 9"
        );
        assert!(CoreError::InvalidPolicy("bad".into())
            .to_string()
            .contains("bad"));
    }

    #[test]
    fn is_send_sync() {
        fn check<T: Send + Sync>() {}
        check::<CoreError>();
    }
}
