//! Monte-Carlo analysis of the binary-search cost (paper §VI-C1,
//! Tables II / IV / V / VI, Fig. 16).
//!
//! The paper "uses all our training logs and simulates each search setting
//! 1000 times with the accuracy threshold of 0.01"; here the logs are the
//! calibrated closed-form accuracy/time distributions.

use serde::{Deserialize, Serialize};

use sync_switch_sim::DetRng;
use sync_switch_workloads::{CalibrationTargets, ExperimentSetup};

use crate::timing::{AnalyticOracle, BinarySearchTuner, NoiselessOracle, TrainingOracle};

/// One search setting: `(job recurrence, number of BSP trainings, number of
/// candidate policy trainings)` — the row keys of Tables II / IV–VI.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct SearchSetting {
    /// Whether the job is recurring (target accuracy known from history).
    pub recurring: bool,
    /// Pilot BSP runs used to establish the target accuracy.
    pub bsp_runs: usize,
    /// Runs per candidate switch timing.
    pub candidate_runs: usize,
}

impl SearchSetting {
    /// The paper's baseline setting `(No, 5, 5)`.
    pub fn baseline() -> Self {
        SearchSetting {
            recurring: false,
            bsp_runs: 5,
            candidate_runs: 5,
        }
    }

    /// All settings evaluated in paper Tables IV–VI, in row order.
    pub fn table_rows() -> Vec<SearchSetting> {
        let mut rows = Vec::new();
        for n in (1..=5).rev() {
            rows.push(SearchSetting {
                recurring: false,
                bsp_runs: n,
                candidate_runs: n,
            });
        }
        for n in (2..=5).rev() {
            rows.push(SearchSetting {
                recurring: false,
                bsp_runs: 1,
                candidate_runs: n,
            });
        }
        for n in (1..=5).rev() {
            rows.push(SearchSetting {
                recurring: true,
                bsp_runs: 0,
                candidate_runs: n,
            });
        }
        rows
    }
}

impl std::fmt::Display for SearchSetting {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "({}, {}, {})",
            if self.recurring { "Yes" } else { "No" },
            self.bsp_runs,
            self.candidate_runs
        )
    }
}

/// Aggregated Monte-Carlo result for one search setting.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SearchCostRow {
    /// The setting simulated.
    pub setting: SearchSetting,
    /// Mean search cost, in multiples of one full BSP training.
    pub search_cost: f64,
    /// Number of job recurrences needed to amortize the search cost via
    /// the per-job time saved by the found policy.
    pub amortized_recurrences: f64,
    /// Valid training sessions produced per BSP-training-equivalent of
    /// search cost ("Effective Training vs BSP").
    pub effective_training: f64,
    /// Probability the search returns the ground-truth switch timing.
    pub success_probability: f64,
}

/// Runs the Monte-Carlo analysis of one search setting.
///
/// # Panics
///
/// Panics if `trials == 0` or the setting has neither a known target nor
/// pilot runs.
pub fn simulate_search_setting(
    setup: &ExperimentSetup,
    setting: SearchSetting,
    trials: usize,
    beta: f64,
    seed: u64,
) -> SearchCostRow {
    assert!(trials > 0, "need at least one trial");
    assert!(
        setting.recurring || setting.bsp_runs > 0,
        "non-recurring settings need pilot runs"
    );
    let calib = CalibrationTargets::for_setup(setup.id);

    // Ground truth: the noiseless search with the exact target.
    let ground_truth = {
        let mut oracle = NoiselessOracle(AnalyticOracle::new(setup, seed));
        let tuner = BinarySearchTuner {
            beta,
            max_settings: 5,
            runs_per_setting: 1,
            bsp_runs: 0,
            target_accuracy: Some(calib.bsp_accuracy),
        };
        tuner
            .search(&mut oracle)
            .expect("noiseless search cannot fail")
            .timing
            .switch_fraction
    };

    let per_job_saving = 1.0 - calib.time_fraction_at(ground_truth);
    let rng = DetRng::new(seed).derive("search-sim", setup.id.index() as u64);

    let mut total_cost = 0.0;
    let mut total_effective = 0.0;
    let mut successes = 0usize;
    for t in 0..trials {
        let mut oracle = CountingOracle {
            inner: AnalyticOracle::new(setup, rng.derive("trial", t as u64).seed()),
            valid_sessions: 0,
            target: calib.bsp_accuracy,
            beta,
        };
        let tuner = BinarySearchTuner {
            beta,
            max_settings: 5,
            runs_per_setting: setting.candidate_runs,
            bsp_runs: setting.bsp_runs,
            target_accuracy: setting.recurring.then_some(calib.bsp_accuracy),
        };
        let outcome = tuner.search(&mut oracle).expect("search cannot fail here");
        total_cost += outcome.search_cost_vs_bsp;
        total_effective += oracle.valid_sessions as f64 / outcome.search_cost_vs_bsp;
        if (outcome.timing.switch_fraction - ground_truth).abs() < 1e-9 {
            successes += 1;
        }
    }

    let mean_cost = total_cost / trials as f64;
    SearchCostRow {
        setting,
        search_cost: mean_cost,
        amortized_recurrences: mean_cost / per_job_saving,
        effective_training: total_effective / trials as f64,
        success_probability: successes as f64 / trials as f64,
    }
}

/// Oracle wrapper counting *valid* training sessions — runs whose true mean
/// accuracy lies within `target ± β` (they produce usable models, the
/// "Effective Training" numerator of Table II).
struct CountingOracle {
    inner: AnalyticOracle,
    valid_sessions: usize,
    target: f64,
    beta: f64,
}

impl TrainingOracle for CountingOracle {
    fn run_trial(&mut self, fraction: f64) -> crate::timing::TrialResult {
        let noiseless = self.inner.noiseless_trial(fraction);
        let r = self.inner.run_trial(fraction);
        if let Some(true_mean) = noiseless.accuracy {
            if (true_mean - self.target).abs() <= self.beta {
                self.valid_sessions += 1;
            }
        }
        r
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sync_switch_workloads::SetupId;

    fn row(setup: SetupId, setting: SearchSetting) -> SearchCostRow {
        simulate_search_setting(&ExperimentSetup::from_id(setup), setting, 400, 0.01, 42)
    }

    #[test]
    fn baseline_setup1_matches_table2() {
        let r = row(SetupId::One, SearchSetting::baseline());
        // Paper: cost 12.71×, amortized 15.79, effective 1.97×, success 100%.
        assert!(
            (11.0..14.5).contains(&r.search_cost),
            "cost {}",
            r.search_cost
        );
        assert!(
            (13.0..19.0).contains(&r.amortized_recurrences),
            "amortized {}",
            r.amortized_recurrences
        );
        assert!(
            (1.6..2.4).contains(&r.effective_training),
            "effective {}",
            r.effective_training
        );
        assert!(
            r.success_probability > 0.90,
            "success {}",
            r.success_probability
        );
    }

    #[test]
    fn recurring_setup1_is_cheaper() {
        let rec = row(
            SetupId::One,
            SearchSetting {
                recurring: true,
                bsp_runs: 0,
                candidate_runs: 3,
            },
        );
        // Paper (Yes, 0, 3): cost 4.63×, effective 2.59×, success 100%.
        assert!(
            (4.0..5.6).contains(&rec.search_cost),
            "cost {}",
            rec.search_cost
        );
        assert!(
            rec.effective_training > 2.0,
            "effective {}",
            rec.effective_training
        );
        assert!(rec.success_probability > 0.90);
    }

    #[test]
    fn fewer_runs_lower_cost_lower_success() {
        let r5 = row(SetupId::One, SearchSetting::baseline());
        let r1 = row(
            SetupId::One,
            SearchSetting {
                recurring: false,
                bsp_runs: 1,
                candidate_runs: 1,
            },
        );
        assert!(r1.search_cost < r5.search_cost / 3.0);
        assert!(
            r1.success_probability < r5.success_probability,
            "1-run success {} should trail 5-run {}",
            r1.success_probability,
            r5.success_probability
        );
        // Paper (No,1,1): 56.8% success — noisy single runs misjudge.
        assert!(
            (0.25..0.9).contains(&r1.success_probability),
            "success {}",
            r1.success_probability
        );
    }

    #[test]
    fn setup3_search_is_cheap_and_reliable() {
        // Diverged probes cost almost nothing and are always rejected, so
        // setup-3 searches are cheap and 100% successful (paper Table VI).
        let r = row(
            SetupId::Three,
            SearchSetting {
                recurring: true,
                bsp_runs: 0,
                candidate_runs: 1,
            },
        );
        assert!(
            (0.4..0.8).contains(&r.search_cost),
            "cost {}",
            r.search_cost
        );
        assert!(r.success_probability > 0.99);
        assert!(
            (1.2..2.2).contains(&r.effective_training),
            "effective {}",
            r.effective_training
        );
    }

    #[test]
    fn table_rows_cover_paper_grid() {
        let rows = SearchSetting::table_rows();
        assert_eq!(rows.len(), 14);
        assert_eq!(rows[0], SearchSetting::baseline());
        assert!(rows.iter().any(|s| s.recurring && s.candidate_runs == 1));
        assert_eq!(SearchSetting::baseline().to_string(), "(No, 5, 5)");
    }
}
