//! Online straggler-aware policies (paper §IV-B2).

use serde::{Deserialize, Serialize};

/// Which online policy reacts to detected transient stragglers.
///
/// Both policies only act *before* the offline switch point: "any transient
/// straggler-oriented policies only need to react before the switch timing
/// … once a training session is switched to ASP, we consider it immune from
/// the impact of transient stragglers."
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum OnlinePolicyKind {
    /// Straggler-agnostic: ride out the slowdown under BSP.
    Baseline,
    /// Switch to ASP while a straggler is present; switch back to BSP once
    /// the cluster is clean and the BSP budget is unmet. Incurs extra
    /// switch overhead and early-ASP exposure (the paper finds it degrades
    /// accuracy by ~2% and rejects it).
    Greedy,
    /// Evict detected stragglers and finish the BSP budget on the smaller
    /// cluster; restore the full cluster for the ASP phase. The paper's
    /// recommended policy (preserves accuracy, ~1.1× speedup).
    Elastic,
}

impl OnlinePolicyKind {
    /// All variants in evaluation order (paper Fig. 15).
    pub fn all() -> [OnlinePolicyKind; 3] {
        [
            OnlinePolicyKind::Baseline,
            OnlinePolicyKind::Greedy,
            OnlinePolicyKind::Elastic,
        ]
    }
}

impl std::fmt::Display for OnlinePolicyKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let name = match self {
            OnlinePolicyKind::Baseline => "Baseline",
            OnlinePolicyKind::Greedy => "Greedy",
            OnlinePolicyKind::Elastic => "Elastic",
        };
        write!(f, "{name}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_all() {
        assert_eq!(OnlinePolicyKind::Elastic.to_string(), "Elastic");
        assert_eq!(OnlinePolicyKind::all().len(), 3);
    }
}
