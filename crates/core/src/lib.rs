//! # Sync-Switch core: adaptive hybrid parameter-synchronization policies
//!
//! The primary contribution of the paper, as a reusable library:
//!
//! * **Protocol policy** ([`policy`]): always BSP first, then ASP.
//! * **Timing policy** ([`timing`]): *when* to switch — offline, found by
//!   the binary search of paper Algorithm 1 over trial trainings; online,
//!   adjusted by straggler-aware policies.
//! * **Configuration policy** ([`config`]): *how* to adjust batch size
//!   (`n·B` ↔ `B`), learning rate (`n·η` ↔ `η`, the linear scaling rule),
//!   and momentum on a switch.
//! * **Online policies** ([`online`]): greedy (switch early on stragglers)
//!   and elastic (evict stragglers until the BSP budget is met).
//! * **Straggler detection** ([`detector`]): sliding-window per-worker
//!   throughput vs. the cluster mean minus one standard deviation.
//! * **Orchestration** ([`manager`]): the cluster manager that drives any
//!   [`TrainingBackend`] through a full job, producing a
//!   [`TrainingReport`] with converged accuracy, total time, TTA, and the
//!   full evaluation timeline.
//! * **Search-cost analysis** ([`search_sim`]): the Monte-Carlo simulation
//!   behind the paper's Tables II / IV / V / VI and Fig. 16.
//!
//! Two backends implement [`TrainingBackend`]: [`SimBackend`] (cluster
//! simulator + convergence surrogate, used for all paper-scale experiments)
//! and — in the `sync-switch` facade crate — a real multi-threaded
//! parameter-server backend for laptop-scale runs.

pub mod backend;
pub mod config;
pub mod detector;
pub mod error;
pub mod manager;
pub mod online;
pub mod policy;
pub mod report;
pub mod search_sim;
pub mod timing;

pub use backend::{BackendChunk, SimBackend, TrainingBackend};
pub use config::{AdjustedConfig, ConfigPolicy};
pub use detector::StragglerDetector;
pub use error::CoreError;
pub use manager::ClusterManager;
pub use online::OnlinePolicyKind;
pub use policy::SyncSwitchPolicy;
pub use report::{SwitchRecord, TrainingReport};
pub use search_sim::{simulate_search_setting, SearchCostRow, SearchSetting};
pub use timing::{
    AnalyticOracle, BinarySearchTuner, NoiselessOracle, SearchOutcome, SimOracle, TimingPolicy,
    TrainingOracle, TrialResult,
};

// Re-export the protocol type for downstream convenience.
pub use sync_switch_workloads::SyncProtocol;
