//! The configuration policy: hyper-parameter adjustment on protocol switch
//! (paper §IV-C).

use serde::{Deserialize, Serialize};

use sync_switch_convergence::MomentumScaling;
use sync_switch_workloads::{HyperParams, SyncProtocol};

/// Hyper-parameters adjusted for a specific protocol, derived from the
/// user-provided initial set.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AdjustedConfig {
    /// Protocol the configuration is for.
    pub protocol: SyncProtocol,
    /// Per-worker mini-batch size.
    pub per_worker_batch: usize,
    /// Global (effective) batch size per parameter update.
    pub global_batch: usize,
    /// Learning rate.
    pub learning_rate: f64,
    /// Momentum coefficient at the moment of the switch.
    pub momentum: f64,
    /// Momentum-scaling variant governing post-switch evolution.
    pub momentum_scaling: MomentumScaling,
}

/// The Sync-Switch configuration policy.
///
/// Given the practitioner's initial hyper-parameters (`B`, `η`, `μ`) and
/// the cluster size `n`:
///
/// * **BSP** runs with global batch `n·B` (TensorFlow distributes it, so
///   each worker still computes `B`) and the linearly-scaled rate `n·η`
///   (Goyal et al.'s rule, adopted by the paper).
/// * **ASP** runs with per-worker batch `B` and rate `η`.
/// * **Momentum** is kept at `μ` for both — the paper's empirical finding
///   (Fig. 8b, leftmost bar); alternative scalings are expressible for the
///   ablation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ConfigPolicy {
    /// Cluster size `n`.
    pub cluster_size: usize,
    /// Momentum-scaling variant to use after switching to ASP.
    pub momentum_scaling: MomentumScaling,
}

impl ConfigPolicy {
    /// Creates the paper's configuration policy for an `n`-worker cluster.
    ///
    /// # Panics
    ///
    /// Panics if `cluster_size == 0`.
    pub fn new(cluster_size: usize) -> Self {
        assert!(cluster_size > 0, "cluster size must be positive");
        ConfigPolicy {
            cluster_size,
            momentum_scaling: MomentumScaling::Baseline,
        }
    }

    /// Uses an alternative momentum-scaling variant (the Fig. 8b ablation).
    pub fn with_momentum_scaling(mut self, scaling: MomentumScaling) -> Self {
        self.momentum_scaling = scaling;
        self
    }

    /// Derives the configuration for running under `protocol` with `n`
    /// *currently active* workers (the elastic policy can shrink this below
    /// `cluster_size`).
    pub fn for_protocol(&self, hyper: &HyperParams, protocol: SyncProtocol) -> AdjustedConfig {
        self.for_protocol_with_active(hyper, protocol, self.cluster_size)
    }

    /// Like [`ConfigPolicy::for_protocol`] but with an explicit active
    /// worker count.
    ///
    /// # Panics
    ///
    /// Panics if `active == 0` or `active > cluster_size`.
    pub fn for_protocol_with_active(
        &self,
        hyper: &HyperParams,
        protocol: SyncProtocol,
        active: usize,
    ) -> AdjustedConfig {
        assert!(
            active > 0 && active <= self.cluster_size,
            "active workers {active} out of range for cluster {}",
            self.cluster_size
        );
        match protocol {
            SyncProtocol::Bsp => AdjustedConfig {
                protocol,
                per_worker_batch: hyper.batch_size,
                global_batch: active * hyper.batch_size,
                learning_rate: active as f64 * hyper.learning_rate,
                momentum: hyper.momentum,
                momentum_scaling: MomentumScaling::Baseline,
            },
            SyncProtocol::Asp => {
                let momentum =
                    self.momentum_scaling
                        .effective_momentum(0, self.cluster_size, hyper.momentum);
                AdjustedConfig {
                    protocol,
                    per_worker_batch: hyper.batch_size,
                    global_batch: hyper.batch_size,
                    learning_rate: hyper.learning_rate,
                    momentum,
                    momentum_scaling: self.momentum_scaling,
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hyper() -> HyperParams {
        HyperParams::resnet_cifar()
    }

    #[test]
    fn bsp_config_scales_linearly() {
        let p = ConfigPolicy::new(8);
        let c = p.for_protocol(&hyper(), SyncProtocol::Bsp);
        assert_eq!(c.global_batch, 1024);
        assert_eq!(c.per_worker_batch, 128);
        assert!((c.learning_rate - 0.8).abs() < 1e-12);
        assert_eq!(c.momentum, 0.9);
    }

    #[test]
    fn asp_config_uses_base_values() {
        let p = ConfigPolicy::new(8);
        let c = p.for_protocol(&hyper(), SyncProtocol::Asp);
        assert_eq!(c.global_batch, 128);
        assert_eq!(c.per_worker_batch, 128);
        assert!((c.learning_rate - 0.1).abs() < 1e-12);
        assert_eq!(c.momentum, 0.9); // baseline keeps momentum
    }

    #[test]
    fn elastic_shrink_rescales_bsp() {
        let p = ConfigPolicy::new(8);
        let c = p.for_protocol_with_active(&hyper(), SyncProtocol::Bsp, 7);
        assert_eq!(c.global_batch, 7 * 128);
        assert!((c.learning_rate - 0.7).abs() < 1e-12);
    }

    #[test]
    fn momentum_variants_change_initial_momentum() {
        let p = ConfigPolicy::new(8).with_momentum_scaling(MomentumScaling::Zero);
        let c = p.for_protocol(&hyper(), SyncProtocol::Asp);
        assert_eq!(c.momentum, 0.0);
        let p = ConfigPolicy::new(8).with_momentum_scaling(MomentumScaling::FixedScaled);
        let c = p.for_protocol(&hyper(), SyncProtocol::Asp);
        assert!((c.momentum - 0.125).abs() < 1e-12);
        // BSP side is never affected by the ASP scaling variant.
        let c = p.for_protocol(&hyper(), SyncProtocol::Bsp);
        assert_eq!(c.momentum, 0.9);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn zero_active_panics() {
        let p = ConfigPolicy::new(4);
        let _ = p.for_protocol_with_active(&hyper(), SyncProtocol::Bsp, 0);
    }
}
