//! Staleness-aware SGD training-dynamics surrogate.
//!
//! The paper's full training runs (64 K–128 K steps of ResNet on K80
//! clusters) cannot be executed here; this crate substitutes a surrogate
//! that encodes the paper's own theoretical explanation of *why*
//! Sync-Switch works (paper §IV-A2 and Appendix A):
//!
//! * Early in training, gradients are large and change quickly, so stale
//!   (ASP) gradients are damaging; late in training the population loss is
//!   smooth at the scale of the (decayed) learning rate, so staleness is
//!   harmless. We model this as an exponentially decaying *damage density*
//!   over workload fraction `x`: ASP exposure at `x` accrues accuracy
//!   damage `∝ exp(−x/τ)`, where `τ` is set from the paper's measured knee
//!   point. Pure ASP accrues the full BSP−ASP accuracy gap; ASP after the
//!   knee accrues ≈ nothing.
//! * With enough workers, stale gradients at the *undecayed* learning rate
//!   destabilize training entirely (paper Fig. 13): an instability index
//!   `n · η(t) · κ` above a threshold diverges the run — true for 16
//!   workers before the first decay, safe after.
//! * The training loss floor under ASP sits far above BSP's (paper
//!   Fig. 11a: BSP ≈ 10⁻³, Sync-Switch ≈ 10⁻², ASP ≈ 10⁻¹) even when test
//!   accuracy matches — the trajectory model reproduces this via a
//!   damage-dependent loss floor.
//!
//! Calibration endpoints come from `sync-switch-workloads::calibration`;
//! every constant that is *fitted* rather than derived is documented where
//! it is defined.

pub mod analytic;
pub mod momentum;
pub mod trajectory;

pub use analytic::{converged_accuracy_stats, damage_at, damage_f0, AccuracyStats, DAMAGE_SHAPE_P};
pub use momentum::MomentumScaling;
pub use trajectory::{PhaseInput, TrajectoryModel};
