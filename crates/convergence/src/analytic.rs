//! Closed-form converged-accuracy statistics.
//!
//! The Monte-Carlo search-cost simulator (paper §VI-C1 simulates its binary
//! search "using all our training logs") needs thousands of converged
//! accuracies per second; this module provides the closed form of the
//! trajectory model's endpoint so those simulations don't need to integrate
//! full trajectories.

use sync_switch_workloads::{CalibrationTargets, SetupId};

/// Distribution of the converged accuracy for a BSP→ASP run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AccuracyStats {
    /// Expected converged accuracy.
    pub mean: f64,
    /// Run-to-run standard deviation.
    pub sigma: f64,
    /// Whether this configuration diverges instead of converging.
    pub diverges: bool,
}

/// Shape exponent of the logistic damage curve.
///
/// Stale-gradient damage over workload fraction follows
/// `D(f) = gap / (1 + (f / f0)^p)` — a sharp knee rather than a gentle
/// exponential. The constants are chosen so that, with β = 0.01 and the
/// per-setup run sigmas, (a) the *noiseless* binary search of Algorithm 1
/// returns exactly the paper's timing policies (6.25 % / 12.5 % / 50 %),
/// (b) damage at the knee is small enough that R = 5 searches accept it
/// with ≈100 % probability (paper Table II baselines), and (c) the probe
/// one binary-search level below the knee is rejected with high margin.
pub const DAMAGE_SHAPE_P: f64 = 7.5;

/// Midpoint of the logistic damage curve for a setup.
pub fn damage_f0(calib: &CalibrationTargets) -> f64 {
    calib.knee_fraction / 1.35
}

/// Residual stale-gradient damage when the first `f` of the workload runs
/// under BSP: `gap / (1 + (f / f0)^p)`.
pub fn damage_at(calib: &CalibrationTargets, f: f64) -> f64 {
    let f0 = damage_f0(calib);
    if f <= 0.0 {
        return calib.asp_accuracy_gap();
    }
    calib.asp_accuracy_gap() / (1.0 + (f / f0).powf(DAMAGE_SHAPE_P))
}

/// Converged-accuracy statistics when the first `bsp_fraction` of the
/// workload runs under BSP and the remainder under ASP.
///
/// # Panics
///
/// Panics if `bsp_fraction` is outside `[0, 1]`.
pub fn converged_accuracy_stats(setup: SetupId, bsp_fraction: f64) -> AccuracyStats {
    assert!(
        (0.0..=1.0).contains(&bsp_fraction),
        "fraction must be in [0,1], got {bsp_fraction}"
    );
    let calib = CalibrationTargets::for_setup(setup);
    if bsp_fraction >= 1.0 {
        return AccuracyStats {
            mean: calib.bsp_accuracy,
            sigma: calib.accuracy_sigma,
            diverges: false,
        };
    }
    if let Some(div_below) = calib.divergence_below_fraction {
        if bsp_fraction < div_below {
            return AccuracyStats {
                mean: 0.1,
                sigma: 0.0,
                diverges: true,
            };
        }
    }
    let damage = damage_at(&calib, bsp_fraction);
    AccuracyStats {
        mean: calib.bsp_accuracy - damage,
        sigma: calib.accuracy_sigma,
        diverges: false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pure_asp_hits_asp_accuracy() {
        let s = converged_accuracy_stats(SetupId::One, 0.0);
        assert!((s.mean - 0.892).abs() < 1e-9);
        assert!(!s.diverges);
    }

    #[test]
    fn pure_bsp_hits_bsp_accuracy() {
        let s = converged_accuracy_stats(SetupId::One, 1.0);
        assert_eq!(s.mean, 0.919);
    }

    #[test]
    fn knee_point_is_within_noise_of_bsp() {
        let calib = CalibrationTargets::for_setup(SetupId::One);
        let s = converged_accuracy_stats(SetupId::One, calib.knee_fraction);
        assert!(
            calib.bsp_accuracy - s.mean < 0.006,
            "knee accuracy {} too far below BSP {}",
            s.mean,
            calib.bsp_accuracy
        );
        // Just below the knee the damage is detectably larger (outside the
        // binary search's acceptance band).
        let below = converged_accuracy_stats(SetupId::One, calib.knee_fraction / 2.0);
        assert!(calib.bsp_accuracy - below.mean > 0.010);
    }

    #[test]
    fn accuracy_is_monotone_in_bsp_fraction() {
        let fractions = [0.0, 0.03125, 0.0625, 0.125, 0.25, 0.5, 1.0];
        let mut prev = 0.0;
        for &f in &fractions {
            let s = converged_accuracy_stats(SetupId::Two, f);
            assert!(
                s.mean >= prev,
                "accuracy must be monotone: {} < {prev} at f={f}",
                s.mean
            );
            prev = s.mean;
        }
    }

    #[test]
    fn setup3_diverges_below_half() {
        assert!(converged_accuracy_stats(SetupId::Three, 0.0).diverges);
        assert!(converged_accuracy_stats(SetupId::Three, 0.25).diverges);
        assert!(converged_accuracy_stats(SetupId::Three, 0.49).diverges);
        let ok = converged_accuracy_stats(SetupId::Three, 0.5);
        assert!(!ok.diverges);
        assert!((ok.mean - 0.923).abs() < 0.002);
    }

    #[test]
    fn setup2_knee_at_one_eighth() {
        let calib = CalibrationTargets::for_setup(SetupId::Two);
        // At the knee, damage sits inside the β = 0.01 acceptance band;
        // at half the knee it falls outside, so the search rejects it.
        let at_knee = converged_accuracy_stats(SetupId::Two, 0.125);
        assert!(calib.bsp_accuracy - at_knee.mean < 0.010);
        let at_6 = converged_accuracy_stats(SetupId::Two, 0.0625);
        assert!(calib.bsp_accuracy - at_6.mean > 0.012);
    }
}
