//! The step-by-step trajectory model: loss and accuracy over a training run
//! with arbitrary protocol schedules.

use sync_switch_sim::DetRng;
use sync_switch_workloads::{CalibrationTargets, ExperimentSetup, SyncProtocol};

use crate::analytic::damage_at;
use crate::momentum::MomentumScaling;

/// Per-chunk inputs the trajectory model needs from the execution substrate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PhaseInput {
    /// Protocol the chunk ran under.
    pub protocol: SyncProtocol,
    /// Mean measured gradient staleness during the chunk.
    pub staleness: f64,
    /// Momentum-scaling variant in effect (only meaningful under ASP).
    pub momentum: MomentumScaling,
}

impl PhaseInput {
    /// A BSP chunk (staleness 0 by construction).
    pub fn bsp() -> Self {
        PhaseInput {
            protocol: SyncProtocol::Bsp,
            staleness: 0.0,
            momentum: MomentumScaling::Baseline,
        }
    }

    /// An ASP chunk with the given measured staleness.
    pub fn asp(staleness: f64) -> Self {
        PhaseInput {
            protocol: SyncProtocol::Asp,
            staleness,
            momentum: MomentumScaling::Baseline,
        }
    }
}

/// Instability index threshold above which early-phase ASP diverges.
///
/// The index is `κ · n · η(t)` with `κ = 12.5`: 8 workers at η = 0.1 sit at
/// 10 (stable, but damaging), 16 workers at 20 (diverges — paper Fig. 13),
/// and any cluster after the first ×0.1 decay is far below threshold.
const DIVERGENCE_THRESHOLD: f64 = 15.0;
const INSTABILITY_KAPPA: f64 = 12.5;

/// Accuracy penalty per protocol switch beyond the first. The paper
/// attributes the greedy straggler policy's ~2% accuracy loss to "having to
/// perform two extra switches" (§VI-B3); each switch restarts from a
/// checkpoint and disrupts optimizer state.
const EXTRA_SWITCH_PENALTY: f64 = 0.007;

/// Penalty (mean) for switching ASP→BSP late in training — the saddle-point
/// stall of paper Fig. 7(c) / Remark A.3.
const ASP_TO_BSP_STALL_MEAN: f64 = 0.004;
const ASP_TO_BSP_STALL_SIGMA: f64 = 0.006;

/// A stochastic trajectory of one training run under a (possibly adaptive)
/// protocol schedule.
///
/// Drive it with [`TrajectoryModel::advance`] for every executed chunk and
/// [`TrajectoryModel::record_switch`] at every protocol switch; read
/// the state with [`TrajectoryModel::eval_accuracy`],
/// [`TrajectoryModel::training_loss`], and
/// [`TrajectoryModel::is_diverged`].
#[derive(Debug, Clone)]
pub struct TrajectoryModel {
    calib: CalibrationTargets,
    total_steps: u64,
    n_workers: usize,
    base_lr: f64,
    lr_boundaries: Vec<(u64, f64)>,
    /// Logistic damage midpoint (from the analytic model).
    f0: f64,
    /// Sampled per-run BSP-quality accuracy (base + run noise).
    base_acc: f64,
    damage: f64,
    momentum_penalty: f64,
    switch_penalty: f64,
    switches: u32,
    step: u64,
    acc: f64,
    loss: f64,
    loss_start: f64,
    loss_floor_bsp: f64,
    loss_floor_ratio: f64,
    diverged_at: Option<u64>,
    divergence_budget_steps: f64,
    divergence_exposure: f64,
    rng: DetRng,
}

impl TrajectoryModel {
    /// Creates a trajectory for a setup; `seed` determines the run's noise
    /// (the paper repeats every configuration five times — use five seeds).
    pub fn new(setup: &ExperimentSetup, seed: u64) -> Self {
        let calib = CalibrationTargets::for_setup(setup.id);
        let mut rng = DetRng::new(seed).derive("trajectory", setup.id.index() as u64);
        let base_acc = calib.bsp_accuracy + calib.accuracy_sigma * rng.standard_normal();
        let classes = setup.workload.dataset.classes as f64;
        // CIFAR-10 BSP bottoms out near 1e-3; CIFAR-100 near 1.2e-2
        // (fitted to Fig. 11a / 12a).
        let loss_floor_bsp = if classes > 50.0 { 1.2e-2 } else { 1.0e-3 };
        let loss_floor_ratio = if classes > 50.0 { 40.0 } else { 80.0 };
        // Divergent runs fail within a few hundred to a couple thousand
        // steps of unstable exposure.
        let divergence_budget_steps = 300.0 + 900.0 * rng.uniform(0.5, 1.5);
        TrajectoryModel {
            calib,
            total_steps: setup.workload.hyper.total_steps,
            n_workers: setup.cluster_size,
            base_lr: setup.workload.hyper.learning_rate,
            lr_boundaries: setup.workload.hyper.lr_schedule.boundaries().to_vec(),
            f0: crate::analytic::damage_f0(&CalibrationTargets::for_setup(setup.id)),
            base_acc,
            damage: 0.0,
            momentum_penalty: 0.0,
            switch_penalty: 0.0,
            switches: 0,
            step: 0,
            acc: 1.0 / classes,
            loss: classes.ln(),
            loss_start: classes.ln(),
            loss_floor_bsp,
            loss_floor_ratio,
            diverged_at: None,
            divergence_budget_steps,
            divergence_exposure: 0.0,
            rng,
        }
    }

    /// Steps completed so far.
    pub fn step(&self) -> u64 {
        self.step
    }

    /// Total workload in steps.
    pub fn total_steps(&self) -> u64 {
        self.total_steps
    }

    /// Whether the run has diverged (and at which step).
    pub fn diverged_at(&self) -> Option<u64> {
        self.diverged_at
    }

    /// Whether the run has diverged.
    pub fn is_diverged(&self) -> bool {
        self.diverged_at.is_some()
    }

    /// Learning-rate decay factor in effect at `step`.
    fn lr_factor(&self, step: u64) -> f64 {
        let mut f = 1.0;
        for &(b, factor) in &self.lr_boundaries {
            if step >= b {
                f = factor;
            }
        }
        f
    }

    /// Index of the LR phase at `step` (0 before the first decay, …).
    fn phase(&self, step: u64) -> usize {
        self.lr_boundaries
            .iter()
            .filter(|&&(b, _)| step >= b)
            .count()
    }

    /// Records a protocol switch. The first switch is the intended
    /// BSP→ASP handover; each additional switch costs accuracy
    /// (checkpoint/restart disruption), and a late ASP→BSP switch risks the
    /// saddle-point stall of paper Remark A.3.
    pub fn record_switch(&mut self, from: SyncProtocol, to: SyncProtocol) {
        self.switches += 1;
        if self.switches > 1 {
            self.switch_penalty += EXTRA_SWITCH_PENALTY;
        }
        if from == SyncProtocol::Asp && to == SyncProtocol::Bsp {
            let stall = ASP_TO_BSP_STALL_MEAN + ASP_TO_BSP_STALL_SIGMA * self.rng.standard_normal();
            self.switch_penalty += stall.max(0.0);
        }
    }

    /// Sets the momentum-scaling penalty (called once when the ASP phase
    /// begins with a non-baseline variant).
    pub fn apply_momentum_variant(&mut self, variant: MomentumScaling) {
        self.momentum_penalty = variant.accuracy_penalty(self.n_workers);
    }

    /// Advances the trajectory by `steps` executed under `input`.
    ///
    /// # Panics
    ///
    /// Panics if the run has already diverged.
    pub fn advance(&mut self, steps: u64, input: &PhaseInput) {
        assert!(!self.is_diverged(), "cannot advance a diverged run");
        if steps == 0 {
            return;
        }
        let x0 = self.step as f64 / self.total_steps as f64;
        let x1 = (self.step + steps) as f64 / self.total_steps as f64;

        if input.protocol == SyncProtocol::Asp {
            // Damage of ASP exposure over [x0, x1] telescopes on the
            // logistic residual-damage curve: D(x0) − D(x1), so a run that
            // is ASP from `f` to the end accrues exactly `damage_at(f)`.
            let d = damage_at(&self.calib, x0) - damage_at(&self.calib, x1);
            let staleness_scale = if self.n_workers > 1 {
                (input.staleness / (self.n_workers as f64 - 1.0)).clamp(0.1, 2.0)
            } else {
                1.0
            };
            self.damage += d.max(0.0) * staleness_scale;

            // Divergence: unstable exposure while κ·n·η is above threshold.
            let lr = self.base_lr * self.lr_factor(self.step);
            let instability = INSTABILITY_KAPPA * self.n_workers as f64 * lr;
            if instability > DIVERGENCE_THRESHOLD {
                self.divergence_exposure += steps as f64;
                if self.divergence_exposure > self.divergence_budget_steps {
                    self.diverged_at =
                        Some(self.step + steps.min(self.divergence_budget_steps as u64));
                    self.step += steps;
                    self.loss = 1e6;
                    self.acc = 0.1; // random-guess accuracy
                    return;
                }
            }
        }

        // --- Accuracy trajectory -----------------------------------------
        // Ceiling for the current LR phase: earlier phases saturate below
        // the final accuracy (the post-decay jumps of ResNet curves).
        let ceiling_final =
            self.base_acc - self.damage - self.momentum_penalty - self.switch_penalty;
        let phase = self.phase(self.step);
        let phase_gap = match phase {
            0 => 0.035,
            1 => 0.005,
            _ => 0.0,
        };
        let ceiling = ceiling_final - phase_gap;
        // Approach time-constants per phase, in workload fractions.
        let tau_acc = match phase {
            0 => 0.08,
            _ => 0.02,
        };
        let dx = x1 - x0;
        let mut rate = 1.0 - (-dx / tau_acc).exp();
        // Early unstable ASP makes progress slower and noisier (Fig. 2a).
        let early_unsafe = input.protocol == SyncProtocol::Asp && x0 < 1.5 * self.f0;
        if early_unsafe {
            rate *= 0.6;
        }
        self.acc += (ceiling - self.acc) * rate;

        // --- Training-loss trajectory ------------------------------------
        // The floor rises with accumulated damage when running ASP: a pure
        // ASP run bounces at ~ratio× the BSP floor, a well-timed Sync-Switch
        // run at ~sqrt(ratio)× (Fig. 11a).
        let damage_frac = if self.calib.asp_accuracy_gap() > 0.0 {
            (self.damage / self.calib.asp_accuracy_gap()).clamp(0.0, 1.0)
        } else {
            0.0
        };
        let floor = if input.protocol == SyncProtocol::Bsp {
            self.loss_floor_bsp
        } else {
            self.loss_floor_bsp * self.loss_floor_ratio.powf(0.5 + 0.5 * damage_frac)
        };
        let tau_loss = match phase {
            0 => 0.10,
            _ => 0.035,
        };
        let loss_rate = 1.0 - (-dx / tau_loss).exp();
        if self.loss > floor {
            self.loss = floor + (self.loss - floor) * (1.0 - loss_rate);
        } else {
            // Floor rose above the current loss (late ASP): drift up gently.
            self.loss += (floor - self.loss) * 0.3 * loss_rate;
        }

        self.step += steps;
    }

    /// Test accuracy at the current step, with evaluation noise — what the
    /// standalone evaluator measures every 2 000 steps in the paper.
    ///
    /// Evaluation noise shrinks with the learning rate (√ of the decay
    /// factor): once the rate has decayed twice, successive evaluations are
    /// nearly flat, which is what lets the paper's convergence criterion
    /// ("accuracy unchanged within 0.1% for five evaluations") fire.
    pub fn eval_accuracy(&mut self) -> f64 {
        if self.is_diverged() {
            return self.rng.uniform(0.08, 0.12);
        }
        let sigma = 0.004 * self.lr_factor(self.step).sqrt();
        let noise = sigma * self.rng.standard_normal();
        (self.acc + noise).clamp(0.0, 1.0)
    }

    /// Current smoothed training loss.
    pub fn training_loss(&self) -> f64 {
        self.loss
    }

    /// Initial training loss (`ln(classes)`).
    pub fn initial_loss(&self) -> f64 {
        self.loss_start
    }

    /// The accuracy the run is currently converging toward (no eval noise).
    pub fn current_ceiling(&self) -> f64 {
        self.base_acc - self.damage - self.momentum_penalty - self.switch_penalty
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_full(setup: &ExperimentSetup, bsp_fraction: f64, seed: u64) -> Result<f64, u64> {
        let mut t = TrajectoryModel::new(setup, seed);
        let total = t.total_steps();
        let switch_at = (bsp_fraction * total as f64) as u64;
        let chunk = 2000u64;
        let n = setup.cluster_size as f64;
        let mut switched = bsp_fraction == 0.0;
        while t.step() < total {
            let steps = chunk.min(total - t.step());
            let input = if !switched && t.step() < switch_at {
                PhaseInput::bsp()
            } else {
                if !switched {
                    t.record_switch(SyncProtocol::Bsp, SyncProtocol::Asp);
                    switched = true;
                }
                PhaseInput::asp(n - 1.0)
            };
            t.advance(steps, &input);
            if let Some(s) = t.diverged_at() {
                return Err(s);
            }
        }
        Ok(t.current_ceiling())
    }

    fn mean_accuracy(setup: &ExperimentSetup, f: f64) -> f64 {
        let accs: Vec<f64> = (0..5)
            .map(|s| run_full(setup, f, 100 + s).expect("should converge"))
            .collect();
        accs.iter().sum::<f64>() / accs.len() as f64
    }

    #[test]
    fn bsp_reaches_paper_accuracy_setup1() {
        let setup = ExperimentSetup::one();
        let acc = mean_accuracy(&setup, 1.0);
        assert!((acc - 0.919).abs() < 0.005, "BSP accuracy {acc}");
    }

    #[test]
    fn asp_reaches_paper_accuracy_setup1() {
        let setup = ExperimentSetup::one();
        let acc = mean_accuracy(&setup, 0.0);
        assert!((acc - 0.892).abs() < 0.006, "ASP accuracy {acc}");
    }

    #[test]
    fn knee_switching_matches_bsp_setup1() {
        let setup = ExperimentSetup::one();
        let acc = mean_accuracy(&setup, 0.0625);
        assert!(
            (0.919 - acc).abs() < 0.006,
            "Sync-Switch accuracy at knee {acc}"
        );
    }

    #[test]
    fn below_knee_is_detectably_worse() {
        let setup = ExperimentSetup::one();
        let at_knee = mean_accuracy(&setup, 0.0625);
        let below = mean_accuracy(&setup, 0.015625);
        assert!(
            at_knee - below > 0.005,
            "below-knee {below} should trail knee {at_knee}"
        );
    }

    #[test]
    fn setup3_asp_diverges_before_first_decay() {
        let setup = ExperimentSetup::three();
        for seed in 0..5 {
            let r = run_full(&setup, 0.0, 200 + seed);
            assert!(r.is_err(), "pure ASP on 16 workers must diverge");
            let at = r.unwrap_err();
            assert!(at < 32_000, "divergence should hit early, got {at}");
        }
        // Switching below 50% also diverges (paper Fig. 13).
        assert!(run_full(&setup, 0.25, 300).is_err());
        // Switching at 50% (the first decay) survives.
        let ok = run_full(&setup, 0.5, 300);
        assert!(ok.is_ok(), "switch at 50% must converge");
        assert!((ok.unwrap() - 0.923).abs() < 0.01);
    }

    #[test]
    fn setup1_and_2_never_diverge() {
        for f in [0.0, 0.25, 1.0] {
            assert!(run_full(&ExperimentSetup::one(), f, 7).is_ok());
            assert!(run_full(&ExperimentSetup::two(), f, 7).is_ok());
        }
    }

    #[test]
    fn loss_floors_ordered_like_fig11a() {
        let setup = ExperimentSetup::one();
        let total = setup.workload.hyper.total_steps;
        let loss_of = |f: f64, seed: u64| -> f64 {
            let mut t = TrajectoryModel::new(&setup, seed);
            let switch_at = (f * total as f64) as u64;
            while t.step() < total {
                let steps = 2000.min(total - t.step());
                let input = if t.step() < switch_at {
                    PhaseInput::bsp()
                } else {
                    PhaseInput::asp(7.0)
                };
                t.advance(steps, &input);
            }
            t.training_loss()
        };
        let bsp = loss_of(1.0, 5);
        let ss = loss_of(0.0625, 5);
        let asp = loss_of(0.0, 5);
        assert!(
            bsp < ss && ss < asp,
            "floors: bsp {bsp}, ss {ss}, asp {asp}"
        );
        assert!(bsp < 3e-3, "bsp floor {bsp}");
        assert!(asp > 0.03, "asp floor {asp}");
        // Sync-Switch's training loss stays an order of magnitude above
        // BSP's even though test accuracy matches (paper Remark A.2).
        assert!(ss / bsp > 3.0);
    }

    #[test]
    fn extra_switches_cost_accuracy() {
        let setup = ExperimentSetup::one();
        let mut clean = TrajectoryModel::new(&setup, 9);
        let mut churny = TrajectoryModel::new(&setup, 9);
        clean.record_switch(SyncProtocol::Bsp, SyncProtocol::Asp);
        churny.record_switch(SyncProtocol::Bsp, SyncProtocol::Asp);
        churny.record_switch(SyncProtocol::Asp, SyncProtocol::Bsp);
        churny.record_switch(SyncProtocol::Bsp, SyncProtocol::Asp);
        assert!(churny.current_ceiling() < clean.current_ceiling() - 0.01);
    }

    #[test]
    fn momentum_variant_penalties_apply() {
        let setup = ExperimentSetup::one();
        let mut base = TrajectoryModel::new(&setup, 11);
        let mut zero = TrajectoryModel::new(&setup, 11);
        base.apply_momentum_variant(MomentumScaling::Baseline);
        zero.apply_momentum_variant(MomentumScaling::Zero);
        assert!(zero.current_ceiling() < base.current_ceiling() - 0.04);
    }

    #[test]
    fn accuracy_curve_is_increasing_and_jumps_at_decay() {
        let setup = ExperimentSetup::one();
        let mut t = TrajectoryModel::new(&setup, 13);
        let mut curve = Vec::new();
        while t.step() < 64_000 {
            t.advance(2000, &PhaseInput::bsp());
            curve.push((
                t.step(),
                t.current_ceiling() - 0.0, /* no noise */
                t.training_loss(),
            ));
        }
        // Loss decreases monotonically for BSP.
        for w in curve.windows(2) {
            assert!(w[1].2 <= w[0].2 + 1e-9, "loss must not increase under BSP");
        }
    }

    #[test]
    #[should_panic(expected = "diverged")]
    fn advancing_diverged_run_panics() {
        let setup = ExperimentSetup::three();
        let mut t = TrajectoryModel::new(&setup, 17);
        for _ in 0..32 {
            t.advance(2000, &PhaseInput::asp(15.0));
        }
        // One of the advances above must have diverged; this one panics.
        t.advance(2000, &PhaseInput::asp(15.0));
    }
}
