//! Momentum-scaling variants for the post-switch configuration (paper
//! Fig. 8b).

use serde::{Deserialize, Serialize};

/// How the momentum coefficient is set after switching from BSP to ASP.
///
/// The paper evaluates four alternatives against the baseline of keeping
/// the BSP momentum value unchanged, and finds the baseline best (§IV-C).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MomentumScaling {
    /// Keep the same momentum as BSP (the policy Sync-Switch adopts).
    Baseline,
    /// Set momentum to 0 after the switch.
    Zero,
    /// Set momentum to `1/n` after the switch.
    FixedScaled,
    /// Ramp momentum as `2^i / n` over post-switch epochs `i`, capped at
    /// the original value.
    NonlinearRamp,
    /// Ramp momentum as `i / n` over post-switch epochs `i`, capped at the
    /// original value.
    LinearRamp,
}

impl MomentumScaling {
    /// All variants in the order of paper Fig. 8b.
    pub fn all() -> [MomentumScaling; 5] {
        [
            MomentumScaling::Baseline,
            MomentumScaling::Zero,
            MomentumScaling::FixedScaled,
            MomentumScaling::NonlinearRamp,
            MomentumScaling::LinearRamp,
        ]
    }

    /// The momentum coefficient in effect `epochs_after_switch` epochs after
    /// the BSP→ASP switch, for an `n`-worker cluster with original momentum
    /// `base`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn effective_momentum(self, epochs_after_switch: u32, n: usize, base: f64) -> f64 {
        assert!(n > 0, "cluster size must be positive");
        let nf = n as f64;
        match self {
            MomentumScaling::Baseline => base,
            MomentumScaling::Zero => 0.0,
            MomentumScaling::FixedScaled => (1.0 / nf).min(base),
            MomentumScaling::NonlinearRamp => {
                (2f64.powi(epochs_after_switch as i32) / nf).min(base)
            }
            MomentumScaling::LinearRamp => (f64::from(epochs_after_switch) / nf).min(base),
        }
    }

    /// Converged-accuracy penalty of this variant relative to the baseline.
    ///
    /// **Calibrated** from paper Fig. 8b (8-worker ResNet32/CIFAR-10; "up
    /// to 5% converged accuracy differences"): keeping momentum is free,
    /// zeroing it costs ~5 points, the ramps sit in between — the longer
    /// the effective-momentum deficit lasts, the larger the penalty.
    pub fn accuracy_penalty(self, n: usize) -> f64 {
        assert!(n > 0, "cluster size must be positive");
        // Mild growth with cluster size: more workers → more staleness for
        // the mis-scaled updates to interact with.
        let scale = (n as f64 / 8.0).powf(0.3);
        let base = match self {
            MomentumScaling::Baseline => 0.0,
            MomentumScaling::Zero => 0.050,
            MomentumScaling::FixedScaled => 0.012,
            MomentumScaling::NonlinearRamp => 0.022,
            MomentumScaling::LinearRamp => 0.035,
        };
        base * scale
    }
}

impl std::fmt::Display for MomentumScaling {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let name = match self {
            MomentumScaling::Baseline => "Baseline",
            MomentumScaling::Zero => "Zero",
            MomentumScaling::FixedScaled => "Fixed Scaled",
            MomentumScaling::NonlinearRamp => "Nonlinear Ramp",
            MomentumScaling::LinearRamp => "Linear Ramp",
        };
        write!(f, "{name}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_keeps_momentum() {
        let m = MomentumScaling::Baseline;
        assert_eq!(m.effective_momentum(0, 8, 0.9), 0.9);
        assert_eq!(m.effective_momentum(100, 8, 0.9), 0.9);
        assert_eq!(m.accuracy_penalty(8), 0.0);
    }

    #[test]
    fn ramps_reach_base_and_cap() {
        let nl = MomentumScaling::NonlinearRamp;
        // 2^i/8: 0.125, 0.25, 0.5, then capped at 0.9.
        assert_eq!(nl.effective_momentum(0, 8, 0.9), 0.125);
        assert_eq!(nl.effective_momentum(1, 8, 0.9), 0.25);
        assert_eq!(nl.effective_momentum(2, 8, 0.9), 0.5);
        assert_eq!(nl.effective_momentum(4, 8, 0.9), 0.9);

        let lin = MomentumScaling::LinearRamp;
        assert_eq!(lin.effective_momentum(2, 8, 0.9), 0.25);
        assert_eq!(lin.effective_momentum(20, 8, 0.9), 0.9);
        // Nonlinear ramp recovers faster, so it should cost less.
        assert!(nl.accuracy_penalty(8) < lin.accuracy_penalty(8));
    }

    #[test]
    fn penalty_ordering_matches_fig8b() {
        // Baseline < FixedScaled < NonlinearRamp < LinearRamp < Zero.
        let n = 8;
        let p: Vec<f64> = [
            MomentumScaling::Baseline,
            MomentumScaling::FixedScaled,
            MomentumScaling::NonlinearRamp,
            MomentumScaling::LinearRamp,
            MomentumScaling::Zero,
        ]
        .iter()
        .map(|m| m.accuracy_penalty(n))
        .collect();
        for w in p.windows(2) {
            assert!(w[0] < w[1], "penalties must be strictly ordered: {p:?}");
        }
        // "Up to 5%" difference.
        assert!((0.04..0.07).contains(&p[4]));
    }

    #[test]
    fn zero_variant_is_zero() {
        assert_eq!(MomentumScaling::Zero.effective_momentum(5, 8, 0.9), 0.0);
    }

    #[test]
    fn display_names() {
        assert_eq!(MomentumScaling::FixedScaled.to_string(), "Fixed Scaled");
        assert_eq!(MomentumScaling::all().len(), 5);
    }
}
