//! Property-based tests of the convergence surrogate.

use proptest::prelude::*;
use sync_switch_convergence::{
    converged_accuracy_stats, damage_at, MomentumScaling, PhaseInput, TrajectoryModel,
};
use sync_switch_workloads::{CalibrationTargets, ExperimentSetup, SetupId};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Residual damage is monotone non-increasing in the BSP fraction and
    /// bounded by the full BSP−ASP gap.
    #[test]
    fn damage_monotone_and_bounded(f1 in 0.0f64..=1.0, f2 in 0.0f64..=1.0, setup_idx in 0usize..2) {
        let calib = CalibrationTargets::for_setup([SetupId::One, SetupId::Two][setup_idx]);
        let (lo, hi) = if f1 <= f2 { (f1, f2) } else { (f2, f1) };
        let d_lo = damage_at(&calib, lo);
        let d_hi = damage_at(&calib, hi);
        prop_assert!(d_hi <= d_lo + 1e-12);
        prop_assert!(d_lo <= calib.asp_accuracy_gap() + 1e-12);
        prop_assert!(d_hi >= 0.0);
    }

    /// Damage accrual telescopes: running ASP over [a,b] then [b,c] accrues
    /// the same damage as running it over [a,c] in one chunk.
    #[test]
    fn damage_accrual_telescopes(seed in 0u64..500, split in 1u64..9) {
        let setup = ExperimentSetup::one();
        let total = setup.workload.hyper.total_steps;
        let a = total / 10;
        let c = total / 2;
        let b = a + (c - a) * split / 10;

        let run = |splits: &[u64]| {
            let mut t = TrajectoryModel::new(&setup, seed);
            t.advance(a, &PhaseInput::bsp());
            let mut prev = a;
            for &point in splits {
                t.advance(point - prev, &PhaseInput::asp(7.0));
                prev = point;
            }
            t.advance(c - prev, &PhaseInput::asp(7.0));
            t.current_ceiling()
        };
        let one_chunk = run(&[]);
        let two_chunks = run(&[b]);
        prop_assert!((one_chunk - two_chunks).abs() < 1e-9);
    }

    /// The trajectory's evaluation accuracy never leaves [0, 1] and the
    /// training loss stays positive and finite for non-divergent runs.
    #[test]
    fn trajectory_outputs_bounded(seed in 0u64..500, asp_fraction in 0.0f64..=1.0) {
        let setup = ExperimentSetup::one();
        let mut t = TrajectoryModel::new(&setup, seed);
        let total = t.total_steps();
        let switch = ((1.0 - asp_fraction) * total as f64) as u64;
        while t.step() < total {
            let steps = 2000.min(total - t.step());
            let input = if t.step() < switch {
                PhaseInput::bsp()
            } else {
                PhaseInput::asp(7.0)
            };
            t.advance(steps, &input);
            let acc = t.eval_accuracy();
            prop_assert!((0.0..=1.0).contains(&acc), "accuracy {acc}");
            prop_assert!(t.training_loss() > 0.0 && t.training_loss().is_finite());
        }
    }

    /// Setup 3 divergence is triggered by ASP before the first decay for
    /// every seed, never after it.
    #[test]
    fn setup3_divergence_boundary(seed in 0u64..300) {
        let setup = ExperimentSetup::three();
        // ASP starting exactly at the first decay never diverges.
        let mut safe = TrajectoryModel::new(&setup, seed);
        safe.advance(32_000, &PhaseInput::bsp());
        safe.advance(32_000, &PhaseInput::asp(15.0));
        prop_assert!(!safe.is_diverged());

        // Sustained ASP before the decay always diverges.
        let mut unsafe_run = TrajectoryModel::new(&setup, seed);
        let mut diverged = false;
        for _ in 0..16 {
            unsafe_run.advance(2_000, &PhaseInput::asp(15.0));
            if unsafe_run.is_diverged() {
                diverged = true;
                break;
            }
        }
        prop_assert!(diverged, "early ASP on 16 workers must diverge");
    }

    /// Momentum-scaling penalties are consistent between the closed form
    /// and the trajectory ceiling for every variant and cluster size.
    #[test]
    fn momentum_penalty_consistency(n_idx in 0usize..2, variant_idx in 0usize..5) {
        let setup = if n_idx == 0 {
            ExperimentSetup::one()
        } else {
            ExperimentSetup::three()
        };
        let variant = MomentumScaling::all()[variant_idx];
        let mut with = TrajectoryModel::new(&setup, 42);
        let mut without = TrajectoryModel::new(&setup, 42);
        with.apply_momentum_variant(variant);
        without.apply_momentum_variant(MomentumScaling::Baseline);
        let diff = without.current_ceiling() - with.current_ceiling();
        prop_assert!((diff - variant.accuracy_penalty(setup.cluster_size)).abs() < 1e-12);
    }

    /// Closed-form statistics agree with full trajectories at the endpoint
    /// (within noise) for arbitrary switch fractions on setup 1.
    #[test]
    fn analytic_matches_trajectory(frac_pct in 0u32..=100) {
        let f = f64::from(frac_pct) / 100.0;
        let setup = ExperimentSetup::one();
        let stats = converged_accuracy_stats(SetupId::One, f);
        // Average five trajectory endpoints.
        let mut sum = 0.0;
        for seed in 0..5u64 {
            let mut t = TrajectoryModel::new(&setup, 1000 + seed);
            let total = t.total_steps();
            let switch = (f * total as f64) as u64;
            while t.step() < total {
                let steps = 2000.min(total - t.step());
                let input = if t.step() < switch {
                    PhaseInput::bsp()
                } else {
                    PhaseInput::asp(7.0)
                };
                t.advance(steps, &input);
            }
            sum += t.current_ceiling();
        }
        let mean = sum / 5.0;
        prop_assert!(
            (mean - stats.mean).abs() < 4.0 * stats.sigma,
            "trajectory {mean} vs analytic {}",
            stats.mean
        );
    }
}
