//! Micro-benchmarks of the tensor substrate (matmul dominates training).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use sync_switch_tensor::Tensor;

fn bench_tensor(c: &mut Criterion) {
    let a = Tensor::from_vec(
        (0..128 * 64).map(|i| (i as f32 * 0.13).sin()).collect(),
        &[128, 64],
    );
    let b = Tensor::from_vec(
        (0..64 * 32).map(|i| (i as f32 * 0.29).cos()).collect(),
        &[64, 32],
    );
    c.bench_function("matmul_128x64x32", |bench| {
        bench.iter(|| black_box(a.matmul(&b)))
    });
    c.bench_function("t_matmul_128x64x32", |bench| {
        let d = Tensor::full(&[128, 32], 0.5);
        bench.iter(|| black_box(a.t_matmul(&d)))
    });
    let mut p = Tensor::full(&[64 * 512], 0.1);
    let g = Tensor::full(&[64 * 512], 0.01);
    c.bench_function("axpy_32k", |bench| {
        bench.iter(|| {
            p.axpy(black_box(-0.1), &g);
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20).measurement_time(std::time::Duration::from_secs(3));
    targets = bench_tensor
}
criterion_main!(benches);
