//! Cluster-simulator performance: simulated training units per second.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use sync_switch_cluster::ClusterSim;
use sync_switch_workloads::ExperimentSetup;

fn bench_sim(c: &mut Criterion) {
    let setup = ExperimentSetup::one();
    c.bench_function("sim_bsp_8000_units", |bench| {
        bench.iter(|| {
            let mut sim = ClusterSim::new(&setup, 1);
            black_box(sim.run_bsp(8_000))
        })
    });
    c.bench_function("sim_asp_8000_units", |bench| {
        bench.iter(|| {
            let mut sim = ClusterSim::new(&setup, 1);
            black_box(sim.run_asp(8_000))
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20).measurement_time(std::time::Duration::from_secs(3));
    targets = bench_sim
}
criterion_main!(benches);
