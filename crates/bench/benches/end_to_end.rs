//! End-to-end simulated training runs (the unit of every paper experiment).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use sync_switch_core::{ClusterManager, SimBackend, SyncSwitchPolicy};
use sync_switch_workloads::ExperimentSetup;

fn bench_e2e(c: &mut Criterion) {
    let setup = ExperimentSetup::one();
    for (name, policy) in [
        ("bsp", SyncSwitchPolicy::static_bsp(8)),
        ("asp", SyncSwitchPolicy::static_asp(8)),
        ("sync_switch", SyncSwitchPolicy::paper_policy(&setup)),
    ] {
        c.bench_function(&format!("e2e_setup1_{name}"), |bench| {
            bench.iter(|| {
                let mut backend = SimBackend::new(&setup, 42);
                black_box(
                    ClusterManager::new(policy.clone())
                        .run(&mut backend, &setup)
                        .expect("run completes"),
                )
            })
        });
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(5));
    targets = bench_e2e
}
criterion_main!(benches);
