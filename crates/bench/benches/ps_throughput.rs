//! Real parameter-server throughput: BSP vs ASP segments on worker threads,
//! plus a workers × shards scaling sweep and a transport axis.
//!
//! Beyond the headline `ps_{BSP,ASP}_4workers_50steps` numbers (kept
//! name-compatible with the original criterion bench), this harness sweeps
//! the (workers, shards, servers) grid on a larger model, measures the cost
//! of the message-passing boundary (in-process vs channel vs TCP at the
//! headline point), and persists everything as machine-readable JSON to
//! `BENCH_ps_throughput.json` at the workspace root, so the data-plane perf
//! trajectory is tracked across PRs.
//!
//! Environment knobs:
//! * `PS_BENCH_FAST=1` — smoke mode for CI: fewer samples and steps, same
//!   JSON shape.
//! * `PS_BENCH_OUT=<path>` — override the output JSON path.

use std::path::PathBuf;
use std::time::{Duration, Instant};

use sync_switch_bench::output::{load_json, Exhibit};
use sync_switch_nn::{Dataset, Network};
use sync_switch_ps::{SegmentReport, ServerTopology, Trainer, TrainerConfig, TransportKind};
use sync_switch_workloads::{SyncProtocol, TrainableKind};

/// The original headline configuration: 4 workers, 4 shards, tiny MLP.
fn headline_trainer(workers: usize) -> Trainer {
    let data = Dataset::gaussian_blobs(4, 100, 8, 0.35, 1);
    let (train, test) = data.split(0.25);
    Trainer::new(
        Network::mlp(8, &[32], 4, 1),
        train,
        test,
        TrainerConfig::new(workers, 8, 0.05, 0.9).with_seed(1),
    )
}

/// The headline shape on a 2-server tier reached through `kind` — the
/// like-for-like comparison of the transport axis: identical two-stage
/// semantics on all three backends, only the boundary differs.
fn transport_trainer(kind: TransportKind) -> Trainer {
    let data = Dataset::gaussian_blobs(4, 100, 8, 0.35, 1);
    let (train, test) = data.split(0.25);
    let cfg = TrainerConfig::new(4, 8, 0.05, 0.9)
        .with_seed(1)
        .with_topology(ServerTopology::new(2, 4).with_transport(kind));
    Trainer::new(Network::mlp(8, &[32], 4, 1), train, test, cfg)
}

/// The sparse-vs-dense pair: the registered sparse-embedding workload
/// (512×16 table, Zipf tokens) on a 2-server channel tier, with the sparse
/// push path enabled vs forced dense. Same model, same wire, same two-stage
/// schedule — the only difference is whether ASP pushes ship touched rows
/// or whole shards.
fn sparse_pair_trainer(sparse_push: bool) -> Trainer {
    let (model, train, test) = TrainableKind::SparseEmbedding.build(1);
    let h = TrainableKind::SparseEmbedding.hyper();
    let cfg = TrainerConfig::new(4, h.batch_size, h.learning_rate, h.momentum)
        .with_seed(1)
        .with_sparse_push(sparse_push)
        .with_topology(ServerTopology::new(2, 4).with_transport(TransportKind::Channel));
    Trainer::new(model, train, test, cfg)
}

/// The headline shape with the telemetry bus explicitly on or off — the
/// overhead-control pair. Everything else is identical; the only variable
/// is whether every step records counters/histograms/trace events.
fn telemetry_trainer(telemetry: bool) -> Trainer {
    let data = Dataset::gaussian_blobs(4, 100, 8, 0.35, 1);
    let (train, test) = data.split(0.25);
    Trainer::new(
        Network::mlp(8, &[32], 4, 1),
        train,
        test,
        TrainerConfig::new(4, 8, 0.05, 0.9)
            .with_seed(1)
            .with_telemetry(telemetry),
    )
}

/// Sweep configuration: a larger MLP so sharding has parameters to split.
/// `servers > 1` runs the shard-router data plane with OSP-style two-stage
/// sync (reconciliation every 4 pushes); a non-in-process `transport` puts
/// the tier behind the wire protocol.
fn sweep_trainer(
    workers: usize,
    shards: usize,
    servers: usize,
    transport: TransportKind,
) -> Trainer {
    let data = Dataset::gaussian_blobs(4, 120, 16, 0.35, 1);
    let (train, test) = data.split(0.25);
    let mut cfg = TrainerConfig::new(workers, 8, 0.02, 0.9).with_seed(1);
    cfg.shards = shards;
    if servers > 1 || transport != TransportKind::InProcess {
        cfg.topology = ServerTopology::new(servers, 4).with_transport(transport);
    }
    Trainer::new(Network::mlp(16, &[64, 32], 4, 1), train, test, cfg)
}

struct Measurement {
    mean: Duration,
    min: Duration,
    steps: u64,
    last: SegmentReport,
}

impl Measurement {
    /// Cluster throughput of the best sample, in steps/sec.
    fn best_steps_per_sec(&self) -> f64 {
        self.steps as f64 / self.min.as_secs_f64().max(1e-12)
    }
}

/// Times `samples` fresh segments of `steps` under `protocol`.
fn measure(
    mk: impl Fn() -> Trainer,
    protocol: SyncProtocol,
    steps: u64,
    samples: usize,
) -> Measurement {
    let mut durations = Vec::with_capacity(samples);
    let mut last = None;
    for _ in 0..samples {
        let mut t = mk();
        let start = Instant::now();
        let report = t.run_segment(protocol, steps).expect("segment completes");
        durations.push(start.elapsed());
        last = Some(report);
    }
    let mean = durations.iter().sum::<Duration>() / samples as u32;
    let min = *durations.iter().min().expect("at least one sample");
    Measurement {
        mean,
        min,
        steps,
        last: last.expect("at least one sample"),
    }
}

fn fmt_us(d: Duration) -> f64 {
    d.as_secs_f64() * 1e6
}

fn main() {
    let fast = std::env::var("PS_BENCH_FAST").is_ok_and(|v| !v.is_empty() && v != "0");
    let (samples, headline_steps, sweep_steps) = if fast { (3, 20, 40) } else { (30, 50, 400) };

    let mut exhibit = Exhibit::new(
        "BENCH_ps_throughput",
        "Parameter-server data-plane throughput (headline + workers × shards sweep)",
    );

    // Headline: same shape as the original criterion bench, so the numbers
    // stay comparable across PRs.
    let mut headline = Vec::new();
    for protocol in [SyncProtocol::Bsp, SyncProtocol::Asp] {
        let m = measure(|| headline_trainer(4), protocol, headline_steps, samples);
        println!(
            "ps_{protocol}_4workers_{headline_steps}steps      mean {:>10.2} µs min {:>10.2} µs ({samples} samples)",
            fmt_us(m.mean),
            fmt_us(m.min),
        );
        headline.push(serde_json::json!({
            "name": format!("ps_{protocol}_4workers_{headline_steps}steps"),
            "protocol": protocol.to_string(),
            "workers": 4,
            "shards": 4,
            "steps": m.steps,
            "mean_us": fmt_us(m.mean),
            "min_us": fmt_us(m.min),
            "steps_per_sec": m.best_steps_per_sec(),
        }));
    }

    // Transport axis at the headline point: the same 4-worker/4-shard
    // model on a 2-server two-stage tier, reached in-process, over the
    // channel backend, and over loopback TCP. This is where the cost of
    // the message-passing boundary is read off directly.
    let mut transport_points = Vec::new();
    let mut transport_rows = Vec::new();
    for kind in [
        TransportKind::InProcess,
        TransportKind::Channel,
        TransportKind::Tcp,
    ] {
        for protocol in [SyncProtocol::Bsp, SyncProtocol::Asp] {
            let m = measure(
                || transport_trainer(kind),
                protocol,
                headline_steps,
                samples,
            );
            let wire = &m.last.transport;
            println!(
                "ps_{protocol}_4workers_{headline_steps}steps_srv2_{kind} mean {:>10.2} µs min {:>10.2} µs ({samples} samples)",
                fmt_us(m.mean),
                fmt_us(m.min),
            );
            transport_rows.push(vec![
                kind.to_string(),
                protocol.to_string(),
                format!("{:.0}", m.best_steps_per_sec()),
                format!("{:.2}", fmt_us(m.mean) / 1.0e3),
                format!("{:.1}", wire.push.mean_us()),
                format!("{:.1}", wire.pull.mean_us()),
                format!("{:.3}", wire.total_wire_s()),
            ]);
            transport_points.push(serde_json::json!({
                "name": format!("ps_{protocol}_4workers_{headline_steps}steps_srv2_{kind}"),
                "protocol": protocol.to_string(),
                "transport": kind.to_string(),
                "workers": 4,
                "shards": 4,
                "servers": 2,
                "steps": m.steps,
                "mean_us": fmt_us(m.mean),
                "min_us": fmt_us(m.min),
                "steps_per_sec": m.best_steps_per_sec(),
                "wire_push_mean_us": wire.push.mean_us(),
                "wire_pull_mean_us": wire.pull.mean_us(),
                "wire_total_s": wire.total_wire_s(),
                "wire_round_trips": wire.total_ops(),
                "wire_bytes": wire.total_bytes(),
                "wire_retries": wire.retries,
                "wire_reconnects": wire.reconnects,
            }));
        }
    }
    exhibit.line("");
    exhibit.line("Transport axis (headline shape, 2 servers, sync_every=4):");
    exhibit.table(
        &[
            "transport",
            "protocol",
            "steps/s",
            "mean ms",
            "push µs",
            "pull µs",
            "wire s",
        ],
        &transport_rows,
    );

    // Sparse-vs-dense headline pair: the sparse-embedding workload over
    // the channel tier with the sparse push path on vs off. Wire payload
    // bytes are the point; throughput rides along.
    let mut sparse_points = Vec::new();
    let mut sparse_rows = Vec::new();
    for (mode, sparse_push) in [("sparse", true), ("dense", false)] {
        let m = measure(
            || sparse_pair_trainer(sparse_push),
            SyncProtocol::Asp,
            headline_steps,
            samples,
        );
        let wire = &m.last.transport;
        println!(
            "ps_ASP_sparse_embedding_{mode}          mean {:>10.2} µs min {:>10.2} µs ({samples} samples, {} push bytes out)",
            fmt_us(m.mean),
            fmt_us(m.min),
            wire.push.bytes_out,
        );
        sparse_rows.push(vec![
            mode.to_string(),
            format!("{:.0}", m.best_steps_per_sec()),
            format!("{:.2}", fmt_us(m.mean) / 1.0e3),
            wire.push.bytes_out.to_string(),
            format!("{:.1}", wire.push.mean_us()),
        ]);
        sparse_points.push(serde_json::json!({
            "name": format!("ps_ASP_sparse_embedding_{mode}"),
            "workload": TrainableKind::SparseEmbedding.name(),
            "mode": mode,
            "protocol": "ASP",
            "workers": 4,
            "servers": 2,
            "transport": "channel",
            "steps": m.steps,
            "mean_us": fmt_us(m.mean),
            "min_us": fmt_us(m.min),
            "steps_per_sec": m.best_steps_per_sec(),
            "wire_push_bytes_out": wire.push.bytes_out,
            "wire_push_mean_us": wire.push.mean_us(),
            "wire_total_s": wire.total_wire_s(),
        }));
    }
    exhibit.line("");
    exhibit.line("Sparse-vs-dense pair (sparse_embedding workload, channel, 2 servers):");
    exhibit.table(
        &["mode", "steps/s", "mean ms", "push bytes out", "push µs"],
        &sparse_rows,
    );

    // Telemetry overhead pair: identical ASP runs with the bus on vs off.
    // Samples are interleaved (on, off, on, off, …) so clock drift and
    // cache warm-up hit both arms equally — the 5% overhead gate in
    // bench_json_check compares the two means, and an unpaired measurement
    // would gate on machine noise instead of recording cost.
    // Long segments: each sample spawns and joins the worker threads, and
    // that fixed cost is noisy enough to drown a sub-1% per-step signal in
    // short runs — 32× the headline steps keeps the measured region
    // dominated by actual steps.
    let telemetry_steps = headline_steps * 32;
    let telemetry_samples = (samples * 2).max(16);
    // The first pairs are warm-up (allocator, branch predictors, thread
    // pool) and are discarded; the reported "mean" is the interquartile
    // mean of the rest — this box shows ±20% scheduler outliers even on
    // identical arms, and a plain mean of a dozen samples would trip the
    // 5% gate on noise alone.
    let telemetry_warmup = 2usize;
    let mut arm_durations = [Vec::new(), Vec::new()];
    for pair in 0..telemetry_warmup + telemetry_samples {
        // Alternate the arm order between pairs: whichever segment runs
        // first in a pair inherits a different cache/frequency state than
        // the second, and with a fixed order that systematic difference
        // lands entirely on one arm and biases every pair ratio the same
        // way. Alternating makes it cancel in the median.
        let order = if pair % 2 == 0 {
            [(0usize, true), (1usize, false)]
        } else {
            [(1usize, false), (0usize, true)]
        };
        for (arm, telemetry) in order {
            let mut t = telemetry_trainer(telemetry);
            let start = Instant::now();
            t.run_segment(SyncProtocol::Asp, telemetry_steps)
                .expect("telemetry-arm segment completes");
            let took = start.elapsed();
            if pair >= telemetry_warmup {
                arm_durations[arm].push(took);
            }
        }
    }
    let interquartile_mean = |durations: &[Duration]| {
        let mut sorted = durations.to_vec();
        sorted.sort();
        let trim = sorted.len() / 4;
        let kept = &sorted[trim..sorted.len() - trim];
        kept.iter().sum::<Duration>() / kept.len() as u32
    };
    // The gate statistic: per-pair on/off ratio, median across pairs. Each
    // pair runs back to back, so the ratio cancels slow machine drift, and
    // the median ignores the scheduler outliers that can blow either arm's
    // mean up by ±20% on a shared box.
    let mut pair_ratios: Vec<f64> = arm_durations[0]
        .iter()
        .zip(&arm_durations[1])
        .map(|(on, off)| on.as_secs_f64() / off.as_secs_f64().max(1e-12))
        .collect();
    pair_ratios.sort_by(f64::total_cmp);
    let paired_overhead_pct = (pair_ratios[pair_ratios.len() / 2] - 1.0) * 100.0;
    println!("ps_ASP_telemetry paired-median overhead {paired_overhead_pct:+.2}%");
    let mut telemetry_points = Vec::new();
    for (arm, mode) in [(0usize, "on"), (1usize, "off")] {
        let durations = &arm_durations[arm];
        let mean = interquartile_mean(durations);
        let min = *durations.iter().min().expect("at least one sample");
        println!(
            "ps_ASP_telemetry_{mode}                 mean {:>10.2} µs min {:>10.2} µs ({telemetry_samples} samples)",
            fmt_us(mean),
            fmt_us(min),
        );
        // The paired statistic rides on the "on" arm so the artifact stays
        // a flat per-arm array the validator already understands.
        let point = if mode == "on" {
            serde_json::json!({
                "name": format!("ps_ASP_telemetry_{mode}"),
                "mode": mode,
                "protocol": "ASP",
                "workers": 4,
                "shards": 4,
                "steps": telemetry_steps,
                "mean_us": fmt_us(mean),
                "min_us": fmt_us(min),
                "steps_per_sec": telemetry_steps as f64 / min.as_secs_f64().max(1e-12),
                "paired_median_overhead_pct": paired_overhead_pct,
            })
        } else {
            serde_json::json!({
                "name": format!("ps_ASP_telemetry_{mode}"),
                "mode": mode,
                "protocol": "ASP",
                "workers": 4,
                "shards": 4,
                "steps": telemetry_steps,
                "mean_us": fmt_us(mean),
                "min_us": fmt_us(min),
                "steps_per_sec": telemetry_steps as f64 / min.as_secs_f64().max(1e-12),
            })
        };
        telemetry_points.push(point);
    }

    // Scaling sweep: workers × shards × servers under both protocols
    // (server counts above the shard count would just clamp — skipped),
    // plus the transport axis at the 4w/4s/2srv configuration.
    let workers_grid = [1usize, 2, 4, 8];
    let shards_grid = [1usize, 4, 16, 64];
    let servers_grid = [1usize, 2, 4];
    let mut configs: Vec<(usize, usize, usize, TransportKind)> = Vec::new();
    for &workers in &workers_grid {
        for &shards in &shards_grid {
            for &servers in &servers_grid {
                if servers > shards {
                    continue;
                }
                configs.push((workers, shards, servers, TransportKind::InProcess));
            }
        }
    }
    for kind in [TransportKind::Channel, TransportKind::Tcp] {
        configs.push((4, 4, 2, kind));
    }
    let mut sweep = Vec::new();
    let mut rows = Vec::new();
    for &(workers, shards, servers, transport) in &configs {
        for protocol in [SyncProtocol::Bsp, SyncProtocol::Asp] {
            let m = measure(
                || sweep_trainer(workers, shards, servers, transport),
                protocol,
                sweep_steps,
                if fast { 1 } else { 3 },
            );
            let sps = m.best_steps_per_sec();
            rows.push(vec![
                protocol.to_string(),
                workers.to_string(),
                shards.to_string(),
                servers.to_string(),
                transport.to_string(),
                format!("{sps:.0}"),
                format!("{:.2}", m.last.staleness.mean()),
                m.last
                    .shard_staleness
                    .max()
                    .map_or_else(|| "-".into(), |v| v.to_string()),
                m.last.sync_rounds.to_string(),
            ]);
            sweep.push(serde_json::json!({
                "protocol": protocol.to_string(),
                "workers": workers,
                "shards": shards,
                "servers": servers,
                "transport": transport.to_string(),
                "steps": m.steps,
                "mean_us": fmt_us(m.mean),
                "min_us": fmt_us(m.min),
                "steps_per_sec": sps,
                "staleness_mean": m.last.staleness.mean(),
                "shard_staleness_max": m.last.shard_staleness.max(),
                "sync_rounds": m.last.sync_rounds,
            }));
        }
    }
    exhibit.table(
        &[
            "protocol",
            "workers",
            "shards",
            "servers",
            "transport",
            "steps/s",
            "staleness",
            "shard max",
            "sync rounds",
        ],
        &rows,
    );
    exhibit.print();

    exhibit.json = serde_json::json!({
        "id": "ps_throughput",
        "fast": fast,
        "headline": headline,
        "transport": transport_points,
        "sparse": sparse_points,
        "telemetry": telemetry_points,
        "sweep": sweep,
        // Historical reference point, NOT re-measured: the headline
        // numbers recorded immediately before the shard-parallel
        // data-plane refactor (allocation-per-pull + single-mutex BSP
        // accumulator), on the machine named below. Compare fresh numbers
        // against it only on comparable hardware.
        "baseline_pre_refactor": {
            "measured_on": "single-core CI container, 2026-07-29 (pre-PR-2 seed)",
            "ps_BSP_4workers_50steps": {"mean_us": 2110.0, "min_us": 1930.0},
            "ps_ASP_4workers_50steps": {"mean_us": 498.61, "min_us": 448.96},
        },
    });

    let out = std::env::var("PS_BENCH_OUT").map_or_else(
        |_| {
            if fast {
                // Smoke numbers (fewer samples, shorter segments, different
                // headline names) must not overwrite the tracked perf
                // trajectory at the workspace root.
                std::env::temp_dir().join("BENCH_ps_throughput_smoke.json")
            } else {
                PathBuf::from(env!("CARGO_MANIFEST_DIR"))
                    .join("../..")
                    .join("BENCH_ps_throughput.json")
            }
        },
        PathBuf::from,
    );
    exhibit.save_at(&out).expect("write bench JSON");
    // Self-check: the file must read back as well-formed JSON with the
    // sweep populated — CI fails the smoke run otherwise.
    let back = load_json(&out).expect("bench JSON reads back");
    let points = back
        .get("sweep")
        .and_then(|s| s.as_array())
        .map_or(0, Vec::len);
    assert!(points > 0, "bench JSON has an empty sweep");
    println!("\nwrote {} ({points} sweep points)", out.display());
}
