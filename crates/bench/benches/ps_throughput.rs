//! Real parameter-server throughput: BSP vs ASP segments on worker threads.

use criterion::{criterion_group, criterion_main, Criterion};
use sync_switch_nn::{Dataset, Network};
use sync_switch_ps::{Trainer, TrainerConfig};
use sync_switch_workloads::SyncProtocol;

fn make_trainer(workers: usize) -> Trainer {
    let data = Dataset::gaussian_blobs(4, 100, 8, 0.35, 1);
    let (train, test) = data.split(0.25);
    Trainer::new(
        Network::mlp(8, &[32], 4, 1),
        train,
        test,
        TrainerConfig::new(workers, 8, 0.05, 0.9).with_seed(1),
    )
}

fn bench_ps(c: &mut Criterion) {
    for protocol in [SyncProtocol::Bsp, SyncProtocol::Asp] {
        c.bench_function(&format!("ps_{protocol}_4workers_50steps"), |bench| {
            bench.iter_batched(
                || make_trainer(4),
                |mut t| {
                    t.run_segment(protocol, 50).expect("segment completes");
                    t
                },
                criterion::BatchSize::LargeInput,
            )
        });
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(5));
    targets = bench_ps
}
criterion_main!(benches);
