//! Binary-search tuner cost: full Algorithm 1 over the analytic oracle and
//! one Monte-Carlo search-setting simulation.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use sync_switch_core::{simulate_search_setting, AnalyticOracle, BinarySearchTuner, SearchSetting};
use sync_switch_workloads::ExperimentSetup;

fn bench_search(c: &mut Criterion) {
    let setup = ExperimentSetup::one();
    c.bench_function("binary_search_analytic", |bench| {
        bench.iter(|| {
            let mut oracle = AnalyticOracle::new(&setup, 7);
            black_box(
                BinarySearchTuner::new()
                    .with_target(0.919)
                    .search(&mut oracle)
                    .expect("search succeeds"),
            )
        })
    });
    c.bench_function("search_mc_100_trials", |bench| {
        bench.iter(|| {
            black_box(simulate_search_setting(
                &setup,
                SearchSetting::baseline(),
                100,
                0.01,
                7,
            ))
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20).measurement_time(std::time::Duration::from_secs(3));
    targets = bench_search
}
criterion_main!(benches);
