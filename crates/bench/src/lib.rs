//! Benchmark harness regenerating every table and figure of the
//! Sync-Switch paper's evaluation (§VI).
//!
//! Each `figXX` / `tableX` module reproduces one exhibit: it runs the same
//! experiment grid the paper ran (on the simulation substrates), prints the
//! same rows/series the paper reports, and returns a JSON value that the
//! `repro` binary writes under `results/`.
//!
//! Run `cargo run -p sync-switch-bench --bin repro -- all` to regenerate
//! everything, or pass an exhibit id (e.g. `fig11`, `table2`).

pub mod exhibits;
pub mod output;
pub mod runner;

pub use output::Exhibit;
pub use runner::{mean_std, repeat_reports, run_order, run_report, OrderKind, RunSummary};
