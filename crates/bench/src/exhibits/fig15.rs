//! Paper Fig. 15: straggler-aware policy comparison — converged accuracy
//! and normalized training time for the baseline (straggler-agnostic),
//! greedy, and elastic policies under two transient-straggler scenarios.

use serde_json::json;
use sync_switch_cluster::StragglerScenario;
use sync_switch_core::{OnlinePolicyKind, SyncSwitchPolicy};
use sync_switch_workloads::ExperimentSetup;

use crate::output::Exhibit;
use crate::runner::{mean_std, run_report_with_scenario, RUNS};

/// Builds the two scenarios of §VI-B3, timed to land inside setup 1's BSP
/// phase (~580 s at the 6.25% policy).
fn scenarios() -> Vec<(&'static str, StragglerScenario)> {
    vec![
        // Scenario 1 (mild): 1 straggler × 1 occurrence @ 10 ms.
        ("scenario 1 (mild)", StragglerScenario::mild(150.0)),
        // Scenario 2 (moderate): 2 stragglers × 4 occurrences @ 30 ms.
        (
            "scenario 2 (moderate)",
            StragglerScenario::moderate(60.0, 150.0),
        ),
    ]
}

/// Runs the exhibit.
pub fn run() -> Exhibit {
    let mut ex = Exhibit::new("fig15", "Straggler-aware policies (setup 1)");
    let setup = ExperimentSetup::one();

    let mut payload = Vec::new();
    for (scenario_name, scenario) in scenarios() {
        ex.line(format!("{scenario_name}:"));
        let mut rows = Vec::new();
        let mut baseline_time = 0.0;
        for online in OnlinePolicyKind::all() {
            let policy = SyncSwitchPolicy::paper_policy(&setup).with_online(online);
            let reports: Vec<_> = (0..RUNS)
                .map(|i| {
                    run_report_with_scenario(&setup, &policy, scenario.clone(), 0xF1615 + i * 101)
                })
                .collect();
            let accs: Vec<f64> = reports
                .iter()
                .filter_map(|r| r.converged_accuracy)
                .collect();
            let times: Vec<f64> = reports.iter().map(|r| r.total_time_s).collect();
            let (acc, acc_std) = mean_std(&accs);
            let (time, _) = mean_std(&times);
            if online == OnlinePolicyKind::Baseline {
                baseline_time = time;
            }
            let switches =
                reports.iter().map(|r| r.switches.len()).sum::<usize>() as f64 / RUNS as f64;
            let evictions = reports
                .iter()
                .map(|r| r.removed_workers.len())
                .sum::<usize>() as f64
                / RUNS as f64;
            rows.push(vec![
                online.to_string(),
                format!("{acc:.3}±{acc_std:.3}"),
                format!("{:.3}", time / baseline_time),
                format!("{switches:.1}"),
                format!("{evictions:.1}"),
            ]);
            payload.push(json!({
                "scenario": scenario_name,
                "policy": online.to_string(),
                "accuracy": acc,
                "normalized_time": time / baseline_time,
                "mean_switches": switches,
                "mean_evictions": evictions,
            }));
        }
        ex.table(
            &["policy", "accuracy", "norm. time", "switches", "evictions"],
            &rows,
        );
        ex.line("");
    }
    ex.line(
        "Paper: greedy costs ~2% accuracy (two extra switches); elastic preserves \
         accuracy and is ~1.1x faster than the baseline under moderate stragglers.",
    );

    ex.json = json!({"cells": payload});
    ex
}

#[cfg(test)]
mod tests {
    #[test]
    fn fig15_policy_effects() {
        let ex = super::run();
        let cells = ex.json["cells"].as_array().unwrap();
        let cell = |scenario: &str, policy: &str| {
            cells
                .iter()
                .find(|c| {
                    c["scenario"].as_str().unwrap().starts_with(scenario)
                        && c["policy"].as_str() == Some(policy)
                })
                .unwrap()
        };
        // Moderate scenario: elastic preserves accuracy and beats baseline
        // on time; greedy loses accuracy.
        let base = cell("scenario 2", "Baseline");
        let greedy = cell("scenario 2", "Greedy");
        let elastic = cell("scenario 2", "Elastic");
        let base_acc = base["accuracy"].as_f64().unwrap();
        let greedy_acc = greedy["accuracy"].as_f64().unwrap();
        let elastic_acc = elastic["accuracy"].as_f64().unwrap();
        assert!(
            base_acc - greedy_acc > 0.008,
            "greedy should lose accuracy: {base_acc} vs {greedy_acc}"
        );
        assert!(
            (base_acc - elastic_acc).abs() < 0.008,
            "elastic preserves accuracy: {base_acc} vs {elastic_acc}"
        );
        let elastic_time = elastic["normalized_time"].as_f64().unwrap();
        assert!(
            elastic_time < 1.0,
            "elastic should beat the baseline: {elastic_time}"
        );
        // Elastic actually evicted someone; greedy actually switched extra.
        assert!(elastic["mean_evictions"].as_f64().unwrap() >= 1.0);
        assert!(greedy["mean_switches"].as_f64().unwrap() > 1.5);
    }
}
