//! Paper Fig. 2: benefits of synchronization switching — test-accuracy
//! curves and total training time for BSP, ASP, switching at 25%, and
//! switching at 50% (ResNet32/CIFAR-10, 8 workers).

use serde_json::json;
use sync_switch_core::SyncSwitchPolicy;
use sync_switch_workloads::ExperimentSetup;

use crate::output::{fmt_min, Exhibit};
use crate::runner::{repeat_reports, RunSummary};

/// Runs the exhibit.
pub fn run() -> Exhibit {
    let mut ex = Exhibit::new("fig2", "Benefits of synchronization switching (setup 1)");
    let setup = ExperimentSetup::one();

    let configs: Vec<(&str, SyncSwitchPolicy)> = vec![
        ("BSP", SyncSwitchPolicy::static_bsp(8)),
        ("ASP", SyncSwitchPolicy::static_asp(8)),
        ("Switching 25%", SyncSwitchPolicy::new(0.25, 8)),
        ("Switching 50%", SyncSwitchPolicy::new(0.50, 8)),
    ];

    let summaries: Vec<(&str, RunSummary)> = configs
        .iter()
        .enumerate()
        .map(|(i, (name, p))| (*name, repeat_reports(&setup, p, 0xF1602 + 37 * i as u64)))
        .collect();

    ex.line("(a) Test accuracy over steps (best run, every 8k steps):");
    let mut rows = Vec::new();
    let steps: Vec<u64> = (0..=8).map(|i| i * 8_000).collect();
    for (name, s) in &summaries {
        let best = s.best().expect("setup 1 runs complete");
        let mut row = vec![name.to_string()];
        for &target in &steps {
            let acc = best
                .evals
                .iter()
                .min_by_key(|e| e.step.abs_diff(target))
                .map(|e| e.accuracy)
                .unwrap_or(0.0);
            row.push(format!("{acc:.3}"));
        }
        rows.push(row);
    }
    let header: Vec<String> = std::iter::once("config".to_string())
        .chain(steps.iter().map(|s| format!("{}k", s / 1000)))
        .collect();
    let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();
    ex.table(&header_refs, &rows);

    ex.line("");
    ex.line("(b) Total training time (mean of 5 runs):");
    let bsp_time = summaries[0].1.mean_time_s();
    let mut rows = Vec::new();
    for (name, s) in &summaries {
        let t = s.mean_time_s();
        rows.push(vec![
            name.to_string(),
            fmt_min(t),
            format!("{:.1}%", 100.0 * t / bsp_time),
            format!("{:.3}", s.mean_accuracy().unwrap_or(0.0)),
        ]);
    }
    ex.table(&["config", "time (min)", "vs BSP", "accuracy"], &rows);

    let t25 = summaries[2].1.mean_time_s();
    let t50 = summaries[3].1.mean_time_s();
    ex.line("");
    ex.line(format!(
        "Switching@25% cuts total time by {:.1}% vs BSP (paper: ~63.5%); \
         25% vs 50% saves {:.1}% (paper: 37.5%).",
        100.0 * (1.0 - t25 / bsp_time),
        100.0 * (1.0 - t25 / t50),
    ));

    ex.json = json!({
        "setup": 1,
        "series": summaries.iter().map(|(name, s)| json!({
            "config": name,
            "mean_time_s": s.mean_time_s(),
            "mean_accuracy": s.mean_accuracy(),
            "best_curve": s.best().map(|b| b.accuracy_curve()),
        })).collect::<Vec<_>>(),
        "reduction_25_vs_bsp": 1.0 - t25 / bsp_time,
        "reduction_25_vs_50": 1.0 - t25 / t50,
        "paper": {"reduction_25_vs_bsp": 0.635, "reduction_25_vs_50": 0.375},
    });
    ex
}

#[cfg(test)]
mod tests {
    #[test]
    fn fig2_reductions_match_paper_shape() {
        let ex = super::run();
        let r = ex.json["reduction_25_vs_bsp"].as_f64().unwrap();
        assert!((r - 0.635).abs() < 0.08, "25% reduction {r}");
        let r2 = ex.json["reduction_25_vs_50"].as_f64().unwrap();
        assert!((r2 - 0.375).abs() < 0.08, "25-vs-50 reduction {r2}");
    }
}
