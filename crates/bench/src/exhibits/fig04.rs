//! Paper Fig. 4: BSP vs ASP training throughput — (a) all three setups
//! without stragglers (ASP fails on setup 3); (b) setup 1 under
//! straggler configurations {0, 1+10ms, 2+10ms, 1+30ms, 2+30ms}.

use serde_json::json;
use sync_switch_cluster::{ClusterSim, StragglerScenario};
use sync_switch_workloads::{ExperimentSetup, SetupId};

use crate::output::Exhibit;

/// Measures steady-state cluster throughput (images/s) for both protocols.
fn throughputs(setup: &ExperimentSetup, scenario: StragglerScenario, seed: u64) -> (f64, f64) {
    let batch = setup.workload.hyper.batch_size;
    let mut bsp = ClusterSim::new(setup, seed);
    bsp.set_scenario(scenario.clone());
    let b = bsp.run_bsp(4_000).cluster_images_per_sec(batch);
    let mut asp = ClusterSim::new(setup, seed);
    asp.set_scenario(scenario);
    let a = asp.run_asp(4_000).cluster_images_per_sec(batch);
    (b, a)
}

/// Runs the exhibit.
pub fn run() -> Exhibit {
    let mut ex = Exhibit::new("fig4", "Training throughput: BSP vs ASP");

    ex.line("(a) Without stragglers:");
    let mut rows = Vec::new();
    let mut panel_a = Vec::new();
    for id in SetupId::all() {
        let setup = ExperimentSetup::from_id(id);
        let (bsp, asp) = throughputs(&setup, StragglerScenario::none(), 0xF1604);
        // ASP on setup 3 diverges in practice — throughput is moot.
        let asp_display = if id == SetupId::Three {
            "Fail".to_string()
        } else {
            format!("{asp:.0}")
        };
        rows.push(vec![
            id.to_string(),
            format!("{bsp:.0}"),
            asp_display,
            format!("{:.2}x", asp / bsp),
        ]);
        panel_a.push(json!({
            "setup": id.index(),
            "bsp_img_s": bsp,
            "asp_img_s": asp,
            "asp_over_bsp": asp / bsp,
            "asp_fails": id == SetupId::Three,
        }));
    }
    ex.table(&["setup", "BSP img/s", "ASP img/s", "ASP/BSP"], &rows);

    ex.line("");
    ex.line("(b) Setup 1 with (constant) stragglers:");
    let setup1 = ExperimentSetup::one();
    let scenarios: Vec<(&str, StragglerScenario)> = vec![
        ("0 + 0ms", StragglerScenario::none()),
        ("1 + 10ms", StragglerScenario::constant(1, 0.010)),
        ("2 + 10ms", StragglerScenario::constant(2, 0.010)),
        ("1 + 30ms", StragglerScenario::constant(1, 0.030)),
        ("2 + 30ms", StragglerScenario::constant(2, 0.030)),
    ];
    let mut rows = Vec::new();
    let mut panel_b = Vec::new();
    for (name, sc) in scenarios {
        let (bsp, asp) = throughputs(&setup1, sc, 0xF1604);
        rows.push(vec![
            name.to_string(),
            format!("{bsp:.0}"),
            format!("{asp:.0}"),
        ]);
        panel_b.push(json!({"scenario": name, "bsp_img_s": bsp, "asp_img_s": asp}));
    }
    ex.table(&["stragglers", "BSP img/s", "ASP img/s"], &rows);
    ex.line("");
    ex.line("Paper: ASP up to 6.59x faster than BSP; BSP collapses under added latency while ASP barely moves.");

    ex.json = json!({"panel_a": panel_a, "panel_b": panel_b});
    ex
}

#[cfg(test)]
mod tests {
    #[test]
    fn fig4_ratio_bands() {
        let ex = super::run();
        let a = ex.json["panel_a"].as_array().unwrap();
        let r1 = a[0]["asp_over_bsp"].as_f64().unwrap();
        let r2 = a[1]["asp_over_bsp"].as_f64().unwrap();
        assert!((5.0..8.2).contains(&r1), "setup1 ratio {r1} (paper 6.59)");
        assert!((1.4..2.5).contains(&r2), "setup2 ratio {r2} (paper ~1.86)");

        // Straggler panel: BSP throughput drops sharply with 30ms latency,
        // ASP loses little.
        let b = ex.json["panel_b"].as_array().unwrap();
        let bsp_clean = b[0]["bsp_img_s"].as_f64().unwrap();
        let bsp_30 = b[3]["bsp_img_s"].as_f64().unwrap();
        let asp_clean = b[0]["asp_img_s"].as_f64().unwrap();
        let asp_30 = b[3]["asp_img_s"].as_f64().unwrap();
        assert!(bsp_30 < 0.7 * bsp_clean, "BSP {bsp_clean} -> {bsp_30}");
        assert!(asp_30 > 0.8 * asp_clean, "ASP {asp_clean} -> {asp_30}");
    }
}
