//! Paper Table II (and the full per-setup grids of Tables IV/V/VI):
//! binary-search cost analysis over 1000 Monte-Carlo trials per setting.

use serde_json::json;
use sync_switch_core::{simulate_search_setting, SearchCostRow, SearchSetting};
use sync_switch_workloads::{ExperimentSetup, SetupId};

use crate::output::Exhibit;

const TRIALS: usize = 1000;
const BETA: f64 = 0.01;

fn row_to_strings(r: &SearchCostRow) -> Vec<String> {
    vec![
        r.setting.to_string(),
        format!("{:.2}X", r.search_cost),
        format!("{:.2}", r.amortized_recurrences),
        format!("{:.2}X", r.effective_training),
        format!("{:.1}%", 100.0 * r.success_probability),
    ]
}

fn row_to_json(setup: SetupId, r: &SearchCostRow) -> serde_json::Value {
    json!({
        "setup": setup.index(),
        "setting": r.setting.to_string(),
        "recurring": r.setting.recurring,
        "bsp_runs": r.setting.bsp_runs,
        "candidate_runs": r.setting.candidate_runs,
        "search_cost": r.search_cost,
        "amortized": r.amortized_recurrences,
        "effective_training": r.effective_training,
        "success_probability": r.success_probability,
    })
}

/// Runs paper Table II: the three representative settings per setup.
pub fn run() -> Exhibit {
    let mut ex = Exhibit::new("table2", "Binary search cost analysis (β = 0.01)");
    let selected: Vec<(SetupId, Vec<SearchSetting>)> = vec![
        (
            SetupId::One,
            vec![
                SearchSetting::baseline(),
                SearchSetting {
                    recurring: false,
                    bsp_runs: 3,
                    candidate_runs: 3,
                },
                SearchSetting {
                    recurring: true,
                    bsp_runs: 0,
                    candidate_runs: 3,
                },
            ],
        ),
        (
            SetupId::Two,
            vec![
                SearchSetting::baseline(),
                SearchSetting {
                    recurring: false,
                    bsp_runs: 4,
                    candidate_runs: 4,
                },
                SearchSetting {
                    recurring: true,
                    bsp_runs: 0,
                    candidate_runs: 4,
                },
            ],
        ),
        (
            SetupId::Three,
            vec![
                SearchSetting::baseline(),
                SearchSetting {
                    recurring: false,
                    bsp_runs: 3,
                    candidate_runs: 3,
                },
                SearchSetting {
                    recurring: true,
                    bsp_runs: 0,
                    candidate_runs: 1,
                },
            ],
        ),
    ];

    let mut payload = Vec::new();
    let mut rows = Vec::new();
    for (id, settings) in selected {
        let setup = ExperimentSetup::from_id(id);
        for setting in settings {
            let r = simulate_search_setting(&setup, setting, TRIALS, BETA, 0xAB1E2);
            let mut cells = vec![format!("Exp.{}", id.index())];
            cells.extend(row_to_strings(&r));
            rows.push(cells);
            payload.push(row_to_json(id, &r));
        }
    }
    ex.table(
        &[
            "setup",
            "setting",
            "cost",
            "amortization",
            "effective",
            "success",
        ],
        &rows,
    );
    ex.line("");
    ex.line("Paper Table II anchors: (Exp.1, No,5,5) = 12.71X / 15.79 / 1.97X / 100%; (Exp.3, Yes,0,1) = 0.54X / 1.16 / 1.87X / 100%.");

    ex.json = json!({"rows": payload});
    ex
}

/// Runs a full per-setup grid (paper Tables IV, V, VI).
pub fn run_full(setup_id: SetupId, exhibit_id: &str) -> Exhibit {
    let setup = ExperimentSetup::from_id(setup_id);
    let mut ex = Exhibit::new(
        exhibit_id,
        &format!("Cost and performance analysis for {setup_id}"),
    );
    let mut rows = Vec::new();
    let mut payload = Vec::new();
    for setting in SearchSetting::table_rows() {
        let r = simulate_search_setting(&setup, setting, TRIALS, BETA, 0xAB1E2);
        rows.push(row_to_strings(&r));
        payload.push(row_to_json(setup_id, &r));
    }
    ex.table(
        &["setting", "cost", "amortization", "effective", "success"],
        &rows,
    );
    ex.json = json!({"rows": payload});
    ex
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_anchor_rows() {
        let ex = run();
        let rows = ex.json["rows"].as_array().unwrap();
        let find = |setup: u64, setting: &str| {
            rows.iter()
                .find(|r| {
                    r["setup"].as_u64() == Some(setup) && r["setting"].as_str() == Some(setting)
                })
                .unwrap()
        };
        // (Exp.1, No, 5, 5): paper 12.71X / 15.79 / 1.97X / 100%.
        let r = find(1, "(No, 5, 5)");
        assert!((11.0..14.5).contains(&r["search_cost"].as_f64().unwrap()));
        assert!((13.0..19.0).contains(&r["amortized"].as_f64().unwrap()));
        assert!((1.6..2.4).contains(&r["effective_training"].as_f64().unwrap()));
        assert!(r["success_probability"].as_f64().unwrap() > 0.9);
        // (Exp.3, Yes, 0, 1): paper 0.54X / 1.16 / 1.87X / 100%.
        let r = find(3, "(Yes, 0, 1)");
        assert!((0.4..0.8).contains(&r["search_cost"].as_f64().unwrap()));
        assert!(r["success_probability"].as_f64().unwrap() > 0.95);
    }

    #[test]
    fn full_grid_has_14_rows_and_monotone_cost() {
        let ex = run_full(SetupId::One, "table4");
        let rows = ex.json["rows"].as_array().unwrap();
        assert_eq!(rows.len(), 14);
        // Within the (No, n, n) family, cost decreases as runs decrease.
        let costs: Vec<f64> = rows[..5]
            .iter()
            .map(|r| r["search_cost"].as_f64().unwrap())
            .collect();
        for w in costs.windows(2) {
            assert!(w[0] > w[1], "costs must decrease: {costs:?}");
        }
        // Success probability decreases from (No,5,5) to (No,1,1).
        let s55 = rows[0]["success_probability"].as_f64().unwrap();
        let s11 = rows[4]["success_probability"].as_f64().unwrap();
        assert!(s55 > s11, "success {s55} vs {s11}");
    }
}
