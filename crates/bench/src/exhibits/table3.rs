//! Paper Table III: Sync-Switch runtime overhead — cluster initialization
//! and protocol-switching time under sequential vs parallel configuration
//! actuators, plus the measured in-process switch cost of the real
//! parameter server.

use serde_json::json;
use sync_switch_cluster::{ActuatorMode, OverheadModel};
use sync_switch_core::SyncSwitchPolicy;
use sync_switch_nn::{Dataset, Network};
use sync_switch_ps::{execute_switch, SwitchPlan, Trainer, TrainerConfig};
use sync_switch_workloads::{ExperimentSetup, SyncProtocol};

use crate::output::Exhibit;
use crate::runner::run_report;

/// Runs the exhibit.
pub fn run() -> Exhibit {
    let mut ex = Exhibit::new("table3", "Sync-Switch runtime overhead");

    let mut rows = Vec::new();
    let mut payload = Vec::new();
    let mut model = OverheadModel::new(0xAB1E3);
    for n in [8usize, 16] {
        for (mode, label) in [
            (ActuatorMode::Sequential, "Sequential"),
            (ActuatorMode::Parallel, "Parallel (Ours)"),
        ] {
            let s = model.mean_sample(n, mode, 50);
            rows.push(vec![
                format!("{n} K80"),
                label.to_string(),
                format!("{:.0}", s.init.as_secs()),
                format!("{:.0}", s.switch.as_secs()),
                format!("{:.0}", s.init.as_secs() + s.switch.as_secs()),
            ]);
            payload.push(json!({
                "cluster": n,
                "actuator": label,
                "init_s": s.init.as_secs(),
                "switch_s": s.switch.as_secs(),
            }));
        }
    }
    ex.table(
        &[
            "cluster",
            "actuator",
            "init (s)",
            "switching (s)",
            "total (s)",
        ],
        &rows,
    );
    ex.line("");
    ex.line("Paper: 157/90 s init and 90/36 s switch at 8 nodes (seq/par); 268/128 s and 165/53 s at 16 nodes.");

    // Switch overhead as a fraction of total training time (paper: "as low
    // as 36 seconds, about 1.7% of the total training time").
    let setup = ExperimentSetup::one();
    let report = run_report(&setup, &SyncSwitchPolicy::paper_policy(&setup), 0xAB1E3);
    let frac = report.overhead_fraction();
    ex.line(format!(
        "Measured switch overhead in a setup-1 Sync-Switch run: {:.0} s = {:.1}% of total training time (paper: ~1.7%).",
        report.total_switch_overhead_s(),
        100.0 * frac,
    ));

    // Live measurement on the real in-process parameter server.
    let data = Dataset::gaussian_blobs(4, 120, 8, 0.35, 3);
    let (train, test) = data.split(0.25);
    let mut trainer = Trainer::new(
        Network::mlp(8, &[32, 16], 4, 3),
        train,
        test,
        TrainerConfig::new(4, 8, 0.05, 0.9).with_seed(3),
    );
    trainer
        .run_segment(SyncProtocol::Bsp, 10)
        .expect("small BSP segment completes");
    let plan = SwitchPlan {
        to: SyncProtocol::Asp,
        per_worker_batch: 8,
        learning_rate: 0.05,
        momentum: 0.9,
        reset_velocity: false,
    };
    let outcome = execute_switch(&mut trainer, &plan).expect("switch succeeds");
    ex.line(format!(
        "Real in-process PS switch (4 workers, checkpoint+reconfigure+restore): {:.3} ms.",
        outcome.total().as_secs_f64() * 1e3,
    ));

    ex.json = json!({
        "rows": payload,
        "run_overhead_fraction": frac,
        "real_ps_switch_ms": outcome.total().as_secs_f64() * 1e3,
    });
    ex
}

#[cfg(test)]
mod tests {
    #[test]
    fn table3_matches_paper_within_tolerance() {
        let ex = super::run();
        let rows = ex.json["rows"].as_array().unwrap();
        let get = |cluster: u64, actuator: &str, key: &str| {
            rows.iter()
                .find(|r| {
                    r["cluster"].as_u64() == Some(cluster)
                        && r["actuator"].as_str() == Some(actuator)
                })
                .unwrap()[key]
                .as_f64()
                .unwrap()
        };
        let within = |v: f64, target: f64| (v - target).abs() / target < 0.2;
        assert!(within(get(8, "Sequential", "init_s"), 157.0));
        assert!(within(get(8, "Parallel (Ours)", "init_s"), 90.0));
        assert!(within(get(8, "Sequential", "switch_s"), 90.0));
        assert!(within(get(8, "Parallel (Ours)", "switch_s"), 36.0));
        assert!(within(get(16, "Sequential", "init_s"), 268.0));
        assert!(within(get(16, "Parallel (Ours)", "init_s"), 128.0));
        assert!(within(get(16, "Sequential", "switch_s"), 165.0));
        assert!(within(get(16, "Parallel (Ours)", "switch_s"), 53.0));

        // Overhead fraction near the paper's 1.7%.
        let frac = ex.json["run_overhead_fraction"].as_f64().unwrap();
        assert!((0.005..0.06).contains(&frac), "overhead fraction {frac}");
        // The real PS switch completes in well under a second in-process.
        assert!(ex.json["real_ps_switch_ms"].as_f64().unwrap() < 1000.0);
    }
}
