//! Paper Fig. 5: impact of synchronicity — (a) converged accuracy by
//! protocol order (BSP, BSP→ASP, ASP→BSP, ASP at a 50% split); (b)
//! converged accuracy vs the percentage of BSP training (the knee).

use serde_json::json;
use sync_switch_core::SyncSwitchPolicy;
use sync_switch_workloads::ExperimentSetup;

use crate::output::Exhibit;
use crate::runner::{mean_std, repeat_reports, run_order, OrderKind, RUNS};

/// Runs the exhibit.
pub fn run() -> Exhibit {
    let mut ex = Exhibit::new("fig5", "Impact of synchronicity (setup 1)");
    let setup = ExperimentSetup::one();

    ex.line("(a) Order of synchronicity (50% split, 5 runs each):");
    let mut rows = Vec::new();
    let mut panel_a = Vec::new();
    for order in [
        OrderKind::Bsp,
        OrderKind::BspThenAsp,
        OrderKind::AspThenBsp,
        OrderKind::Asp,
    ] {
        let accs: Vec<f64> = (0..RUNS)
            .filter_map(|i| run_order(&setup, order, 0.5, 0xF1605 + i * 131).0)
            .collect();
        let (mean, std) = mean_std(&accs);
        rows.push(vec![
            order.to_string(),
            format!("{mean:.3}"),
            format!("±{std:.3}"),
        ]);
        panel_a.push(json!({"order": order.to_string(), "mean": mean, "std": std}));
    }
    ex.table(&["order", "accuracy", "std"], &rows);

    ex.line("");
    ex.line("(b) Converged accuracy vs BSP proportion:");
    let fractions = [0.0, 0.05, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.8, 1.0];
    let mut rows = Vec::new();
    let mut panel_b = Vec::new();
    for &f in &fractions {
        let s = repeat_reports(&setup, &SyncSwitchPolicy::new(f, 8), 0xF1605);
        let mean = s.mean_accuracy().unwrap_or(0.0);
        rows.push(vec![format!("{:.0}%", f * 100.0), format!("{mean:.3}")]);
        panel_b.push(json!({"bsp_fraction": f, "accuracy": mean}));
    }
    ex.table(&["BSP %", "accuracy"], &rows);
    ex.line("");
    ex.line("Paper: accuracy rises with BSP fraction then plateaus at the knee — more BSP does not help beyond it.");

    ex.json = json!({"panel_a": panel_a, "panel_b": panel_b});
    ex
}

#[cfg(test)]
mod tests {
    #[test]
    fn fig5_orders_and_knee() {
        let ex = super::run();
        let a = ex.json["panel_a"].as_array().unwrap();
        let bsp = a[0]["mean"].as_f64().unwrap();
        let bsp_asp = a[1]["mean"].as_f64().unwrap();
        let asp_bsp = a[2]["mean"].as_f64().unwrap();
        let asp = a[3]["mean"].as_f64().unwrap();
        // BSP→ASP ≈ BSP; ASP→BSP trails; ASP lowest band.
        assert!(
            (bsp - bsp_asp).abs() < 0.008,
            "BSP {bsp} vs BSP→ASP {bsp_asp}"
        );
        assert!(bsp_asp > asp_bsp, "BSP→ASP {bsp_asp} vs ASP→BSP {asp_bsp}");
        assert!(bsp > asp + 0.015, "BSP {bsp} vs ASP {asp}");

        // Panel b: monotone-ish rise then plateau.
        let b = ex.json["panel_b"].as_array().unwrap();
        let at0 = b[0]["accuracy"].as_f64().unwrap();
        let at50 = b[6]["accuracy"].as_f64().unwrap();
        let at100 = b[9]["accuracy"].as_f64().unwrap();
        assert!(at50 > at0 + 0.015);
        assert!((at100 - at50).abs() < 0.008, "plateau: {at50} vs {at100}");
    }
}
