//! Paper Fig. 8: hyper-parameter configuration comparison — (a) BSP
//! throughput vs batch-size configuration (global `n·B` = 1024 vs the
//! unscaled user batch 128); (b) converged accuracy for the five
//! momentum-scaling variants after the switch.

use serde_json::json;
use sync_switch_cluster::ClusterSim;
use sync_switch_convergence::MomentumScaling;
use sync_switch_core::SyncSwitchPolicy;
use sync_switch_workloads::ExperimentSetup;

use crate::output::Exhibit;
use crate::runner::repeat_reports;

/// Runs the exhibit.
pub fn run() -> Exhibit {
    let mut ex = Exhibit::new("fig8", "Hyper-parameter configurations (setup 1)");
    let setup = ExperimentSetup::one();

    ex.line("(a) BSP batch-size scaling (throughput):");
    let mut rows = Vec::new();
    let mut panel_a = Vec::new();
    // Global batch 1024 = the config policy's n·B (128/worker); global 128
    // = the unscaled user value (16/worker).
    for (label, per_worker) in [("1024", 128usize), ("128", 16usize)] {
        let mut sim = ClusterSim::new(&setup, 0xF1608);
        sim.set_batch(per_worker);
        let stats = sim.run_bsp(4_000);
        let thr = stats.cluster_images_per_sec(per_worker);
        rows.push(vec![label.to_string(), format!("{thr:.0}")]);
        panel_a.push(json!({"global_batch": label, "throughput_img_s": thr}));
    }
    ex.table(&["BSP global batch", "img/s"], &rows);

    ex.line("");
    ex.line("(b) Momentum scaling after the switch (converged accuracy):");
    let mut rows = Vec::new();
    let mut panel_b = Vec::new();
    for variant in MomentumScaling::all() {
        let policy = SyncSwitchPolicy::paper_policy(&setup).with_momentum_scaling(variant);
        let s = repeat_reports(&setup, &policy, 0xF1608);
        let mean = s.mean_accuracy().unwrap_or(0.0);
        rows.push(vec![
            variant.to_string(),
            format!("{mean:.3}"),
            format!("±{:.3}", s.std_accuracy()),
        ]);
        panel_b.push(json!({"variant": variant.to_string(), "accuracy": mean}));
    }
    ex.table(&["momentum scaling", "accuracy", "std"], &rows);
    ex.line("");
    ex.line(
        "Paper: keeping the BSP momentum (Baseline) is best; differences up to ~5 accuracy points.",
    );

    ex.json = json!({"panel_a": panel_a, "panel_b": panel_b});
    ex
}

#[cfg(test)]
mod tests {
    #[test]
    fn fig8_shapes() {
        let ex = super::run();
        let a = ex.json["panel_a"].as_array().unwrap();
        let big = a[0]["throughput_img_s"].as_f64().unwrap();
        let small = a[1]["throughput_img_s"].as_f64().unwrap();
        assert!(big / small > 1.8, "batch scaling {big}/{small}");

        let b = ex.json["panel_b"].as_array().unwrap();
        let get = |i: usize| b[i]["accuracy"].as_f64().unwrap();
        let (baseline, zero, fixed, nonlinear, linear) = (get(0), get(1), get(2), get(3), get(4));
        assert!(
            baseline > fixed && fixed > nonlinear && nonlinear > linear && linear > zero,
            "ordering: {baseline} {fixed} {nonlinear} {linear} {zero}"
        );
        assert!(
            (baseline - zero) > 0.035 && (baseline - zero) < 0.075,
            "max spread {} (paper ~5%)",
            baseline - zero
        );
    }
}
