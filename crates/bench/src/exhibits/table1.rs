//! Paper Table I: summary of experiment setups, timing policies, and
//! throughput / TTA speedups of Sync-Switch vs ASP and BSP.

use serde_json::json;
use sync_switch_core::SyncSwitchPolicy;
use sync_switch_workloads::{CalibrationTargets, ExperimentSetup, SetupId};

use crate::output::Exhibit;
use crate::runner::repeat_reports;

/// Runs the exhibit.
pub fn run() -> Exhibit {
    let mut ex = Exhibit::new("table1", "Experiment setups, timing policies, and speedups");

    let mut rows = Vec::new();
    let mut payload = Vec::new();
    for id in SetupId::all() {
        let setup = ExperimentSetup::from_id(id);
        let n = setup.cluster_size;
        let calib = CalibrationTargets::for_setup(id);

        let bsp = repeat_reports(&setup, &SyncSwitchPolicy::static_bsp(n), 0xAB1E1);
        let asp = repeat_reports(&setup, &SyncSwitchPolicy::static_asp(n), 0xAB1E1);
        let ss = repeat_reports(&setup, &SyncSwitchPolicy::paper_policy(&setup), 0xAB1E1);

        let batch = setup.workload.hyper.batch_size;
        let thr = |s: &crate::runner::RunSummary| -> Option<f64> {
            let ok: Vec<f64> = s
                .reports
                .iter()
                .filter(|r| r.completed())
                .map(|r| r.throughput_images_per_sec(batch))
                .collect();
            (!ok.is_empty()).then(|| ok.iter().sum::<f64>() / ok.len() as f64)
        };
        let ss_thr = thr(&ss).expect("sync-switch completes");
        let bsp_thr = thr(&bsp).expect("bsp completes");
        let asp_thr = thr(&asp);

        let thr_vs_asp = asp_thr.map(|a| ss_thr / a);
        let thr_vs_bsp = ss_thr / bsp_thr;
        let tta_vs_bsp = match (ss.mean_tta_s(), bsp.mean_tta_s()) {
            (Some(s), Some(b)) => Some(b / s),
            _ => None,
        };

        rows.push(vec![
            id.index().to_string(),
            format!(
                "{}, {}",
                setup.workload.model.name, setup.workload.dataset.name
            ),
            format!("{n}, K80"),
            format!(
                "P{}: ([BSP, ASP], {:.3}%)",
                id.index(),
                calib.policy_fraction() * 100.0
            ),
            thr_vs_asp.map_or("failed".into(), |x| format!("{x:.2}X")),
            format!("{thr_vs_bsp:.2}X"),
            "N/A".to_string(),
            tta_vs_bsp.map_or("N/A".into(), |x| format!("{x:.2}X")),
        ]);
        payload.push(json!({
            "setup": id.index(),
            "policy_fraction": calib.policy_fraction(),
            "throughput_vs_asp": thr_vs_asp,
            "throughput_vs_bsp": thr_vs_bsp,
            "tta_vs_bsp": tta_vs_bsp,
            "paper": {
                "throughput_vs_bsp": calib.throughput_speedup_vs_bsp,
                "tta_vs_bsp": calib.tta_speedup_vs_bsp,
            },
        }));
    }
    ex.table(
        &[
            "setup",
            "workload",
            "cluster",
            "policy",
            "thr vs ASP",
            "thr vs BSP",
            "TTA vs ASP",
            "TTA vs BSP",
        ],
        &rows,
    );
    ex.line("");
    ex.line("Paper: 0.78X/5.13X/3.99X (setup 1), 0.89X/1.66X/1.60X (setup 2), failed/1.87X/1.08X (setup 3).");

    ex.json = json!({"rows": payload});
    ex
}

#[cfg(test)]
mod tests {
    #[test]
    fn table1_speedup_bands() {
        let ex = super::run();
        let rows = ex.json["rows"].as_array().unwrap();

        // Setup 1: throughput speedup vs BSP ≈ 5.13X, vs ASP < 1.
        let t1 = rows[0]["throughput_vs_bsp"].as_f64().unwrap();
        assert!((3.8..6.4).contains(&t1), "setup1 thr vs BSP {t1}");
        let a1 = rows[0]["throughput_vs_asp"].as_f64().unwrap();
        assert!((0.6..1.0).contains(&a1), "setup1 thr vs ASP {a1}");
        let tta1 = rows[0]["tta_vs_bsp"].as_f64().unwrap();
        assert!((2.5..6.5).contains(&tta1), "setup1 TTA {tta1} (paper 3.99)");

        // Setup 2: ~1.66X vs BSP.
        let t2 = rows[1]["throughput_vs_bsp"].as_f64().unwrap();
        assert!((1.3..2.2).contains(&t2), "setup2 thr vs BSP {t2}");

        // Setup 3: ASP failed; ~1.87X vs BSP.
        assert!(rows[2]["throughput_vs_asp"].is_null());
        let t3 = rows[2]["throughput_vs_bsp"].as_f64().unwrap();
        assert!((1.5..2.3).contains(&t3), "setup3 thr vs BSP {t3}");
    }
}
