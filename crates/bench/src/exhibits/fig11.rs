//! Paper Fig. 11: detailed performance of experiment setup 1 — training
//! loss curves, test-accuracy curves, and converged accuracy / training
//! time across switch timings {0, 3.125, 6.25, 12.5, 25, 50, 100}%.

use serde_json::json;
use sync_switch_core::SyncSwitchPolicy;
use sync_switch_workloads::{CalibrationTargets, ExperimentSetup, SetupId};

use crate::output::{fmt_min, Exhibit};
use crate::runner::{repeat_reports, RunSummary};

/// Shared harness for the per-setup detail figures (11, 12, 13).
pub fn detail_figure(id: &str, setup_id: SetupId, fractions: &[f64], seed: u64) -> Exhibit {
    let setup = ExperimentSetup::from_id(setup_id);
    let calib = CalibrationTargets::for_setup(setup_id);
    let n = setup.cluster_size;
    let mut ex = Exhibit::new(
        id,
        &format!(
            "Performance of {} ({} on {}, {} workers)",
            setup_id, setup.workload.model.name, setup.workload.dataset.name, n
        ),
    );

    // Sweep switch timings (the paper's panels c/d).
    let summaries: Vec<(f64, RunSummary)> = fractions
        .iter()
        .map(|&f| {
            (
                f,
                repeat_reports(&setup, &SyncSwitchPolicy::new(f, n), seed),
            )
        })
        .collect();

    // Panels a/b: curves for BSP, ASP (or the first failing fraction), and
    // the paper policy.
    let policy_fraction = calib.policy_fraction();
    let curves: Vec<(&str, Option<&RunSummary>)> = vec![
        (
            "BSP",
            summaries.iter().find(|(f, _)| *f == 1.0).map(|(_, s)| s),
        ),
        (
            "ASP",
            summaries.iter().find(|(f, _)| *f == 0.0).map(|(_, s)| s),
        ),
        (
            "Sync-Switch",
            summaries
                .iter()
                .find(|(f, _)| (*f - policy_fraction).abs() < 1e-9)
                .map(|(_, s)| s),
        ),
    ];
    ex.line("(a/b) Training loss and test accuracy (best run) at checkpoints:");
    let total = setup.workload.hyper.total_steps;
    let probes: Vec<u64> = (0..=8).map(|i| i * total / 8).collect();
    let mut rows = Vec::new();
    for (name, summary) in &curves {
        let Some(s) = summary else { continue };
        match s.best() {
            Some(best) => {
                let mut loss_row = vec![format!("{name} loss")];
                let mut acc_row = vec![format!("{name} acc")];
                for &p in &probes {
                    let e = best
                        .evals
                        .iter()
                        .min_by_key(|e| e.step.abs_diff(p))
                        .expect("non-empty evals");
                    loss_row.push(format!("{:.4}", e.loss));
                    acc_row.push(format!("{:.3}", e.accuracy));
                }
                rows.push(loss_row);
                rows.push(acc_row);
            }
            None => {
                rows.push(vec![format!("{name}"), "diverged".into()]);
            }
        }
    }
    let header: Vec<String> = std::iter::once("series".to_string())
        .chain(probes.iter().map(|s| format!("{}k", s / 1000)))
        .collect();
    let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();
    ex.table(&header_refs, &rows);

    ex.line("");
    ex.line("(c/d) Converged accuracy and total training time vs switch timing:");
    let mut rows = Vec::new();
    let mut sweep = Vec::new();
    for (f, s) in &summaries {
        let label = if *f == 0.0 {
            "0% (ASP)".to_string()
        } else if *f == 1.0 {
            "100% (BSP)".to_string()
        } else {
            format!("{:.3}%", f * 100.0)
        };
        let acc = if s.all_diverged() {
            "Fail".to_string()
        } else {
            format!("{:.3}", s.mean_accuracy().unwrap_or(0.0))
        };
        let time = s.mean_completed_time_s().map_or("Fail".into(), fmt_min);
        rows.push(vec![label, acc, time]);
        sweep.push(json!({
            "fraction": f,
            "accuracy": if s.all_diverged() { None } else { s.mean_accuracy() },
            "accuracy_std": s.std_accuracy(),
            "time_s": s.mean_completed_time_s(),
            "diverged": s.all_diverged(),
        }));
    }
    ex.table(&["switch timing", "accuracy", "time (min)"], &rows);

    // Headline numbers.
    let bsp = summaries
        .iter()
        .find(|(f, _)| *f == 1.0)
        .map(|(_, s)| s)
        .expect("sweep includes BSP");
    let ss = summaries
        .iter()
        .find(|(f, _)| (*f - policy_fraction).abs() < 1e-9)
        .map(|(_, s)| s)
        .expect("sweep includes the paper policy");
    let saving = 1.0 - ss.mean_completed_time_s().unwrap_or(f64::NAN) / bsp.mean_time_s();
    ex.line("");
    ex.line(format!(
        "Policy P ({:.3}%): accuracy {:.3} vs BSP {:.3}; training-time saving {:.1}% \
         (paper: {:.1}%).",
        policy_fraction * 100.0,
        ss.mean_accuracy().unwrap_or(0.0),
        bsp.mean_accuracy().unwrap_or(0.0),
        100.0 * saving,
        100.0 * (1.0 - calib.sync_switch_time_fraction),
    ));

    ex.json = json!({
        "setup": setup_id.index(),
        "policy_fraction": policy_fraction,
        "sweep": sweep,
        "time_saving_vs_bsp": saving,
        "paper_time_saving": 1.0 - calib.sync_switch_time_fraction,
        "curves": curves.iter().filter_map(|(name, s)| {
            s.and_then(|s| s.best()).map(|best| json!({
                "name": name,
                "accuracy_curve": best.accuracy_curve(),
                "loss_curve": best.loss_curve(),
            }))
        }).collect::<Vec<_>>(),
    });
    ex
}

/// Runs the exhibit.
pub fn run() -> Exhibit {
    detail_figure(
        "fig11",
        SetupId::One,
        &[0.0, 0.03125, 0.0625, 0.125, 0.25, 0.5, 1.0],
        0xF1611,
    )
}

#[cfg(test)]
mod tests {
    #[test]
    fn fig11_shape() {
        let ex = super::run();
        let sweep = ex.json["sweep"].as_array().unwrap();
        // Timing has minimal accuracy impact between 6.25% and 50%
        // but big time impact (paper's key observation).
        let acc_at = |i: usize| sweep[i]["accuracy"].as_f64().unwrap();
        let time_at = |i: usize| sweep[i]["time_s"].as_f64().unwrap();
        // indices: 0=0%,1=3.125,2=6.25,3=12.5,4=25,5=50,6=100
        assert!((acc_at(2) - acc_at(5)).abs() < 0.008, "plateau 6.25–50%");
        assert!(time_at(5) > 2.0 * time_at(2), "time grows with BSP share");
        // Below the knee accuracy drops measurably.
        assert!(acc_at(2) - acc_at(1) > 0.008, "3.125% below knee");
        // ~80% time saving at the policy point (paper: 80.5%).
        let saving = ex.json["time_saving_vs_bsp"].as_f64().unwrap();
        assert!((0.72..0.88).contains(&saving), "saving {saving}");
    }
}
