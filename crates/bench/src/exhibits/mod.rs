//! One module per paper exhibit.

pub mod ablation;
pub mod fig01;
pub mod fig02;
pub mod fig04;
pub mod fig05;
pub mod fig08;
pub mod fig10;
pub mod fig11;
pub mod fig12;
pub mod fig13;
pub mod fig14;
pub mod fig15;
pub mod fig16;
pub mod table1;
pub mod table2;
pub mod table3;

use crate::output::Exhibit;

/// All exhibit ids in paper order.
pub fn all_ids() -> Vec<&'static str> {
    vec![
        "fig1", "fig2", "fig4", "fig5", "fig8", "fig10", "fig11", "fig12", "fig13", "fig14",
        "fig15", "fig16", "table1", "table2", "table3", "table4", "table5", "table6", "ablation",
    ]
}

/// Runs one exhibit by id.
///
/// # Panics
///
/// Panics on an unknown id (the `repro` binary validates first).
pub fn run(id: &str) -> Exhibit {
    match id {
        "fig1" => fig01::run(),
        "fig2" => fig02::run(),
        "fig4" => fig04::run(),
        "fig5" => fig05::run(),
        "fig8" => fig08::run(),
        "fig10" => fig10::run(),
        "fig11" => fig11::run(),
        "fig12" => fig12::run(),
        "fig13" => fig13::run(),
        "fig14" => fig14::run(),
        "fig15" => fig15::run(),
        "fig16" => fig16::run(),
        "table1" => table1::run(),
        "table2" => table2::run(),
        "table3" => table3::run(),
        "table4" => table2::run_full(sync_switch_workloads::SetupId::One, "table4"),
        "table5" => table2::run_full(sync_switch_workloads::SetupId::Two, "table5"),
        "table6" => table2::run_full(sync_switch_workloads::SetupId::Three, "table6"),
        "ablation" => ablation::run(),
        other => panic!("unknown exhibit id: {other}"),
    }
}
