//! Paper Fig. 10: end-to-end comparison — normalized training time and
//! converged accuracy for BSP, ASP, and Sync-Switch across all setups.

use serde_json::json;
use sync_switch_core::SyncSwitchPolicy;
use sync_switch_workloads::{CalibrationTargets, ExperimentSetup, SetupId};

use crate::output::{fmt_acc, Exhibit};
use crate::runner::repeat_reports;

/// Runs the exhibit.
pub fn run() -> Exhibit {
    let mut ex = Exhibit::new("fig10", "End-to-end performance comparison");

    let mut rows_time = Vec::new();
    let mut rows_acc = Vec::new();
    let mut payload = Vec::new();
    for id in SetupId::all() {
        let setup = ExperimentSetup::from_id(id);
        let n = setup.cluster_size;
        let calib = CalibrationTargets::for_setup(id);

        let bsp = repeat_reports(&setup, &SyncSwitchPolicy::static_bsp(n), 0xF1610);
        let asp = repeat_reports(&setup, &SyncSwitchPolicy::static_asp(n), 0xF1610);
        let ss = repeat_reports(&setup, &SyncSwitchPolicy::paper_policy(&setup), 0xF1610);

        let bsp_t = bsp.mean_time_s();
        let asp_frac = if asp.all_diverged() {
            None
        } else {
            asp.mean_completed_time_s().map(|t| t / bsp_t)
        };
        let ss_frac = ss.mean_completed_time_s().map(|t| t / bsp_t);

        rows_time.push(vec![
            id.to_string(),
            "1.000".to_string(),
            asp_frac.map_or("Fail".into(), |f| format!("{f:.3}")),
            ss_frac.map_or("Fail".into(), |f| format!("{f:.3}")),
            format!(
                "paper: {} / {:.3}",
                calib
                    .asp_time_fraction
                    .map_or("Fail".to_string(), |f| format!("{f:.3}")),
                calib.sync_switch_time_fraction
            ),
        ]);
        rows_acc.push(vec![
            id.to_string(),
            fmt_acc(bsp.mean_accuracy()),
            fmt_acc(asp.mean_accuracy()),
            fmt_acc(ss.mean_accuracy()),
            format!(
                "paper: {:.3} / {} / {:.3}",
                calib.bsp_accuracy,
                calib
                    .asp_accuracy
                    .map_or("Fail".to_string(), |a| format!("{a:.3}")),
                calib.sync_switch_accuracy
            ),
        ]);
        payload.push(json!({
            "setup": id.index(),
            "bsp": {"time_frac": 1.0, "accuracy": bsp.mean_accuracy()},
            "asp": {"time_frac": asp_frac, "accuracy": asp.mean_accuracy(),
                    "diverged": asp.all_diverged()},
            "sync_switch": {"time_frac": ss_frac, "accuracy": ss.mean_accuracy()},
        }));
    }

    ex.line("(a) Total training time normalized to BSP:");
    ex.table(
        &["setup", "BSP", "ASP", "Sync-Switch", "reference"],
        &rows_time,
    );
    ex.line("");
    ex.line("(b) Converged accuracy:");
    ex.table(
        &["setup", "BSP", "ASP", "Sync-Switch", "reference"],
        &rows_acc,
    );

    ex.json = json!({"setups": payload});
    ex
}

#[cfg(test)]
mod tests {
    #[test]
    fn fig10_endpoints() {
        let ex = super::run();
        let s = ex.json["setups"].as_array().unwrap();

        // Setup 1: SS time ~0.195 of BSP, accuracy ≈ BSP, ASP lowest.
        let ss1 = s[0]["sync_switch"]["time_frac"].as_f64().unwrap();
        assert!((0.14..0.28).contains(&ss1), "setup1 SS time frac {ss1}");
        let acc_bsp = s[0]["bsp"]["accuracy"].as_f64().unwrap();
        let acc_ss = s[0]["sync_switch"]["accuracy"].as_f64().unwrap();
        let acc_asp = s[0]["asp"]["accuracy"].as_f64().unwrap();
        assert!(acc_bsp - acc_ss < 0.01);
        assert!(acc_ss > acc_asp + 0.012);

        // Setup 2: SS time ~0.6 of BSP.
        let ss2 = s[1]["sync_switch"]["time_frac"].as_f64().unwrap();
        assert!((0.42..0.72).contains(&ss2), "setup2 SS time frac {ss2}");

        // Setup 3: ASP diverges, SS survives at ~0.54 of BSP.
        assert!(s[2]["asp"]["diverged"].as_bool().unwrap());
        let ss3 = s[2]["sync_switch"]["time_frac"].as_f64().unwrap();
        assert!((0.45..0.65).contains(&ss3), "setup3 SS time frac {ss3}");
    }
}
