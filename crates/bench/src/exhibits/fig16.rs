//! Paper Fig. 16: search cost vs attempts-per-setting trade-off for the
//! three search-settings families (ground truth `bn = n`, recurring,
//! `bn = 1`), across all setups. A setting is "successful" when it finds
//! the ground-truth timing with ≥ 99% probability.

use serde_json::json;
use sync_switch_core::{simulate_search_setting, SearchSetting};
use sync_switch_workloads::{ExperimentSetup, SetupId};

use crate::output::Exhibit;

const TRIALS: usize = 400;

/// A named family of search settings parameterized by attempts-per-setting.
type SettingFamily = (&'static str, Box<dyn Fn(usize) -> SearchSetting>);

/// Runs the exhibit.
pub fn run() -> Exhibit {
    let mut ex = Exhibit::new("fig16", "Search cost and performance trade-off");

    let families: Vec<SettingFamily> = vec![
        (
            "bn=n (ground truth)",
            Box::new(|n| SearchSetting {
                recurring: false,
                bsp_runs: n,
                candidate_runs: n,
            }),
        ),
        (
            "recurring",
            Box::new(|n| SearchSetting {
                recurring: true,
                bsp_runs: 0,
                candidate_runs: n,
            }),
        ),
        (
            "bn=1",
            Box::new(|n| SearchSetting {
                recurring: false,
                bsp_runs: 1,
                candidate_runs: n,
            }),
        ),
    ];

    let mut payload = Vec::new();
    for id in SetupId::all() {
        let setup = ExperimentSetup::from_id(id);
        ex.line(format!("{id} (cost in BSP trainings; * = success ≥ 99%):"));
        let mut rows = Vec::new();
        for (family, make) in &families {
            let mut row = vec![family.to_string()];
            for attempts in 1..=5 {
                let r = simulate_search_setting(&setup, make(attempts), TRIALS, 0.01, 0xF1616);
                let marker = if r.success_probability >= 0.99 {
                    "*"
                } else {
                    ""
                };
                row.push(format!("{:.2}{}", r.search_cost, marker));
                payload.push(json!({
                    "setup": id.index(),
                    "family": family,
                    "attempts": attempts,
                    "cost": r.search_cost,
                    "success": r.success_probability,
                }));
            }
            rows.push(row);
        }
        ex.table(&["family", "1", "2", "3", "4", "5"], &rows);
        ex.line("");
    }
    ex.line("Paper: cost grows linearly with attempts; recurring jobs are the cheapest family; low-attempt settings lose reliability.");

    ex.json = json!({"points": payload});
    ex
}

#[cfg(test)]
mod tests {
    #[test]
    fn fig16_cost_monotone_in_attempts() {
        let ex = super::run();
        let points = ex.json["points"].as_array().unwrap();
        let cost = |setup: u64, family: &str, attempts: u64| {
            points
                .iter()
                .find(|p| {
                    p["setup"].as_u64() == Some(setup)
                        && p["family"].as_str() == Some(family)
                        && p["attempts"].as_u64() == Some(attempts)
                })
                .unwrap()["cost"]
                .as_f64()
                .unwrap()
        };
        for setup in 1..=3u64 {
            for family in ["bn=n (ground truth)", "recurring", "bn=1"] {
                for a in 1..5u64 {
                    assert!(
                        cost(setup, family, a) < cost(setup, family, a + 1),
                        "cost should grow with attempts ({setup}, {family}, {a})"
                    );
                }
            }
            // Recurring is cheapest at every attempt count.
            for a in 1..=5u64 {
                assert!(cost(setup, "recurring", a) < cost(setup, "bn=n (ground truth)", a));
            }
        }
        // Fig. 16a anchor: setup 1 ground-truth family at 5 attempts ≈ 12.7.
        let c = cost(1, "bn=n (ground truth)", 5);
        assert!((11.0..14.5).contains(&c), "anchor cost {c}");
    }
}
