//! Paper Fig. 14: cross-examination — applying each setup's policy
//! (P1 = 6.25%, P2 = 12.5%, P3 = 50%) to every experiment setup.

use serde_json::json;
use sync_switch_core::SyncSwitchPolicy;
use sync_switch_workloads::{CalibrationTargets, ExperimentSetup, SetupId};

use crate::output::{fmt_min, Exhibit};
use crate::runner::repeat_reports;

/// Runs the exhibit.
pub fn run() -> Exhibit {
    let mut ex = Exhibit::new("fig14", "Cross-examination of Sync-Switch policies");

    let policies: Vec<(String, f64)> = SetupId::all()
        .iter()
        .map(|&id| {
            (
                format!("Policy {}", id.index()),
                CalibrationTargets::for_setup(id).policy_fraction(),
            )
        })
        .collect();

    let mut rows_time = Vec::new();
    let mut rows_acc = Vec::new();
    let mut payload = Vec::new();
    for id in SetupId::all() {
        let setup = ExperimentSetup::from_id(id);
        let mut time_row = vec![id.to_string()];
        let mut acc_row = vec![id.to_string()];
        for (pname, fraction) in &policies {
            let policy = SyncSwitchPolicy::new(*fraction, setup.cluster_size);
            let s = repeat_reports(&setup, &policy, 0xF1614);
            let (time, acc) = if s.all_diverged() {
                ("Fail".to_string(), "Fail".to_string())
            } else {
                (
                    s.mean_completed_time_s().map_or("Fail".into(), fmt_min),
                    format!("{:.3}", s.mean_accuracy().unwrap_or(0.0)),
                )
            };
            time_row.push(time);
            acc_row.push(acc);
            payload.push(json!({
                "setup": id.index(),
                "policy": pname,
                "fraction": fraction,
                "accuracy": if s.all_diverged() { None } else { s.mean_accuracy() },
                "time_s": s.mean_completed_time_s(),
                "diverged": s.all_diverged(),
            }));
        }
        rows_time.push(time_row);
        rows_acc.push(acc_row);
    }

    ex.line("(a) Total training time in minutes (policy × setup):");
    ex.table(&["setup", "Policy 1", "Policy 2", "Policy 3"], &rows_time);
    ex.line("");
    ex.line("(b) Converged accuracy:");
    ex.table(&["setup", "Policy 1", "Policy 2", "Policy 3"], &rows_acc);
    ex.line("");
    ex.line(
        "Paper: wrong policies cost time (P3 on setup 1 ≈ 3× P1's time) or fail \
         outright (P1/P2 on setup 3 diverge); the matched policy is required.",
    );

    ex.json = json!({"grid": payload});
    ex
}

#[cfg(test)]
mod tests {
    #[test]
    fn fig14_cross_effects() {
        let ex = super::run();
        let grid = ex.json["grid"].as_array().unwrap();
        let cell = |setup: u64, policy: &str| {
            grid.iter()
                .find(|c| {
                    c["setup"].as_u64() == Some(setup) && c["policy"].as_str() == Some(policy)
                })
                .unwrap()
        };
        // P1 and P2 on setup 3 diverge (switch before the first decay).
        assert!(cell(3, "Policy 1")["diverged"].as_bool().unwrap());
        assert!(cell(3, "Policy 2")["diverged"].as_bool().unwrap());
        assert!(!cell(3, "Policy 3")["diverged"].as_bool().unwrap());
        // P3 on setup 1 converges fine but costs ~3× P1's time.
        let t_p1 = cell(1, "Policy 1")["time_s"].as_f64().unwrap();
        let t_p3 = cell(1, "Policy 3")["time_s"].as_f64().unwrap();
        assert!((2.2..4.0).contains(&(t_p3 / t_p1)), "ratio {}", t_p3 / t_p1);
        // P2 on setup 1: similar accuracy, longer time (paper: +33%).
        let t_p2 = cell(1, "Policy 2")["time_s"].as_f64().unwrap();
        assert!(
            (1.15..1.6).contains(&(t_p2 / t_p1)),
            "ratio {}",
            t_p2 / t_p1
        );
        let a_p1 = cell(1, "Policy 1")["accuracy"].as_f64().unwrap();
        let a_p2 = cell(1, "Policy 2")["accuracy"].as_f64().unwrap();
        assert!((a_p1 - a_p2).abs() < 0.008);
    }
}
