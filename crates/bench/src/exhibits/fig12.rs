//! Paper Fig. 12: detailed performance of experiment setup 2
//! (ResNet50/CIFAR-100, 8 workers) with switch timings
//! {0, 6.25, 12.5, 25, 50, 100}%.

use sync_switch_workloads::SetupId;

use crate::exhibits::fig11::detail_figure;
use crate::output::Exhibit;

/// Runs the exhibit.
pub fn run() -> Exhibit {
    detail_figure(
        "fig12",
        SetupId::Two,
        &[0.0, 0.0625, 0.125, 0.25, 0.5, 1.0],
        0xF1612,
    )
}

#[cfg(test)]
mod tests {
    #[test]
    fn fig12_shape() {
        let ex = super::run();
        let sweep = ex.json["sweep"].as_array().unwrap();
        let acc_at = |i: usize| sweep[i]["accuracy"].as_f64().unwrap();
        // indices: 0=0%,1=6.25,2=12.5,3=25,4=50,5=100
        // Knee at 12.5%: accuracy there ≈ BSP, 6.25% trails.
        assert!(acc_at(5) - acc_at(2) < 0.012, "12.5% near BSP");
        assert!(acc_at(2) - acc_at(1) > 0.008, "6.25% below knee");
        // ~40% time saving (paper: 39.9%).
        let saving = ex.json["time_saving_vs_bsp"].as_f64().unwrap();
        assert!((0.28..0.55).contains(&saving), "saving {saving}");
    }
}
