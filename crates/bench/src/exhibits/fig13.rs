//! Paper Fig. 13: experiment setup 3 (ResNet32/CIFAR-10, 16 workers) —
//! ASP and every switch timing before the first learning-rate decay (50%)
//! diverge; Sync-Switch at 50% completes with BSP-level accuracy.

use sync_switch_workloads::SetupId;

use crate::exhibits::fig11::detail_figure;
use crate::output::Exhibit;

/// Runs the exhibit.
pub fn run() -> Exhibit {
    detail_figure("fig13", SetupId::Three, &[0.0, 0.25, 0.5, 1.0], 0xF1613)
}

#[cfg(test)]
mod tests {
    #[test]
    fn fig13_divergence_region() {
        let ex = super::run();
        let sweep = ex.json["sweep"].as_array().unwrap();
        // 0% and 25% diverge; 50% and 100% complete.
        assert!(sweep[0]["diverged"].as_bool().unwrap(), "ASP must diverge");
        assert!(sweep[1]["diverged"].as_bool().unwrap(), "25% must diverge");
        assert!(
            !sweep[2]["diverged"].as_bool().unwrap(),
            "50% must complete"
        );
        assert!(
            !sweep[3]["diverged"].as_bool().unwrap(),
            "BSP must complete"
        );
        let acc50 = sweep[2]["accuracy"].as_f64().unwrap();
        let acc100 = sweep[3]["accuracy"].as_f64().unwrap();
        assert!((acc50 - acc100).abs() < 0.01, "SS {acc50} vs BSP {acc100}");
        // ~46% time saving at 50% (paper: 46.4%).
        let saving = ex.json["time_saving_vs_bsp"].as_f64().unwrap();
        assert!((0.36..0.56).contains(&saving), "saving {saving}");
    }
}
