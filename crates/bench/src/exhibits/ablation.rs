//! Ablations of Sync-Switch's design choices (beyond the paper's own
//! exhibits): the parallel configuration actuator, the straggler-detector
//! noise floor, and the detection chunk size.

use serde_json::json;
use sync_switch_cluster::{ActuatorMode, StragglerScenario};
use sync_switch_core::{ClusterManager, OnlinePolicyKind, SimBackend, SyncSwitchPolicy};
use sync_switch_workloads::ExperimentSetup;

use crate::output::Exhibit;

/// Runs the exhibit.
pub fn run() -> Exhibit {
    let mut ex = Exhibit::new("ablation", "Design-choice ablations");
    let setup = ExperimentSetup::one();

    // --- (a) Configuration actuator: parallel vs sequential --------------
    ex.line(
        "(a) Configuration actuator (setup 1, paper policy, greedy under the moderate scenario",
    );
    ex.line("    so multiple switches occur — amplifying the per-switch overhead):");
    let mut rows = Vec::new();
    let mut panel_a = Vec::new();
    for (mode, label) in [
        (ActuatorMode::Parallel, "Parallel (Sync-Switch)"),
        (ActuatorMode::Sequential, "Sequential (baseline)"),
    ] {
        let policy = SyncSwitchPolicy::paper_policy(&setup).with_online(OnlinePolicyKind::Greedy);
        let mut backend = SimBackend::with_actuator(&setup, 0xAB7A, mode)
            .with_scenario(StragglerScenario::moderate(60.0, 150.0));
        let r = ClusterManager::new(policy)
            .run(&mut backend, &setup)
            .expect("valid policy");
        let per_switch = r.total_switch_overhead_s() / r.switches.len().max(1) as f64;
        rows.push(vec![
            label.to_string(),
            format!("{}", r.switches.len()),
            format!("{:.0}", r.total_switch_overhead_s()),
            format!("{per_switch:.0}"),
            format!("{:.1}", r.total_time_s / 60.0),
        ]);
        panel_a.push(json!({
            "actuator": label,
            "switches": r.switches.len(),
            "switch_overhead_s": r.total_switch_overhead_s(),
            "per_switch_s": per_switch,
            "total_time_s": r.total_time_s,
        }));
    }
    ex.table(
        &[
            "actuator",
            "switches",
            "overhead (s)",
            "per switch (s)",
            "total (min)",
        ],
        &rows,
    );

    // --- (b) Detector noise floor -----------------------------------------
    ex.line("");
    ex.line("(b) Straggler-detector minimum relative gap (elastic policy, *no* stragglers —");
    ex.line("    a healthy cluster should never trigger evictions):");
    let mut rows = Vec::new();
    let mut panel_b = Vec::new();
    for gap in [0.0, 0.05, 0.10] {
        let mut policy =
            SyncSwitchPolicy::paper_policy(&setup).with_online(OnlinePolicyKind::Elastic);
        policy.detector_min_gap = gap;
        let mut backend = SimBackend::new(&setup, 0xAB7B);
        let r = ClusterManager::new(policy)
            .run(&mut backend, &setup)
            .expect("valid policy");
        rows.push(vec![
            format!("{:.0}%", gap * 100.0),
            format!("{}", r.removed_workers.len()),
            format!("{:.3}", r.converged_accuracy.unwrap_or(0.0)),
            format!("{:.1}", r.total_time_s / 60.0),
        ]);
        panel_b.push(json!({
            "min_gap": gap,
            "false_evictions": r.removed_workers.len(),
            "accuracy": r.converged_accuracy,
            "total_time_s": r.total_time_s,
        }));
    }
    ex.table(
        &["min gap", "false evictions", "accuracy", "total (min)"],
        &rows,
    );

    // --- (c) Detection chunk size -----------------------------------------
    ex.line("");
    ex.line("(c) Detection chunk size (elastic policy, mild scenario): smaller chunks react");
    ex.line("    faster but sample noisier throughput:");
    let mut rows = Vec::new();
    let mut panel_c = Vec::new();
    for chunk in [16u64, 64, 256] {
        let mut policy =
            SyncSwitchPolicy::paper_policy(&setup).with_online(OnlinePolicyKind::Elastic);
        policy.detect_chunk = chunk;
        let mut backend =
            SimBackend::new(&setup, 0xAB7C).with_scenario(StragglerScenario::mild(150.0));
        let r = ClusterManager::new(policy)
            .run(&mut backend, &setup)
            .expect("valid policy");
        let detection_step = r.removed_workers.first().map(|&(s, _)| s);
        rows.push(vec![
            chunk.to_string(),
            detection_step.map_or("none".into(), |s| s.to_string()),
            format!("{}", r.removed_workers.len()),
            format!("{:.1}", r.total_time_s / 60.0),
        ]);
        panel_c.push(json!({
            "detect_chunk": chunk,
            "eviction_step": detection_step,
            "evictions": r.removed_workers.len(),
            "total_time_s": r.total_time_s,
        }));
    }
    ex.table(
        &[
            "chunk (units)",
            "eviction at step",
            "evictions",
            "total (min)",
        ],
        &rows,
    );

    ex.json = json!({"actuator": panel_a, "detector_gap": panel_b, "detect_chunk": panel_c});
    ex
}

#[cfg(test)]
mod tests {
    #[test]
    fn ablation_directions() {
        let ex = super::run();

        // (a) Sequential actuator pays more per switch (Table III: 90 vs
        // 36 s at 8 nodes). Switch *counts* differ between runs because the
        // overhead changes how episodes overlap detours.
        let a = ex.json["actuator"].as_array().unwrap();
        let par = a[0]["per_switch_s"].as_f64().unwrap();
        let seq = a[1]["per_switch_s"].as_f64().unwrap();
        assert!(
            seq > 1.8 * par,
            "sequential {seq} vs parallel {par} per switch"
        );

        // (b) With the 10% floor a healthy cluster has zero false
        // evictions; the raw mean−σ rule (gap 0) evicts spuriously.
        let b = ex.json["detector_gap"].as_array().unwrap();
        let raw = b[0]["false_evictions"].as_u64().unwrap();
        let floored = b[2]["false_evictions"].as_u64().unwrap();
        assert_eq!(floored, 0, "10% floor must not evict a healthy cluster");
        assert!(raw > 0, "raw rule should false-positive (that's the point)");

        // (c) The straggler is caught at every chunk size; detection step
        // grows with chunk size.
        let c = ex.json["detect_chunk"].as_array().unwrap();
        for cell in c {
            assert!(cell["evictions"].as_u64().unwrap() >= 1);
        }
        let s16 = c[0]["eviction_step"].as_u64().unwrap();
        let s256 = c[2]["eviction_step"].as_u64().unwrap();
        assert!(s16 <= s256, "finer chunks react no later: {s16} vs {s256}");
    }
}
