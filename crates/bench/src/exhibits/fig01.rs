//! Paper Fig. 1 (conceptual): where each synchronization approach sits in
//! the training-throughput × converged-accuracy plane — ASP fast but
//! inaccurate, BSP accurate but slow, SSP/DSSP trading between them, and
//! Sync-Switch reaching both.
//!
//! The paper draws this as a sketch; here every point is *measured* on the
//! simulation substrates, including an SSP run (staleness bound 3) to fill
//! in the semi-synchronous middle ground.

use serde_json::json;
use sync_switch_cluster::{ClusterSim, StragglerScenario};
use sync_switch_convergence::{PhaseInput, TrajectoryModel};
use sync_switch_core::SyncSwitchPolicy;
use sync_switch_workloads::ExperimentSetup;

use crate::output::Exhibit;
use crate::runner::run_report_with_scenario;

/// SSP staleness bound used for the middle-ground point.
const SSP_BOUND: u64 = 3;

/// The frontier is measured under a persistent mild straggler (1 worker,
/// +10 ms): heterogeneity is exactly the regime where BSP, SSP, and ASP
/// separate (on a perfectly homogeneous cluster SSP's bound never binds
/// and it degenerates to ASP).
fn scenario() -> StragglerScenario {
    StragglerScenario::constant(1, 0.010)
}

/// Measures SSP end-to-end: throughput from the cluster simulator (gated
/// by the straggler through the bound), accuracy from the trajectory
/// surrogate fed with SSP's *iteration-bounded* effective staleness — the
/// gate guarantees parameters are never more than `bound` iterations old,
/// which is the quantity that drives stale-gradient damage.
fn ssp_point(setup: &ExperimentSetup, seed: u64) -> (f64, f64) {
    let batch = setup.workload.hyper.batch_size;
    let total = setup.workload.hyper.total_steps;
    let mut sim = ClusterSim::new(setup, seed);
    sim.set_scenario(scenario());
    let stats = sim.run_ssp(total, SSP_BOUND);
    let throughput = stats.cluster_images_per_sec(batch);
    let effective_staleness = stats.mean_staleness.min(SSP_BOUND as f64);

    let mut accs = Vec::new();
    for run in 0..5u64 {
        let mut t = TrajectoryModel::new(setup, seed + run * 31);
        while t.step() < total {
            let steps = 2_000.min(total - t.step());
            t.advance(steps, &PhaseInput::asp(effective_staleness));
        }
        accs.push(t.current_ceiling());
    }
    (throughput, accs.iter().sum::<f64>() / accs.len() as f64)
}

/// Runs the exhibit.
pub fn run() -> Exhibit {
    let mut ex = Exhibit::new(
        "fig1",
        "Throughput vs converged accuracy (measured version of the paper's sketch)",
    );
    let setup = ExperimentSetup::one();
    let batch = setup.workload.hyper.batch_size;

    let measure = |policy: SyncSwitchPolicy| -> (f64, f64) {
        let reports: Vec<_> = (0..5u64)
            .map(|i| run_report_with_scenario(&setup, &policy, scenario(), 0xF1601 + i * 7919))
            .collect();
        let thr: Vec<f64> = reports
            .iter()
            .filter(|r| r.completed())
            .map(|r| r.throughput_images_per_sec(batch))
            .collect();
        let accs: Vec<f64> = reports
            .iter()
            .filter_map(|r| r.converged_accuracy)
            .collect();
        (
            thr.iter().sum::<f64>() / thr.len() as f64,
            accs.iter().sum::<f64>() / accs.len() as f64,
        )
    };

    let bsp = measure(SyncSwitchPolicy::static_bsp(8));
    let asp = measure(SyncSwitchPolicy::static_asp(8));
    let ss = measure(SyncSwitchPolicy::paper_policy(&setup));
    let ssp = ssp_point(&setup, 0xF1601);

    let rows = vec![
        ("BSP", bsp),
        (&*format!("SSP (s={SSP_BOUND})"), ssp),
        ("ASP", asp),
        ("Sync-Switch (ours)", ss),
    ]
    .into_iter()
    .map(|(name, (thr, acc))| vec![name.to_string(), format!("{thr:.0}"), format!("{acc:.3}")])
    .collect::<Vec<_>>();
    ex.table(&["approach", "throughput (img/s)", "accuracy"], &rows);
    ex.line("");
    ex.line(
        "Paper Fig. 1: prior protocols trade throughput against accuracy along a \
         frontier; Sync-Switch escapes it — near-ASP throughput at BSP-level accuracy.",
    );

    ex.json = json!({
        "points": [
            {"approach": "BSP", "throughput": bsp.0, "accuracy": bsp.1},
            {"approach": "SSP", "bound": SSP_BOUND, "throughput": ssp.0, "accuracy": ssp.1},
            {"approach": "ASP", "throughput": asp.0, "accuracy": asp.1},
            {"approach": "Sync-Switch", "throughput": ss.0, "accuracy": ss.1},
        ],
    });
    ex
}

#[cfg(test)]
mod tests {
    #[test]
    fn fig1_frontier_shape() {
        let ex = super::run();
        let pts = ex.json["points"].as_array().unwrap();
        let get = |name: &str| {
            let p = pts
                .iter()
                .find(|p| p["approach"].as_str() == Some(name))
                .unwrap();
            (
                p["throughput"].as_f64().unwrap(),
                p["accuracy"].as_f64().unwrap(),
            )
        };
        let bsp = get("BSP");
        let ssp = get("SSP");
        let asp = get("ASP");
        let ss = get("Sync-Switch");
        // Throughput ordering along the frontier: BSP < SSP < ASP.
        assert!(bsp.0 < ssp.0 && ssp.0 < asp.0, "{bsp:?} {ssp:?} {asp:?}");
        // Accuracy ordering: ASP < SSP < BSP.
        assert!(asp.1 < ssp.1 && ssp.1 < bsp.1, "{bsp:?} {ssp:?} {asp:?}");
        // Sync-Switch escapes the frontier: ≥ SSP throughput at ≈BSP accuracy.
        assert!(ss.0 > ssp.0, "SS throughput {} vs SSP {}", ss.0, ssp.0);
        assert!(bsp.1 - ss.1 < 0.01, "SS accuracy {} vs BSP {}", ss.1, bsp.1);
    }
}
