//! Exhibit formatting and persistence.

use std::fmt::Write as _;
use std::fs;
use std::path::Path;

/// One regenerated paper exhibit (a figure or table).
#[derive(Debug, Clone)]
pub struct Exhibit {
    /// Identifier, e.g. `"fig11"` or `"table2"`.
    pub id: String,
    /// Human title matching the paper caption.
    pub title: String,
    /// Rendered text (what gets printed).
    pub text: String,
    /// Machine-readable payload (what gets written to `results/`).
    pub json: serde_json::Value,
}

impl Exhibit {
    /// Creates an exhibit.
    pub fn new(id: &str, title: &str) -> Self {
        Exhibit {
            id: id.to_string(),
            title: title.to_string(),
            text: String::new(),
            json: serde_json::Value::Null,
        }
    }

    /// Appends one line to the rendered text.
    pub fn line(&mut self, s: impl AsRef<str>) {
        self.text.push_str(s.as_ref());
        self.text.push('\n');
    }

    /// Appends a formatted table from a header and rows.
    pub fn table(&mut self, header: &[&str], rows: &[Vec<String>]) {
        let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
        for row in rows {
            for (i, cell) in row.iter().enumerate() {
                if i < widths.len() {
                    widths[i] = widths[i].max(cell.len());
                }
            }
        }
        let mut line = String::new();
        for (h, w) in header.iter().zip(&widths) {
            let _ = write!(line, "{h:>w$}  ", w = w);
        }
        self.line(line.trim_end());
        let total: usize = widths.iter().sum::<usize>() + 2 * widths.len();
        self.line("-".repeat(total.min(120)));
        for row in rows {
            let mut line = String::new();
            for (cell, w) in row.iter().zip(&widths) {
                let _ = write!(line, "{cell:>w$}  ", w = w);
            }
            self.line(line.trim_end());
        }
    }

    /// Prints the exhibit to stdout.
    pub fn print(&self) {
        println!("\n=== {} — {} ===", self.id, self.title);
        println!("{}", self.text);
    }

    /// Writes the JSON payload to `dir/<id>.json`.
    ///
    /// # Errors
    ///
    /// Returns any I/O error from creating the directory or writing.
    pub fn save(&self, dir: &Path) -> std::io::Result<()> {
        fs::create_dir_all(dir)?;
        let path = dir.join(format!("{}.json", self.id));
        fs::write(path, serde_json::to_string_pretty(&self.json).expect("serializable"))
    }
}

/// Formats a float with 3 decimals, or a marker for missing values.
pub fn fmt_acc(v: Option<f64>) -> String {
    match v {
        Some(x) => format!("{x:.3}"),
        None => "Fail".to_string(),
    }
}

/// Formats seconds as minutes with one decimal.
pub fn fmt_min(secs: f64) -> String {
    format!("{:.1}", secs / 60.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut e = Exhibit::new("t", "test");
        e.table(
            &["name", "value"],
            &[
                vec!["a".into(), "1.0".into()],
                vec!["longer".into(), "2.25".into()],
            ],
        );
        assert!(e.text.contains("name"));
        assert!(e.text.contains("longer"));
        let lines: Vec<&str> = e.text.lines().collect();
        assert_eq!(lines.len(), 4);
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(fmt_acc(Some(0.9191)), "0.919");
        assert_eq!(fmt_acc(None), "Fail");
        assert_eq!(fmt_min(90.0), "1.5");
    }

    #[test]
    fn save_writes_json() {
        let mut e = Exhibit::new("unit_test_exhibit", "test");
        e.json = serde_json::json!({"x": 1});
        let dir = std::env::temp_dir().join("ss-bench-test");
        e.save(&dir).unwrap();
        let content = std::fs::read_to_string(dir.join("unit_test_exhibit.json")).unwrap();
        assert!(content.contains("\"x\": 1"));
    }
}
