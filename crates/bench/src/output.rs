//! Exhibit formatting and persistence.

use std::fmt::Write as _;
use std::fs;
use std::path::Path;

/// One regenerated paper exhibit (a figure or table).
#[derive(Debug, Clone)]
pub struct Exhibit {
    /// Identifier, e.g. `"fig11"` or `"table2"`.
    pub id: String,
    /// Human title matching the paper caption.
    pub title: String,
    /// Rendered text (what gets printed).
    pub text: String,
    /// Machine-readable payload (what gets written to `results/`).
    pub json: serde_json::Value,
}

impl Exhibit {
    /// Creates an exhibit.
    pub fn new(id: &str, title: &str) -> Self {
        Exhibit {
            id: id.to_string(),
            title: title.to_string(),
            text: String::new(),
            json: serde_json::Value::Null,
        }
    }

    /// Appends one line to the rendered text.
    pub fn line(&mut self, s: impl AsRef<str>) {
        self.text.push_str(s.as_ref());
        self.text.push('\n');
    }

    /// Appends a formatted table from a header and rows.
    pub fn table(&mut self, header: &[&str], rows: &[Vec<String>]) {
        let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
        for row in rows {
            for (i, cell) in row.iter().enumerate() {
                if i < widths.len() {
                    widths[i] = widths[i].max(cell.len());
                }
            }
        }
        let mut line = String::new();
        for (h, w) in header.iter().zip(&widths) {
            let _ = write!(line, "{h:>w$}  ", w = w);
        }
        self.line(line.trim_end());
        let total: usize = widths.iter().sum::<usize>() + 2 * widths.len();
        self.line("-".repeat(total.min(120)));
        for row in rows {
            let mut line = String::new();
            for (cell, w) in row.iter().zip(&widths) {
                let _ = write!(line, "{cell:>w$}  ", w = w);
            }
            self.line(line.trim_end());
        }
    }

    /// Prints the exhibit to stdout.
    pub fn print(&self) {
        println!("\n=== {} — {} ===", self.id, self.title);
        println!("{}", self.text);
    }

    /// Writes the JSON payload to `dir/<id>.json`.
    ///
    /// # Errors
    ///
    /// Returns any I/O error from creating the directory or writing.
    pub fn save(&self, dir: &Path) -> std::io::Result<()> {
        fs::create_dir_all(dir)?;
        let path = dir.join(format!("{}.json", self.id));
        self.save_at(&path)
    }

    /// Writes the JSON payload to an exact file path, creating parent
    /// directories as needed (benchmarks that persist machine-readable
    /// results at a fixed location, e.g. `BENCH_ps_throughput.json`).
    ///
    /// # Errors
    ///
    /// Returns any I/O error from creating the directories or writing.
    pub fn save_at(&self, path: &Path) -> std::io::Result<()> {
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                fs::create_dir_all(parent)?;
            }
        }
        fs::write(
            path,
            serde_json::to_string_pretty(&self.json).expect("serializable"),
        )
    }
}

/// Reads a JSON file back into a [`serde_json::Value`], mapping parse
/// failures to [`std::io::ErrorKind::InvalidData`] — the validation half of
/// the machine-readable bench outputs.
///
/// # Errors
///
/// Returns the read error, or `InvalidData` when the contents do not parse.
pub fn load_json(path: &Path) -> std::io::Result<serde_json::Value> {
    let text = fs::read_to_string(path)?;
    serde_json::from_str(&text).map_err(|e| {
        std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            format!("{}: malformed JSON: {e:?}", path.display()),
        )
    })
}

/// Formats a float with 3 decimals, or a marker for missing values.
pub fn fmt_acc(v: Option<f64>) -> String {
    match v {
        Some(x) => format!("{x:.3}"),
        None => "Fail".to_string(),
    }
}

/// Formats seconds as minutes with one decimal.
pub fn fmt_min(secs: f64) -> String {
    format!("{:.1}", secs / 60.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut e = Exhibit::new("t", "test");
        e.table(
            &["name", "value"],
            &[
                vec!["a".into(), "1.0".into()],
                vec!["longer".into(), "2.25".into()],
            ],
        );
        assert!(e.text.contains("name"));
        assert!(e.text.contains("longer"));
        let lines: Vec<&str> = e.text.lines().collect();
        assert_eq!(lines.len(), 4);
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(fmt_acc(Some(0.9191)), "0.919");
        assert_eq!(fmt_acc(None), "Fail");
        assert_eq!(fmt_min(90.0), "1.5");
    }

    #[test]
    fn save_writes_json() {
        let mut e = Exhibit::new("unit_test_exhibit", "test");
        e.json = serde_json::json!({"x": 1});
        let dir = std::env::temp_dir().join("ss-bench-test");
        e.save(&dir).unwrap();
        let content = std::fs::read_to_string(dir.join("unit_test_exhibit.json")).unwrap();
        assert!(content.contains("\"x\": 1"));
    }

    #[test]
    fn save_at_and_load_json_round_trip() {
        let mut e = Exhibit::new("unit_test_save_at", "test");
        e.json = serde_json::json!({"sweep": [{"workers": 4}]});
        let path = std::env::temp_dir()
            .join("ss-bench-test-at")
            .join("BENCH_unit.json");
        e.save_at(&path).unwrap();
        let v = load_json(&path).unwrap();
        let sweep = v.get("sweep").and_then(|s| s.as_array()).unwrap();
        assert_eq!(sweep[0].get("workers").and_then(|w| w.as_u64()), Some(4));
    }

    #[test]
    fn load_json_rejects_malformed() {
        let path = std::env::temp_dir().join("ss-bench-malformed.json");
        std::fs::write(&path, "{not json").unwrap();
        let err = load_json(&path).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
        assert!(load_json(Path::new("/nonexistent/nope.json")).is_err());
    }
}
