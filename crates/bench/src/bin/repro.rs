//! Regenerates the Sync-Switch paper's tables and figures.
//!
//! ```text
//! repro all            # every exhibit
//! repro fig11 table2   # specific exhibits
//! repro --list         # available ids
//! ```
//!
//! Rendered text goes to stdout; JSON payloads are written to `results/`.

use std::path::PathBuf;
use std::process::ExitCode;

use sync_switch_bench::exhibits;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() || args.iter().any(|a| a == "--help" || a == "-h") {
        eprintln!("usage: repro [--list] [--out DIR] <exhibit id | all>...");
        eprintln!("exhibits: {}", exhibits::all_ids().join(", "));
        return ExitCode::from(2);
    }
    if args.iter().any(|a| a == "--list") {
        for id in exhibits::all_ids() {
            println!("{id}");
        }
        return ExitCode::SUCCESS;
    }

    let mut out_dir = PathBuf::from("results");
    let mut ids: Vec<String> = Vec::new();
    let mut iter = args.into_iter();
    while let Some(arg) = iter.next() {
        if arg == "--out" {
            match iter.next() {
                Some(dir) => out_dir = PathBuf::from(dir),
                None => {
                    eprintln!("--out requires a directory");
                    return ExitCode::from(2);
                }
            }
        } else {
            ids.push(arg);
        }
    }
    if ids.iter().any(|i| i == "all") {
        ids = exhibits::all_ids().iter().map(|s| s.to_string()).collect();
    }
    for id in &ids {
        if !exhibits::all_ids().contains(&id.as_str()) {
            eprintln!("unknown exhibit '{id}'; use --list");
            return ExitCode::from(2);
        }
    }

    for id in &ids {
        let started = std::time::Instant::now();
        let exhibit = exhibits::run(id);
        exhibit.print();
        if let Err(e) = exhibit.save(&out_dir) {
            eprintln!("warning: could not save {id}: {e}");
        }
        eprintln!(
            "[{id} regenerated in {:.1}s]",
            started.elapsed().as_secs_f64()
        );
    }
    ExitCode::SUCCESS
}
