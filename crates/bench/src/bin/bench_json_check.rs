//! CI gate for machine-readable bench output: validates that a
//! `BENCH_ps_throughput.json` exists, parses, and carries a well-formed
//! headline + sweep. Exits non-zero on any violation so `ci.sh` fails when
//! the perf trajectory stops being recorded.
//!
//! With `--baseline` it additionally compares the sweep against a committed
//! baseline file and flags configurations whose throughput regressed beyond
//! the tolerance:
//!
//! ```text
//! bench_json_check [path]
//! bench_json_check [path] --baseline BENCH_ps_throughput.json \
//!     [--tolerance-pct 25] [--report-only]
//! ```
//!
//! `--report-only` downgrades regressions to warnings (exit 0) — the mode
//! `ci.sh` uses so noisy boxes do not break the gate while the trajectory
//! is still surfaced in the log.

use std::collections::BTreeMap;
use std::path::Path;
use std::process::exit;

use serde_json::Value;
use sync_switch_bench::output::load_json;

struct Options {
    path: String,
    baseline: Option<String>,
    tolerance_pct: f64,
    report_only: bool,
}

fn parse_args() -> Result<Options, String> {
    let mut opts = Options {
        path: "BENCH_ps_throughput.json".to_string(),
        baseline: None,
        tolerance_pct: 25.0,
        report_only: false,
    };
    let mut args = std::env::args().skip(1);
    let mut saw_path = false;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--baseline" => {
                opts.baseline = Some(args.next().ok_or("--baseline requires a file")?);
            }
            "--tolerance-pct" => {
                let raw = args.next().ok_or("--tolerance-pct requires a number")?;
                opts.tolerance_pct = raw
                    .parse::<f64>()
                    .map_err(|_| format!("bad tolerance: {raw}"))?;
                if !(opts.tolerance_pct.is_finite() && opts.tolerance_pct >= 0.0) {
                    return Err(format!("tolerance must be non-negative: {raw}"));
                }
            }
            "--report-only" => opts.report_only = true,
            other if !other.starts_with("--") && !saw_path => {
                opts.path = other.to_string();
                saw_path = true;
            }
            other => return Err(format!("unknown argument: {other}")),
        }
    }
    Ok(opts)
}

fn main() {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(e) => {
            eprintln!("usage error: {e}");
            eprintln!(
                "usage: bench_json_check [path] [--baseline FILE] \
                 [--tolerance-pct N] [--report-only]"
            );
            exit(2);
        }
    };
    let current = match validate(Path::new(&opts.path)) {
        Ok((v, headline, points)) => {
            println!(
                "{}: ok ({headline} headline entries, {points} sweep points)",
                opts.path
            );
            v
        }
        Err(e) => {
            eprintln!("{}: {e}", opts.path);
            exit(1);
        }
    };
    let Some(baseline_path) = &opts.baseline else {
        return;
    };
    let baseline = match load_json(Path::new(baseline_path)) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("{baseline_path}: {e}");
            exit(1);
        }
    };
    let regressions = compare_sweeps(&baseline, &current, opts.tolerance_pct);
    match regressions {
        Ok(0) => {}
        Ok(n) if opts.report_only => {
            eprintln!(
                "warning: {n} configuration(s) regressed beyond {}% vs {baseline_path} \
                 (report-only mode, not failing)",
                opts.tolerance_pct
            );
        }
        Ok(n) => {
            eprintln!(
                "{n} configuration(s) regressed beyond {}% vs {baseline_path}",
                opts.tolerance_pct
            );
            exit(1);
        }
        Err(e) => {
            eprintln!("baseline comparison failed: {e}");
            exit(1);
        }
    }
}

/// A sweep point's identity: everything but the measurements. Baselines
/// recorded before the multi-server axis existed default to 1 server, and
/// baselines recorded before the transport axis default to in-process.
fn sweep_key(point: &Value) -> Option<String> {
    let protocol = point.get("protocol")?.as_str()?;
    let workers = point.get("workers")?.as_u64()?;
    let shards = point.get("shards")?.as_u64()?;
    let servers = point.get("servers").and_then(Value::as_u64).unwrap_or(1);
    let transport = point
        .get("transport")
        .and_then(Value::as_str)
        .unwrap_or("inprocess");
    Some(format!(
        "{protocol} workers={workers} shards={shards} servers={servers} transport={transport}"
    ))
}

fn sweep_throughputs(v: &Value) -> Result<BTreeMap<String, f64>, String> {
    let sweep = v
        .get("sweep")
        .and_then(Value::as_array)
        .ok_or("missing \"sweep\" array")?;
    let mut out = BTreeMap::new();
    for (i, point) in sweep.iter().enumerate() {
        let key = sweep_key(point).ok_or(format!("sweep[{i}]: malformed key fields"))?;
        let sps = positive_f64(point, "steps_per_sec").map_err(|e| format!("sweep[{i}]: {e}"))?;
        out.insert(key, sps);
    }
    Ok(out)
}

/// Compares every configuration present in both sweeps; returns how many
/// regressed (current throughput below baseline by more than the
/// tolerance). Configurations unique to either side are reported but never
/// counted — axes are allowed to grow.
fn compare_sweeps(baseline: &Value, current: &Value, tolerance_pct: f64) -> Result<usize, String> {
    let base = sweep_throughputs(baseline)?;
    let cur = sweep_throughputs(current)?;
    let mut compared = 0usize;
    let mut regressions = 0usize;
    for (key, &base_sps) in &base {
        let Some(&cur_sps) = cur.get(key) else {
            println!("  [baseline-only] {key}: not in current sweep");
            continue;
        };
        compared += 1;
        let floor = base_sps * (1.0 - tolerance_pct / 100.0);
        if cur_sps < floor {
            regressions += 1;
            println!(
                "  [REGRESSION] {key}: {cur_sps:.0} steps/s vs baseline {base_sps:.0} \
                 (floor {floor:.0})"
            );
        }
    }
    for key in cur.keys() {
        if !base.contains_key(key) {
            println!("  [new] {key}: not in baseline, skipped");
        }
    }
    println!(
        "baseline check: {compared} configuration(s) compared, {regressions} regression(s) \
         at {tolerance_pct}% tolerance"
    );
    Ok(regressions)
}

fn validate(path: &Path) -> Result<(Value, usize, usize), String> {
    let v = load_json(path).map_err(|e| e.to_string())?;
    let headline = v
        .get("headline")
        .and_then(Value::as_array)
        .ok_or("missing \"headline\" array")?;
    if headline.is_empty() {
        return Err("empty \"headline\" array".into());
    }
    for (i, entry) in headline.iter().enumerate() {
        entry
            .get("name")
            .and_then(Value::as_str)
            .ok_or(format!("headline[{i}]: missing \"name\""))?;
        positive_f64(entry, "steps_per_sec").map_err(|e| format!("headline[{i}]: {e}"))?;
    }
    let sweep = v
        .get("sweep")
        .and_then(Value::as_array)
        .ok_or("missing \"sweep\" array")?;
    if sweep.is_empty() {
        return Err("empty \"sweep\" array".into());
    }
    for (i, point) in sweep.iter().enumerate() {
        for key in ["workers", "shards", "steps"] {
            let n = point
                .get(key)
                .and_then(Value::as_u64)
                .ok_or(format!("sweep[{i}]: missing \"{key}\""))?;
            if n == 0 {
                return Err(format!("sweep[{i}]: \"{key}\" is zero"));
            }
        }
        // The servers axis arrived with the multi-server data plane; older
        // artifacts without it are treated as single-server, but when
        // present it must be a positive integer.
        if let Some(servers) = point.get("servers") {
            if servers.as_u64().is_none_or(|n| n == 0) {
                return Err(format!("sweep[{i}]: \"servers\" is not a positive integer"));
            }
        }
        // Same for the transport axis: optional for back-compat, but when
        // present it must be a known backend name.
        if let Some(transport) = point.get("transport") {
            let known = transport
                .as_str()
                .is_some_and(|t| ["inprocess", "channel", "tcp"].contains(&t));
            if !known {
                return Err(format!("sweep[{i}]: \"transport\" is not a known backend"));
            }
        }
        positive_f64(point, "steps_per_sec").map_err(|e| format!("sweep[{i}]: {e}"))?;
    }
    // The dedicated transport-axis entries (headline shape, every backend):
    // optional for older artifacts, shape-checked when present.
    if let Some(transport) = v.get("transport") {
        let entries = transport
            .as_array()
            .ok_or("\"transport\" is not an array")?;
        for (i, entry) in entries.iter().enumerate() {
            entry
                .get("name")
                .and_then(Value::as_str)
                .ok_or(format!("transport[{i}]: missing \"name\""))?;
            let known = entry
                .get("transport")
                .and_then(Value::as_str)
                .is_some_and(|t| ["inprocess", "channel", "tcp"].contains(&t));
            if !known {
                return Err(format!("transport[{i}]: missing/unknown \"transport\""));
            }
            positive_f64(entry, "steps_per_sec").map_err(|e| format!("transport[{i}]: {e}"))?;
            // The retry machinery must be free on the clean loopback
            // network the bench runs on: any nonzero count means spurious
            // timeouts or reconnects are eating into the headline numbers.
            for key in ["wire_retries", "wire_reconnects"] {
                if let Some(raw) = entry.get(key) {
                    let n = raw
                        .as_u64()
                        .ok_or(format!("transport[{i}]: \"{key}\" is not an integer"))?;
                    if n != 0 {
                        return Err(format!(
                            "transport[{i}]: \"{key}\" = {n} on a fault-free bench run"
                        ));
                    }
                }
            }
        }
    }
    // The sparse-vs-dense pair (sparse-embedding workload, channel tier):
    // optional for older artifacts. When present, each entry must be
    // well-formed, and if both modes are recorded the sparse push volume
    // must actually undercut the dense one — the structural property the
    // sparse push path exists for, gated here so a regression that quietly
    // ships dense payloads cannot keep emitting a green-looking JSON.
    if let Some(sparse) = v.get("sparse") {
        let entries = sparse.as_array().ok_or("\"sparse\" is not an array")?;
        let mut bytes_by_mode: BTreeMap<String, f64> = BTreeMap::new();
        for (i, entry) in entries.iter().enumerate() {
            entry
                .get("name")
                .and_then(Value::as_str)
                .ok_or(format!("sparse[{i}]: missing \"name\""))?;
            let mode = entry
                .get("mode")
                .and_then(Value::as_str)
                .filter(|m| ["sparse", "dense"].contains(m))
                .ok_or(format!("sparse[{i}]: missing/unknown \"mode\""))?;
            positive_f64(entry, "steps_per_sec").map_err(|e| format!("sparse[{i}]: {e}"))?;
            let bytes = positive_f64(entry, "wire_push_bytes_out")
                .map_err(|e| format!("sparse[{i}]: {e}"))?;
            bytes_by_mode.insert(mode.to_string(), bytes);
        }
        if let (Some(&s), Some(&d)) = (bytes_by_mode.get("sparse"), bytes_by_mode.get("dense")) {
            if s >= d {
                return Err(format!(
                    "sparse pushes moved {s} bytes, not below the dense {d} — the sparse path \
                     is not saving wire volume"
                ));
            }
        }
    }
    // The telemetry on/off pair: optional for older artifacts. When both
    // arms are recorded, the on-arm mean must stay within 5% of the
    // off-arm — the bus is a handful of relaxed atomics per step and is on
    // by default, so measurable overhead is a regression, gated hard here.
    if let Some(telemetry) = v.get("telemetry") {
        let entries = telemetry
            .as_array()
            .ok_or("\"telemetry\" is not an array")?;
        let mut mean_by_mode: BTreeMap<String, f64> = BTreeMap::new();
        let mut min_by_mode: BTreeMap<String, f64> = BTreeMap::new();
        let mut paired_pct: Option<f64> = None;
        for (i, entry) in entries.iter().enumerate() {
            entry
                .get("name")
                .and_then(Value::as_str)
                .ok_or(format!("telemetry[{i}]: missing \"name\""))?;
            let mode = entry
                .get("mode")
                .and_then(Value::as_str)
                .filter(|m| ["on", "off"].contains(m))
                .ok_or(format!("telemetry[{i}]: missing/unknown \"mode\""))?;
            let mean =
                positive_f64(entry, "mean_us").map_err(|e| format!("telemetry[{i}]: {e}"))?;
            positive_f64(entry, "steps_per_sec").map_err(|e| format!("telemetry[{i}]: {e}"))?;
            if let Some(min) = entry.get("min_us") {
                let min = min
                    .as_f64()
                    .filter(|m| m.is_finite() && *m > 0.0)
                    .ok_or(format!("telemetry[{i}]: \"min_us\" is not positive/finite"))?;
                min_by_mode.insert(mode.to_string(), min);
            }
            if let Some(raw) = entry.get("paired_median_overhead_pct") {
                let pct = raw.as_f64().filter(|p| p.is_finite()).ok_or(format!(
                    "telemetry[{i}]: \"paired_median_overhead_pct\" is not a finite number"
                ))?;
                paired_pct = Some(pct);
            }
            mean_by_mode.insert(mode.to_string(), mean);
        }
        if let (Some(&on), Some(&off)) = (mean_by_mode.get("on"), mean_by_mode.get("off")) {
            let mean_pct = (on / off - 1.0) * 100.0;
            let min_pct = match (min_by_mode.get("on"), min_by_mode.get("off")) {
                (Some(&on_min), Some(&off_min)) => Some((on_min / off_min - 1.0) * 100.0),
                _ => None,
            };
            // Real recording cost is deterministic per step, so it shows up
            // in *every* robust statistic at once; scheduler noise on a
            // shared box (A/A runs of this bench swing individual statistics
            // by ±15%) rarely inflates two independent ones in the same
            // run. The gate therefore fails only when BOTH the paired
            // per-pair median (drift-cancelling) and the best-case min
            // ratio (noise only ever adds time) exceed the budget — i.e.
            // the overhead claim is corroborated. Artifacts from older runs
            // without those fields fall back to the raw mean comparison.
            let overhead_pct = match (paired_pct, min_pct) {
                (Some(p), Some(m)) => p.min(m),
                (Some(p), None) => p,
                (None, Some(m)) => m,
                (None, None) => mean_pct,
            };
            println!(
                "telemetry overhead: paired median {}, min ratio {}, arm means on {on:.2} µs \
                 vs off {off:.2} µs ({mean_pct:+.2}%)",
                paired_pct.map_or("n/a".to_string(), |p| format!("{p:+.2}%")),
                min_pct.map_or("n/a".to_string(), |m| format!("{m:+.2}%")),
            );
            if overhead_pct > 5.0 {
                return Err(format!(
                    "telemetry-on overhead {overhead_pct:.2}% exceeds the 5% budget \
                     (on {on:.2} µs vs off {off:.2} µs) — the bus is no longer cheap \
                     enough to leave on by default"
                ));
            }
        }
    }
    let counts = (headline.len(), sweep.len());
    Ok((v, counts.0, counts.1))
}

fn positive_f64(entry: &Value, key: &str) -> Result<f64, String> {
    let x = entry
        .get(key)
        .and_then(Value::as_f64)
        .ok_or(format!("missing \"{key}\""))?;
    if x.is_finite() && x > 0.0 {
        Ok(x)
    } else {
        Err(format!("\"{key}\" = {x} is not positive/finite"))
    }
}
