//! CI gate for machine-readable bench output: validates that a
//! `BENCH_ps_throughput.json` exists, parses, and carries a well-formed
//! headline + sweep. Exits non-zero on any violation so `ci.sh` fails when
//! the perf trajectory stops being recorded.
//!
//! Usage: `bench_json_check [path]` (default `BENCH_ps_throughput.json`).

use std::path::Path;
use std::process::exit;

use serde_json::Value;
use sync_switch_bench::output::load_json;

fn main() {
    let path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_ps_throughput.json".to_string());
    match validate(Path::new(&path)) {
        Ok((headline, points)) => {
            println!("{path}: ok ({headline} headline entries, {points} sweep points)");
        }
        Err(e) => {
            eprintln!("{path}: {e}");
            exit(1);
        }
    }
}

fn validate(path: &Path) -> Result<(usize, usize), String> {
    let v = load_json(path).map_err(|e| e.to_string())?;
    let headline = v
        .get("headline")
        .and_then(Value::as_array)
        .ok_or("missing \"headline\" array")?;
    if headline.is_empty() {
        return Err("empty \"headline\" array".into());
    }
    for (i, entry) in headline.iter().enumerate() {
        entry
            .get("name")
            .and_then(Value::as_str)
            .ok_or(format!("headline[{i}]: missing \"name\""))?;
        positive_f64(entry, "steps_per_sec").map_err(|e| format!("headline[{i}]: {e}"))?;
    }
    let sweep = v
        .get("sweep")
        .and_then(Value::as_array)
        .ok_or("missing \"sweep\" array")?;
    if sweep.is_empty() {
        return Err("empty \"sweep\" array".into());
    }
    for (i, point) in sweep.iter().enumerate() {
        for key in ["workers", "shards", "steps"] {
            let n = point
                .get(key)
                .and_then(Value::as_u64)
                .ok_or(format!("sweep[{i}]: missing \"{key}\""))?;
            if n == 0 {
                return Err(format!("sweep[{i}]: \"{key}\" is zero"));
            }
        }
        positive_f64(point, "steps_per_sec").map_err(|e| format!("sweep[{i}]: {e}"))?;
    }
    Ok((headline.len(), sweep.len()))
}

fn positive_f64(entry: &Value, key: &str) -> Result<f64, String> {
    let x = entry
        .get(key)
        .and_then(Value::as_f64)
        .ok_or(format!("missing \"{key}\""))?;
    if x.is_finite() && x > 0.0 {
        Ok(x)
    } else {
        Err(format!("\"{key}\" = {x} is not positive/finite"))
    }
}
