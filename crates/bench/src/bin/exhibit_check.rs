//! CI golden gate for the paper exhibits: regenerates selected exhibits
//! in-process and compares their JSON payloads against committed goldens
//! under `goldens/`, with per-field tolerances so the gate pins the
//! *science* (knee position, search costs) without being brittle about the
//! last floating-point digit.
//!
//! ```text
//! exhibit_check                     # check fig5 + table2 vs goldens/
//! exhibit_check --goldens DIR       # goldens live elsewhere
//! exhibit_check --update            # (re)write the goldens instead
//! exhibit_check fig5                # check a subset
//! ```
//!
//! The default exhibits are `fig5` (impact-of-synchronicity knee — the
//! headline claim of the paper), `table2` (binary-search cost analysis),
//! and `fig8` (batch-size scaling + momentum-scaling variants). All are
//! seeded and deterministic, so any drift is a real behaviour change in
//! the policy/sim stack, not noise.

use std::path::PathBuf;
use std::process::exit;

use serde_json::Value;
use sync_switch_bench::exhibits;
use sync_switch_bench::output::load_json;

/// Exhibits gated by default: cheap, deterministic, and covering the
/// convergence claim (fig5), the cost analysis (table2), and the
/// hyper-parameter configuration comparison (fig8).
const DEFAULT_IDS: &[&str] = &["fig5", "table2", "fig8"];

fn main() {
    let mut goldens_dir = PathBuf::from("goldens");
    let mut update = false;
    let mut ids: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--goldens" => match args.next() {
                Some(dir) => goldens_dir = PathBuf::from(dir),
                None => {
                    eprintln!("--goldens requires a directory");
                    exit(2);
                }
            },
            "--update" => update = true,
            other if !other.starts_with("--") => ids.push(other.to_string()),
            other => {
                eprintln!("unknown argument: {other}");
                eprintln!("usage: exhibit_check [--goldens DIR] [--update] [exhibit ids...]");
                exit(2);
            }
        }
    }
    if ids.is_empty() {
        ids = DEFAULT_IDS.iter().map(|s| s.to_string()).collect();
    }
    for id in &ids {
        if !exhibits::all_ids().contains(&id.as_str()) {
            eprintln!("unknown exhibit '{id}'");
            exit(2);
        }
    }

    let mut failures = 0usize;
    for id in &ids {
        let started = std::time::Instant::now();
        let exhibit = exhibits::run(id);
        let golden_path = goldens_dir.join(format!("{id}.json"));
        if update {
            if let Err(e) = exhibit.save(&goldens_dir) {
                eprintln!("{id}: could not write golden: {e}");
                exit(1);
            }
            println!(
                "{id}: golden updated at {} ({:.1}s)",
                golden_path.display(),
                started.elapsed().as_secs_f64()
            );
            continue;
        }
        let golden = match load_json(&golden_path) {
            Ok(v) => v,
            Err(e) => {
                eprintln!(
                    "{id}: cannot read golden {}: {e} (run `exhibit_check --update` to create it)",
                    golden_path.display()
                );
                exit(1);
            }
        };
        let mut mismatches = Vec::new();
        compare(id, "", &golden, &exhibit.json, &mut mismatches);
        if mismatches.is_empty() {
            println!(
                "{id}: matches golden within tolerances ({:.1}s)",
                started.elapsed().as_secs_f64()
            );
        } else {
            failures += 1;
            eprintln!(
                "{id}: {} mismatch(es) vs {}:",
                mismatches.len(),
                golden_path.display()
            );
            for m in &mismatches {
                eprintln!("  {m}");
            }
        }
    }
    if failures > 0 {
        eprintln!(
            "{failures} exhibit(s) drifted from their goldens. If the change is intentional, \
             refresh with `exhibit_check --update` and commit the new goldens."
        );
        exit(1);
    }
}

/// Per-field comparison policy. Fields not listed must match exactly
/// (identifiers, settings, counts); listed fields carry the measurement
/// noise floor of their exhibit.
enum Tolerance {
    Exact,
    /// |golden − actual| ≤ eps.
    Abs(f64),
    /// |golden − actual| ≤ eps · max(|golden|, |actual|).
    Rel(f64),
}

fn tolerance_for(field: &str) -> Tolerance {
    match field {
        // fig5/fig8: converged accuracies (deterministic seeds; the
        // tolerance absorbs float-association drift while still pinning
        // the knee, whose features are ~0.015-0.03 wide, and fig8's
        // momentum-variant ordering, whose spread is ~0.04).
        "mean" | "std" | "accuracy" => Tolerance::Abs(0.01),
        // fig8 panel (a): simulated BSP throughput at two global batch
        // sizes — deterministic, but ratio (not digits) is the claim.
        "throughput_img_s" => Tolerance::Rel(0.05),
        // table2: Monte-Carlo cost ratios over 1000 trials.
        "search_cost" | "amortized" | "effective_training" => Tolerance::Rel(0.10),
        "success_probability" => Tolerance::Abs(0.05),
        _ => Tolerance::Exact,
    }
}

/// Recursively compares `golden` and `actual`, appending human-readable
/// mismatch descriptions (with JSON paths) to `out`.
fn compare(field: &str, path: &str, golden: &Value, actual: &Value, out: &mut Vec<String>) {
    match (golden, actual) {
        (Value::Object(g), Value::Object(a)) => {
            for (k, gv) in g {
                match actual.get(k) {
                    Some(av) => compare(k, &format!("{path}.{k}"), gv, av, out),
                    None => out.push(format!("{path}.{k}: missing from regenerated exhibit")),
                }
            }
            for (k, _) in a {
                if golden.get(k).is_none() {
                    out.push(format!("{path}.{k}: not present in golden"));
                }
            }
        }
        (Value::Array(g), Value::Array(a)) => {
            if g.len() != a.len() {
                out.push(format!(
                    "{path}: length {} in golden vs {} regenerated",
                    g.len(),
                    a.len()
                ));
                return;
            }
            for (i, (gv, av)) in g.iter().zip(a).enumerate() {
                compare(field, &format!("{path}[{i}]"), gv, av, out);
            }
        }
        // Numbers compare under the field's tolerance, whether the exact
        // JSON representation is integral or floating.
        (Value::Int(_) | Value::Float(_), Value::Int(_) | Value::Float(_)) => {
            let (Some(gx), Some(ax)) = (golden.as_f64(), actual.as_f64()) else {
                unreachable!("numeric variants always convert to f64");
            };
            let ok = match tolerance_for(field) {
                Tolerance::Exact => gx == ax,
                Tolerance::Abs(eps) => (gx - ax).abs() <= eps,
                Tolerance::Rel(eps) => (gx - ax).abs() <= eps * gx.abs().max(ax.abs()),
            };
            if !ok {
                out.push(format!("{path}: golden {gx} vs regenerated {ax}"));
            }
        }
        _ => {
            if golden != actual {
                out.push(format!(
                    "{path}: golden {golden:?} vs regenerated {actual:?}"
                ));
            }
        }
    }
}
