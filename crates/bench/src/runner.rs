//! Shared experiment-execution helpers.

use sync_switch_cluster::StragglerScenario;
use sync_switch_core::{
    ClusterManager, SimBackend, SyncSwitchPolicy, TrainingBackend, TrainingReport,
};
use sync_switch_workloads::{ExperimentSetup, SyncProtocol};

/// Number of repetitions per configuration (the paper repeats each
/// experiment five times).
pub const RUNS: u64 = 5;

/// Runs one full training job on the simulation backend.
pub fn run_report(setup: &ExperimentSetup, policy: &SyncSwitchPolicy, seed: u64) -> TrainingReport {
    let mut backend = SimBackend::new(setup, seed);
    ClusterManager::new(policy.clone())
        .run(&mut backend, setup)
        .expect("policy is valid")
}

/// Runs one job with a straggler scenario installed.
pub fn run_report_with_scenario(
    setup: &ExperimentSetup,
    policy: &SyncSwitchPolicy,
    scenario: StragglerScenario,
    seed: u64,
) -> TrainingReport {
    let mut backend = SimBackend::new(setup, seed).with_scenario(scenario);
    ClusterManager::new(policy.clone())
        .run(&mut backend, setup)
        .expect("policy is valid")
}

/// Summary over repeated runs of one configuration.
#[derive(Debug, Clone)]
pub struct RunSummary {
    /// Individual reports.
    pub reports: Vec<TrainingReport>,
}

impl RunSummary {
    /// Mean converged accuracy over completed runs (`None` if all failed).
    pub fn mean_accuracy(&self) -> Option<f64> {
        let accs: Vec<f64> = self
            .reports
            .iter()
            .filter_map(|r| r.converged_accuracy)
            .collect();
        if accs.is_empty() {
            return None;
        }
        Some(accs.iter().sum::<f64>() / accs.len() as f64)
    }

    /// Standard deviation of converged accuracy over completed runs.
    pub fn std_accuracy(&self) -> f64 {
        let accs: Vec<f64> = self
            .reports
            .iter()
            .filter_map(|r| r.converged_accuracy)
            .collect();
        mean_std(&accs).1
    }

    /// Mean total time in seconds (all runs, including diverged ones —
    /// diverged runs end early).
    pub fn mean_time_s(&self) -> f64 {
        mean_std(
            &self
                .reports
                .iter()
                .map(|r| r.total_time_s)
                .collect::<Vec<_>>(),
        )
        .0
    }

    /// Mean time over *completed* runs only.
    pub fn mean_completed_time_s(&self) -> Option<f64> {
        let times: Vec<f64> = self
            .reports
            .iter()
            .filter(|r| r.completed())
            .map(|r| r.total_time_s)
            .collect();
        if times.is_empty() {
            return None;
        }
        Some(mean_std(&times).0)
    }

    /// Mean TTA over runs that reached the threshold.
    pub fn mean_tta_s(&self) -> Option<f64> {
        let ttas: Vec<f64> = self.reports.iter().filter_map(|r| r.tta_s).collect();
        if ttas.is_empty() {
            return None;
        }
        Some(mean_std(&ttas).0)
    }

    /// Whether any run diverged.
    pub fn any_diverged(&self) -> bool {
        self.reports.iter().any(|r| !r.completed())
    }

    /// Whether every run diverged.
    pub fn all_diverged(&self) -> bool {
        self.reports.iter().all(|r| !r.completed())
    }

    /// The best run by converged accuracy (paper plots "the runs with the
    /// best performance").
    pub fn best(&self) -> Option<&TrainingReport> {
        self.reports
            .iter()
            .filter(|r| r.completed())
            .max_by(|a, b| {
                a.converged_accuracy
                    .unwrap_or(0.0)
                    .total_cmp(&b.converged_accuracy.unwrap_or(0.0))
            })
    }
}

/// Runs a configuration [`RUNS`] times with distinct seeds.
pub fn repeat_reports(
    setup: &ExperimentSetup,
    policy: &SyncSwitchPolicy,
    base_seed: u64,
) -> RunSummary {
    RunSummary {
        reports: (0..RUNS)
            .map(|i| run_report(setup, policy, base_seed.wrapping_add(i * 7919)))
            .collect(),
    }
}

/// Protocol orderings evaluated in paper Fig. 5a.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OrderKind {
    /// Pure BSP.
    Bsp,
    /// BSP for the given fraction, then ASP (the Sync-Switch order).
    BspThenAsp,
    /// ASP first, then BSP — the order the paper shows is inferior.
    AspThenBsp,
    /// Pure ASP.
    Asp,
}

impl std::fmt::Display for OrderKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            OrderKind::Bsp => "BSP",
            OrderKind::BspThenAsp => "BSP->ASP",
            OrderKind::AspThenBsp => "ASP->BSP",
            OrderKind::Asp => "ASP",
        };
        write!(f, "{s}")
    }
}

/// Runs a protocol-order experiment (Fig. 5a): the first `fraction` of the
/// workload under the first protocol, the rest under the second. Drives the
/// backend directly because the manager (by design) only implements the
/// BSP→ASP order.
///
/// Returns `(converged_accuracy, total_time_s)`; accuracy is `None` when
/// the run diverges.
pub fn run_order(
    setup: &ExperimentSetup,
    order: OrderKind,
    fraction: f64,
    seed: u64,
) -> (Option<f64>, f64) {
    match order {
        OrderKind::Bsp => {
            let r = run_report(
                setup,
                &SyncSwitchPolicy::static_bsp(setup.cluster_size),
                seed,
            );
            (r.converged_accuracy, r.total_time_s)
        }
        OrderKind::Asp => {
            let r = run_report(
                setup,
                &SyncSwitchPolicy::static_asp(setup.cluster_size),
                seed,
            );
            (r.converged_accuracy, r.total_time_s)
        }
        OrderKind::BspThenAsp => {
            let policy = SyncSwitchPolicy::new(fraction, setup.cluster_size);
            let r = run_report(setup, &policy, seed);
            (r.converged_accuracy, r.total_time_s)
        }
        OrderKind::AspThenBsp => run_asp_then_bsp(setup, fraction, seed),
    }
}

/// ASP for `fraction` of the workload, then BSP to the end.
fn run_asp_then_bsp(setup: &ExperimentSetup, fraction: f64, seed: u64) -> (Option<f64>, f64) {
    use sync_switch_core::ConfigPolicy;
    let mut backend = SimBackend::new(setup, seed);
    let total = setup.workload.hyper.total_steps;
    let switch_at = (fraction * total as f64) as u64;
    let config = ConfigPolicy::new(setup.cluster_size);
    let asp_cfg = config.for_protocol(&setup.workload.hyper, SyncProtocol::Asp);
    let bsp_cfg = config.for_protocol(&setup.workload.hyper, SyncProtocol::Bsp);
    let start = backend.now();
    let chunk = 2_000u64;

    let mut diverged = false;
    while backend.step() < switch_at {
        let steps = chunk.min(switch_at - backend.step());
        if backend.run_chunk(&asp_cfg, steps).is_err() {
            diverged = true;
            break;
        }
    }
    if !diverged {
        backend.apply_switch_overhead(SyncProtocol::Asp, SyncProtocol::Bsp);
        while backend.step() < total {
            let steps = chunk.min(total - backend.step());
            if backend.run_chunk(&bsp_cfg, steps).is_err() {
                diverged = true;
                break;
            }
        }
    }
    let time = (backend.now() - start).as_secs();
    if diverged {
        (None, time)
    } else {
        (Some(backend.eval_accuracy()), time)
    }
}

/// Mean and population standard deviation of a slice (0s when empty).
pub fn mean_std(data: &[f64]) -> (f64, f64) {
    if data.is_empty() {
        return (0.0, 0.0);
    }
    let mean = data.iter().sum::<f64>() / data.len() as f64;
    let var = data.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / data.len() as f64;
    (mean, var.sqrt())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_std_basics() {
        let (m, s) = mean_std(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert_eq!(m, 5.0);
        assert!((s - 2.0).abs() < 1e-12);
        assert_eq!(mean_std(&[]), (0.0, 0.0));
    }

    #[test]
    fn order_runs_setup1() {
        let setup = ExperimentSetup::one();
        let (acc_ss, t_ss) = run_order(&setup, OrderKind::BspThenAsp, 0.5, 11);
        let (acc_rev, _t_rev) = run_order(&setup, OrderKind::AspThenBsp, 0.5, 11);
        // BSP→ASP preserves accuracy; ASP→BSP pays the early-ASP damage.
        assert!(acc_ss.unwrap() > acc_rev.unwrap() + 0.01);
        assert!(t_ss > 0.0);
    }

    #[test]
    fn summary_aggregates() {
        let setup = ExperimentSetup::one();
        let policy = SyncSwitchPolicy::paper_policy(&setup);
        let s = RunSummary {
            reports: (0..3)
                .map(|i| run_report(&setup, &policy, 100 + i))
                .collect(),
        };
        assert!(s.mean_accuracy().unwrap() > 0.89);
        assert!(!s.any_diverged());
        assert!(s.best().is_some());
        assert!(s.mean_time_s() > 0.0);
    }
}
