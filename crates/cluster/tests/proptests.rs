//! Property-based tests of the cluster simulator.

use proptest::prelude::*;
use sync_switch_cluster::{ClusterSim, StragglerScenario};
use sync_switch_sim::SimTime;
use sync_switch_workloads::{ExperimentSetup, SetupId};

fn setup_for(idx: usize) -> ExperimentSetup {
    ExperimentSetup::from_id([SetupId::One, SetupId::Two, SetupId::Three][idx % 3])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Virtual time is monotone and unit accounting is exact across
    /// arbitrary interleavings of BSP and ASP chunks.
    #[test]
    fn time_and_units_monotone(
        setup_idx in 0usize..3,
        seed in 0u64..1000,
        chunks in proptest::collection::vec((0usize..2, 1u64..500), 1..12),
    ) {
        let setup = setup_for(setup_idx);
        let mut sim = ClusterSim::new(&setup, seed);
        let mut last_now = sim.now();
        let mut expected_units = 0u64;
        for (kind, units) in chunks {
            let stats = if kind == 0 {
                sim.run_bsp(units)
            } else {
                sim.run_asp(units)
            };
            prop_assert!(stats.units >= units);
            prop_assert!(stats.elapsed.as_secs() > 0.0);
            prop_assert!(sim.now() >= last_now);
            expected_units += stats.units;
            last_now = sim.now();
        }
        prop_assert_eq!(sim.units_done(), expected_units);
    }

    /// BSP rounds complete a whole multiple of the active worker count.
    #[test]
    fn bsp_units_are_round_multiples(seed in 0u64..500, units in 1u64..300, removed in 0usize..4) {
        let setup = ExperimentSetup::one();
        let mut sim = ClusterSim::new(&setup, seed);
        for w in 0..removed {
            sim.remove_worker(w);
        }
        let active = sim.active_count() as u64;
        let stats = sim.run_bsp(units);
        prop_assert_eq!(stats.units % active, 0);
        prop_assert!(stats.units >= units && stats.units < units + active);
    }

    /// ASP staleness is bounded by active workers − 1 on a homogeneous
    /// cluster (each in-flight step can overlap at most n−1 pushes).
    #[test]
    fn asp_staleness_bounded(seed in 0u64..500, units in 50u64..2000) {
        let setup = ExperimentSetup::one();
        let mut sim = ClusterSim::new(&setup, seed);
        let stats = sim.run_asp(units);
        let n = sim.active_count() as f64;
        prop_assert!(stats.mean_staleness <= n - 1.0 + 1e-9);
        prop_assert!(stats.mean_staleness >= 0.0);
    }

    /// Stragglers can only slow BSP down, never speed it up.
    #[test]
    fn stragglers_never_speed_up_bsp(seed in 0u64..200, latency_ms in 1.0f64..50.0) {
        let setup = ExperimentSetup::one();
        let mut clean = ClusterSim::new(&setup, seed);
        let t_clean = clean.run_bsp(400).elapsed;
        let mut slow = ClusterSim::new(&setup, seed);
        slow.set_scenario(StragglerScenario::constant(1, latency_ms / 1e3));
        let t_slow = slow.run_bsp(400).elapsed;
        prop_assert!(t_slow >= t_clean, "{t_slow:?} < {t_clean:?}");
    }

    /// `advance` shifts the clock by exactly the requested duration.
    #[test]
    fn advance_is_exact(seed in 0u64..200, dt in 0.0f64..1e5) {
        let setup = ExperimentSetup::one();
        let mut sim = ClusterSim::new(&setup, seed);
        let before = sim.now();
        sim.advance(SimTime::from_secs(dt));
        prop_assert_eq!(sim.now(), before + SimTime::from_secs(dt));
    }

    /// Removing and restoring workers round-trips the active count.
    #[test]
    fn remove_restore_roundtrip(workers_to_remove in proptest::collection::btree_set(0usize..8, 0..7)) {
        let setup = ExperimentSetup::one();
        let mut sim = ClusterSim::new(&setup, 1);
        for &w in &workers_to_remove {
            sim.remove_worker(w);
        }
        prop_assert_eq!(sim.active_count(), 8 - workers_to_remove.len());
        sim.restore_all();
        prop_assert_eq!(sim.active_count(), 8);
    }
}
