//! Transient-straggler injection.
//!
//! The paper targets *transient* stragglers — "nodes that exhibit temporary
//! slowdown due to datacenter network or server resource contention" — and
//! emulates them by adding network latency. Each episode lasts at most the
//! time to provision a replacement server (~100 s, §IV-B2).

use serde::{Deserialize, Serialize};
use sync_switch_sim::SimTime;

/// One transient slowdown episode on one worker.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StragglerEpisode {
    /// Affected worker index.
    pub worker: usize,
    /// Episode start (virtual time).
    pub start_s: f64,
    /// Episode duration, seconds (≤ ~100 s for transient stragglers).
    pub duration_s: f64,
    /// Added per-message network latency, seconds (10 ms / 30 ms in the
    /// paper's scenarios).
    pub added_latency_s: f64,
}

impl StragglerEpisode {
    /// Whether the episode is active at time `t`.
    pub fn active_at(&self, t: SimTime) -> bool {
        let t = t.as_secs();
        t >= self.start_s && t < self.start_s + self.duration_s
    }

    /// Episode end time.
    pub fn end_s(&self) -> f64 {
        self.start_s + self.duration_s
    }
}

/// A named straggler scenario: a set of episodes.
///
/// The two evaluation scenarios of paper §VI-B3:
/// * **mild** — 1 straggler, 1 occurrence, 10 ms added latency;
/// * **moderate** — 2 stragglers, 4 occurrences each, 30 ms added latency.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct StragglerScenario {
    /// Scenario name for reports.
    pub name: String,
    /// All injected episodes.
    pub episodes: Vec<StragglerEpisode>,
}

impl StragglerScenario {
    /// No stragglers.
    pub fn none() -> Self {
        StragglerScenario {
            name: "none".into(),
            episodes: Vec::new(),
        }
    }

    /// Scenario 1 (mild): one worker slows once for 100 s with +10 ms
    /// latency, early in the BSP phase.
    pub fn mild(first_start_s: f64) -> Self {
        StragglerScenario {
            name: "mild".into(),
            episodes: vec![StragglerEpisode {
                worker: 0,
                start_s: first_start_s,
                duration_s: 100.0,
                added_latency_s: 0.010,
            }],
        }
    }

    /// Scenario 2 (moderate): two workers slow four times each for 100 s
    /// with +30 ms latency, episodes spaced `spacing_s` apart.
    pub fn moderate(first_start_s: f64, spacing_s: f64) -> Self {
        let mut episodes = Vec::new();
        for occurrence in 0..4 {
            for worker in [0usize, 1] {
                episodes.push(StragglerEpisode {
                    worker,
                    start_s: first_start_s + occurrence as f64 * spacing_s,
                    duration_s: 100.0,
                    added_latency_s: 0.030,
                });
            }
        }
        StragglerScenario {
            name: "moderate".into(),
            episodes,
        }
    }

    /// A constant (whole-run) slowdown on `count` workers — used for the
    /// Fig. 4b throughput sweep.
    pub fn constant(count: usize, added_latency_s: f64) -> Self {
        StragglerScenario {
            name: format!("{count}x{:.0}ms", added_latency_s * 1e3),
            episodes: (0..count)
                .map(|worker| StragglerEpisode {
                    worker,
                    start_s: 0.0,
                    duration_s: f64::INFINITY,
                    added_latency_s,
                })
                .collect(),
        }
    }

    /// The added latency affecting `worker` at time `t` (maximum over
    /// overlapping episodes; 0 when none).
    pub fn added_latency(&self, worker: usize, t: SimTime) -> f64 {
        self.episodes
            .iter()
            .filter(|e| e.worker == worker && e.active_at(t))
            .map(|e| e.added_latency_s)
            .fold(0.0, f64::max)
    }

    /// Workers with at least one episode active at `t`.
    pub fn active_stragglers(&self, t: SimTime) -> Vec<usize> {
        let mut v: Vec<usize> = self
            .episodes
            .iter()
            .filter(|e| e.active_at(t))
            .map(|e| e.worker)
            .collect();
        v.sort_unstable();
        v.dedup();
        v
    }

    /// Time at which the last episode ends (0 for an empty scenario).
    pub fn last_end_s(&self) -> f64 {
        self.episodes.iter().map(|e| e.end_s()).fold(0.0, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn episode_activity_window() {
        let e = StragglerEpisode {
            worker: 2,
            start_s: 50.0,
            duration_s: 100.0,
            added_latency_s: 0.01,
        };
        assert!(!e.active_at(SimTime::from_secs(49.9)));
        assert!(e.active_at(SimTime::from_secs(50.0)));
        assert!(e.active_at(SimTime::from_secs(149.9)));
        assert!(!e.active_at(SimTime::from_secs(150.0)));
        assert_eq!(e.end_s(), 150.0);
    }

    #[test]
    fn mild_scenario_shape() {
        let s = StragglerScenario::mild(30.0);
        assert_eq!(s.episodes.len(), 1);
        assert_eq!(s.added_latency(0, SimTime::from_secs(60.0)), 0.010);
        assert_eq!(s.added_latency(1, SimTime::from_secs(60.0)), 0.0);
        assert_eq!(s.added_latency(0, SimTime::from_secs(200.0)), 0.0);
    }

    #[test]
    fn moderate_scenario_shape() {
        let s = StragglerScenario::moderate(10.0, 300.0);
        assert_eq!(s.episodes.len(), 8);
        // Two workers active during the first occurrence.
        assert_eq!(s.active_stragglers(SimTime::from_secs(20.0)), vec![0, 1]);
        // Nobody active between occurrences.
        assert!(s.active_stragglers(SimTime::from_secs(150.0)).is_empty());
        // Fourth occurrence window.
        assert_eq!(
            s.active_stragglers(SimTime::from_secs(10.0 + 3.0 * 300.0 + 1.0)),
            vec![0, 1]
        );
        assert_eq!(s.last_end_s(), 10.0 + 3.0 * 300.0 + 100.0);
    }

    #[test]
    fn overlapping_episodes_take_max_latency() {
        let s = StragglerScenario {
            name: "overlap".into(),
            episodes: vec![
                StragglerEpisode {
                    worker: 0,
                    start_s: 0.0,
                    duration_s: 100.0,
                    added_latency_s: 0.01,
                },
                StragglerEpisode {
                    worker: 0,
                    start_s: 50.0,
                    duration_s: 100.0,
                    added_latency_s: 0.03,
                },
            ],
        };
        assert_eq!(s.added_latency(0, SimTime::from_secs(75.0)), 0.03);
        assert_eq!(s.added_latency(0, SimTime::from_secs(25.0)), 0.01);
    }

    #[test]
    fn constant_scenario_never_ends() {
        let s = StragglerScenario::constant(2, 0.03);
        assert_eq!(s.added_latency(1, SimTime::from_secs(1e9)), 0.03);
        assert_eq!(s.added_latency(2, SimTime::from_secs(1.0)), 0.0);
    }
}
