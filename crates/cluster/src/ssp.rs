//! Stale Synchronous Parallel (SSP) simulation — an extension substrate.
//!
//! The paper positions SSP/DSSP between BSP and ASP (Fig. 1) and notes that
//! "Sync-Switch is agnostic to the underlying synchronization protocols
//! (for example switching from SSP to ASP)". This module provides SSP with
//! staleness bound `s`: a worker may run at most `s` iterations ahead of
//! the slowest worker; within the window, updates apply asynchronously.
//! `s = 0` degenerates to lock-step; `s → ∞` recovers ASP.

use sync_switch_sim::{EventQueue, SimTime};

use crate::sim::{ChunkStats, ClusterSim};

impl ClusterSim {
    /// Runs SSP with iteration-staleness bound `bound` until `units` pushes
    /// complete. Event-driven like ASP, but a worker whose iteration count
    /// exceeds `min(iterations) + bound` blocks until the slowest worker
    /// catches up.
    ///
    /// # Panics
    ///
    /// Panics if `units == 0` or no workers are active.
    pub fn run_ssp(&mut self, units: u64, bound: u64) -> ChunkStats {
        assert!(units > 0, "units must be positive");
        let active: Vec<usize> = (0..self.cluster_size())
            .filter(|&w| self.is_active(w))
            .collect();
        assert!(!active.is_empty(), "no active workers");
        let batch = self.batch() as f64;
        let start = self.now();
        let base_now = self.now();

        let n = self.cluster_size();
        let mut iterations = vec![0u64; n];
        let mut own_work_time = vec![0.0f64; n];
        let mut own_steps = vec![0u64; n];
        let mut blocked: Vec<usize> = Vec::new();
        let mut queue: EventQueue<(usize, u64)> = EventQueue::new();
        let mut pushes: u64 = 0;
        let mut staleness_sum: u64 = 0;

        for &w in &active {
            let dt = self.sample_own_step_time(w, true);
            own_work_time[w] += dt;
            queue.schedule(SimTime::from_secs(dt), (w, 0));
        }

        let min_iter = |iters: &[u64], active: &[usize]| -> u64 {
            active.iter().map(|&w| iters[w]).min().unwrap_or(0)
        };

        let mut last = SimTime::ZERO;
        while pushes < units {
            let (t, (w, pulled)) = queue.pop().expect("ssp queue never empties mid-run");
            last = t;
            pushes += 1;
            staleness_sum += pushes - 1 - pulled;
            own_steps[w] += 1;
            let before_min = min_iter(&iterations, &active);
            iterations[w] += 1;

            if pushes >= units {
                break;
            }
            self.set_now_for_ssp(base_now + t);

            // Schedule this worker's next step if within the bound.
            if iterations[w] <= min_iter(&iterations, &active) + bound {
                let dt = self.sample_own_step_time(w, true);
                own_work_time[w] += dt;
                queue.schedule(t + SimTime::from_secs(dt), (w, pushes));
            } else {
                blocked.push(w);
            }

            // If the floor advanced, release blocked workers now allowed.
            let after_min = min_iter(&iterations, &active);
            if after_min > before_min && !blocked.is_empty() {
                let released: Vec<usize> = blocked
                    .iter()
                    .copied()
                    .filter(|&b| iterations[b] <= after_min + bound)
                    .collect();
                blocked.retain(|b| !released.contains(b));
                for b in released {
                    let dt = self.sample_own_step_time(b, true);
                    own_work_time[b] += dt;
                    queue.schedule(t + SimTime::from_secs(dt), (b, pushes));
                }
            }
        }
        self.set_now_for_ssp(base_now + last);
        self.add_units_done(units);

        let per_worker = (0..n)
            .map(|w| {
                if own_steps[w] == 0 {
                    0.0
                } else {
                    own_steps[w] as f64 * batch / own_work_time[w]
                }
            })
            .collect();
        ChunkStats {
            units,
            elapsed: self.now() - start,
            per_worker_images_per_sec: per_worker,
            // The gate accounts for scheduling staleness only; the real
            // tier's two-stage sync adds a committed-view lag on top, fed
            // back here once measured (`set_committed_view_lag`).
            mean_staleness: staleness_sum as f64 / pushes as f64 + self.committed_view_lag(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::straggler::StragglerScenario;
    use sync_switch_workloads::ExperimentSetup;

    fn sim(seed: u64) -> ClusterSim {
        ClusterSim::new(&ExperimentSetup::one(), seed)
    }

    #[test]
    fn huge_bound_recovers_asp_behaviour() {
        let mut ssp = sim(1);
        let mut asp = sim(1);
        let s = ssp.run_ssp(2_000, 1_000_000);
        let a = asp.run_asp(2_000);
        assert_eq!(s.elapsed, a.elapsed, "unbounded SSP must equal ASP");
        assert_eq!(s.mean_staleness, a.mean_staleness);
    }

    #[test]
    fn ssp_throughput_sits_between_bsp_and_asp_under_stragglers() {
        let mk = |seed| {
            let mut s = sim(seed);
            s.set_scenario(StragglerScenario::constant(1, 0.010));
            s
        };
        let bsp = mk(2).run_bsp(2_000).elapsed.as_secs();
        let ssp = mk(2).run_ssp(2_000, 3).elapsed.as_secs();
        let asp = mk(2).run_asp(2_000).elapsed.as_secs();
        assert!(
            asp < ssp && ssp < bsp,
            "ordering violated: asp {asp}, ssp {ssp}, bsp {bsp}"
        );
    }

    #[test]
    fn tight_bound_throttles_fast_workers_with_straggler() {
        // With a straggler and bound 1, fast workers must repeatedly wait:
        // cluster time approaches the straggler's pace.
        let mut tight = sim(3);
        tight.set_scenario(StragglerScenario::constant(1, 0.030));
        let t_tight = tight.run_ssp(1_000, 1).elapsed.as_secs();
        let mut loose = sim(3);
        loose.set_scenario(StragglerScenario::constant(1, 0.030));
        let t_loose = loose.run_ssp(1_000, 64).elapsed.as_secs();
        assert!(
            t_tight > 1.5 * t_loose,
            "tight bound should throttle: {t_tight} vs {t_loose}"
        );
    }

    #[test]
    fn staleness_grows_with_bound() {
        let homogeneous = |bound| sim(4).run_ssp(4_000, bound).mean_staleness;
        let s1 = homogeneous(1);
        let s64 = homogeneous(64);
        assert!(
            s1 <= s64,
            "staleness must not shrink with bound: {s1} vs {s64}"
        );
        // Unbounded staleness on 8 homogeneous workers ≈ 7.
        assert!((s64 - 7.0).abs() < 0.5, "{s64}");
    }

    #[test]
    fn units_accounting_matches() {
        let mut s = sim(5);
        let stats = s.run_ssp(777, 4);
        assert_eq!(stats.units, 777);
        assert_eq!(s.units_done(), 777);
    }

    #[test]
    fn deterministic_for_seed() {
        let a = sim(6).run_ssp(1_500, 3);
        let b = sim(6).run_ssp(1_500, 3);
        assert_eq!(a.elapsed, b.elapsed);
        assert_eq!(a.mean_staleness, b.mean_staleness);
    }

    #[test]
    fn committed_view_lag_shifts_staleness_but_not_time() {
        // Calibration is a pure reporting correction: the event schedule —
        // and therefore elapsed time and determinism — must be untouched.
        let base = sim(7).run_ssp(1_500, 2);
        let mut calibrated = sim(7);
        calibrated.set_committed_view_lag(1.75);
        assert_eq!(calibrated.committed_view_lag(), 1.75);
        let c = calibrated.run_ssp(1_500, 2);
        assert_eq!(c.elapsed, base.elapsed, "lag must not change the schedule");
        assert_eq!(c.mean_staleness, base.mean_staleness + 1.75);
    }

    #[test]
    #[should_panic(expected = "committed-view lag must be finite and non-negative")]
    fn negative_committed_view_lag_is_refused() {
        sim(8).set_committed_view_lag(-0.5);
    }
}
