//! Cluster initialization and protocol-switch overhead model (paper
//! Table III).
//!
//! The paper measures, for 8- and 16-node K80 clusters:
//!
//! | Cluster | Actuator | Init (s) | Switching (s) |
//! |---|---|---|---|
//! | 8  | Sequential | 157 | 90 |
//! | 8  | Parallel   |  90 | 36 |
//! | 16 | Sequential | 268 | 165 |
//! | 16 | Parallel   | 128 | 53 |
//!
//! The model below decomposes both costs into a fixed setup term, a
//! per-node term (serialized for the sequential actuator, rate-limited for
//! the parallel one), and the slowest node; constants are fitted to the
//! table.

use sync_switch_sim::{DetRng, LogNormal, Normal, Sample, SimTime};

/// Whether configuration actions are propagated one node at a time or
/// fanned out in parallel (Sync-Switch's actuator does the latter).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ActuatorMode {
    /// One node at a time (vanilla scripts).
    Sequential,
    /// Fan-out with per-node rate limiting (Sync-Switch).
    Parallel,
}

/// One sampled overhead measurement.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OverheadSample {
    /// Time to bring the cluster up (VM boot, TensorFlow start).
    pub init: SimTime,
    /// Time to switch synchronization protocols
    /// (checkpoint + propagate + restart).
    pub switch: SimTime,
}

/// Stochastic model of cluster-management overheads.
#[derive(Debug, Clone)]
pub struct OverheadModel {
    node_init: LogNormal,
    node_task: Normal,
    rng: DetRng,
}

impl OverheadModel {
    /// Fixed cluster bring-up cost before touching nodes, seconds.
    const INIT_SETUP_S: f64 = 15.0;
    /// Parallel-init per-node rate-limit cost (cloud API), seconds.
    const INIT_PARALLEL_PER_NODE_S: f64 = 6.0;
    /// Checkpoint cost common to both actuators, seconds.
    const SWITCH_CHECKPOINT_S: f64 = 10.0;
    /// Parallel-switch per-node propagation cost, seconds.
    const SWITCH_PARALLEL_PER_NODE_S: f64 = 1.5;

    /// Creates the model with a deterministic sampling stream.
    pub fn new(seed: u64) -> Self {
        OverheadModel {
            // Mean 16 s per node init, right-skewed like real VM boots.
            node_init: LogNormal::with_mean(16.0, 0.25),
            // ~9.5 s per node to push config + relaunch the training task.
            node_task: Normal::new(9.5, 1.5),
            rng: DetRng::new(seed).derive("overhead", 0),
        }
    }

    /// Samples the init + switch overhead for a cluster of `n` nodes under
    /// the given actuator mode.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn sample(&mut self, n: usize, mode: ActuatorMode) -> OverheadSample {
        assert!(n > 0, "cluster must have nodes");
        let inits: Vec<f64> = (0..n)
            .map(|_| self.node_init.sample(&mut self.rng))
            .collect();
        let tasks: Vec<f64> = (0..n)
            .map(|_| self.node_task.sample(&mut self.rng).max(1.0))
            .collect();
        let (init, switch) = match mode {
            ActuatorMode::Sequential => (
                Self::INIT_SETUP_S + inits.iter().sum::<f64>(),
                Self::SWITCH_CHECKPOINT_S + tasks.iter().sum::<f64>(),
            ),
            ActuatorMode::Parallel => {
                let max_init = inits.iter().cloned().fold(0.0, f64::max);
                let max_task = tasks.iter().cloned().fold(0.0, f64::max);
                (
                    Self::INIT_SETUP_S + Self::INIT_PARALLEL_PER_NODE_S * n as f64 + max_init,
                    Self::SWITCH_CHECKPOINT_S
                        + Self::SWITCH_PARALLEL_PER_NODE_S * n as f64
                        + max_task,
                )
            }
        };
        OverheadSample {
            init: SimTime::from_secs(init),
            switch: SimTime::from_secs(switch),
        }
    }

    /// Mean of `trials` samples (smoother numbers for the Table III
    /// harness).
    pub fn mean_sample(&mut self, n: usize, mode: ActuatorMode, trials: usize) -> OverheadSample {
        assert!(trials > 0, "need at least one trial");
        let mut init = 0.0;
        let mut switch = 0.0;
        for _ in 0..trials {
            let s = self.sample(n, mode);
            init += s.init.as_secs();
            switch += s.switch.as_secs();
        }
        OverheadSample {
            init: SimTime::from_secs(init / trials as f64),
            switch: SimTime::from_secs(switch / trials as f64),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn within(actual: f64, target: f64, tol: f64) -> bool {
        (actual - target).abs() / target <= tol
    }

    #[test]
    fn table3_8_nodes() {
        let mut m = OverheadModel::new(1);
        let seq = m.mean_sample(8, ActuatorMode::Sequential, 50);
        let par = m.mean_sample(8, ActuatorMode::Parallel, 50);
        assert!(within(seq.init.as_secs(), 157.0, 0.15), "{:?}", seq.init);
        assert!(within(par.init.as_secs(), 90.0, 0.15), "{:?}", par.init);
        assert!(within(seq.switch.as_secs(), 90.0, 0.15), "{:?}", seq.switch);
        assert!(within(par.switch.as_secs(), 36.0, 0.20), "{:?}", par.switch);
    }

    #[test]
    fn table3_16_nodes() {
        let mut m = OverheadModel::new(2);
        let seq = m.mean_sample(16, ActuatorMode::Sequential, 50);
        let par = m.mean_sample(16, ActuatorMode::Parallel, 50);
        assert!(within(seq.init.as_secs(), 268.0, 0.15), "{:?}", seq.init);
        assert!(within(par.init.as_secs(), 128.0, 0.15), "{:?}", par.init);
        assert!(
            within(seq.switch.as_secs(), 165.0, 0.15),
            "{:?}",
            seq.switch
        );
        assert!(within(par.switch.as_secs(), 53.0, 0.20), "{:?}", par.switch);
    }

    #[test]
    fn parallel_beats_sequential_and_scales_sublinearly() {
        let mut m = OverheadModel::new(3);
        let seq8 = m.mean_sample(8, ActuatorMode::Sequential, 20);
        let par8 = m.mean_sample(8, ActuatorMode::Parallel, 20);
        let par16 = m.mean_sample(16, ActuatorMode::Parallel, 20);
        assert!(par8.init < seq8.init);
        assert!(par8.switch < seq8.switch);
        // Doubling the cluster far less than doubles the parallel cost.
        assert!(par16.switch.as_secs() < 2.0 * par8.switch.as_secs());
    }

    #[test]
    fn switch_overhead_is_tens_of_seconds() {
        // Paper: "switching overhead can be as low as 36 seconds, about
        // 1.7% of the total training time".
        let mut m = OverheadModel::new(4);
        let par = m.mean_sample(8, ActuatorMode::Parallel, 20);
        assert!((20.0..60.0).contains(&par.switch.as_secs()));
    }

    #[test]
    fn determinism() {
        let a = OverheadModel::new(7).sample(8, ActuatorMode::Parallel);
        let b = OverheadModel::new(7).sample(8, ActuatorMode::Parallel);
        assert_eq!(a, b);
    }
}
