//! GPU compute-time model.

use sync_switch_sim::{DetRng, LogNormal, Sample};
use sync_switch_workloads::{GpuKind, ModelSpec};

/// Per-step compute-time model for one worker's accelerator.
///
/// A step's forward+backward time is
/// `(overhead + per_sample · batch) / gpu_speed`, jittered by a lognormal
/// factor (σ = 0.12 in log space) matching the right-skewed step-time
/// distributions observed on real cloud GPUs.
#[derive(Debug, Clone)]
pub struct ComputeModel {
    model: ModelSpec,
    gpu: GpuKind,
    jitter_sigma: f64,
}

impl ComputeModel {
    /// Log-space jitter applied to every sampled step.
    pub const DEFAULT_JITTER_SIGMA: f64 = 0.12;

    /// Creates a compute model for a model/GPU pair.
    pub fn new(model: ModelSpec, gpu: GpuKind) -> Self {
        ComputeModel {
            model,
            gpu,
            jitter_sigma: Self::DEFAULT_JITTER_SIGMA,
        }
    }

    /// Overrides the jitter (0 makes sampling deterministic; used in tests).
    ///
    /// # Panics
    ///
    /// Panics if `sigma` is negative.
    pub fn with_jitter(mut self, sigma: f64) -> Self {
        assert!(sigma >= 0.0, "jitter must be non-negative");
        self.jitter_sigma = sigma;
        self
    }

    /// The model being trained.
    pub fn model(&self) -> &ModelSpec {
        &self.model
    }

    /// Mean compute time for a mini-batch of `batch` samples, seconds.
    pub fn mean_time_s(&self, batch: usize) -> f64 {
        self.model.compute_time_s(batch) / self.gpu.speed_factor()
    }

    /// Samples one step's compute time.
    pub fn sample_time_s(&self, batch: usize, rng: &mut DetRng) -> f64 {
        let mean = self.mean_time_s(batch);
        if self.jitter_sigma == 0.0 {
            return mean;
        }
        LogNormal::with_mean(mean, self.jitter_sigma).sample(rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_time_matches_spec() {
        let cm = ComputeModel::new(ModelSpec::resnet32(), GpuKind::K80);
        let expect = ModelSpec::resnet32().compute_time_s(128);
        assert_eq!(cm.mean_time_s(128), expect);
    }

    #[test]
    fn sampling_is_positive_and_centered() {
        let cm = ComputeModel::new(ModelSpec::resnet32(), GpuKind::K80);
        let mut rng = DetRng::new(1);
        let mean = cm.mean_time_s(128);
        let n = 5000;
        let total: f64 = (0..n)
            .map(|_| {
                let t = cm.sample_time_s(128, &mut rng);
                assert!(t > 0.0);
                t
            })
            .sum();
        let empirical = total / n as f64;
        assert!(
            (empirical - mean).abs() / mean < 0.02,
            "empirical {empirical} vs mean {mean}"
        );
    }

    #[test]
    fn zero_jitter_is_deterministic() {
        let cm = ComputeModel::new(ModelSpec::resnet50(), GpuKind::K80).with_jitter(0.0);
        let mut rng = DetRng::new(2);
        let a = cm.sample_time_s(64, &mut rng);
        let b = cm.sample_time_s(64, &mut rng);
        assert_eq!(a, b);
        assert_eq!(a, cm.mean_time_s(64));
    }
}
