//! Discrete-event cluster simulation for distributed training.
//!
//! Models the *throughput* side of the Sync-Switch evaluation: per-step
//! compute times on K80 GPUs with lognormal jitter, parameter/gradient
//! transfer over a collocated sharded parameter-server network, the BSP
//! barrier-and-coordination cost, ASP per-worker asynchronous progress with
//! measured staleness, transient straggler injection (added per-message
//! latency, as the paper emulates with network delays), elastic worker
//! removal, and the cluster init/switch overhead model of paper Table III.
//!
//! ## Step accounting
//!
//! Following the paper's configuration policy, the workload is counted in
//! *ASP-sized* steps (`B = 128` images each). One BSP round consumes one
//! mini-batch per active worker — `n` workload units — because BSP runs with
//! the scaled global batch `n·B`. This is why 64 K steps take ~8 000 BSP
//! rounds on 8 workers, and why total BSP time lands in the paper's range.
//!
//! Calibration constants are documented on [`NetworkModel`] and fitted so
//! the simulated ASP-over-BSP throughput ratios land near the paper's
//! Table I / Fig. 4 values (see `sync-switch-workloads::calibration`).

pub mod gpu;
pub mod network;
pub mod overhead;
pub mod sim;
pub mod ssp;
pub mod straggler;

pub use gpu::ComputeModel;
pub use network::NetworkModel;
pub use overhead::{ActuatorMode, OverheadModel, OverheadSample};
pub use sim::{ChunkStats, ClusterSim};
pub use straggler::{StragglerEpisode, StragglerScenario};
