//! Network and synchronization-cost model.
//!
//! ## Calibration
//!
//! Constants are fitted so the simulated ASP-over-BSP throughput ratios
//! match the paper (Table I / Fig. 4): ≈6.6× for ResNet32 on 8 workers,
//! ≈1.9× for ResNet50 on 8 workers, ≈14× for ResNet32 on 16 workers.
//!
//! * `BSP_COORD_*`: TensorFlow's synchronous-replica coordination cost per
//!   barrier round (session-run fan-out, per-variable synchronization,
//!   barrier bookkeeping). Grows superlinearly with cluster size, which is
//!   what makes BSP collapse at 16 workers in the paper.
//! * `ASP_APPLY_S_PER_MPARAM`: serialization cost of applying dense updates
//!   at the PSs under ASP, per million parameters — negligible for ResNet32,
//!   substantial for ResNet50 (this is why ASP's edge shrinks to ~1.9× for
//!   the larger model).

use sync_switch_workloads::ModelSpec;

/// Cluster network + synchronization cost model for a collocated
/// PS/worker deployment (one parameter shard per node).
#[derive(Debug, Clone)]
pub struct NetworkModel {
    /// Per-NIC bandwidth, bytes/second.
    pub bandwidth_bps: f64,
    /// Per-message base latency, seconds.
    pub base_latency_s: f64,
}

impl NetworkModel {
    /// BSP coordination cost constants: `c0 + c1·n + c2·n²` seconds/round.
    pub const BSP_COORD_C0: f64 = 0.05;
    /// Linear coordination term (per worker).
    pub const BSP_COORD_C1: f64 = 0.085;
    /// Quadratic coordination term (incast/synchronization contention).
    pub const BSP_COORD_C2: f64 = 0.0035;
    /// ASP server-side dense-update application cost, s per 10⁶ params.
    pub const ASP_APPLY_S_PER_MPARAM: f64 = 0.0068;

    /// GCP-era defaults: ~2 GB/s effective NIC bandwidth, 0.5 ms latency.
    pub fn gcp_default() -> Self {
        NetworkModel {
            bandwidth_bps: 2.0e9,
            base_latency_s: 0.0005,
        }
    }

    /// Time for one worker to exchange (push gradients + pull parameters)
    /// with the sharded PSs; the local shard (1/n of the volume) is free.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn exchange_time_s(&self, model: &ModelSpec, n: usize) -> f64 {
        assert!(n > 0, "cluster size must be positive");
        let remote_fraction = (n - 1) as f64 / n as f64;
        let bytes = 2.0 * model.param_bytes() as f64 * remote_fraction;
        bytes / self.bandwidth_bps + 2.0 * self.base_latency_s
    }

    /// BSP per-round coordination cost for `n` active workers.
    pub fn bsp_coordination_s(&self, n: usize) -> f64 {
        let nf = n as f64;
        Self::BSP_COORD_C0 + Self::BSP_COORD_C1 * nf + Self::BSP_COORD_C2 * nf * nf
    }

    /// ASP per-push server-side apply overhead for a model.
    pub fn asp_apply_overhead_s(&self, model: &ModelSpec) -> f64 {
        Self::ASP_APPLY_S_PER_MPARAM * model.param_count as f64 / 1e6
    }

    /// Extra per-step delay experienced by a straggler whose every message
    /// suffers `added_latency_s`: TensorFlow issues (at least) one RPC round
    /// per trainable variable, and these serialize on the slow link.
    pub fn straggler_step_penalty_s(&self, model: &ModelSpec, added_latency_s: f64) -> f64 {
        model.variable_count as f64 * added_latency_s
    }

    /// Calibrates a model against observed wire costs: least-squares fit of
    /// `seconds = latency + bytes / bandwidth` over `(bytes_per_op,
    /// seconds_per_op)` samples — e.g. the per-op means the real PS
    /// transport tier reports in its `TransportStats` (push acks are tens
    /// of bytes, pull replies carry the parameter slice, which is the size
    /// spread that makes the two-parameter fit identifiable).
    ///
    /// Returns `None` when the fit is unidentifiable or unphysical: fewer
    /// than two distinct message sizes, a non-positive fitted slope (byte
    /// volume not explaining any of the variance — latency-dominated
    /// samples), or a non-positive fitted intercept.
    pub fn fit_wire_samples(samples: &[(f64, f64)]) -> Option<NetworkModel> {
        let n = samples.len() as f64;
        if samples.len() < 2 {
            return None;
        }
        let mean_x = samples.iter().map(|&(b, _)| b).sum::<f64>() / n;
        let mean_y = samples.iter().map(|&(_, s)| s).sum::<f64>() / n;
        let var_x: f64 = samples.iter().map(|&(b, _)| (b - mean_x).powi(2)).sum();
        if var_x <= f64::EPSILON {
            return None; // all messages the same size: slope unidentifiable
        }
        let cov: f64 = samples
            .iter()
            .map(|&(b, s)| (b - mean_x) * (s - mean_y))
            .sum();
        let slope = cov / var_x; // seconds per byte
        let intercept = mean_y - slope * mean_x; // seconds
        if !(slope > 0.0 && intercept > 0.0 && slope.is_finite() && intercept.is_finite()) {
            return None;
        }
        Some(NetworkModel {
            bandwidth_bps: 1.0 / slope,
            base_latency_s: intercept,
        })
    }
}

impl Default for NetworkModel {
    fn default() -> Self {
        Self::gcp_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exchange_time_scales_with_model_size() {
        let net = NetworkModel::gcp_default();
        let small = net.exchange_time_s(&ModelSpec::resnet32(), 8);
        let big = net.exchange_time_s(&ModelSpec::resnet50(), 8);
        assert!(big > 20.0 * small, "small {small}, big {big}");
        // ResNet32: ~1.6 ms for 2 × 1.86 MB × 7/8 at 2 GB/s.
        assert!((0.001..0.005).contains(&small), "{small}");
    }

    #[test]
    fn coordination_grows_superlinearly() {
        let net = NetworkModel::gcp_default();
        let c8 = net.bsp_coordination_s(8);
        let c16 = net.bsp_coordination_s(16);
        assert!(c16 > 2.0 * c8, "c8 {c8}, c16 {c16}");
        assert!((0.8..1.2).contains(&c8), "c8 {c8}");
        assert!((2.0..2.8).contains(&c16), "c16 {c16}");
    }

    #[test]
    fn straggler_penalty_matches_fig4_scale() {
        let net = NetworkModel::gcp_default();
        // 10 ms per message over 36 variables ≈ 0.36 s per step.
        let p10 = net.straggler_step_penalty_s(&ModelSpec::resnet32(), 0.010);
        assert!((0.3..0.45).contains(&p10), "{p10}");
        let p30 = net.straggler_step_penalty_s(&ModelSpec::resnet32(), 0.030);
        assert!((p30 - 3.0 * p10).abs() < 1e-12);
    }

    #[test]
    fn wire_fit_recovers_latency_and_bandwidth() {
        // Synthetic samples from a known model: 20 µs latency, 1 GB/s.
        let latency = 20e-6;
        let bw = 1e9;
        let samples: Vec<(f64, f64)> = [64.0, 4_096.0, 262_144.0]
            .iter()
            .map(|&b| (b, latency + b / bw))
            .collect();
        let fit = NetworkModel::fit_wire_samples(&samples).expect("identifiable fit");
        assert!(
            (fit.base_latency_s - latency).abs() / latency < 1e-6,
            "{}",
            fit.base_latency_s
        );
        assert!(
            (fit.bandwidth_bps - bw).abs() / bw < 1e-6,
            "{}",
            fit.bandwidth_bps
        );
        // The calibrated model prices an exchange with the fitted numbers.
        let t = fit.exchange_time_s(&ModelSpec::resnet32(), 8);
        assert!(t > 0.0);
    }

    #[test]
    fn wire_fit_rejects_degenerate_samples() {
        // Too few samples.
        assert!(NetworkModel::fit_wire_samples(&[(100.0, 1e-4)]).is_none());
        // All messages the same size.
        assert!(NetworkModel::fit_wire_samples(&[(100.0, 1e-4), (100.0, 2e-4)]).is_none());
        // Bigger messages measured *faster* (negative slope): unphysical.
        assert!(NetworkModel::fit_wire_samples(&[(100.0, 2e-4), (1_000_000.0, 1e-4)]).is_none());
    }

    #[test]
    fn asp_apply_overhead_by_model() {
        let net = NetworkModel::gcp_default();
        let small = net.asp_apply_overhead_s(&ModelSpec::resnet32());
        let big = net.asp_apply_overhead_s(&ModelSpec::resnet50());
        assert!(small < 0.005, "{small}");
        assert!((0.1..0.25).contains(&big), "{big}");
    }
}
