//! The cluster simulator: BSP rounds, ASP event-driven progress.

use sync_switch_sim::{DetRng, EventQueue, SimTime};
use sync_switch_workloads::ExperimentSetup;

use crate::gpu::ComputeModel;
use crate::network::NetworkModel;
use crate::straggler::StragglerScenario;

/// Statistics of one simulated chunk of training steps.
#[derive(Debug, Clone)]
pub struct ChunkStats {
    /// Workload units completed (ASP-sized steps; one BSP round = `n`
    /// active-worker units).
    pub units: u64,
    /// Virtual time the chunk took.
    pub elapsed: SimTime,
    /// Per-worker *own-work* throughput in images/s — what a per-node
    /// profiler reports, and what the straggler detector consumes. Zero for
    /// inactive (removed) workers.
    pub per_worker_images_per_sec: Vec<f64>,
    /// Mean measured gradient staleness (0 under BSP).
    pub mean_staleness: f64,
}

impl ChunkStats {
    /// Cluster-level throughput in images/s for this chunk.
    pub fn cluster_images_per_sec(&self, batch: usize) -> f64 {
        if self.elapsed.as_secs() <= 0.0 {
            return 0.0;
        }
        (self.units as f64 * batch as f64) / self.elapsed.as_secs()
    }
}

/// Discrete-event simulator of one training cluster.
///
/// Time is virtual; a full 64 K-step job simulates in milliseconds. The
/// simulator exposes exactly the handles Sync-Switch's policies need:
/// chunked BSP/ASP execution, per-worker throughput (for straggler
/// detection), elastic worker removal, and straggler scenarios.
#[derive(Debug, Clone)]
pub struct ClusterSim {
    compute: ComputeModel,
    network: NetworkModel,
    n_workers: usize,
    active: Vec<bool>,
    scenario: StragglerScenario,
    per_worker_batch: usize,
    now: SimTime,
    units_done: u64,
    rngs: Vec<DetRng>,
    committed_lag: f64,
}

impl ClusterSim {
    /// Builds a simulator for an experiment setup with the paper's
    /// per-worker batch size.
    pub fn new(setup: &ExperimentSetup, seed: u64) -> Self {
        let root = DetRng::new(seed);
        let n = setup.cluster_size;
        ClusterSim {
            compute: ComputeModel::new(setup.workload.model.clone(), setup.gpu),
            network: NetworkModel::gcp_default(),
            n_workers: n,
            active: vec![true; n],
            scenario: StragglerScenario::none(),
            per_worker_batch: setup.workload.hyper.batch_size,
            now: SimTime::ZERO,
            units_done: 0,
            rngs: (0..n).map(|w| root.derive("worker", w as u64)).collect(),
            committed_lag: 0.0,
        }
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Total workload units completed so far.
    pub fn units_done(&self) -> u64 {
        self.units_done
    }

    /// Number of workers configured (including removed ones).
    pub fn cluster_size(&self) -> usize {
        self.n_workers
    }

    /// Number of currently active workers.
    pub fn active_count(&self) -> usize {
        self.active.iter().filter(|&&a| a).count()
    }

    /// Per-worker batch size currently in effect.
    pub fn batch(&self) -> usize {
        self.per_worker_batch
    }

    /// Sets the per-worker batch size (configuration policy).
    ///
    /// # Panics
    ///
    /// Panics if `batch == 0`.
    pub fn set_batch(&mut self, batch: usize) {
        assert!(batch > 0, "batch must be positive");
        self.per_worker_batch = batch;
    }

    /// Sets the committed-view lag added to SSP staleness predictions.
    ///
    /// The real PS tier's two-stage sync means a worker's pull observes the
    /// *committed* view, which trails the freshest pushes by a small,
    /// roughly constant number of updates. The event simulator's gate alone
    /// does not model that, so its SSP staleness under-predicts the real
    /// tier at tight bounds. Feeding the measured real-minus-sim delta back
    /// through this knob calibrates `run_ssp`'s reported `mean_staleness`;
    /// the event schedule (and thus `elapsed`) is untouched.
    ///
    /// # Panics
    ///
    /// Panics if `lag` is negative or non-finite.
    pub fn set_committed_view_lag(&mut self, lag: f64) {
        assert!(
            lag.is_finite() && lag >= 0.0,
            "committed-view lag must be finite and non-negative, got {lag}"
        );
        self.committed_lag = lag;
    }

    /// The committed-view lag currently folded into SSP staleness (0 until
    /// calibrated via [`ClusterSim::set_committed_view_lag`]).
    pub fn committed_view_lag(&self) -> f64 {
        self.committed_lag
    }

    /// Installs a straggler scenario.
    pub fn set_scenario(&mut self, scenario: StragglerScenario) {
        self.scenario = scenario;
    }

    /// The installed scenario.
    pub fn scenario(&self) -> &StragglerScenario {
        &self.scenario
    }

    /// Advances virtual time without doing work (switch/init overheads).
    ///
    /// # Panics
    ///
    /// Panics if `dt` is not a valid duration.
    pub fn advance(&mut self, dt: SimTime) {
        assert!(dt.is_valid_duration(), "advance requires a duration");
        self.now += dt;
    }

    /// Removes a worker from the cluster (elastic policy). Returns `false`
    /// if it was already inactive.
    ///
    /// # Panics
    ///
    /// Panics if `worker` is out of range or removal would empty the
    /// cluster.
    pub fn remove_worker(&mut self, worker: usize) -> bool {
        assert!(worker < self.n_workers, "worker {worker} out of range");
        if !self.active[worker] {
            return false;
        }
        assert!(self.active_count() > 1, "cannot remove the last worker");
        self.active[worker] = false;
        true
    }

    /// Restores all removed workers (elastic policy after BSP budget met).
    pub fn restore_all(&mut self) {
        self.active.iter_mut().for_each(|a| *a = true);
    }

    /// Worker indices currently experiencing a straggler episode.
    pub fn active_stragglers_now(&self) -> Vec<usize> {
        self.scenario.active_stragglers(self.now)
    }

    /// Whether a worker is currently active (not removed).
    pub(crate) fn is_active(&self, worker: usize) -> bool {
        self.active[worker]
    }

    /// Samples one worker's own-work step time (crate-internal: shared with
    /// the SSP extension).
    pub(crate) fn sample_own_step_time(&mut self, worker: usize, asp: bool) -> f64 {
        self.own_step_time(worker, asp)
    }

    /// Sets the clock directly (crate-internal: SSP event processing).
    pub(crate) fn set_now_for_ssp(&mut self, t: SimTime) {
        self.now = t;
    }

    /// Adds completed units (crate-internal: SSP accounting).
    pub(crate) fn add_units_done(&mut self, units: u64) {
        self.units_done += units;
    }

    /// One worker's own-work time for a step at the current virtual time:
    /// compute + PS exchange + any straggler penalty.
    fn own_step_time(&mut self, worker: usize, asp: bool) -> f64 {
        let batch = self.per_worker_batch;
        let compute = {
            let rng = &mut self.rngs[worker];
            self.compute.sample_time_s(batch, rng)
        };
        let exchange = self
            .network
            .exchange_time_s(self.compute.model(), self.n_workers);
        let added = self.scenario.added_latency(worker, self.now);
        let straggle = if added > 0.0 {
            self.network
                .straggler_step_penalty_s(self.compute.model(), added)
        } else {
            0.0
        };
        let apply = if asp {
            self.network.asp_apply_overhead_s(self.compute.model())
        } else {
            0.0
        };
        compute + exchange + straggle + apply
    }

    /// Runs BSP rounds until at least `units` workload units complete.
    ///
    /// Each round: every active worker computes one mini-batch; the round
    /// takes the *slowest* worker's time plus the coordination cost; `n_a`
    /// units complete.
    ///
    /// # Panics
    ///
    /// Panics if `units == 0` or no workers are active.
    pub fn run_bsp(&mut self, units: u64) -> ChunkStats {
        assert!(units > 0, "units must be positive");
        let active: Vec<usize> = (0..self.n_workers).filter(|&w| self.active[w]).collect();
        assert!(!active.is_empty(), "no active workers");
        let n_a = active.len() as u64;
        let rounds = units.div_ceil(n_a);
        let coord = self.network.bsp_coordination_s(active.len());
        let batch = self.per_worker_batch as f64;

        let mut own_work_time = vec![0.0f64; self.n_workers];
        let mut own_steps = vec![0u64; self.n_workers];
        let start = self.now;
        for _ in 0..rounds {
            let mut slowest = 0.0f64;
            for &w in &active {
                let t = self.own_step_time(w, false);
                own_work_time[w] += t;
                own_steps[w] += 1;
                slowest = slowest.max(t);
            }
            self.now += SimTime::from_secs(slowest + coord);
        }
        let done = rounds * n_a;
        self.units_done += done;

        let per_worker = (0..self.n_workers)
            .map(|w| {
                if own_steps[w] == 0 {
                    0.0
                } else {
                    own_steps[w] as f64 * batch / own_work_time[w]
                }
            })
            .collect();
        ChunkStats {
            units: done,
            elapsed: self.now - start,
            per_worker_images_per_sec: per_worker,
            mean_staleness: 0.0,
        }
    }

    /// Runs ASP until `units` pushes complete, event-driven: each worker
    /// progresses at its own pace; staleness is the number of other pushes
    /// applied between a worker's pull and its push.
    ///
    /// # Panics
    ///
    /// Panics if `units == 0` or no workers are active.
    pub fn run_asp(&mut self, units: u64) -> ChunkStats {
        assert!(units > 0, "units must be positive");
        let active: Vec<usize> = (0..self.n_workers).filter(|&w| self.active[w]).collect();
        assert!(!active.is_empty(), "no active workers");
        let batch = self.per_worker_batch as f64;
        let start = self.now;

        // Event payload: (worker, version at pull).
        let mut queue: EventQueue<(usize, u64)> = EventQueue::new();
        // Seed the queue at the current time.
        let mut pushes: u64 = 0;
        let base_now = self.now;
        let mut own_work_time = vec![0.0f64; self.n_workers];
        let mut own_steps = vec![0u64; self.n_workers];
        let mut staleness_sum: u64 = 0;

        // EventQueue starts its clock at zero; offset by base_now.
        for &w in &active {
            let t = self.own_step_time(w, true);
            own_work_time[w] += t;
            queue.schedule(SimTime::from_secs(t), (w, 0));
        }
        let mut last = SimTime::ZERO;
        while pushes < units {
            let (t, (w, pulled)) = queue.pop().expect("asp queue never empties mid-run");
            last = t;
            pushes += 1;
            staleness_sum += pushes - 1 - pulled;
            own_steps[w] += 1;
            if pushes < units {
                // Straggler windows are evaluated at the worker's current
                // virtual time.
                self.now = base_now + t;
                let dt = self.own_step_time(w, true);
                own_work_time[w] += dt;
                queue.schedule(t + SimTime::from_secs(dt), (w, pushes));
            }
        }
        self.now = base_now + last;
        self.units_done += units;

        let per_worker = (0..self.n_workers)
            .map(|w| {
                if own_steps[w] == 0 {
                    0.0
                } else {
                    own_steps[w] as f64 * batch / own_work_time[w]
                }
            })
            .collect();
        ChunkStats {
            units,
            elapsed: self.now - start,
            per_worker_images_per_sec: per_worker,
            mean_staleness: staleness_sum as f64 / units as f64,
        }
    }

    /// Analytic expected BSP round time (mean over sampled rounds) for the
    /// current configuration — used by the fast search-cost simulator.
    pub fn expected_bsp_round_s(&self) -> f64 {
        let mut probe = self.clone();
        probe.scenario = StragglerScenario::none();
        let stats = probe.run_bsp(2000 * probe.active_count() as u64);
        stats.elapsed.as_secs() / (stats.units as f64 / probe.active_count() as f64)
    }

    /// Analytic expected ASP time per workload unit.
    pub fn expected_asp_unit_s(&self) -> f64 {
        let mut probe = self.clone();
        probe.scenario = StragglerScenario::none();
        let stats = probe.run_asp(4000);
        stats.elapsed.as_secs() / stats.units as f64
    }

    /// ASP-over-BSP cluster-throughput ratio for the current configuration.
    pub fn asp_over_bsp_throughput(&self) -> f64 {
        let bsp_unit = self.expected_bsp_round_s() / self.active_count() as f64;
        bsp_unit / self.expected_asp_unit_s()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sync_switch_workloads::SetupId;

    fn sim(setup: SetupId, seed: u64) -> ClusterSim {
        ClusterSim::new(&ExperimentSetup::from_id(setup), seed)
    }

    #[test]
    fn bsp_unit_accounting() {
        let mut s = sim(SetupId::One, 1);
        let stats = s.run_bsp(64);
        assert_eq!(stats.units, 64); // 8 rounds × 8 workers
        assert_eq!(s.units_done(), 64);
        assert!(stats.elapsed.as_secs() > 0.0);
    }

    #[test]
    fn bsp_rounds_round_up() {
        let mut s = sim(SetupId::One, 2);
        let stats = s.run_bsp(60); // needs 8 rounds → 64 units
        assert_eq!(stats.units, 64);
    }

    #[test]
    fn asp_staleness_near_cluster_size() {
        let mut s = sim(SetupId::One, 3);
        let stats = s.run_asp(4000);
        // Homogeneous workers: staleness concentrates at n−1 = 7.
        assert!(
            (stats.mean_staleness - 7.0).abs() < 0.5,
            "mean staleness {}",
            stats.mean_staleness
        );
    }

    #[test]
    fn throughput_ratio_setup1_matches_paper_band() {
        let s = sim(SetupId::One, 4);
        let r = s.asp_over_bsp_throughput();
        // Paper: 6.59×; accept ±20%.
        assert!((5.3..7.9).contains(&r), "setup1 ASP/BSP ratio {r}");
    }

    #[test]
    fn throughput_ratio_setup2_matches_paper_band() {
        let s = sim(SetupId::Two, 5);
        let r = s.asp_over_bsp_throughput();
        // Paper: ≈1.86×; accept ±25%.
        assert!((1.4..2.4).contains(&r), "setup2 ASP/BSP ratio {r}");
    }

    #[test]
    fn throughput_ratio_setup3_matches_paper_band() {
        let s = sim(SetupId::Three, 6);
        let r = s.asp_over_bsp_throughput();
        // Paper: ≈13.9× (implied by Fig. 10a); accept ±25%.
        assert!((10.4..17.4).contains(&r), "setup3 ASP/BSP ratio {r}");
    }

    #[test]
    fn bsp_total_time_setup1_in_paper_range() {
        // 64 K units ≈ 8 K rounds ≈ 150–220 minutes (paper Fig. 11d: ~190).
        let s = sim(SetupId::One, 7);
        let round = s.expected_bsp_round_s();
        let total_min = round * 8000.0 / 60.0;
        assert!(
            (120.0..260.0).contains(&total_min),
            "BSP total {total_min} min"
        );
    }

    #[test]
    fn straggler_slows_bsp_but_not_asp_much() {
        let mut clean = sim(SetupId::One, 8);
        let bsp_clean = clean.run_bsp(800).elapsed.as_secs();
        let asp_clean = clean.run_asp(800).elapsed.as_secs();

        let mut slow = sim(SetupId::One, 8);
        slow.set_scenario(StragglerScenario::constant(1, 0.010));
        let bsp_slow = slow.run_bsp(800).elapsed.as_secs();
        let asp_slow = slow.run_asp(800).elapsed.as_secs();

        let bsp_hit = bsp_slow / bsp_clean;
        let asp_hit = asp_slow / asp_clean;
        assert!(bsp_hit > 1.25, "BSP should suffer: {bsp_hit}");
        assert!(asp_hit < 1.15, "ASP should shrug it off: {asp_hit}");
    }

    #[test]
    fn straggler_visible_in_worker_profile() {
        let mut s = sim(SetupId::One, 9);
        s.set_scenario(StragglerScenario::constant(1, 0.010));
        let stats = s.run_bsp(160);
        let straggler = stats.per_worker_images_per_sec[0];
        let healthy = stats.per_worker_images_per_sec[3];
        assert!(
            straggler < healthy * 0.5,
            "straggler {straggler} vs healthy {healthy}"
        );
    }

    #[test]
    fn elastic_removal_speeds_up_straggled_bsp() {
        let mut with_straggler = sim(SetupId::One, 10);
        with_straggler.set_scenario(StragglerScenario::constant(1, 0.030));
        let slow = with_straggler.run_bsp(700).elapsed.as_secs();

        let mut removed = sim(SetupId::One, 10);
        removed.set_scenario(StragglerScenario::constant(1, 0.030));
        removed.remove_worker(0);
        let fast = removed.run_bsp(700).elapsed.as_secs();
        assert!(fast < slow * 0.75, "removal should help: {fast} vs {slow}");
        removed.restore_all();
        assert_eq!(removed.active_count(), 8);
    }

    #[test]
    fn transient_episode_expires() {
        let mut s = sim(SetupId::One, 11);
        s.set_scenario(StragglerScenario::mild(0.0));
        assert_eq!(s.active_stragglers_now(), vec![0]);
        s.advance(SimTime::from_secs(150.0));
        assert!(s.active_stragglers_now().is_empty());
    }

    #[test]
    fn batch_size_throughput_scaling_fig8a() {
        // Larger global batch amortizes the per-round coordination cost
        // (paper Fig. 8a: up to ~2× throughput difference).
        let mut big = sim(SetupId::One, 12);
        big.set_batch(128);
        let t_big = big.run_bsp(1024);
        let thr_big = t_big.cluster_images_per_sec(128);

        let mut small = sim(SetupId::One, 12);
        small.set_batch(16); // global batch 128 instead of 1024
        let t_small = small.run_bsp(1024);
        let thr_small = t_small.cluster_images_per_sec(16);
        assert!(
            thr_big / thr_small > 1.8,
            "batch scaling ratio {}",
            thr_big / thr_small
        );
    }

    #[test]
    fn determinism_for_fixed_seed() {
        let mut a = sim(SetupId::One, 42);
        let mut b = sim(SetupId::One, 42);
        let ra = a.run_bsp(80);
        let rb = b.run_bsp(80);
        assert_eq!(ra.elapsed, rb.elapsed);
        let ra = a.run_asp(500);
        let rb = b.run_asp(500);
        assert_eq!(ra.elapsed, rb.elapsed);
        assert_eq!(ra.mean_staleness, rb.mean_staleness);
    }

    #[test]
    #[should_panic(expected = "cannot remove the last worker")]
    fn cannot_empty_cluster() {
        let mut s = sim(SetupId::One, 13);
        for w in 0..8 {
            s.remove_worker(w);
        }
    }
}
