//! Deterministic synthetic datasets with data-parallel sharding.
//!
//! The paper trains on CIFAR-10/100; this substrate substitutes procedurally
//! generated classification data of configurable difficulty (documented in
//! `DESIGN.md`). What matters for Sync-Switch is that workers train on
//! *disjoint shards* with real SGD dynamics, which these datasets provide.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use sync_switch_tensor::Tensor;

/// An in-memory labelled dataset: `[n, dim]` features plus integer labels.
#[derive(Debug, Clone)]
pub struct Dataset {
    x: Tensor,
    y: Vec<usize>,
    classes: usize,
}

impl Dataset {
    /// Builds a dataset from raw parts.
    ///
    /// # Panics
    ///
    /// Panics if `x` is not 2-D, row count differs from `y.len()`, or a
    /// label is out of range.
    pub fn from_parts(x: Tensor, y: Vec<usize>, classes: usize) -> Self {
        assert_eq!(x.rows(), y.len(), "feature/label count mismatch");
        assert!(classes > 0, "classes must be positive");
        assert!(
            y.iter().all(|&l| l < classes),
            "label out of range for {classes} classes"
        );
        Dataset { x, y, classes }
    }

    /// Gaussian blobs: class `c` is an isotropic Gaussian around a random
    /// unit-ish center; `spread` controls overlap (and therefore achievable
    /// accuracy). Fully determined by `seed`.
    ///
    /// # Panics
    ///
    /// Panics if any count is zero or `spread` is not positive.
    pub fn gaussian_blobs(
        classes: usize,
        per_class: usize,
        dim: usize,
        spread: f64,
        seed: u64,
    ) -> Self {
        assert!(classes > 0 && per_class > 0 && dim > 0, "empty dataset");
        assert!(spread > 0.0, "spread must be positive");
        let mut rng = StdRng::seed_from_u64(seed);
        let centers: Vec<Vec<f64>> = (0..classes)
            .map(|_| (0..dim).map(|_| rng.gen_range(-1.0..1.0)).collect())
            .collect();
        let n = classes * per_class;
        let mut data = Vec::with_capacity(n * dim);
        let mut labels = Vec::with_capacity(n);
        // Interleave classes so contiguous shards stay class-balanced.
        for i in 0..per_class {
            for (c, center) in centers.iter().enumerate() {
                let _ = i;
                for &cj in center {
                    data.push((cj + spread * normal(&mut rng)) as f32);
                }
                labels.push(c);
            }
        }
        Dataset {
            x: Tensor::from_vec(data, &[n, dim]),
            y: labels,
            classes,
        }
    }

    /// Procedural "images": each class is a distinct spatial pattern
    /// (stripes / checkers / gradients at class-dependent frequency and
    /// orientation) over a `side × side` grid plus Gaussian pixel noise.
    /// A stand-in for CIFAR with controllable difficulty.
    ///
    /// # Panics
    ///
    /// Panics if any count is zero or `noise` is negative.
    pub fn synthetic_images(
        classes: usize,
        per_class: usize,
        side: usize,
        noise: f64,
        seed: u64,
    ) -> Self {
        assert!(classes > 0 && per_class > 0 && side > 0, "empty dataset");
        assert!(noise >= 0.0, "noise must be non-negative");
        let mut rng = StdRng::seed_from_u64(seed);
        let dim = side * side;
        let n = classes * per_class;
        let mut data = Vec::with_capacity(n * dim);
        let mut labels = Vec::with_capacity(n);
        for i in 0..per_class {
            for c in 0..classes {
                let _ = i;
                let freq = 1.0 + (c % 4) as f64;
                let angle = (c as f64) * std::f64::consts::PI / classes as f64;
                let (ca, sa) = (angle.cos(), angle.sin());
                let phase = rng.gen_range(0.0..std::f64::consts::TAU);
                for r in 0..side {
                    for col in 0..side {
                        let u = (r as f64 / side as f64 - 0.5) * ca
                            + (col as f64 / side as f64 - 0.5) * sa;
                        let signal = (freq * std::f64::consts::TAU * u + phase).sin();
                        data.push((signal + noise * normal(&mut rng)) as f32);
                    }
                }
                labels.push(c);
            }
        }
        Dataset {
            x: Tensor::from_vec(data, &[n, dim]),
            y: labels,
            classes,
        }
    }

    /// Shifted-patterns signals: class `c` is a short class-specific
    /// waveform (a windowed sinusoid at class-dependent frequency) placed at
    /// a **uniformly random shift** within a `length`-sample signal, plus
    /// Gaussian noise. Because the class evidence can sit anywhere, locality
    /// matters: a convolutional detector finds the pattern at any shift,
    /// while a position-bound model has to learn every placement
    /// separately. Fully determined by `seed`.
    ///
    /// # Panics
    ///
    /// Panics if any count is zero, `length < 8`, or `noise` is negative.
    pub fn shifted_patterns(
        classes: usize,
        per_class: usize,
        length: usize,
        noise: f64,
        seed: u64,
    ) -> Self {
        assert!(classes > 0 && per_class > 0, "empty dataset");
        assert!(length >= 8, "signal too short for a pattern");
        assert!(noise >= 0.0, "noise must be non-negative");
        let mut rng = StdRng::seed_from_u64(seed);
        let width = 8usize;
        let n = classes * per_class;
        let mut data = Vec::with_capacity(n * length);
        let mut labels = Vec::with_capacity(n);
        // Interleave classes so contiguous shards stay class-balanced.
        for _ in 0..per_class {
            for c in 0..classes {
                // Class template: half-sine envelope × class frequency.
                let freq = 1.0 + c as f64;
                let shift = rng.gen_range(0..length - width + 1);
                for j in 0..length {
                    let signal = if (shift..shift + width).contains(&j) {
                        let u = (j - shift) as f64 / (width - 1) as f64;
                        let envelope = (std::f64::consts::PI * u).sin();
                        envelope * (std::f64::consts::TAU * freq * u).cos()
                    } else {
                        0.0
                    };
                    data.push((signal + noise * normal(&mut rng)) as f32);
                }
                labels.push(c);
            }
        }
        Dataset {
            x: Tensor::from_vec(data, &[n, length]),
            y: labels,
            classes,
        }
    }

    /// Zipf-sampled token sequences: each example is `tokens` integer token
    /// ids (carried as `f32`, the input an embedding layer expects) drawn
    /// from a Zipf distribution with exponent `skew` — a few head tokens
    /// dominate, the tail is rare, like real vocabularies. Class signal:
    /// each class owns a contiguous band of `vocab / classes` ids, and
    /// every token is drawn from the class band with probability 0.7
    /// (Zipf-ranked within the band) or from the shared global Zipf
    /// otherwise. Gradients of an embedding trained on this touch only the
    /// sampled rows, making it the canonical sparse-push workload.
    ///
    /// # Panics
    ///
    /// Panics if any count is zero, `vocab < classes`, or `skew` is not
    /// positive.
    pub fn zipf_tokens(
        classes: usize,
        per_class: usize,
        vocab: usize,
        tokens: usize,
        skew: f64,
        seed: u64,
    ) -> Self {
        assert!(classes > 0 && per_class > 0 && tokens > 0, "empty dataset");
        assert!(vocab >= classes, "vocab smaller than class count");
        assert!(skew > 0.0, "skew must be positive");
        let mut rng = StdRng::seed_from_u64(seed);
        let band = vocab / classes;
        let global_cdf = zipf_cdf(vocab, skew);
        let band_cdf = zipf_cdf(band, skew);
        let n = classes * per_class;
        let mut data = Vec::with_capacity(n * tokens);
        let mut labels = Vec::with_capacity(n);
        for _ in 0..per_class {
            for c in 0..classes {
                for _ in 0..tokens {
                    let id = if rng.gen::<f64>() < 0.7 {
                        c * band + zipf_draw(&band_cdf, &mut rng)
                    } else {
                        zipf_draw(&global_cdf, &mut rng)
                    };
                    data.push(id as f32);
                }
                labels.push(c);
            }
        }
        Dataset {
            x: Tensor::from_vec(data, &[n, tokens]),
            y: labels,
            classes,
        }
    }

    /// Number of examples.
    pub fn len(&self) -> usize {
        self.y.len()
    }

    /// Whether the dataset is empty (never true for validated constructors).
    pub fn is_empty(&self) -> bool {
        self.y.is_empty()
    }

    /// Feature dimension.
    pub fn dim(&self) -> usize {
        self.x.cols()
    }

    /// Number of classes.
    pub fn classes(&self) -> usize {
        self.classes
    }

    /// Features tensor.
    pub fn features(&self) -> &Tensor {
        &self.x
    }

    /// Labels slice.
    pub fn labels(&self) -> &[usize] {
        &self.y
    }

    /// Extracts the rows at `indices` as a `(features, labels)` batch.
    ///
    /// # Panics
    ///
    /// Panics if an index is out of bounds or `indices` is empty.
    pub fn batch(&self, indices: &[usize]) -> (Tensor, Vec<usize>) {
        assert!(!indices.is_empty(), "batch must be non-empty");
        let dim = self.dim();
        let mut data = Vec::with_capacity(indices.len() * dim);
        let mut labels = Vec::with_capacity(indices.len());
        for &i in indices {
            assert!(i < self.len(), "index {i} out of bounds");
            data.extend_from_slice(&self.x.data()[i * dim..(i + 1) * dim]);
            labels.push(self.y[i]);
        }
        (Tensor::from_vec(data, &[indices.len(), dim]), labels)
    }

    /// Draws a uniformly random batch of the given size.
    ///
    /// # Panics
    ///
    /// Panics if `batch_size == 0`.
    pub fn sample_batch<R: Rng>(&self, batch_size: usize, rng: &mut R) -> (Tensor, Vec<usize>) {
        assert!(batch_size > 0, "batch size must be positive");
        let indices: Vec<usize> = (0..batch_size)
            .map(|_| rng.gen_range(0..self.len()))
            .collect();
        self.batch(&indices)
    }

    /// Returns worker `k`'s shard under `n`-way data parallelism (contiguous
    /// block partition, as when the training data are "partitioned and
    /// offloaded to the workers", paper §II-A).
    ///
    /// # Panics
    ///
    /// Panics if `k >= n`, `n == 0`, or the dataset has fewer rows than `n`.
    pub fn shard(&self, k: usize, n: usize) -> Dataset {
        assert!(n > 0 && k < n, "invalid shard {k}/{n}");
        assert!(self.len() >= n, "dataset smaller than shard count");
        let per = self.len() / n;
        let start = k * per;
        let end = if k == n - 1 { self.len() } else { start + per };
        let indices: Vec<usize> = (start..end).collect();
        let (x, y) = self.batch(&indices);
        Dataset {
            x,
            y,
            classes: self.classes,
        }
    }

    /// Splits into `(train, test)` with `test_fraction` of rows held out
    /// from the tail.
    ///
    /// # Panics
    ///
    /// Panics if the split would leave either side empty.
    pub fn split(&self, test_fraction: f64) -> (Dataset, Dataset) {
        let test_n = ((self.len() as f64) * test_fraction).round() as usize;
        assert!(
            test_n > 0 && test_n < self.len(),
            "split leaves an empty side"
        );
        let train_idx: Vec<usize> = (0..self.len() - test_n).collect();
        let test_idx: Vec<usize> = (self.len() - test_n..self.len()).collect();
        let (tx, ty) = self.batch(&train_idx);
        let (ex, ey) = self.batch(&test_idx);
        (
            Dataset {
                x: tx,
                y: ty,
                classes: self.classes,
            },
            Dataset {
                x: ex,
                y: ey,
                classes: self.classes,
            },
        )
    }
}

/// Cumulative distribution of a Zipf law over ranks `0..n` with exponent
/// `s`: `P(k) ∝ 1 / (k + 1)^s`.
fn zipf_cdf(n: usize, s: f64) -> Vec<f64> {
    let mut cdf = Vec::with_capacity(n);
    let mut acc = 0.0;
    for k in 0..n {
        acc += 1.0 / ((k + 1) as f64).powf(s);
        cdf.push(acc);
    }
    let total = acc;
    for c in &mut cdf {
        *c /= total;
    }
    cdf
}

/// Draws a rank from a precomputed Zipf CDF by binary search.
fn zipf_draw<R: Rng>(cdf: &[f64], rng: &mut R) -> usize {
    let u: f64 = rng.gen();
    cdf.partition_point(|&c| c < u).min(cdf.len() - 1)
}

fn normal<R: Rng>(rng: &mut R) -> f64 {
    let u1: f64 = 1.0 - rng.gen::<f64>();
    let u2: f64 = rng.gen::<f64>();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn blobs_shape_and_determinism() {
        let a = Dataset::gaussian_blobs(3, 10, 4, 0.2, 5);
        let b = Dataset::gaussian_blobs(3, 10, 4, 0.2, 5);
        assert_eq!(a.len(), 30);
        assert_eq!(a.dim(), 4);
        assert_eq!(a.features().data(), b.features().data());
        let c = Dataset::gaussian_blobs(3, 10, 4, 0.2, 6);
        assert_ne!(a.features().data(), c.features().data());
    }

    #[test]
    fn images_have_class_structure() {
        let d = Dataset::synthetic_images(4, 8, 8, 0.05, 1);
        assert_eq!(d.len(), 32);
        assert_eq!(d.dim(), 64);
        assert_eq!(d.classes(), 4);
        assert!(d.labels().iter().all(|&l| l < 4));
    }

    #[test]
    fn batch_extracts_rows() {
        let d = Dataset::gaussian_blobs(2, 5, 3, 0.1, 0);
        let (x, y) = d.batch(&[0, 9]);
        assert_eq!(x.shape(), &[2, 3]);
        assert_eq!(y[0], d.labels()[0]);
        assert_eq!(y[1], d.labels()[9]);
        assert_eq!(&x.data()[0..3], &d.features().data()[0..3]);
    }

    #[test]
    fn shards_partition_the_data() {
        let d = Dataset::gaussian_blobs(4, 25, 3, 0.1, 2);
        let n = 4;
        let shards: Vec<Dataset> = (0..n).map(|k| d.shard(k, n)).collect();
        let total: usize = shards.iter().map(|s| s.len()).sum();
        assert_eq!(total, d.len());
        // Class interleaving keeps shards balanced.
        for s in &shards {
            for c in 0..4 {
                let count = s.labels().iter().filter(|&&l| l == c).count();
                assert!(count > 0, "shard missing class {c}");
            }
        }
        // Shards are disjoint: first rows differ.
        assert_ne!(
            &shards[0].features().data()[..3],
            &shards[1].features().data()[..3]
        );
    }

    #[test]
    fn last_shard_takes_remainder() {
        let d = Dataset::gaussian_blobs(1, 10, 2, 0.1, 3);
        let s0 = d.shard(0, 3);
        let s2 = d.shard(2, 3);
        assert_eq!(s0.len(), 3);
        assert_eq!(s2.len(), 4);
    }

    #[test]
    fn split_holds_out_tail() {
        let d = Dataset::gaussian_blobs(2, 50, 3, 0.1, 4);
        let (train, test) = d.split(0.2);
        assert_eq!(train.len(), 80);
        assert_eq!(test.len(), 20);
    }

    #[test]
    fn sample_batch_is_seeded() {
        let d = Dataset::gaussian_blobs(2, 50, 3, 0.1, 4);
        let mut r1 = StdRng::seed_from_u64(9);
        let mut r2 = StdRng::seed_from_u64(9);
        let (x1, y1) = d.sample_batch(16, &mut r1);
        let (x2, y2) = d.sample_batch(16, &mut r2);
        assert_eq!(x1.data(), x2.data());
        assert_eq!(y1, y2);
    }

    #[test]
    #[should_panic(expected = "invalid shard")]
    fn bad_shard_panics() {
        let d = Dataset::gaussian_blobs(2, 5, 2, 0.1, 0);
        let _ = d.shard(3, 3);
    }

    #[test]
    fn shifted_patterns_shape_and_determinism() {
        let a = Dataset::shifted_patterns(3, 10, 24, 0.05, 7);
        let b = Dataset::shifted_patterns(3, 10, 24, 0.05, 7);
        assert_eq!(a.len(), 30);
        assert_eq!(a.dim(), 24);
        assert_eq!(a.classes(), 3);
        assert_eq!(a.features().data(), b.features().data());
        assert_ne!(
            a.features().data(),
            Dataset::shifted_patterns(3, 10, 24, 0.05, 8)
                .features()
                .data()
        );
        // The pattern actually moves: two same-class examples with the
        // noiseless generator differ (different shifts).
        let clean = Dataset::shifted_patterns(2, 20, 24, 0.0, 1);
        let rows: Vec<&[f32]> = (0..clean.len())
            .filter(|&i| clean.labels()[i] == 0)
            .map(|i| &clean.features().data()[i * 24..(i + 1) * 24])
            .collect();
        assert!(
            rows.windows(2).any(|w| w[0] != w[1]),
            "every class-0 example sits at the same shift"
        );
    }

    #[test]
    fn zipf_tokens_are_valid_ids_with_head_mass() {
        let d = Dataset::zipf_tokens(4, 25, 64, 8, 1.1, 3);
        assert_eq!(d.len(), 100);
        assert_eq!(d.dim(), 8);
        let mut counts = vec![0usize; 64];
        for &raw in d.features().data() {
            assert!(raw >= 0.0 && raw.fract() == 0.0, "non-integer token {raw}");
            let id = raw as usize;
            assert!(id < 64, "token {id} out of vocab");
            counts[id] += 1;
        }
        // Zipf head: band-leading tokens (rank 0 of each class band) carry
        // far more mass than the band tails.
        let band = 64 / 4;
        let heads: usize = (0..4).map(|c| counts[c * band]).sum();
        let tails: usize = (0..4).map(|c| counts[c * band + band - 1]).sum();
        assert!(heads > 4 * tails.max(1), "no Zipf skew: {heads} vs {tails}");
        // Determinism.
        let e = Dataset::zipf_tokens(4, 25, 64, 8, 1.1, 3);
        assert_eq!(d.features().data(), e.features().data());
    }

    #[test]
    fn zipf_tokens_carry_class_signal() {
        let d = Dataset::zipf_tokens(2, 50, 32, 10, 1.0, 5);
        let band = 16;
        // Most tokens of a class-c example land in c's band.
        let mut in_band = 0usize;
        let mut total = 0usize;
        for i in 0..d.len() {
            let c = d.labels()[i];
            for &raw in &d.features().data()[i * 10..(i + 1) * 10] {
                let id = raw as usize;
                // Class 0's band doubles as the global Zipf head, so only
                // count class-1 rows for an unambiguous signal.
                if c == 1 {
                    total += 1;
                    if id / band == 1 {
                        in_band += 1;
                    }
                }
            }
        }
        assert!(
            in_band * 2 > total,
            "class band carries no signal: {in_band}/{total}"
        );
    }
}
