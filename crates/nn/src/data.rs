//! Deterministic synthetic datasets with data-parallel sharding.
//!
//! The paper trains on CIFAR-10/100; this substrate substitutes procedurally
//! generated classification data of configurable difficulty (documented in
//! `DESIGN.md`). What matters for Sync-Switch is that workers train on
//! *disjoint shards* with real SGD dynamics, which these datasets provide.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use sync_switch_tensor::Tensor;

/// An in-memory labelled dataset: `[n, dim]` features plus integer labels.
#[derive(Debug, Clone)]
pub struct Dataset {
    x: Tensor,
    y: Vec<usize>,
    classes: usize,
}

impl Dataset {
    /// Builds a dataset from raw parts.
    ///
    /// # Panics
    ///
    /// Panics if `x` is not 2-D, row count differs from `y.len()`, or a
    /// label is out of range.
    pub fn from_parts(x: Tensor, y: Vec<usize>, classes: usize) -> Self {
        assert_eq!(x.rows(), y.len(), "feature/label count mismatch");
        assert!(classes > 0, "classes must be positive");
        assert!(
            y.iter().all(|&l| l < classes),
            "label out of range for {classes} classes"
        );
        Dataset { x, y, classes }
    }

    /// Gaussian blobs: class `c` is an isotropic Gaussian around a random
    /// unit-ish center; `spread` controls overlap (and therefore achievable
    /// accuracy). Fully determined by `seed`.
    ///
    /// # Panics
    ///
    /// Panics if any count is zero or `spread` is not positive.
    pub fn gaussian_blobs(
        classes: usize,
        per_class: usize,
        dim: usize,
        spread: f64,
        seed: u64,
    ) -> Self {
        assert!(classes > 0 && per_class > 0 && dim > 0, "empty dataset");
        assert!(spread > 0.0, "spread must be positive");
        let mut rng = StdRng::seed_from_u64(seed);
        let centers: Vec<Vec<f64>> = (0..classes)
            .map(|_| (0..dim).map(|_| rng.gen_range(-1.0..1.0)).collect())
            .collect();
        let n = classes * per_class;
        let mut data = Vec::with_capacity(n * dim);
        let mut labels = Vec::with_capacity(n);
        // Interleave classes so contiguous shards stay class-balanced.
        for i in 0..per_class {
            for (c, center) in centers.iter().enumerate() {
                let _ = i;
                for &cj in center {
                    data.push((cj + spread * normal(&mut rng)) as f32);
                }
                labels.push(c);
            }
        }
        Dataset {
            x: Tensor::from_vec(data, &[n, dim]),
            y: labels,
            classes,
        }
    }

    /// Procedural "images": each class is a distinct spatial pattern
    /// (stripes / checkers / gradients at class-dependent frequency and
    /// orientation) over a `side × side` grid plus Gaussian pixel noise.
    /// A stand-in for CIFAR with controllable difficulty.
    ///
    /// # Panics
    ///
    /// Panics if any count is zero or `noise` is negative.
    pub fn synthetic_images(
        classes: usize,
        per_class: usize,
        side: usize,
        noise: f64,
        seed: u64,
    ) -> Self {
        assert!(classes > 0 && per_class > 0 && side > 0, "empty dataset");
        assert!(noise >= 0.0, "noise must be non-negative");
        let mut rng = StdRng::seed_from_u64(seed);
        let dim = side * side;
        let n = classes * per_class;
        let mut data = Vec::with_capacity(n * dim);
        let mut labels = Vec::with_capacity(n);
        for i in 0..per_class {
            for c in 0..classes {
                let _ = i;
                let freq = 1.0 + (c % 4) as f64;
                let angle = (c as f64) * std::f64::consts::PI / classes as f64;
                let (ca, sa) = (angle.cos(), angle.sin());
                let phase = rng.gen_range(0.0..std::f64::consts::TAU);
                for r in 0..side {
                    for col in 0..side {
                        let u = (r as f64 / side as f64 - 0.5) * ca
                            + (col as f64 / side as f64 - 0.5) * sa;
                        let signal = (freq * std::f64::consts::TAU * u + phase).sin();
                        data.push((signal + noise * normal(&mut rng)) as f32);
                    }
                }
                labels.push(c);
            }
        }
        Dataset {
            x: Tensor::from_vec(data, &[n, dim]),
            y: labels,
            classes,
        }
    }

    /// Number of examples.
    pub fn len(&self) -> usize {
        self.y.len()
    }

    /// Whether the dataset is empty (never true for validated constructors).
    pub fn is_empty(&self) -> bool {
        self.y.is_empty()
    }

    /// Feature dimension.
    pub fn dim(&self) -> usize {
        self.x.cols()
    }

    /// Number of classes.
    pub fn classes(&self) -> usize {
        self.classes
    }

    /// Features tensor.
    pub fn features(&self) -> &Tensor {
        &self.x
    }

    /// Labels slice.
    pub fn labels(&self) -> &[usize] {
        &self.y
    }

    /// Extracts the rows at `indices` as a `(features, labels)` batch.
    ///
    /// # Panics
    ///
    /// Panics if an index is out of bounds or `indices` is empty.
    pub fn batch(&self, indices: &[usize]) -> (Tensor, Vec<usize>) {
        assert!(!indices.is_empty(), "batch must be non-empty");
        let dim = self.dim();
        let mut data = Vec::with_capacity(indices.len() * dim);
        let mut labels = Vec::with_capacity(indices.len());
        for &i in indices {
            assert!(i < self.len(), "index {i} out of bounds");
            data.extend_from_slice(&self.x.data()[i * dim..(i + 1) * dim]);
            labels.push(self.y[i]);
        }
        (Tensor::from_vec(data, &[indices.len(), dim]), labels)
    }

    /// Draws a uniformly random batch of the given size.
    ///
    /// # Panics
    ///
    /// Panics if `batch_size == 0`.
    pub fn sample_batch<R: Rng>(&self, batch_size: usize, rng: &mut R) -> (Tensor, Vec<usize>) {
        assert!(batch_size > 0, "batch size must be positive");
        let indices: Vec<usize> = (0..batch_size)
            .map(|_| rng.gen_range(0..self.len()))
            .collect();
        self.batch(&indices)
    }

    /// Returns worker `k`'s shard under `n`-way data parallelism (contiguous
    /// block partition, as when the training data are "partitioned and
    /// offloaded to the workers", paper §II-A).
    ///
    /// # Panics
    ///
    /// Panics if `k >= n`, `n == 0`, or the dataset has fewer rows than `n`.
    pub fn shard(&self, k: usize, n: usize) -> Dataset {
        assert!(n > 0 && k < n, "invalid shard {k}/{n}");
        assert!(self.len() >= n, "dataset smaller than shard count");
        let per = self.len() / n;
        let start = k * per;
        let end = if k == n - 1 { self.len() } else { start + per };
        let indices: Vec<usize> = (start..end).collect();
        let (x, y) = self.batch(&indices);
        Dataset {
            x,
            y,
            classes: self.classes,
        }
    }

    /// Splits into `(train, test)` with `test_fraction` of rows held out
    /// from the tail.
    ///
    /// # Panics
    ///
    /// Panics if the split would leave either side empty.
    pub fn split(&self, test_fraction: f64) -> (Dataset, Dataset) {
        let test_n = ((self.len() as f64) * test_fraction).round() as usize;
        assert!(
            test_n > 0 && test_n < self.len(),
            "split leaves an empty side"
        );
        let train_idx: Vec<usize> = (0..self.len() - test_n).collect();
        let test_idx: Vec<usize> = (self.len() - test_n..self.len()).collect();
        let (tx, ty) = self.batch(&train_idx);
        let (ex, ey) = self.batch(&test_idx);
        (
            Dataset {
                x: tx,
                y: ty,
                classes: self.classes,
            },
            Dataset {
                x: ex,
                y: ey,
                classes: self.classes,
            },
        )
    }
}

fn normal<R: Rng>(rng: &mut R) -> f64 {
    let u1: f64 = 1.0 - rng.gen::<f64>();
    let u2: f64 = rng.gen::<f64>();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn blobs_shape_and_determinism() {
        let a = Dataset::gaussian_blobs(3, 10, 4, 0.2, 5);
        let b = Dataset::gaussian_blobs(3, 10, 4, 0.2, 5);
        assert_eq!(a.len(), 30);
        assert_eq!(a.dim(), 4);
        assert_eq!(a.features().data(), b.features().data());
        let c = Dataset::gaussian_blobs(3, 10, 4, 0.2, 6);
        assert_ne!(a.features().data(), c.features().data());
    }

    #[test]
    fn images_have_class_structure() {
        let d = Dataset::synthetic_images(4, 8, 8, 0.05, 1);
        assert_eq!(d.len(), 32);
        assert_eq!(d.dim(), 64);
        assert_eq!(d.classes(), 4);
        assert!(d.labels().iter().all(|&l| l < 4));
    }

    #[test]
    fn batch_extracts_rows() {
        let d = Dataset::gaussian_blobs(2, 5, 3, 0.1, 0);
        let (x, y) = d.batch(&[0, 9]);
        assert_eq!(x.shape(), &[2, 3]);
        assert_eq!(y[0], d.labels()[0]);
        assert_eq!(y[1], d.labels()[9]);
        assert_eq!(&x.data()[0..3], &d.features().data()[0..3]);
    }

    #[test]
    fn shards_partition_the_data() {
        let d = Dataset::gaussian_blobs(4, 25, 3, 0.1, 2);
        let n = 4;
        let shards: Vec<Dataset> = (0..n).map(|k| d.shard(k, n)).collect();
        let total: usize = shards.iter().map(|s| s.len()).sum();
        assert_eq!(total, d.len());
        // Class interleaving keeps shards balanced.
        for s in &shards {
            for c in 0..4 {
                let count = s.labels().iter().filter(|&&l| l == c).count();
                assert!(count > 0, "shard missing class {c}");
            }
        }
        // Shards are disjoint: first rows differ.
        assert_ne!(
            &shards[0].features().data()[..3],
            &shards[1].features().data()[..3]
        );
    }

    #[test]
    fn last_shard_takes_remainder() {
        let d = Dataset::gaussian_blobs(1, 10, 2, 0.1, 3);
        let s0 = d.shard(0, 3);
        let s2 = d.shard(2, 3);
        assert_eq!(s0.len(), 3);
        assert_eq!(s2.len(), 4);
    }

    #[test]
    fn split_holds_out_tail() {
        let d = Dataset::gaussian_blobs(2, 50, 3, 0.1, 4);
        let (train, test) = d.split(0.2);
        assert_eq!(train.len(), 80);
        assert_eq!(test.len(), 20);
    }

    #[test]
    fn sample_batch_is_seeded() {
        let d = Dataset::gaussian_blobs(2, 50, 3, 0.1, 4);
        let mut r1 = StdRng::seed_from_u64(9);
        let mut r2 = StdRng::seed_from_u64(9);
        let (x1, y1) = d.sample_batch(16, &mut r1);
        let (x2, y2) = d.sample_batch(16, &mut r2);
        assert_eq!(x1.data(), x2.data());
        assert_eq!(y1, y2);
    }

    #[test]
    #[should_panic(expected = "invalid shard")]
    fn bad_shard_panics() {
        let d = Dataset::gaussian_blobs(2, 5, 2, 0.1, 0);
        let _ = d.shard(3, 3);
    }
}
