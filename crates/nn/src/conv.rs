//! Convolutional layers: 1-D cross-correlation plus max pooling.
//!
//! These are the locality-exploiting building blocks the conv workload is
//! made of: a [`Conv1d`] bank of learned filters slides over the input
//! signal (so a class-identifying pattern is detected at any shift) and
//! [`MaxPool1d`] keeps only each window's strongest response, which is what
//! makes the detection shift-invariant. Structurally this is the paper's
//! convnet family at 1-D scale, the same way `ResidualBlock` stands in for
//! the ResNet block.

use rand::rngs::StdRng;
use rand::SeedableRng;

use sync_switch_tensor::{Init, Tensor};

use crate::layer::Layer;

/// 1-D convolution (cross-correlation) over a single-channel signal:
/// input `[batch, length]`, output `[batch, channels · (length − kernel + 1)]`
/// laid out channel-major (`c · out_len + t`), stride 1, no padding.
#[derive(Debug, Clone)]
pub struct Conv1d {
    /// `[channels, kernel]` filter bank.
    w: Tensor,
    /// `[channels]` per-filter bias.
    b: Tensor,
    gw: Tensor,
    gb: Tensor,
    cached_x: Option<Tensor>,
}

impl Conv1d {
    /// Creates a filter bank of `channels` filters of width `kernel`,
    /// He-normal initialized (suited to the ReLU that typically follows).
    ///
    /// # Panics
    ///
    /// Panics if `channels == 0` or `kernel == 0`.
    pub fn new(channels: usize, kernel: usize, seed: u64) -> Self {
        assert!(channels > 0 && kernel > 0, "empty filter bank");
        let mut rng = StdRng::seed_from_u64(seed);
        Conv1d {
            w: Init::HeNormal.tensor(&[channels, kernel], &mut rng),
            b: Tensor::zeros(&[channels]),
            gw: Tensor::zeros(&[channels, kernel]),
            gb: Tensor::zeros(&[channels]),
            cached_x: None,
        }
    }

    /// Number of output channels.
    pub fn channels(&self) -> usize {
        self.w.rows()
    }

    /// Filter width.
    pub fn kernel(&self) -> usize {
        self.w.cols()
    }

    /// Output length for an input signal of `length` samples.
    ///
    /// # Panics
    ///
    /// Panics if `length < kernel`.
    pub fn out_len(&self, length: usize) -> usize {
        assert!(
            length >= self.kernel(),
            "signal of {length} shorter than kernel {}",
            self.kernel()
        );
        length - self.kernel() + 1
    }
}

impl Layer for Conv1d {
    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }

    fn forward(&mut self, x: &Tensor) -> Tensor {
        let batch = x.rows();
        let length = x.cols();
        let (channels, kernel) = (self.channels(), self.kernel());
        let out_len = self.out_len(length);
        let mut y = Tensor::zeros(&[batch, channels * out_len]);
        let xd = x.data();
        let wd = self.w.data();
        let bd = self.b.data();
        let yd = y.data_mut();
        for r in 0..batch {
            let row = &xd[r * length..(r + 1) * length];
            let out = &mut yd[r * channels * out_len..(r + 1) * channels * out_len];
            for c in 0..channels {
                let filt = &wd[c * kernel..(c + 1) * kernel];
                for t in 0..out_len {
                    let mut acc = bd[c];
                    for (k, &wv) in filt.iter().enumerate() {
                        acc += wv * row[t + k];
                    }
                    out[c * out_len + t] = acc;
                }
            }
        }
        self.cached_x = Some(x.clone());
        y
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let x = self
            .cached_x
            .as_ref()
            .expect("backward called before forward");
        let batch = x.rows();
        let length = x.cols();
        let (channels, kernel) = (self.channels(), self.kernel());
        let out_len = length - kernel + 1;
        assert_eq!(grad_out.cols(), channels * out_len, "grad shape mismatch");
        // Overwrite, don't scale: `g *= 0.0` would turn a past Inf/NaN
        // gradient entry into a permanent NaN (0·Inf = NaN) instead of
        // recovering, unlike Dense which rebuilds its grads every backward.
        self.gw.data_mut().fill(0.0);
        self.gb.data_mut().fill(0.0);
        let mut gx = Tensor::zeros(&[batch, length]);
        let xd = x.data();
        let wd = self.w.data();
        let gd = grad_out.data();
        let gwd = self.gw.data_mut();
        let gbd = self.gb.data_mut();
        let gxd = gx.data_mut();
        for r in 0..batch {
            let row = &xd[r * length..(r + 1) * length];
            let gout = &gd[r * channels * out_len..(r + 1) * channels * out_len];
            let grow = &mut gxd[r * length..(r + 1) * length];
            for c in 0..channels {
                let filt = &wd[c * kernel..(c + 1) * kernel];
                let gfilt = &mut gwd[c * kernel..(c + 1) * kernel];
                for t in 0..out_len {
                    let g = gout[c * out_len + t];
                    gbd[c] += g;
                    for k in 0..kernel {
                        gfilt[k] += g * row[t + k];
                        grow[t + k] += g * filt[k];
                    }
                }
            }
        }
        gx
    }

    fn params(&self) -> Vec<&Tensor> {
        vec![&self.w, &self.b]
    }

    fn grads(&self) -> Vec<&Tensor> {
        vec![&self.gw, &self.gb]
    }

    fn params_mut(&mut self) -> Vec<&mut Tensor> {
        vec![&mut self.w, &mut self.b]
    }
}

/// Per-channel 1-D max pooling with window = stride, over the channel-major
/// layout [`Conv1d`] produces: input `[batch, channels · len]`, output
/// `[batch, channels · len / window]`. This is where shift invariance comes
/// from — within a window, the filter response survives wherever the
/// pattern sat.
#[derive(Debug, Clone)]
pub struct MaxPool1d {
    channels: usize,
    window: usize,
    /// Flat input index of each output element's maximum (valid after
    /// `forward`), plus the input shape needed to rebuild the gradient.
    argmax: Vec<usize>,
    in_shape: (usize, usize),
}

impl MaxPool1d {
    /// Creates a pooling layer over `channels` channels with the given
    /// `window` (stride = window).
    ///
    /// # Panics
    ///
    /// Panics if `channels == 0` or `window == 0`.
    pub fn new(channels: usize, window: usize) -> Self {
        assert!(channels > 0 && window > 0, "empty pooling");
        MaxPool1d {
            channels,
            window,
            argmax: Vec::new(),
            in_shape: (0, 0),
        }
    }

    /// Pooling window (= stride).
    pub fn window(&self) -> usize {
        self.window
    }
}

impl Layer for MaxPool1d {
    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }

    fn forward(&mut self, x: &Tensor) -> Tensor {
        let batch = x.rows();
        let cols = x.cols();
        assert_eq!(cols % self.channels, 0, "input not channel-major");
        let len = cols / self.channels;
        assert_eq!(
            len % self.window,
            0,
            "per-channel length {len} not divisible by window {}",
            self.window
        );
        let pooled = len / self.window;
        let mut y = Tensor::zeros(&[batch, self.channels * pooled]);
        self.argmax.clear();
        self.argmax.reserve(batch * self.channels * pooled);
        self.in_shape = (batch, cols);
        let xd = x.data();
        let yd = y.data_mut();
        for r in 0..batch {
            for c in 0..self.channels {
                let base = r * cols + c * len;
                for p in 0..pooled {
                    let start = base + p * self.window;
                    let mut best = start;
                    for i in start + 1..start + self.window {
                        if xd[i] > xd[best] {
                            best = i;
                        }
                    }
                    yd[r * self.channels * pooled + c * pooled + p] = xd[best];
                    self.argmax.push(best);
                }
            }
        }
        y
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let (batch, cols) = self.in_shape;
        assert!(batch > 0, "backward called before forward");
        assert_eq!(grad_out.len(), self.argmax.len(), "grad shape mismatch");
        let mut gx = Tensor::zeros(&[batch, cols]);
        let gxd = gx.data_mut();
        for (&src, &g) in self.argmax.iter().zip(grad_out.data()) {
            gxd[src] += g;
        }
        gx
    }

    fn params(&self) -> Vec<&Tensor> {
        Vec::new()
    }

    fn grads(&self) -> Vec<&Tensor> {
        Vec::new()
    }

    fn params_mut(&mut self) -> Vec<&mut Tensor> {
        Vec::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Central-difference check shared with `layer.rs` tests (duplicated
    /// here because test modules do not cross files).
    fn grad_check<L: Layer>(layer: &mut L, x: &Tensor) {
        let y = layer.forward(x);
        let ones = Tensor::full(y.shape(), 1.0);
        let gx = layer.backward(&ones);

        let analytic: Vec<Vec<f32>> = layer.grads().iter().map(|g| g.data().to_vec()).collect();
        let eps = 1e-3f32;
        for (pi, grads) in analytic.iter().enumerate() {
            for j in (0..grads.len()).step_by(3) {
                let orig = layer.params()[pi].data()[j];
                layer.params_mut()[pi].data_mut()[j] = orig + eps;
                let up = layer.forward(x).sum();
                layer.params_mut()[pi].data_mut()[j] = orig - eps;
                let dn = layer.forward(x).sum();
                layer.params_mut()[pi].data_mut()[j] = orig;
                let numeric = (up - dn) / (2.0 * eps);
                assert!(
                    (numeric - grads[j]).abs() < 2e-2 * (1.0 + numeric.abs()),
                    "param {pi}[{j}]: numeric {numeric} vs analytic {}",
                    grads[j]
                );
            }
        }
        for j in (0..x.len()).step_by(5) {
            let mut xp = x.clone();
            xp.data_mut()[j] += eps;
            let up = layer.forward(&xp).sum();
            xp.data_mut()[j] -= 2.0 * eps;
            let dn = layer.forward(&xp).sum();
            let numeric = (up - dn) / (2.0 * eps);
            assert!(
                (numeric - gx.data()[j]).abs() < 2e-2 * (1.0 + numeric.abs()),
                "input[{j}]: numeric {numeric} vs analytic {}",
                gx.data()[j]
            );
        }
    }

    fn sample_input(batch: usize, dim: usize) -> Tensor {
        let data: Vec<f32> = (0..batch * dim)
            .map(|i| ((i as f32 * 0.37).sin() * 1.3) + 0.11)
            .collect();
        Tensor::from_vec(data, &[batch, dim])
    }

    #[test]
    fn conv_forward_matches_hand_computation() {
        let mut conv = Conv1d::new(1, 2, 0);
        for p in conv.params_mut() {
            p.scale_assign(0.0);
        }
        // Filter [1, -1] with bias 0.5: discrete difference detector.
        conv.params_mut()[0]
            .data_mut()
            .copy_from_slice(&[1.0, -1.0]);
        conv.params_mut()[1].data_mut().copy_from_slice(&[0.5]);
        let x = Tensor::from_vec(vec![1.0, 3.0, 2.0, 2.0], &[1, 4]);
        let y = conv.forward(&x);
        assert_eq!(y.shape(), &[1, 3]);
        assert_eq!(y.data(), &[0.5 - 2.0, 0.5 + 1.0, 0.5]);
    }

    #[test]
    fn conv_output_is_shift_equivariant() {
        let mut conv = Conv1d::new(3, 4, 1);
        let mut sig = vec![0.0f32; 16];
        sig[3] = 1.0;
        sig[4] = -1.0;
        let mut shifted = vec![0.0f32; 16];
        shifted[8] = 1.0;
        shifted[9] = -1.0;
        let ya = conv.forward(&Tensor::from_vec(sig, &[1, 16]));
        let yb = conv.forward(&Tensor::from_vec(shifted, &[1, 16]));
        let out_len = conv.out_len(16);
        // The response to the shifted bump is the shifted response (where
        // both positions are interior).
        for c in 0..3 {
            for t in 0..out_len - 5 {
                let a = ya.data()[c * out_len + t];
                let b = yb.data()[c * out_len + t + 5];
                assert!((a - b).abs() < 1e-6, "channel {c} t {t}: {a} vs {b}");
            }
        }
    }

    #[test]
    fn conv_gradients_check() {
        let mut conv = Conv1d::new(3, 4, 2);
        grad_check(&mut conv, &sample_input(2, 11));
    }

    #[test]
    fn maxpool_selects_window_maxima() {
        let mut pool = MaxPool1d::new(2, 2);
        // 2 channels of length 4 → pooled length 2 each.
        let x = Tensor::from_vec(vec![1.0, 5.0, 2.0, 0.0, -3.0, -1.0, 7.0, 7.5], &[1, 8]);
        let y = pool.forward(&x);
        assert_eq!(y.shape(), &[1, 4]);
        assert_eq!(y.data(), &[5.0, 2.0, -1.0, 7.5]);
        // Gradient routes to the argmax positions only.
        let g = pool.backward(&Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[1, 4]));
        assert_eq!(g.data(), &[0.0, 1.0, 2.0, 0.0, 0.0, 3.0, 0.0, 4.0]);
    }

    #[test]
    fn maxpool_gradients_check() {
        // sample_input has no exact ties, so the max is differentiable at
        // every probed point.
        let mut pool = MaxPool1d::new(2, 3);
        grad_check(&mut pool, &sample_input(2, 12));
    }

    #[test]
    fn conv_param_counts() {
        let conv = Conv1d::new(6, 5, 0);
        assert_eq!(conv.param_count(), 6 * 5 + 6);
        assert_eq!(MaxPool1d::new(4, 2).param_count(), 0);
    }

    #[test]
    #[should_panic(expected = "backward called before forward")]
    fn conv_backward_before_forward_panics() {
        let mut conv = Conv1d::new(1, 2, 0);
        let _ = conv.backward(&Tensor::zeros(&[1, 3]));
    }

    #[test]
    #[should_panic(expected = "not divisible")]
    fn maxpool_rejects_ragged_windows() {
        let mut pool = MaxPool1d::new(1, 3);
        let _ = pool.forward(&sample_input(1, 8));
    }
}
