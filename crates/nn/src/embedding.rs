//! Token embedding with sparse gradients.
//!
//! The vocab-style workload the parameter server's sparse push path exists
//! for: the `[vocab, dim]` table dominates the model's parameter count, yet
//! one batch touches only the rows of the tokens it contains. `backward`
//! therefore writes only those rows (and reports them through
//! [`Layer::grad_nonzero_runs`]), so the worker loop can ship row-sized
//! updates instead of the full table.

use rand::rngs::StdRng;
use rand::SeedableRng;

use sync_switch_tensor::{Init, Tensor};

use crate::layer::Layer;

/// Mean-pooled token embedding: input `[batch, tokens]` of integer token
/// ids carried as `f32`, output `[batch, dim]` — the mean of the looked-up
/// table rows. The id gradient is identically zero (ids are not
/// differentiable), so `backward` returns zeros of the input shape.
#[derive(Debug, Clone)]
pub struct Embedding {
    /// `[vocab, dim]` embedding table.
    table: Tensor,
    /// `[vocab, dim]` gradient; only rows in `touched` are nonzero.
    grad: Tensor,
    /// Sorted, deduplicated rows written by the last `backward`.
    touched: Vec<usize>,
    /// Token ids of the cached batch, row-major.
    cached_ids: Vec<usize>,
    cached_tokens: usize,
}

impl Embedding {
    /// Creates a `[vocab, dim]` table with uniform init in `±1/√dim` (unit
    /// expected row norm, the classic embedding scale).
    ///
    /// # Panics
    ///
    /// Panics if `vocab == 0` or `dim == 0`.
    pub fn new(vocab: usize, dim: usize, seed: u64) -> Self {
        assert!(vocab > 0 && dim > 0, "empty embedding table");
        let mut rng = StdRng::seed_from_u64(seed);
        let limit = 1.0 / (dim as f64).sqrt();
        Embedding {
            table: Init::Uniform { limit }.tensor(&[vocab, dim], &mut rng),
            grad: Tensor::zeros(&[vocab, dim]),
            touched: Vec::new(),
            cached_ids: Vec::new(),
            cached_tokens: 0,
        }
    }

    /// Vocabulary size.
    pub fn vocab(&self) -> usize {
        self.table.rows()
    }

    /// Embedding dimension.
    pub fn dim(&self) -> usize {
        self.table.cols()
    }

    /// Rows written by the last `backward`, sorted ascending.
    pub fn touched_rows(&self) -> &[usize] {
        &self.touched
    }
}

impl Layer for Embedding {
    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }

    fn forward(&mut self, x: &Tensor) -> Tensor {
        let batch = x.rows();
        let tokens = x.cols();
        assert!(tokens > 0, "empty token rows");
        let dim = self.dim();
        let vocab = self.vocab();
        self.cached_ids.clear();
        self.cached_ids.reserve(batch * tokens);
        let mut y = Tensor::zeros(&[batch, dim]);
        let td = self.table.data();
        let yd = y.data_mut();
        let scale = 1.0 / tokens as f32;
        for (r, &raw) in x.data().iter().enumerate() {
            let id = raw as usize;
            assert!(
                raw >= 0.0 && id < vocab && raw.fract() == 0.0,
                "token id {raw} invalid for vocab {vocab}"
            );
            self.cached_ids.push(id);
            let out = &mut yd[(r / tokens) * dim..(r / tokens + 1) * dim];
            for (o, &t) in out.iter_mut().zip(&td[id * dim..(id + 1) * dim]) {
                *o += t * scale;
            }
        }
        self.cached_tokens = tokens;
        y
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let tokens = self.cached_tokens;
        assert!(tokens > 0, "backward called before forward");
        let batch = self.cached_ids.len() / tokens;
        let dim = self.dim();
        assert_eq!(grad_out.rows(), batch, "grad shape mismatch");
        assert_eq!(grad_out.cols(), dim, "grad shape mismatch");
        // Steady-state cost is O(touched), not O(vocab): only the rows the
        // previous batch wrote are re-zeroed.
        let gd = self.grad.data_mut();
        for &row in &self.touched {
            gd[row * dim..(row + 1) * dim].iter_mut().for_each(|g| {
                *g = 0.0;
            });
        }
        self.touched.clear();
        let scale = 1.0 / tokens as f32;
        let god = grad_out.data();
        for b in 0..batch {
            let g = &god[b * dim..(b + 1) * dim];
            for t in 0..tokens {
                let row = self.cached_ids[b * tokens + t];
                self.touched.push(row);
                for (acc, &gv) in gd[row * dim..(row + 1) * dim].iter_mut().zip(g) {
                    *acc += gv * scale;
                }
            }
        }
        self.touched.sort_unstable();
        self.touched.dedup();
        // Ids carry no gradient.
        Tensor::zeros(&[batch, tokens])
    }

    fn params(&self) -> Vec<&Tensor> {
        vec![&self.table]
    }

    fn grads(&self) -> Vec<&Tensor> {
        vec![&self.grad]
    }

    fn params_mut(&mut self) -> Vec<&mut Tensor> {
        vec![&mut self.table]
    }

    fn grad_nonzero_runs(&self, base: usize, out: &mut Vec<(usize, usize)>) -> bool {
        let dim = self.dim();
        for &row in &self.touched {
            out.push((base + row * dim, dim));
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ids(rows: &[&[usize]]) -> Tensor {
        let tokens = rows[0].len();
        let data: Vec<f32> = rows
            .iter()
            .flat_map(|r| r.iter().map(|&i| i as f32))
            .collect();
        Tensor::from_vec(data, &[rows.len(), tokens])
    }

    #[test]
    fn forward_mean_pools_rows() {
        let mut emb = Embedding::new(4, 2, 0);
        emb.params_mut()[0]
            .data_mut()
            .copy_from_slice(&[0.0, 0.0, 1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let y = emb.forward(&ids(&[&[1, 3], &[2, 2]]));
        assert_eq!(y.shape(), &[2, 2]);
        // Row 0: mean of rows 1 and 3 → (3, 4); row 1: row 2 → (3, 4).
        assert_eq!(y.data(), &[3.0, 4.0, 3.0, 4.0]);
    }

    #[test]
    fn backward_touches_only_seen_rows() {
        let mut emb = Embedding::new(8, 3, 1);
        let x = ids(&[&[2, 5], &[5, 5]]);
        let y = emb.forward(&x);
        let g = emb.backward(&Tensor::full(y.shape(), 1.0));
        // Ids carry no gradient.
        assert_eq!(g.shape(), x.shape());
        assert!(g.data().iter().all(|&v| v == 0.0));
        assert_eq!(emb.touched_rows(), &[2, 5]);
        let grad = emb.grads()[0];
        for row in 0..8 {
            let nz = grad.data()[row * 3..(row + 1) * 3]
                .iter()
                .any(|&v| v != 0.0);
            assert_eq!(nz, row == 2 || row == 5, "row {row}");
        }
        // Row 2 appears once out of 2 tokens in one example: grad 0.5 each.
        assert_eq!(&grad.data()[2 * 3..2 * 3 + 3], &[0.5, 0.5, 0.5]);
        // Row 5: 0.5 from example 0 plus 2 × 0.5 from example 1.
        assert_eq!(&grad.data()[5 * 3..5 * 3 + 3], &[1.5, 1.5, 1.5]);
    }

    #[test]
    fn stale_rows_are_rezeroed_between_backwards() {
        let mut emb = Embedding::new(6, 2, 2);
        let y = emb.forward(&ids(&[&[0, 1]]));
        emb.backward(&Tensor::full(y.shape(), 1.0));
        assert_eq!(emb.touched_rows(), &[0, 1]);
        let y = emb.forward(&ids(&[&[4, 4]]));
        emb.backward(&Tensor::full(y.shape(), 1.0));
        assert_eq!(emb.touched_rows(), &[4]);
        let grad = emb.grads()[0];
        assert!(grad.data()[..2 * 2].iter().all(|&v| v == 0.0), "stale rows");
        assert!(grad.data()[4 * 2..5 * 2].iter().all(|&v| v != 0.0));
    }

    #[test]
    fn table_gradient_matches_central_difference() {
        let mut emb = Embedding::new(5, 3, 3);
        let x = ids(&[&[0, 2], &[2, 4]]);
        let y = emb.forward(&x);
        let ones = Tensor::full(y.shape(), 1.0);
        emb.backward(&ones);
        let analytic = emb.grads()[0].data().to_vec();
        let eps = 1e-3f32;
        for (j, &expected) in analytic.iter().enumerate() {
            let orig = emb.params()[0].data()[j];
            emb.params_mut()[0].data_mut()[j] = orig + eps;
            let up = emb.forward(&x).sum();
            emb.params_mut()[0].data_mut()[j] = orig - eps;
            let dn = emb.forward(&x).sum();
            emb.params_mut()[0].data_mut()[j] = orig;
            let numeric = (up - dn) / (2.0 * eps);
            assert!(
                (numeric - expected).abs() < 2e-2 * (1.0 + numeric.abs()),
                "table[{j}]: numeric {numeric} vs analytic {expected}"
            );
        }
    }

    #[test]
    fn sparse_runs_report_touched_rows() {
        let mut emb = Embedding::new(10, 4, 4);
        let y = emb.forward(&ids(&[&[7, 1]]));
        emb.backward(&Tensor::full(y.shape(), 1.0));
        let mut runs = Vec::new();
        assert!(emb.grad_nonzero_runs(100, &mut runs));
        assert_eq!(runs, vec![(100 + 4, 4), (100 + 28, 4)]);
    }

    #[test]
    #[should_panic(expected = "invalid for vocab")]
    fn out_of_vocab_id_panics() {
        let mut emb = Embedding::new(3, 2, 0);
        let _ = emb.forward(&ids(&[&[3]]));
    }

    #[test]
    #[should_panic(expected = "backward called before forward")]
    fn backward_before_forward_panics() {
        let mut emb = Embedding::new(3, 2, 0);
        let _ = emb.backward(&Tensor::zeros(&[1, 2]));
    }
}
