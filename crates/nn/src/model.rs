//! Sequential network container with flat parameter access.

use sync_switch_tensor::Tensor;

use crate::conv::{Conv1d, MaxPool1d};
use crate::embedding::Embedding;
use crate::layer::{Dense, Layer, Relu, ResidualBlock};
use crate::loss::SoftmaxCrossEntropy;

/// A feed-forward classification network: a stack of layers topped by
/// softmax cross-entropy.
///
/// All parameters can be flattened to / restored from a single `Vec<f32>`,
/// which is exactly the representation the parameter server shards across
/// nodes — mirroring how TensorFlow places variables on PSs.
pub struct Network {
    layers: Vec<Box<dyn Layer>>,
    loss: SoftmaxCrossEntropy,
    input_dim: usize,
    classes: usize,
}

impl Clone for Network {
    fn clone(&self) -> Self {
        Network {
            layers: self.layers.iter().map(|l| l.clone_box()).collect(),
            loss: self.loss.clone(),
            input_dim: self.input_dim,
            classes: self.classes,
        }
    }
}

impl std::fmt::Debug for Network {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Network")
            .field("layers", &self.layers.len())
            .field("input_dim", &self.input_dim)
            .field("classes", &self.classes)
            .field("param_count", &self.param_count())
            .finish()
    }
}

impl Network {
    /// Builds a plain MLP: `input → hidden… → classes` with ReLU between
    /// dense layers.
    ///
    /// # Panics
    ///
    /// Panics if `input_dim == 0` or `classes == 0`.
    pub fn mlp(input_dim: usize, hidden: &[usize], classes: usize, seed: u64) -> Self {
        assert!(input_dim > 0 && classes > 0, "dimensions must be positive");
        let mut layers: Vec<Box<dyn Layer>> = Vec::new();
        let mut prev = input_dim;
        for (i, &h) in hidden.iter().enumerate() {
            layers.push(Box::new(Dense::new(prev, h, seed.wrapping_add(i as u64))));
            layers.push(Box::new(Relu::new()));
            prev = h;
        }
        layers.push(Box::new(Dense::new(prev, classes, seed.wrapping_add(1000))));
        Network {
            layers,
            loss: SoftmaxCrossEntropy::new(),
            input_dim,
            classes,
        }
    }

    /// Builds a residual MLP: an input projection, `blocks` residual blocks
    /// of the given `width`, and a classifier head. This is the structural
    /// stand-in for the paper's ResNet32/ResNet50 workloads: deeper variants
    /// have more blocks and parameters, like ResNet50 vs ResNet32.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero.
    pub fn residual_mlp(
        input_dim: usize,
        width: usize,
        blocks: usize,
        classes: usize,
        seed: u64,
    ) -> Self {
        assert!(
            input_dim > 0 && width > 0 && classes > 0,
            "dimensions must be positive"
        );
        let mut layers: Vec<Box<dyn Layer>> = Vec::new();
        layers.push(Box::new(Dense::new(input_dim, width, seed)));
        layers.push(Box::new(Relu::new()));
        for b in 0..blocks {
            layers.push(Box::new(ResidualBlock::new(
                width,
                seed.wrapping_add(10 + 2 * b as u64),
            )));
        }
        layers.push(Box::new(Dense::new(width, classes, seed.wrapping_add(999))));
        Network {
            layers,
            loss: SoftmaxCrossEntropy::new(),
            input_dim,
            classes,
        }
    }

    /// Builds a 1-D convnet classifier: `Conv1d(channels, kernel)` over a
    /// single-channel signal of `length` samples, ReLU, per-channel max
    /// pooling with the given `pool` window, and a dense classifier head.
    /// The structural stand-in for the paper's convolutional workloads —
    /// the filters detect class patterns at any shift, which is what makes
    /// the workload's locality matter.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero, `length < kernel`, or the conv
    /// output length is not divisible by `pool`.
    pub fn conv1d_classifier(
        length: usize,
        channels: usize,
        kernel: usize,
        pool: usize,
        classes: usize,
        seed: u64,
    ) -> Self {
        assert!(
            length > 0 && channels > 0 && classes > 0,
            "dimensions must be positive"
        );
        let conv = Conv1d::new(channels, kernel, seed);
        let out_len = conv.out_len(length);
        assert_eq!(
            out_len % pool,
            0,
            "conv output {out_len} not divisible by pool {pool}"
        );
        let head_in = channels * (out_len / pool);
        let layers: Vec<Box<dyn Layer>> = vec![
            Box::new(conv),
            Box::new(Relu::new()),
            Box::new(MaxPool1d::new(channels, pool)),
            Box::new(Dense::new(head_in, classes, seed.wrapping_add(999))),
        ];
        Network {
            layers,
            loss: SoftmaxCrossEntropy::new(),
            input_dim: length,
            classes,
        }
    }

    /// Builds a vocab-style classifier with a sparse-gradient trunk: a
    /// mean-pooled `Embedding(vocab, dim)` over `tokens` token ids per
    /// example, a hidden dense layer, and a classifier head. The embedding
    /// table dominates the parameter count while each batch's gradient
    /// touches only the rows of the tokens it saw —
    /// [`Network::grad_nonzero_runs_into`] reports exactly those runs, so
    /// the parameter-server push path can ship only the touched rows.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero.
    pub fn embedding_classifier(
        vocab: usize,
        dim: usize,
        hidden: usize,
        tokens: usize,
        classes: usize,
        seed: u64,
    ) -> Self {
        assert!(
            vocab > 0 && dim > 0 && hidden > 0 && tokens > 0 && classes > 0,
            "dimensions must be positive"
        );
        let layers: Vec<Box<dyn Layer>> = vec![
            Box::new(Embedding::new(vocab, dim, seed)),
            Box::new(Dense::new(dim, hidden, seed.wrapping_add(1))),
            Box::new(Relu::new()),
            Box::new(Dense::new(hidden, classes, seed.wrapping_add(999))),
        ];
        Network {
            layers,
            loss: SoftmaxCrossEntropy::new(),
            input_dim: tokens,
            classes,
        }
    }

    /// Input feature dimension.
    pub fn input_dim(&self) -> usize {
        self.input_dim
    }

    /// Number of output classes.
    pub fn classes(&self) -> usize {
        self.classes
    }

    /// Total number of scalar parameters.
    pub fn param_count(&self) -> usize {
        self.layers.iter().map(|l| l.param_count()).sum()
    }

    /// Forward pass producing `[batch, classes]` logits.
    pub fn forward(&mut self, x: &Tensor) -> Tensor {
        let mut h = x.clone();
        for layer in &mut self.layers {
            h = layer.forward(&h);
        }
        h
    }

    /// Mean loss on a batch without touching gradients.
    pub fn loss(&mut self, x: &Tensor, labels: &[usize]) -> f32 {
        let logits = self.forward(x);
        self.loss.loss(&logits, labels)
    }

    /// Runs forward + backward, returning the mean loss and the flattened
    /// gradient vector (aligned with [`Network::params_flat`]).
    pub fn loss_and_grad(&mut self, x: &Tensor, labels: &[usize]) -> (f32, Vec<f32>) {
        let logits = self.forward(x);
        let (loss, mut grad) = self.loss.loss_and_grad(&logits, labels);
        for layer in self.layers.iter_mut().rev() {
            grad = layer.backward(&grad);
        }
        (loss, self.grads_flat())
    }

    /// Flattens all parameters into one vector (layer order, tensor order).
    pub fn params_flat(&self) -> Vec<f32> {
        let mut out = Vec::with_capacity(self.param_count());
        for layer in &self.layers {
            for p in layer.params() {
                out.extend_from_slice(p.data());
            }
        }
        out
    }

    /// Fills `out` with the sorted, disjoint `(offset, len)` runs of the
    /// flat gradient that the last backward pass could have written, and
    /// returns whether the gradient is sparse. Returns `false` (with `out`
    /// cleared) when every layer is dense — the caller should then treat
    /// the whole vector as live rather than enumerate one full-length run.
    /// Valid after [`Network::loss_and_grad`]; reuses `out`'s allocation.
    pub fn grad_nonzero_runs_into(&self, out: &mut Vec<(usize, usize)>) -> bool {
        out.clear();
        let mut sparse = false;
        let mut offset = 0;
        for layer in &self.layers {
            sparse |= layer.grad_nonzero_runs(offset, out);
            offset += layer.param_count();
        }
        if !sparse || out.is_empty() {
            out.clear();
            return false;
        }
        // Coalesce adjacent runs (layer order keeps them sorted): fewer,
        // longer segments mean fewer spans on the wire.
        let mut w = 0;
        for r in 1..out.len() {
            if out[w].0 + out[w].1 == out[r].0 {
                out[w].1 += out[r].1;
            } else {
                w += 1;
                out[w] = out[r];
            }
        }
        out.truncate(w + 1);
        true
    }

    /// Flattens all gradients into one vector (valid after
    /// [`Network::loss_and_grad`]).
    pub fn grads_flat(&self) -> Vec<f32> {
        let mut out = Vec::with_capacity(self.param_count());
        for layer in &self.layers {
            for g in layer.grads() {
                out.extend_from_slice(g.data());
            }
        }
        out
    }

    /// Restores all parameters from a flat vector.
    ///
    /// # Panics
    ///
    /// Panics if `flat.len()` differs from [`Network::param_count`].
    pub fn set_params_flat(&mut self, flat: &[f32]) {
        assert_eq!(
            flat.len(),
            self.param_count(),
            "flat parameter vector has wrong length"
        );
        let mut offset = 0;
        for layer in &mut self.layers {
            for p in layer.params_mut() {
                let n = p.len();
                p.data_mut().copy_from_slice(&flat[offset..offset + n]);
                offset += n;
            }
        }
    }

    /// Predicted class per row.
    pub fn predict(&mut self, x: &Tensor) -> Vec<usize> {
        self.forward(x).argmax_rows()
    }

    /// Top-1 accuracy on a labelled set.
    pub fn accuracy_on(&mut self, x: &Tensor, labels: &[usize]) -> f64 {
        crate::metrics::accuracy(&self.forward(x), labels)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mlp_shapes_and_counts() {
        let net = Network::mlp(8, &[16, 12], 4, 0);
        // 8*16+16 + 16*12+12 + 12*4+4 = 144+204+52
        assert_eq!(net.param_count(), 144 + 204 + 52);
        assert_eq!(net.input_dim(), 8);
        assert_eq!(net.classes(), 4);
    }

    #[test]
    fn forward_output_shape() {
        let mut net = Network::mlp(6, &[10], 3, 1);
        let x = Tensor::zeros(&[5, 6]);
        assert_eq!(net.forward(&x).shape(), &[5, 3]);
    }

    #[test]
    fn params_flat_round_trip() {
        let mut net = Network::residual_mlp(4, 8, 2, 3, 2);
        let flat = net.params_flat();
        assert_eq!(flat.len(), net.param_count());
        let mut changed = flat.clone();
        for v in &mut changed {
            *v += 0.5;
        }
        net.set_params_flat(&changed);
        assert_eq!(net.params_flat(), changed);
    }

    #[test]
    fn grads_align_with_params() {
        let mut net = Network::mlp(4, &[6], 2, 3);
        let x = Tensor::from_vec((0..8).map(|i| i as f32 * 0.1).collect(), &[2, 4]);
        let (_, grad) = net.loss_and_grad(&x, &[0, 1]);
        assert_eq!(grad.len(), net.param_count());
        assert!(grad.iter().any(|&g| g != 0.0), "gradient should be nonzero");
    }

    #[test]
    fn sgd_reduces_loss() {
        let mut net = Network::residual_mlp(8, 12, 2, 3, 4);
        let x = Tensor::from_vec(
            (0..64)
                .map(|i| ((i * 37 % 97) as f32) / 97.0 - 0.5)
                .collect(),
            &[8, 8],
        );
        let labels: Vec<usize> = (0..8).map(|i| i % 3).collect();
        let initial = net.loss(&x, &labels);
        for _ in 0..400 {
            let (_, grad) = net.loss_and_grad(&x, &labels);
            let mut p = net.params_flat();
            for (pv, gv) in p.iter_mut().zip(&grad) {
                *pv -= 0.1 * gv;
            }
            net.set_params_flat(&p);
        }
        let trained = net.loss(&x, &labels);
        assert!(
            trained < initial * 0.5,
            "loss {initial} -> {trained} did not improve enough"
        );
    }

    #[test]
    fn clone_is_independent() {
        let mut a = Network::mlp(3, &[4], 2, 0);
        let mut b = a.clone();
        assert_eq!(a.params_flat(), b.params_flat());
        let mut p = b.params_flat();
        p[0] += 1.0;
        b.set_params_flat(&p);
        assert_ne!(a.params_flat(), b.params_flat());
        // Both still train independently.
        let x = Tensor::zeros(&[1, 3]);
        let _ = a.loss_and_grad(&x, &[0]);
        let _ = b.loss_and_grad(&x, &[1]);
    }

    #[test]
    fn identical_seeds_build_identical_networks() {
        let a = Network::residual_mlp(5, 7, 3, 4, 42);
        let b = Network::residual_mlp(5, 7, 3, 4, 42);
        assert_eq!(a.params_flat(), b.params_flat());
        let c = Network::residual_mlp(5, 7, 3, 4, 43);
        assert_ne!(a.params_flat(), c.params_flat());
    }

    #[test]
    #[should_panic(expected = "wrong length")]
    fn bad_flat_length_panics() {
        let mut net = Network::mlp(3, &[], 2, 0);
        net.set_params_flat(&[0.0; 3]);
    }

    #[test]
    fn conv_classifier_shapes_and_counts() {
        // length 12, kernel 5 → out_len 8; pool 4 → 2 per channel.
        let mut net = Network::conv1d_classifier(12, 3, 5, 4, 4, 1);
        assert_eq!(net.input_dim(), 12);
        assert_eq!(net.param_count(), (3 * 5 + 3) + (3 * 2 * 4 + 4));
        let x = Tensor::zeros(&[5, 12]);
        assert_eq!(net.forward(&x).shape(), &[5, 4]);
        // Dense everywhere: no sparse runs reported.
        let (_, grad) = net.loss_and_grad(&x, &[0, 1, 2, 3, 0]);
        assert_eq!(grad.len(), net.param_count());
        let mut runs = Vec::new();
        assert!(!net.grad_nonzero_runs_into(&mut runs));
        assert!(runs.is_empty());
    }

    #[test]
    fn embedding_classifier_reports_sparse_runs() {
        let (vocab, dim, hidden, tokens, classes) = (20, 4, 6, 3, 2);
        let mut net = Network::embedding_classifier(vocab, dim, hidden, tokens, classes, 2);
        let table = vocab * dim;
        let head = (dim * hidden + hidden) + (hidden * classes + classes);
        assert_eq!(net.param_count(), table + head);
        // One example touching tokens {1, 7} (7 twice).
        let x = Tensor::from_vec(vec![7.0, 1.0, 7.0], &[1, tokens]);
        let (_, grad) = net.loss_and_grad(&x, &[1]);
        assert_eq!(grad.len(), net.param_count());
        let mut runs = Vec::new();
        assert!(net.grad_nonzero_runs_into(&mut runs));
        // Touched table rows 1 and 7, plus the dense head as one run.
        assert_eq!(runs, vec![(dim, dim), (7 * dim, dim), (table, head)]);
        // The runs cover every nonzero gradient entry.
        for (i, &g) in grad.iter().enumerate() {
            if g != 0.0 {
                assert!(
                    runs.iter().any(|&(o, l)| i >= o && i < o + l),
                    "nonzero grad at {i} outside the reported runs"
                );
            }
        }
    }

    #[test]
    fn embedding_adjacent_rows_coalesce() {
        let mut net = Network::embedding_classifier(10, 4, 3, 2, 2, 3);
        let x = Tensor::from_vec(vec![4.0, 5.0], &[1, 2]);
        net.loss_and_grad(&x, &[0]);
        let mut runs = Vec::new();
        assert!(net.grad_nonzero_runs_into(&mut runs));
        // Rows 4 and 5 are adjacent → one run of 2·dim.
        assert_eq!(runs[0], (16, 8));
        assert_eq!(runs.len(), 2, "rows + head: {runs:?}");
    }

    #[test]
    fn conv_classifier_learns_shifted_patterns() {
        let mut net = Network::conv1d_classifier(16, 4, 5, 4, 2, 5);
        // Two classes: a bump at a random-ish shift vs an alternating
        // pattern. SGD should separate them quickly.
        let mut data = Vec::new();
        let mut labels = Vec::new();
        for i in 0..16 {
            let mut row = vec![0.0f32; 16];
            if i % 2 == 0 {
                let s = (i * 3) % 11;
                row[s] = 1.5;
                row[s + 1] = 1.5;
                labels.push(0);
            } else {
                for (j, v) in row.iter_mut().enumerate() {
                    *v = if j % 2 == 0 { 0.8 } else { -0.8 };
                }
                labels.push(1);
            }
            data.extend_from_slice(&row);
        }
        let x = Tensor::from_vec(data, &[16, 16]);
        let initial = net.loss(&x, &labels);
        for _ in 0..200 {
            let (_, grad) = net.loss_and_grad(&x, &labels);
            let mut p = net.params_flat();
            for (pv, gv) in p.iter_mut().zip(&grad) {
                *pv -= 0.1 * gv;
            }
            net.set_params_flat(&p);
        }
        let trained = net.loss(&x, &labels);
        assert!(
            trained < initial * 0.5,
            "conv loss {initial} -> {trained} did not improve enough"
        );
    }
}
