//! Evaluation metrics.

use sync_switch_tensor::Tensor;

/// Top-1 accuracy of `[batch, classes]` logits against integer labels.
///
/// # Panics
///
/// Panics if `labels.len()` differs from the batch size.
///
/// # Example
///
/// ```
/// use sync_switch_tensor::Tensor;
/// use sync_switch_nn::accuracy;
///
/// let logits = Tensor::from_vec(vec![0.9, 0.1, 0.2, 0.8], &[2, 2]);
/// assert_eq!(accuracy(&logits, &[0, 1]), 1.0);
/// assert_eq!(accuracy(&logits, &[1, 1]), 0.5);
/// ```
pub fn accuracy(logits: &Tensor, labels: &[usize]) -> f64 {
    assert_eq!(logits.rows(), labels.len(), "labels/batch size mismatch");
    let preds = logits.argmax_rows();
    let correct = preds.iter().zip(labels).filter(|(p, l)| p == l).count();
    correct as f64 / labels.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_correct() {
        let logits = Tensor::from_vec(vec![1.0, 0.0, 0.0, 1.0], &[2, 2]);
        assert_eq!(accuracy(&logits, &[0, 1]), 1.0);
    }

    #[test]
    fn all_wrong() {
        let logits = Tensor::from_vec(vec![1.0, 0.0, 0.0, 1.0], &[2, 2]);
        assert_eq!(accuracy(&logits, &[1, 0]), 0.0);
    }

    #[test]
    #[should_panic(expected = "mismatch")]
    fn length_mismatch_panics() {
        let logits = Tensor::zeros(&[2, 2]);
        let _ = accuracy(&logits, &[0]);
    }
}
