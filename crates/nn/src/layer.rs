//! Layers with manual forward/backward passes.

use rand::rngs::StdRng;
use rand::SeedableRng;

use sync_switch_tensor::{Init, Tensor};

/// A differentiable layer.
///
/// `forward` caches whatever it needs for `backward`; `backward` consumes the
/// upstream gradient, fills the layer's parameter gradients, and returns the
/// gradient with respect to its input. Layers are `Send` so worker threads in
/// the parameter server can own model replicas.
pub trait Layer: Send {
    /// Computes the layer output for a `[batch, in]` input.
    fn forward(&mut self, x: &Tensor) -> Tensor;

    /// Clones the layer into a box (worker threads own model replicas).
    fn clone_box(&self) -> Box<dyn Layer>;

    /// Backpropagates `grad_out` (`[batch, out]`), returning `[batch, in]`.
    ///
    /// # Panics
    ///
    /// Implementations may panic if called before `forward`.
    fn backward(&mut self, grad_out: &Tensor) -> Tensor;

    /// Immutable views of the layer's parameter tensors.
    fn params(&self) -> Vec<&Tensor>;

    /// Immutable views of the layer's gradient tensors (valid after
    /// `backward`).
    fn grads(&self) -> Vec<&Tensor>;

    /// Mutable views of the layer's parameter tensors.
    fn params_mut(&mut self) -> Vec<&mut Tensor>;

    /// Total number of scalar parameters.
    fn param_count(&self) -> usize {
        self.params().iter().map(|p| p.len()).sum()
    }

    /// Appends the `(offset, len)` runs of this layer's possibly-nonzero
    /// gradient — relative to `base`, the layer's first index in the flat
    /// parameter vector — to `out`, in increasing offset order, and returns
    /// whether the gradient is *sparse*. The default (dense) implementation
    /// appends the full parameter range and returns `false`; a sparse layer
    /// (e.g. [`crate::Embedding`]) appends only the runs its last
    /// `backward` actually wrote, which is what lets the parameter-server
    /// worker loop ship row-sized updates instead of the whole tensor.
    fn grad_nonzero_runs(&self, base: usize, out: &mut Vec<(usize, usize)>) -> bool {
        let n = self.param_count();
        if n > 0 {
            out.push((base, n));
        }
        false
    }
}

/// Fully-connected layer: `y = x·W + b`.
#[derive(Debug, Clone)]
pub struct Dense {
    w: Tensor,
    b: Tensor,
    gw: Tensor,
    gb: Tensor,
    cached_x: Option<Tensor>,
}

impl Dense {
    /// Creates a dense layer with He-normal weights and zero biases.
    pub fn new(fan_in: usize, fan_out: usize, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        Dense {
            w: Init::HeNormal.tensor(&[fan_in, fan_out], &mut rng),
            b: Tensor::zeros(&[fan_out]),
            gw: Tensor::zeros(&[fan_in, fan_out]),
            gb: Tensor::zeros(&[fan_out]),
            cached_x: None,
        }
    }

    /// Input dimension.
    pub fn fan_in(&self) -> usize {
        self.w.rows()
    }

    /// Output dimension.
    pub fn fan_out(&self) -> usize {
        self.w.cols()
    }
}

impl Layer for Dense {
    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }

    fn forward(&mut self, x: &Tensor) -> Tensor {
        let mut y = x.matmul(&self.w);
        y.add_row_vector(&self.b);
        self.cached_x = Some(x.clone());
        y
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let x = self
            .cached_x
            .as_ref()
            .expect("backward called before forward");
        self.gw = x.t_matmul(grad_out);
        self.gb = grad_out.sum_rows();
        grad_out.matmul_t(&self.w)
    }

    fn params(&self) -> Vec<&Tensor> {
        vec![&self.w, &self.b]
    }

    fn grads(&self) -> Vec<&Tensor> {
        vec![&self.gw, &self.gb]
    }

    fn params_mut(&mut self) -> Vec<&mut Tensor> {
        vec![&mut self.w, &mut self.b]
    }
}

/// Rectified linear unit activation.
#[derive(Debug, Default, Clone)]
pub struct Relu {
    mask: Option<Tensor>,
}

impl Relu {
    /// Creates a ReLU layer.
    pub fn new() -> Self {
        Relu { mask: None }
    }
}

impl Layer for Relu {
    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }

    fn forward(&mut self, x: &Tensor) -> Tensor {
        let y = x.map(|v| v.max(0.0));
        self.mask = Some(x.map(|v| if v > 0.0 { 1.0 } else { 0.0 }));
        y
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let mask = self.mask.as_ref().expect("backward called before forward");
        grad_out.mul(mask)
    }

    fn params(&self) -> Vec<&Tensor> {
        Vec::new()
    }

    fn grads(&self) -> Vec<&Tensor> {
        Vec::new()
    }

    fn params_mut(&mut self) -> Vec<&mut Tensor> {
        Vec::new()
    }
}

/// A pre-activation residual block over a fixed width:
/// `y = x + W₂·relu(W₁·x + b₁) + b₂`.
///
/// This is the structural analogue of the ResNet basic block the paper's
/// workloads are built from — the skip connection gives the same
/// optimization behaviour (identity gradient path) at MLP scale.
#[derive(Debug, Clone)]
pub struct ResidualBlock {
    w1: Dense,
    relu: Relu,
    w2: Dense,
}

impl ResidualBlock {
    /// Creates a residual block of the given width.
    pub fn new(width: usize, seed: u64) -> Self {
        ResidualBlock {
            w1: Dense::new(width, width, seed),
            relu: Relu::new(),
            w2: Dense::new(width, width, seed.wrapping_add(1)),
        }
    }
}

impl Layer for ResidualBlock {
    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }

    fn forward(&mut self, x: &Tensor) -> Tensor {
        let h = self.w1.forward(x);
        let h = self.relu.forward(&h);
        let h = self.w2.forward(&h);
        h.add(x)
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let g = self.w2.backward(grad_out);
        let g = self.relu.backward(&g);
        let g = self.w1.backward(&g);
        g.add(grad_out)
    }

    fn params(&self) -> Vec<&Tensor> {
        let mut p = self.w1.params();
        p.extend(self.w2.params());
        p
    }

    fn grads(&self) -> Vec<&Tensor> {
        let mut g = self.w1.grads();
        g.extend(self.w2.grads());
        g
    }

    fn params_mut(&mut self) -> Vec<&mut Tensor> {
        let mut p = self.w1.params_mut();
        p.extend(self.w2.params_mut());
        p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Central-difference gradient check for a scalar loss `sum(layer(x))`.
    fn grad_check<L: Layer>(layer: &mut L, x: &Tensor) {
        let y = layer.forward(x);
        let ones = Tensor::full(y.shape(), 1.0);
        let gx = layer.backward(&ones);

        // Parameter gradients.
        let analytic: Vec<Vec<f32>> = layer.grads().iter().map(|g| g.data().to_vec()).collect();
        let eps = 1e-3f32;
        for (pi, grads) in analytic.iter().enumerate() {
            for j in (0..grads.len()).step_by(7) {
                let orig = layer.params()[pi].data()[j];
                layer.params_mut()[pi].data_mut()[j] = orig + eps;
                let up = layer.forward(x).sum();
                layer.params_mut()[pi].data_mut()[j] = orig - eps;
                let dn = layer.forward(x).sum();
                layer.params_mut()[pi].data_mut()[j] = orig;
                let numeric = (up - dn) / (2.0 * eps);
                assert!(
                    (numeric - grads[j]).abs() < 2e-2 * (1.0 + numeric.abs()),
                    "param {pi}[{j}]: numeric {numeric} vs analytic {}",
                    grads[j]
                );
            }
        }

        // Input gradients.
        for j in (0..x.len()).step_by(5) {
            let mut xp = x.clone();
            xp.data_mut()[j] += eps;
            let up = layer.forward(&xp).sum();
            xp.data_mut()[j] -= 2.0 * eps;
            let dn = layer.forward(&xp).sum();
            let numeric = (up - dn) / (2.0 * eps);
            assert!(
                (numeric - gx.data()[j]).abs() < 2e-2 * (1.0 + numeric.abs()),
                "input[{j}]: numeric {numeric} vs analytic {}",
                gx.data()[j]
            );
        }
    }

    fn sample_input(batch: usize, dim: usize) -> Tensor {
        let data: Vec<f32> = (0..batch * dim)
            .map(|i| ((i as f32 * 0.37).sin() * 1.3) + 0.11)
            .collect();
        Tensor::from_vec(data, &[batch, dim])
    }

    #[test]
    fn dense_forward_shape_and_bias() {
        let mut d = Dense::new(3, 2, 0);
        for p in d.params_mut() {
            p.scale_assign(0.0);
        }
        d.params_mut()[1].data_mut().copy_from_slice(&[1.0, -1.0]);
        let y = d.forward(&sample_input(4, 3));
        assert_eq!(y.shape(), &[4, 2]);
        assert_eq!(y.at(0, 0), 1.0);
        assert_eq!(y.at(3, 1), -1.0);
    }

    #[test]
    fn dense_gradients_check() {
        let mut d = Dense::new(5, 4, 1);
        grad_check(&mut d, &sample_input(3, 5));
    }

    #[test]
    fn relu_masks_negatives() {
        let mut r = Relu::new();
        let x = Tensor::from_vec(vec![-1.0, 2.0, -3.0, 4.0], &[2, 2]);
        let y = r.forward(&x);
        assert_eq!(y.data(), &[0.0, 2.0, 0.0, 4.0]);
        let g = r.backward(&Tensor::full(&[2, 2], 1.0));
        assert_eq!(g.data(), &[0.0, 1.0, 0.0, 1.0]);
    }

    #[test]
    fn residual_block_gradients_check() {
        // Seed 5 keeps every pre-activation at least 0.22 away from the ReLU
        // kink. (Seed 3 put one at -3.8e-4, inside the ±eps band of the
        // central difference, which invalidates the numeric gradient there —
        // the analytic gradient was already correct.)
        let mut b = ResidualBlock::new(6, 5);
        grad_check(&mut b, &sample_input(2, 6));
    }

    #[test]
    fn residual_block_is_identity_with_zero_weights() {
        let mut b = ResidualBlock::new(4, 0);
        for p in b.params_mut() {
            p.scale_assign(0.0);
        }
        let x = sample_input(2, 4);
        let y = b.forward(&x);
        assert_eq!(y, x);
    }

    #[test]
    fn param_counts() {
        let d = Dense::new(10, 5, 0);
        assert_eq!(d.param_count(), 55);
        let b = ResidualBlock::new(8, 0);
        assert_eq!(b.param_count(), 2 * (64 + 8));
        assert_eq!(Relu::new().param_count(), 0);
    }

    #[test]
    #[should_panic(expected = "backward called before forward")]
    fn backward_before_forward_panics() {
        let mut d = Dense::new(2, 2, 0);
        let _ = d.backward(&Tensor::zeros(&[1, 2]));
    }
}
