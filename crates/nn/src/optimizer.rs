//! SGD with momentum over flat parameter vectors.

/// Stochastic gradient descent with (heavy-ball) momentum, operating on flat
/// parameter/gradient vectors.
///
/// The update is the classic one used by the paper's ResNet training
/// (momentum 0.9): `v ← μ·v − η·g`, `p ← p + v`.
///
/// The optimizer lives server-side in the parameter-server architecture; the
/// learning rate is mutated externally by the schedule and the Sync-Switch
/// configuration policy (e.g. the `n·η` linear scaling rule under BSP).
///
/// # Example
///
/// ```
/// use sync_switch_nn::SgdMomentum;
/// let mut opt = SgdMomentum::new(2, 0.5, 0.0);
/// let mut p = vec![1.0f32, 2.0];
/// opt.apply(&mut p, &[1.0, 1.0]);
/// assert_eq!(p, vec![0.5, 1.5]);
/// ```
#[derive(Debug, Clone)]
pub struct SgdMomentum {
    lr: f64,
    momentum: f64,
    velocity: Vec<f32>,
}

impl SgdMomentum {
    /// Creates an optimizer for `param_count` parameters.
    ///
    /// # Panics
    ///
    /// Panics if `lr` is not finite-positive or `momentum` is outside
    /// `[0, 1)`.
    pub fn new(param_count: usize, lr: f64, momentum: f64) -> Self {
        assert!(lr.is_finite() && lr > 0.0, "lr must be positive");
        assert!(
            (0.0..1.0).contains(&momentum),
            "momentum must be in [0,1), got {momentum}"
        );
        SgdMomentum {
            lr,
            momentum,
            velocity: vec![0.0; param_count],
        }
    }

    /// Current learning rate.
    pub fn lr(&self) -> f64 {
        self.lr
    }

    /// Sets the learning rate (schedule decay / config-policy scaling).
    ///
    /// # Panics
    ///
    /// Panics if `lr` is not finite-positive.
    pub fn set_lr(&mut self, lr: f64) {
        assert!(lr.is_finite() && lr > 0.0, "lr must be positive");
        self.lr = lr;
    }

    /// Current momentum coefficient.
    pub fn momentum(&self) -> f64 {
        self.momentum
    }

    /// Sets the momentum coefficient (used by the momentum-scaling variants
    /// of the configuration policy, paper Fig. 8b).
    ///
    /// # Panics
    ///
    /// Panics if `momentum` is outside `[0, 1)`.
    pub fn set_momentum(&mut self, momentum: f64) {
        assert!(
            (0.0..1.0).contains(&momentum),
            "momentum must be in [0,1), got {momentum}"
        );
        self.momentum = momentum;
    }

    /// Applies one update step in place.
    ///
    /// # Panics
    ///
    /// Panics if `params` and `grad` lengths differ from the optimizer's
    /// parameter count.
    pub fn apply(&mut self, params: &mut [f32], grad: &[f32]) {
        assert_eq!(params.len(), self.velocity.len(), "params length mismatch");
        assert_eq!(grad.len(), self.velocity.len(), "grad length mismatch");
        let mu = self.momentum as f32;
        let lr = self.lr as f32;
        for ((p, v), g) in params.iter_mut().zip(&mut self.velocity).zip(grad) {
            *v = mu * *v - lr * g;
            *p += *v;
        }
    }

    /// Applies an update to a sub-range (a parameter shard): `params` and
    /// `grad` cover `[offset, offset + len)` of the full vector.
    ///
    /// # Panics
    ///
    /// Panics if the range exceeds the parameter count or the slices differ
    /// in length.
    pub fn apply_shard(&mut self, offset: usize, params: &mut [f32], grad: &[f32]) {
        assert_eq!(params.len(), grad.len(), "shard slice length mismatch");
        assert!(
            offset + params.len() <= self.velocity.len(),
            "shard out of range"
        );
        let mu = self.momentum as f32;
        let lr = self.lr as f32;
        let vel = &mut self.velocity[offset..offset + params.len()];
        for ((p, v), g) in params.iter_mut().zip(vel).zip(grad) {
            *v = mu * *v - lr * g;
            *p += *v;
        }
    }

    /// Resets accumulated velocity (used on protocol switch when momentum
    /// semantics change).
    pub fn reset_velocity(&mut self) {
        self.velocity.iter_mut().for_each(|v| *v = 0.0);
    }

    /// Snapshot of the velocity buffer (for checkpointing).
    pub fn velocity(&self) -> &[f32] {
        &self.velocity
    }

    /// Restores the velocity buffer from a checkpoint.
    ///
    /// # Panics
    ///
    /// Panics if the length differs.
    pub fn restore_velocity(&mut self, velocity: &[f32]) {
        assert_eq!(velocity.len(), self.velocity.len(), "velocity length");
        self.velocity.copy_from_slice(velocity);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plain_sgd_without_momentum() {
        let mut opt = SgdMomentum::new(3, 0.1, 0.0);
        let mut p = vec![1.0f32, 1.0, 1.0];
        opt.apply(&mut p, &[1.0, 2.0, 3.0]);
        assert_eq!(p, vec![0.9, 0.8, 0.7]);
    }

    #[test]
    fn momentum_accumulates() {
        let mut opt = SgdMomentum::new(1, 0.1, 0.9);
        let mut p = vec![0.0f32];
        opt.apply(&mut p, &[1.0]); // v = -0.1, p = -0.1
        opt.apply(&mut p, &[1.0]); // v = -0.19, p = -0.29
        assert!((p[0] + 0.29).abs() < 1e-6);
    }

    #[test]
    fn shard_updates_equal_full_update() {
        let grad: Vec<f32> = (0..10).map(|i| (i as f32).sin()).collect();
        let mut full = SgdMomentum::new(10, 0.05, 0.9);
        let mut sharded = SgdMomentum::new(10, 0.05, 0.9);
        let mut p_full: Vec<f32> = (0..10).map(|i| i as f32).collect();
        let mut p_shard = p_full.clone();
        for _ in 0..3 {
            full.apply(&mut p_full, &grad);
            let (a, b) = p_shard.split_at_mut(4);
            sharded.apply_shard(0, a, &grad[..4]);
            sharded.apply_shard(4, b, &grad[4..]);
        }
        for (x, y) in p_full.iter().zip(&p_shard) {
            assert!((x - y).abs() < 1e-6);
        }
    }

    #[test]
    fn lr_and_momentum_setters() {
        let mut opt = SgdMomentum::new(1, 0.1, 0.9);
        opt.set_lr(0.8);
        opt.set_momentum(0.0);
        assert_eq!(opt.lr(), 0.8);
        assert_eq!(opt.momentum(), 0.0);
    }

    #[test]
    fn velocity_checkpoint_round_trip() {
        let mut opt = SgdMomentum::new(2, 0.1, 0.9);
        let mut p = vec![1.0f32, 2.0];
        opt.apply(&mut p, &[0.5, -0.5]);
        let saved = opt.velocity().to_vec();
        opt.reset_velocity();
        assert!(opt.velocity().iter().all(|&v| v == 0.0));
        opt.restore_velocity(&saved);
        assert_eq!(opt.velocity(), saved.as_slice());
    }

    #[test]
    #[should_panic(expected = "momentum must be in [0,1)")]
    fn bad_momentum_panics() {
        let _ = SgdMomentum::new(1, 0.1, 1.0);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_grad_panics() {
        let mut opt = SgdMomentum::new(2, 0.1, 0.0);
        let mut p = vec![0.0f32, 0.0];
        opt.apply(&mut p, &[1.0]);
    }
}
