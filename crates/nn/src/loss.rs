//! Softmax cross-entropy loss.

use sync_switch_tensor::Tensor;

/// Numerically-stable softmax cross-entropy over class logits.
///
/// Matches the paper's training objective ("training loss is calculated
/// based on the cross-entropy loss function per mini-batch", §VI-A).
#[derive(Debug, Default, Clone)]
pub struct SoftmaxCrossEntropy;

impl SoftmaxCrossEntropy {
    /// Creates the loss function.
    pub fn new() -> Self {
        SoftmaxCrossEntropy
    }

    /// Row-wise softmax of `[batch, classes]` logits.
    pub fn softmax(&self, logits: &Tensor) -> Tensor {
        let (b, c) = (logits.rows(), logits.cols());
        let mut out = logits.clone();
        for i in 0..b {
            let row = &mut out.data_mut()[i * c..(i + 1) * c];
            let max = row.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
            let mut sum = 0.0;
            for v in row.iter_mut() {
                *v = (*v - max).exp();
                sum += *v;
            }
            for v in row.iter_mut() {
                *v /= sum;
            }
        }
        out
    }

    /// Mean cross-entropy loss of `[batch, classes]` logits against integer
    /// labels.
    ///
    /// # Panics
    ///
    /// Panics if `labels.len()` differs from the batch size or a label is
    /// out of range.
    pub fn loss(&self, logits: &Tensor, labels: &[usize]) -> f32 {
        let probs = self.softmax(logits);
        let (b, c) = (probs.rows(), probs.cols());
        assert_eq!(labels.len(), b, "labels/batch size mismatch");
        let mut total = 0.0;
        for (i, &y) in labels.iter().enumerate() {
            assert!(y < c, "label {y} out of range for {c} classes");
            total -= probs.data()[i * c + y].max(1e-12).ln();
        }
        total / b as f32
    }

    /// Loss plus gradient with respect to the logits:
    /// `(softmax − one_hot) / batch`.
    ///
    /// # Panics
    ///
    /// Panics if `labels.len()` differs from the batch size or a label is
    /// out of range.
    pub fn loss_and_grad(&self, logits: &Tensor, labels: &[usize]) -> (f32, Tensor) {
        let probs = self.softmax(logits);
        let (b, c) = (probs.rows(), probs.cols());
        assert_eq!(labels.len(), b, "labels/batch size mismatch");
        let mut grad = probs.clone();
        let mut total = 0.0;
        for (i, &y) in labels.iter().enumerate() {
            assert!(y < c, "label {y} out of range for {c} classes");
            total -= probs.data()[i * c + y].max(1e-12).ln();
            grad.data_mut()[i * c + y] -= 1.0;
        }
        grad.scale_assign(1.0 / b as f32);
        (total / b as f32, grad)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn softmax_rows_sum_to_one() {
        let l = SoftmaxCrossEntropy::new();
        let logits = Tensor::from_vec(vec![1.0, 2.0, 3.0, -1.0, 0.0, 1.0], &[2, 3]);
        let p = l.softmax(&logits);
        for i in 0..2 {
            let s: f32 = p.data()[i * 3..(i + 1) * 3].iter().sum();
            assert!((s - 1.0).abs() < 1e-6);
        }
        // Softmax is shift-invariant: both rows differ by a constant 2.
        for j in 0..3 {
            assert!((p.at(0, j) - p.at(1, j)).abs() < 1e-6);
        }
    }

    #[test]
    fn loss_of_uniform_logits_is_log_classes() {
        let l = SoftmaxCrossEntropy::new();
        let logits = Tensor::zeros(&[4, 10]);
        let labels = vec![0, 3, 7, 9];
        let loss = l.loss(&logits, &labels);
        assert!((loss - (10.0f32).ln()).abs() < 1e-5);
    }

    #[test]
    fn perfect_prediction_has_near_zero_loss() {
        let l = SoftmaxCrossEntropy::new();
        let mut logits = Tensor::zeros(&[2, 3]);
        *logits.at_mut(0, 1) = 50.0;
        *logits.at_mut(1, 2) = 50.0;
        assert!(l.loss(&logits, &[1, 2]) < 1e-6);
    }

    #[test]
    fn gradient_matches_numeric() {
        let l = SoftmaxCrossEntropy::new();
        let logits = Tensor::from_vec(vec![0.4, -0.2, 0.9, 1.1, 0.0, -0.7], &[2, 3]);
        let labels = vec![2, 0];
        let (_, grad) = l.loss_and_grad(&logits, &labels);
        let eps = 1e-3;
        for j in 0..logits.len() {
            let mut lp = logits.clone();
            lp.data_mut()[j] += eps;
            let up = l.loss(&lp, &labels);
            lp.data_mut()[j] -= 2.0 * eps;
            let dn = l.loss(&lp, &labels);
            let numeric = (up - dn) / (2.0 * eps);
            assert!(
                (numeric - grad.data()[j]).abs() < 1e-3,
                "logit {j}: {numeric} vs {}",
                grad.data()[j]
            );
        }
    }

    #[test]
    fn numerical_stability_with_huge_logits() {
        let l = SoftmaxCrossEntropy::new();
        let logits = Tensor::from_vec(vec![1000.0, -1000.0], &[1, 2]);
        let (loss, grad) = l.loss_and_grad(&logits, &[0]);
        assert!(loss.is_finite());
        assert!(grad.is_finite());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_label_panics() {
        let l = SoftmaxCrossEntropy::new();
        let _ = l.loss(&Tensor::zeros(&[1, 3]), &[5]);
    }
}
