//! Neural-network training substrate for the Sync-Switch reproduction.
//!
//! Implements, from scratch, everything the real-execution path of
//! Sync-Switch needs: layers with manual backpropagation, sequential and
//! residual models (structural stand-ins for the paper's ResNet family),
//! softmax cross-entropy loss, SGD with momentum, deterministic synthetic
//! datasets with data-parallel sharding, and evaluation metrics.
//!
//! Parameters and gradients can be flattened to `Vec<f32>` so the parameter
//! server in `sync-switch-ps` can shard and exchange them exactly like
//! TensorFlow exchanges variables with its PSs.
//!
//! # Example
//!
//! ```
//! use sync_switch_nn::{Dataset, Network, SgdMomentum};
//!
//! let data = Dataset::gaussian_blobs(4, 50, 8, 0.3, 1);
//! let mut net = Network::mlp(8, &[16], 4, 7);
//! let mut opt = SgdMomentum::new(net.param_count(), 0.1, 0.9);
//! let (x, y) = data.batch(&(0..32).collect::<Vec<_>>());
//! let before = net.loss(&x, &y);
//! for _ in 0..20 {
//!     let (_, grad) = net.loss_and_grad(&x, &y);
//!     let mut params = net.params_flat();
//!     opt.apply(&mut params, &grad);
//!     net.set_params_flat(&params);
//! }
//! assert!(net.loss(&x, &y) < before);
//! ```

pub mod conv;
pub mod data;
pub mod embedding;
pub mod layer;
pub mod loss;
pub mod metrics;
pub mod model;
pub mod optimizer;

pub use conv::{Conv1d, MaxPool1d};
pub use data::Dataset;
pub use embedding::Embedding;
pub use layer::{Dense, Layer, Relu, ResidualBlock};
pub use loss::SoftmaxCrossEntropy;
pub use metrics::accuracy;
pub use model::Network;
pub use optimizer::SgdMomentum;
pub use sync_switch_tensor::Tensor;
