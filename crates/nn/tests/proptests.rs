//! Property-based tests of the NN substrate.

use proptest::prelude::*;
use sync_switch_nn::{accuracy, Dataset, Network, SgdMomentum, SoftmaxCrossEntropy};
use sync_switch_tensor::Tensor;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Softmax rows always sum to 1 and all entries are in (0, 1].
    #[test]
    fn softmax_is_a_distribution(
        logits in proptest::collection::vec(-50.0f32..50.0, 12),
    ) {
        let l = SoftmaxCrossEntropy::new();
        let t = Tensor::from_vec(logits, &[3, 4]);
        let p = l.softmax(&t);
        for i in 0..3 {
            let row: f32 = p.data()[i * 4..(i + 1) * 4].iter().sum();
            prop_assert!((row - 1.0).abs() < 1e-5);
        }
        prop_assert!(p.data().iter().all(|&x| x > 0.0 && x <= 1.0));
    }

    /// Cross-entropy loss is non-negative and finite for bounded logits.
    #[test]
    fn loss_non_negative(
        logits in proptest::collection::vec(-100.0f32..100.0, 8),
        labels in proptest::collection::vec(0usize..4, 2),
    ) {
        let l = SoftmaxCrossEntropy::new();
        let t = Tensor::from_vec(logits, &[2, 4]);
        let loss = l.loss(&t, &labels);
        prop_assert!(loss >= -1e-6 && loss.is_finite());
    }

    /// Flat parameter round trips are exact for arbitrary architectures.
    #[test]
    fn params_flat_round_trip(
        hidden in proptest::collection::vec(1usize..12, 0..3),
        seed in any::<u64>(),
    ) {
        let mut net = Network::mlp(5, &hidden, 3, seed);
        let flat = net.params_flat();
        prop_assert_eq!(flat.len(), net.param_count());
        net.set_params_flat(&flat);
        prop_assert_eq!(net.params_flat(), flat);
    }

    /// Gradients are zero exactly when the loss is already minimal
    /// (perfectly confident correct prediction produces ~0 gradient).
    #[test]
    fn confident_correct_prediction_has_tiny_gradient(label in 0usize..3) {
        let l = SoftmaxCrossEntropy::new();
        let mut logits = Tensor::zeros(&[1, 3]);
        *logits.at_mut(0, label) = 100.0;
        let (loss, grad) = l.loss_and_grad(&logits, &[label]);
        prop_assert!(loss < 1e-6);
        prop_assert!(grad.data().iter().all(|g| g.abs() < 1e-6));
    }

    /// SGD with momentum equals plain SGD when momentum is zero.
    #[test]
    fn zero_momentum_is_plain_sgd(
        grads in proptest::collection::vec(-1.0f32..1.0, 6),
        lr in 0.001f64..1.0,
    ) {
        let mut opt = SgdMomentum::new(3, lr, 0.0);
        let mut p = vec![1.0f32, 2.0, 3.0];
        let mut manual = p.clone();
        for chunk in grads.chunks(3) {
            opt.apply(&mut p, chunk);
            for (m, g) in manual.iter_mut().zip(chunk) {
                *m -= lr as f32 * g;
            }
        }
        for (a, b) in p.iter().zip(&manual) {
            prop_assert!((a - b).abs() < 1e-5);
        }
    }

    /// Dataset shards partition the data: total length preserved, every
    /// shard non-empty, classes preserved.
    #[test]
    fn shards_partition(workers in 1usize..8, per_class in 4usize..12) {
        let d = Dataset::gaussian_blobs(3, per_class.max(workers), 4, 0.2, 11);
        let shards: Vec<Dataset> = (0..workers).map(|k| d.shard(k, workers)).collect();
        let total: usize = shards.iter().map(Dataset::len).sum();
        prop_assert_eq!(total, d.len());
        for s in &shards {
            prop_assert!(!s.is_empty());
            prop_assert_eq!(s.classes(), d.classes());
            prop_assert_eq!(s.dim(), d.dim());
        }
    }

    /// Accuracy is the fraction of argmax hits, always within [0, 1].
    #[test]
    fn accuracy_bounds(
        logits in proptest::collection::vec(-5.0f32..5.0, 20),
        labels in proptest::collection::vec(0usize..5, 4),
    ) {
        let t = Tensor::from_vec(logits, &[4, 5]);
        let a = accuracy(&t, &labels);
        prop_assert!((0.0..=1.0).contains(&a));
        prop_assert_eq!((a * 4.0).round(), a * 4.0); // quantized to 1/4ths
    }
}
