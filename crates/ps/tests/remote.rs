//! The cross-process client path, exercised in-process: [`TcpServerHost`]s
//! bound on real addresses (as `ps-serve` binds them) with a
//! [`NetRouter::connect`] client dialing them by address — no shared memory,
//! no transport-owned servers, exactly the object graph of a multi-process
//! cluster, minus the `fork()`. The true multi-process version runs in the
//! repo-root `tests/cluster.rs` harness under the CI `cluster` stage.

use std::net::SocketAddr;
use std::time::Duration;

use sync_switch_ps::config::RetryPolicy;
use sync_switch_ps::router::RouterBuffer;
use sync_switch_ps::supervisor::ServerSupervisor;
use sync_switch_ps::transport::{NetPort, NetRouter, TcpServerHost};
use sync_switch_ps::{PsError, ServerTopology, ShardRouter};

/// A quick retry policy so negative-path tests (dead server, deadline
/// exceeded) fail in milliseconds instead of the default multi-second
/// budget.
fn quick_retry() -> RetryPolicy {
    RetryPolicy {
        op_timeout_ms: 500,
        max_retries: 1,
        backoff_base_ms: 2,
        backoff_max_ms: 10,
    }
}

fn bind_tier(
    initial: &[f32],
    shards: usize,
    servers: usize,
) -> (Vec<TcpServerHost>, Vec<SocketAddr>) {
    let hosts: Vec<TcpServerHost> = (0..servers)
        .map(|s| TcpServerHost::bind("127.0.0.1:0", initial, shards, servers, s).expect("bind"))
        .collect();
    let addrs = hosts.iter().map(|h| h.local_addr()).collect();
    (hosts, addrs)
}

#[test]
fn remote_tier_matches_in_process_router() {
    let initial: Vec<f32> = (0..41).map(|i| (i as f32).sin()).collect();
    let grad: Vec<f32> = (0..41).map(|i| (i as f32).cos()).collect();
    let (_hosts, addrs) = bind_tier(&initial, 5, 2);
    let inproc = ShardRouter::new(&initial, 5, ServerTopology::new(2, 1));
    let net = NetPort::connect(initial.len(), 5, &addrs, 1, quick_retry()).expect("connect");
    let infos = net
        .router()
        .handshake(Duration::from_secs(5))
        .expect("handshake");
    assert_eq!(infos.len(), 2);
    assert!(infos[0].nonce != infos[1].nonce);
    for step in 0..4 {
        for g in 0..5 {
            let (o, l) = inproc.shard_range(g);
            assert_eq!(net.router().shard_range(g), (o, l));
            let a = inproc.apply_shard_update(g, &grad[o..o + l], 0.05, 0.9);
            let b = net.apply_shard_update(g, &grad[o..o + l], 0.05, 0.9);
            assert_eq!(a, b, "shard clock skew at step {step} shard {g}");
        }
        inproc.complete_push(step);
        net.router().complete_push(step);
        inproc.reconcile_if_due();
        net.router().reconcile_if_due();
    }
    assert_eq!(inproc.snapshot_params(), net.router().snapshot_params());
    assert_eq!(inproc.snapshot_velocity(), net.router().snapshot_velocity());
    let mut a = RouterBuffer::new();
    let mut b = RouterBuffer::new();
    let va = inproc.pull_committed_into(&mut a);
    let vb = net.pull_into(&mut b);
    assert_eq!(va, vb);
    assert_eq!(a.params(), b.params());
    assert!(net.router().is_finite());
}

#[test]
fn connect_rejects_inconsistent_shapes() {
    let addrs: Vec<SocketAddr> = vec!["127.0.0.1:9".parse().unwrap(); 5];
    // More servers than shards is never clamped for a remote tier.
    let err = NetRouter::connect(8, 2, &addrs, 1, quick_retry()).unwrap_err();
    assert!(matches!(err, PsError::InvalidConfig(_)), "{err}");
    assert!(NetRouter::connect(0, 2, &addrs[..1], 1, quick_retry()).is_err());
    assert!(NetRouter::connect(8, 0, &addrs[..1], 1, quick_retry()).is_err());
    assert!(NetRouter::connect(8, 2, &[], 1, quick_retry()).is_err());
}

#[test]
fn handshake_retries_until_the_server_binds() {
    let initial = vec![0.5f32; 12];
    // Reserve an address, then free it so the late-starting server can
    // claim it — the worker must keep dialing in the meantime.
    let addr = {
        let probe = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        probe.local_addr().unwrap()
    };
    let net = NetPort::connect(12, 3, &[addr], 1, quick_retry()).expect("connect");
    let late = {
        let initial = initial.clone();
        std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(300));
            TcpServerHost::bind(addr, &initial, 3, 1, 0).expect("late bind")
        })
    };
    // The handshake starts before the server exists and succeeds once it
    // binds. (A second process grabbing the reserved port in the window
    // would fail the late bind loudly, not hang the test.)
    let infos = net
        .router()
        .handshake(Duration::from_secs(10))
        .expect("handshake should wait out the late bind");
    assert_eq!(infos[0].shard_count, 3);
    let _host = late.join().expect("server thread");

    // An unreachable tier fails with a wire error once the deadline passes.
    let gone = {
        let probe = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        probe.local_addr().unwrap()
    };
    let net = NetPort::connect(12, 3, &[gone], 1, quick_retry()).expect("connect");
    let err = net
        .router()
        .handshake(Duration::from_millis(200))
        .unwrap_err();
    assert!(
        matches!(err, PsError::ConnLost { .. } | PsError::Timeout { .. }),
        "{err}"
    );
}

#[test]
fn handshake_rejects_a_server_with_a_different_spec() {
    // The server was launched as server 0 of a *1*-server tier; the worker
    // believes the tier has 2 servers. Shard ownership disagrees, so the
    // handshake must refuse rather than let pushes land on wrong shards.
    let initial = vec![1.0f32; 16];
    let host = TcpServerHost::bind("127.0.0.1:0", &initial, 4, 1, 0).expect("bind");
    let addrs = vec![host.local_addr(), host.local_addr()];
    let net = NetPort::connect(16, 4, &addrs, 1, quick_retry()).expect("connect");
    let err = net.router().handshake(Duration::from_secs(2)).unwrap_err();
    assert!(matches!(err, PsError::InvalidConfig(_)), "{err}");
}

#[test]
fn heal_respawned_detects_the_nonce_change_and_replays_state() {
    let initial: Vec<f32> = (0..24).map(|i| i as f32 * 0.1).collect();
    let (mut hosts, addrs) = bind_tier(&initial, 4, 2);
    let net = NetPort::connect(24, 4, &addrs, 1, quick_retry()).expect("connect");
    let r = net.router();
    r.handshake(Duration::from_secs(5)).expect("handshake");

    // Train a little, then checkpoint (records nonces alongside slices).
    for g in 0..r.shard_count() {
        let (_, l) = r.shard_range(g);
        net.apply_shard_update(g, &vec![1.0; l], 0.1, 0.9);
    }
    r.complete_push(0);
    r.drain();
    let expected = r.snapshot_params();
    let mut sup = ServerSupervisor::new(r.server_count());
    sup.checkpoint(r).expect("checkpoint");

    // Nothing respawned: heal is a no-op and must not touch state.
    assert_eq!(sup.heal_respawned(r, Duration::from_secs(1)).unwrap(), 0);
    assert_eq!(r.snapshot_params(), expected);

    // "SIGKILL" server 1: its host drops, the address goes dark.
    let addr1 = addrs[1];
    drop(hosts.pop().expect("host 1"));
    assert!(r.server_info(1).is_err(), "dead server must not answer");

    // Nobody respawns it: heal gives up at the deadline with ConnLost.
    let err = sup
        .heal_respawned(r, Duration::from_millis(300))
        .unwrap_err();
    assert_eq!(err, PsError::ConnLost { server: 1 });

    // "Respawn the process" at the same address: fresh instance, fresh
    // nonce, spec-initial state. SO_REUSEADDR makes the quick rebind safe.
    let respawned = TcpServerHost::bind(addr1, &initial, 4, 2, 1).expect("respawn");
    assert_eq!(respawned.local_addr(), addr1);
    assert_eq!(
        sup.heal_respawned(r, Duration::from_secs(5)).expect("heal"),
        1,
        "exactly the respawned server heals"
    );
    assert_eq!(r.snapshot_params(), expected, "checkpoint replayed");
    let mut buf = RouterBuffer::new();
    net.pull_into(&mut buf);
    assert_eq!(buf.params(), &expected[..], "restored state is committed");
}
