//! Integration tests of the message-passing transport tier: the same
//! BSP/ASP/SSP engine loops driving `PsServer`s behind the wire protocol,
//! over both the in-memory channel backend and loopback TCP.
//!
//! This file is also the CI `transport` stage (`./ci.sh --stage
//! transport`), which runs it under a hard `timeout` so a hung socket
//! fails fast instead of wedging the gate.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use proptest::prelude::*;
use sync_switch_nn::{Dataset, Network, SgdMomentum};
use sync_switch_ps::engine::step_rng;
use sync_switch_ps::transport::wire::{decode_stats_snapshot, encode_stats_snapshot};
use sync_switch_ps::{
    HistogramSnapshot, NetPort, PsError, RetryPolicy, ServerStatsSnapshot, ServerTopology,
    TcpServerHost, Trainer, TrainerConfig, TransportKind, WorkerPort, HIST_BUCKETS, OPCODE_SLOTS,
};
use sync_switch_workloads::{SyncProtocol, TrainableKind};

fn transport_trainer(kind: TransportKind, servers: usize, sync_every: u64, seed: u64) -> Trainer {
    let data = Dataset::gaussian_blobs(4, 60, 6, 0.35, seed);
    let (train, test) = data.split(0.25);
    let mut cfg = TrainerConfig::new(3, 8, 0.05, 0.9).with_seed(seed);
    cfg.shards = 7;
    cfg.topology = ServerTopology::new(servers, sync_every).with_transport(kind);
    Trainer::new(Network::mlp(6, &[16], 4, seed), train, test, cfg)
}

/// Sequential large-batch SGD replay of the exact batches the BSP workers
/// sample (same seeded RNG), the reference every BSP path must match.
fn sequential_reference(trainer: &Trainer, workers: usize, rounds: u64, seed: u64) -> Vec<f32> {
    let data = Dataset::gaussian_blobs(4, 60, 6, 0.35, seed);
    let (train, _) = data.split(0.25);
    let shards: Vec<Dataset> = (0..workers).map(|k| train.shard(k, workers)).collect();
    let mut model = Network::mlp(6, &[16], 4, seed);
    let initial = model.params_flat();
    let mut opt = SgdMomentum::new(model.param_count(), 0.05, 0.9);
    let mut params = initial;
    assert_eq!(params.len(), trainer.checkpoint().params.len());
    for r in 0..rounds {
        let mut avg = vec![0.0f32; model.param_count()];
        for (w, shard) in shards.iter().enumerate() {
            model.set_params_flat(&params);
            let mut rng = step_rng(seed, w, r);
            let (x, y) = shard.sample_batch(8, &mut rng);
            let (_, grad) = model.loss_and_grad(&x, &y);
            for (a, g) in avg.iter_mut().zip(&grad) {
                *a += g / workers as f32;
            }
        }
        opt.apply(&mut params, &avg);
    }
    params
}

fn assert_bsp_matches_sequential(kind: TransportKind) {
    let seed = 7;
    let rounds = 10;
    let mut t = transport_trainer(kind, 2, 4, seed);
    assert_eq!(t.server_count(), 2);
    assert!(t.net_router().is_some(), "plane must be transport-backed");
    assert!(matches!(t.store(), Err(PsError::NoSingleStore { .. })));
    let r = t.run_segment(SyncProtocol::Bsp, rounds).unwrap();
    // Every barrier round drained stage 2 over the wire.
    assert_eq!(r.sync_rounds, rounds);
    assert_eq!(r.shard_staleness.max(), Some(0));
    // The wire was actually used: one push round trip per stripe per
    // round, one pull round trip per server per worker per round.
    assert_eq!(r.transport.backend, Some(kind));
    assert_eq!(r.transport.push.ops, rounds * 7);
    assert_eq!(r.transport.pull.ops, rounds * 3 * 2);
    assert_eq!(r.transport.sync.ops, rounds * 2);
    assert!(r.transport.total_wire_s() > 0.0);

    let distributed = t.checkpoint().params;
    let reference = sequential_reference(&t, 3, rounds, seed);
    let max_diff = distributed
        .iter()
        .zip(&reference)
        .map(|(a, b)| (a - b).abs())
        .fold(0.0f32, f32::max);
    assert!(
        max_diff < 1e-4,
        "{kind} BSP diverged from sequential SGD by {max_diff}"
    );
}

#[test]
fn channel_bsp_equals_sequential_large_batch_sgd() {
    assert_bsp_matches_sequential(TransportKind::Channel);
}

#[test]
fn tcp_bsp_equals_sequential_large_batch_sgd() {
    assert_bsp_matches_sequential(TransportKind::Tcp);
}

#[test]
fn tcp_asp_trains_and_reports_wire_cost() {
    let mut t = transport_trainer(TransportKind::Tcp, 2, 4, 9);
    let steps = 120;
    let r = t.run_segment(SyncProtocol::Asp, steps).unwrap();
    assert_eq!(r.steps, steps);
    assert_eq!(t.push_count(), steps);
    // One push round trip per shard per step; pulls are per server per
    // step; periodic sync rounds fired on the wire.
    assert_eq!(r.transport.push.ops, steps * 7);
    assert_eq!(r.transport.pull.ops, steps * 2);
    assert!(r.sync_rounds >= 1);
    assert!(r.transport.sync.ops >= 2);
    // Push requests carry gradients out; pull replies carry params in.
    assert!(r.transport.push.bytes_out > r.transport.push.bytes_in);
    assert!(r.transport.pull.bytes_in > r.transport.pull.bytes_out);
    // Committed-view reads through a real socket still measure staleness.
    assert!(r.staleness.mean() > 0.0);
}

#[test]
fn channel_ssp_respects_gate_and_counts_wire_ops() {
    let mut t = transport_trainer(TransportKind::Channel, 2, 3, 11);
    let steps = 90;
    let bound = 1u64;
    let r = t.run_ssp_segment(bound, steps).unwrap();
    assert_eq!(r.steps, steps);
    assert_eq!(r.transport.backend, Some(TransportKind::Channel));
    assert_eq!(r.transport.push.ops, steps * 7);
    // Same cap as the in-process tier: the gate plus the stage-2 period
    // bound per-server per-shard staleness.
    let workers = 3u64;
    let cap = (2 * bound + 2) * (workers - 1) + 3 + 2 * workers;
    let max = r.server_shard_staleness.max().unwrap();
    assert!(max <= cap, "staleness {max} exceeds cap {cap}");
}

#[test]
fn transport_trainer_switches_and_restores() {
    // checkpoint → switch → restore crosses the wire (snapshot/restore
    // frames) and keeps training.
    let mut t = transport_trainer(TransportKind::Channel, 2, 8, 13);
    t.run_segment(SyncProtocol::Asp, 30).unwrap();
    let ck = t.checkpoint();
    let plan = sync_switch_ps::SwitchPlan {
        to: SyncProtocol::Bsp,
        per_worker_batch: 8,
        learning_rate: 0.05,
        momentum: 0.9,
        reset_velocity: false,
    };
    let outcome = sync_switch_ps::execute_switch(&mut t, &plan).unwrap();
    assert!(outcome.total() >= outcome.drain_time);
    assert_eq!(t.checkpoint().params, ck.params);
    let r = t.run_segment(SyncProtocol::Bsp, 5).unwrap();
    assert_eq!(r.shard_staleness.max(), Some(0));
    t.restore(&ck).unwrap();
    assert_eq!(t.global_step(), 30);
    assert_eq!(t.checkpoint().params, ck.params);
}

#[test]
fn single_server_channel_tier_still_crosses_the_wire() {
    // servers == 1 with a wire transport is a real (if small) tier: pulls
    // read the committed view, so the stage-2 period shows up as honest
    // staleness — unlike the in-process single-store fast path.
    let data = Dataset::gaussian_blobs(4, 60, 6, 0.35, 18);
    let (train, test) = data.split(0.25);
    let mut cfg = TrainerConfig::new(1, 8, 0.02, 0.9).with_seed(18);
    cfg.shards = 4;
    cfg.topology = ServerTopology::new(1, 4).with_transport(TransportKind::Channel);
    let mut t = Trainer::new(Network::mlp(6, &[16], 4, 18), train, test, cfg);
    assert_eq!(t.server_count(), 1);
    assert!(t.net_router().is_some());
    let r = t.run_segment(SyncProtocol::Asp, 40).unwrap();
    // One worker, committed view: push k pulls the view committed at the
    // last round, so staleness is k mod sync_every (same law the
    // in-process router test pins).
    assert_eq!(r.staleness.max(), Some(3));
    assert!((r.staleness.mean() - 1.5).abs() < 1e-9);
    assert_eq!(r.transport.pull.ops, 40);
}

/// Builds the sparse-embedding workload on a 2-server wire tier.
fn sparse_workload_trainer(kind: TransportKind, sparse_push: bool, seed: u64) -> Trainer {
    let (model, train, test) = TrainableKind::SparseEmbedding.build(seed);
    let h = TrainableKind::SparseEmbedding.hyper();
    let cfg = TrainerConfig::new(2, h.batch_size, h.learning_rate, h.momentum)
        .with_seed(seed)
        .with_sparse_push(sparse_push)
        .with_topology(ServerTopology::new(2, 4).with_transport(kind));
    Trainer::new(model, train, test, cfg)
}

#[test]
fn tcp_sparse_pushes_ship_fewer_bytes_than_dense() {
    // The sparse workload over loopback TCP: identical step budget with
    // the sparse path on vs forced dense. The embedding table dominates
    // the parameter count while a batch touches at most
    // workers · batch · tokens of its rows, so sparse push payloads must
    // be a fraction of the dense ones — measured at the wire
    // (profiler::TransportStats payload bytes), not assumed.
    let steps = 40;
    let run = |sparse_push: bool| {
        let mut t = sparse_workload_trainer(TransportKind::Tcp, sparse_push, 23);
        let r = t.run_segment(SyncProtocol::Asp, steps).unwrap();
        assert_eq!(r.steps, steps);
        assert_eq!(r.transport.backend, Some(TransportKind::Tcp));
        // Same op structure either way: one push round trip per shard per
        // step (the sparse path changes payloads, not the protocol).
        assert_eq!(r.transport.push.ops, steps * 2);
        (r, t.training_loss())
    };
    let (sparse, sparse_loss) = run(true);
    let (dense, dense_loss) = run(false);
    assert!(sparse_loss.is_finite() && dense_loss.is_finite());
    assert!(
        sparse.transport.push.bytes_out < dense.transport.push.bytes_out,
        "sparse pushes not smaller: {} vs {} bytes",
        sparse.transport.push.bytes_out,
        dense.transport.push.bytes_out
    );
    // The saving is structural, not marginal: the 512×16 table is ~94% of
    // the parameters and a batch touches at most 2·8·8 = 128 of its 512
    // rows, so well under half the dense volume should move.
    assert!(
        (sparse.transport.push.bytes_out as f64) < 0.6 * dense.transport.push.bytes_out as f64,
        "sparse saving too small: {} vs {} bytes",
        sparse.transport.push.bytes_out,
        dense.transport.push.bytes_out
    );
    // Pull and ack traffic is payload-identical in both runs.
    assert_eq!(sparse.transport.pull.ops, dense.transport.pull.ops);
    assert_eq!(
        sparse.transport.push.bytes_in,
        dense.transport.push.bytes_in
    );
}

#[test]
fn channel_sparse_workload_matches_dense_numerics_over_the_wire() {
    // One worker makes the wire run deterministic: sparse and dense runs
    // must agree on every parameter bit even through the channel tier.
    let run = |sparse_push: bool| {
        let (model, train, test) = TrainableKind::SparseEmbedding.build(29);
        let h = TrainableKind::SparseEmbedding.hyper();
        let cfg = TrainerConfig::new(1, h.batch_size, h.learning_rate, h.momentum)
            .with_seed(29)
            .with_sparse_push(sparse_push)
            .with_topology(ServerTopology::new(2, 4).with_transport(TransportKind::Channel));
        let mut t = Trainer::new(model, train, test, cfg);
        t.run_segment(SyncProtocol::Asp, 30).unwrap();
        t.checkpoint()
    };
    let a = run(true);
    let b = run(false);
    assert_eq!(a.params, b.params, "sparse wire path changed the numerics");
    assert_eq!(a.velocity, b.velocity);
}

// ---- Stats wire frame: codec exactness and the live scrape path ----

/// Encode → decode → re-encode must reproduce the snapshot *and* the
/// bytes. Byte-exactness matters beyond equality: the dedup cache replays
/// cached reply bytes verbatim, so two encodings of the same snapshot must
/// never differ.
fn assert_stats_round_trip(snap: &ServerStatsSnapshot) {
    let mut bytes = Vec::new();
    encode_stats_snapshot(&mut bytes, snap);
    let decoded = decode_stats_snapshot(&bytes).expect("well-formed Stats payload");
    assert_eq!(&decoded, snap, "decode changed the snapshot");
    let mut again = Vec::new();
    encode_stats_snapshot(&mut again, &decoded);
    assert_eq!(again, bytes, "re-encode changed the bytes");
}

#[test]
fn stats_frame_round_trips_empty_and_saturated_snapshots() {
    // The two boundary snapshots: a fresh server that has served nothing,
    // and a (synthetic) server whose every counter and bucket is pinned at
    // u64::MAX — the codec must move both without loss.
    assert_stats_round_trip(&ServerStatsSnapshot::default());
    let saturated = ServerStatsSnapshot {
        server: u32::MAX,
        requests: vec![u64::MAX; OPCODE_SLOTS],
        bytes_in: u64::MAX,
        bytes_out: u64::MAX,
        dedup_hits: u64::MAX,
        apply_ns: HistogramSnapshot {
            count: u64::MAX,
            sum: u64::MAX,
            max: u64::MAX,
            buckets: vec![u64::MAX; HIST_BUCKETS],
        },
        shard_apply_ns: vec![u64::MAX; 9],
        shard_applies: vec![u64::MAX; 9],
    };
    assert_stats_round_trip(&saturated);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Arbitrary snapshots — any counter values, any per-shard vector
    /// length — survive the wire byte-exactly.
    #[test]
    fn stats_frame_round_trips_arbitrary_snapshots(
        server in any::<u32>(),
        requests in proptest::collection::vec(any::<u64>(), OPCODE_SLOTS),
        bytes_in in any::<u64>(),
        bytes_out in any::<u64>(),
        dedup_hits in any::<u64>(),
        count in any::<u64>(),
        sum in any::<u64>(),
        max in any::<u64>(),
        buckets in proptest::collection::vec(any::<u64>(), HIST_BUCKETS),
        shard_ns in proptest::collection::vec(any::<u64>(), 0..12),
    ) {
        let snap = ServerStatsSnapshot {
            server,
            requests,
            bytes_in,
            bytes_out,
            dedup_hits,
            apply_ns: HistogramSnapshot { count, sum, max, buckets },
            // Same length as shard_apply_ns (the codec pins the pairing),
            // different values.
            shard_applies: shard_ns.iter().map(|v| v >> 1).collect(),
            shard_apply_ns: shard_ns,
        };
        assert_stats_round_trip(&snap);
    }
}

#[test]
fn stats_scrape_reads_a_live_tcp_server_mid_training() {
    // A real ps-serve-shaped tier: one TcpServerHost on loopback, a
    // training connection driving it, and a *second* independent
    // connection scraping `Stats` frames while the segment runs — the
    // live-monitor path, not a post-mortem read.
    let seed = 31;
    let shards = 4;
    let data = Dataset::gaussian_blobs(4, 60, 6, 0.35, seed);
    let (train, test) = data.split(0.25);
    let model = Network::mlp(6, &[16], 4, seed);
    let initial = model.params_flat();
    let host = TcpServerHost::bind("127.0.0.1:0", &initial, shards, 1, 0).expect("bind");
    let addrs = vec![host.local_addr()];

    let mut cfg = TrainerConfig::new(2, 8, 0.05, 0.9).with_seed(seed);
    cfg.shards = shards;
    // Stretch the run so the scraper gets many genuinely mid-training
    // samples.
    for w in 0..2 {
        cfg = cfg.with_straggler(w, Duration::from_millis(2));
    }
    let port = NetPort::connect(initial.len(), shards, &addrs, 4, RetryPolicy::default())
        .expect("connect training port");
    let mut trainer = Trainer::with_port(model, train, test, cfg, WorkerPort::Net(port));

    let stop = Arc::new(AtomicBool::new(false));
    let scraper = {
        let stop = Arc::clone(&stop);
        let scrape_port =
            NetPort::connect(initial.len(), shards, &addrs, 4, RetryPolicy::default())
                .expect("connect scrape port");
        std::thread::spawn(move || {
            let mut totals = Vec::new();
            while !stop.load(Ordering::Relaxed) {
                if let Ok(snap) = scrape_port.router().scrape_stats(0) {
                    totals.push(snap.total_requests());
                }
                std::thread::sleep(Duration::from_millis(5));
            }
            totals
        })
    };

    let steps = 60;
    let r = trainer
        .run_segment(SyncProtocol::Asp, steps)
        .expect("ASP over TCP");
    assert_eq!(r.steps, steps);
    stop.store(true, Ordering::Relaxed);
    let totals = scraper.join().expect("scraper thread");

    assert!(
        totals.len() >= 2,
        "scraper got only {} samples",
        totals.len()
    );
    assert!(
        totals.windows(2).all(|w| w[0] <= w[1]),
        "scraped totals went backwards: {totals:?}"
    );
    let final_snap = trainer
        .net_router()
        .expect("net plane")
        .scrape_stats(0)
        .expect("final scrape");
    let final_total = final_snap.total_requests();
    assert!(
        totals.iter().any(|&t| t > 0 && t < final_total),
        "no scrape landed mid-training: totals {totals:?}, final {final_total}"
    );
    // The server really accounted the training: dense pushes are one
    // request per shard per step.
    assert_eq!(
        final_snap.requests_for(sync_switch_ps::transport::wire::op::PUSH_SHARD),
        steps * shards as u64
    );
}

#[test]
fn transport_training_learns() {
    for kind in [TransportKind::Channel, TransportKind::Tcp] {
        let mut t = transport_trainer(kind, 2, 4, 15);
        let before = t.evaluate();
        for _ in 0..3 {
            t.run_segment(SyncProtocol::Bsp, 40).unwrap();
            t.run_segment(SyncProtocol::Asp, 40).unwrap();
        }
        let after = t.evaluate();
        assert!(
            after > before + 0.2,
            "{kind} training did not learn: {before} -> {after}"
        );
    }
}
