//! Convergence harness over the trainable workload registry: every
//! registered workload ([`TrainableKind::all`]) trains on the real
//! parameter-server tier under **BSP, ASP, SSP(bound 2), and a BSP→ASP
//! switch**, with a fixed seed and step budget, and must finish below its
//! per-workload loss threshold with finite parameters throughout.
//!
//! This file is the CI `workloads` stage (`./ci.sh --stage workloads`),
//! run under a hard timeout. It is the breadth test Sync-Switch's argument
//! needs: the BSP/ASP tradeoff is workload-dependent, so the substrate has
//! to train more than one kind of model — dense MLP, conv-with-locality,
//! and a sparse-gradient embedding model whose ASP pushes exercise the
//! sparse path end-to-end.

use sync_switch_nn::{Dataset, SgdMomentum};
use sync_switch_ps::engine::step_rng;
use sync_switch_ps::{execute_switch, SwitchPlan, Trainer, TrainerConfig};
use sync_switch_workloads::{SyncProtocol, TrainableKind};

const SEED: u64 = 42;
const WORKERS: usize = 3;

fn trainer_for(kind: TrainableKind, seed: u64) -> Trainer {
    let (model, train, test) = kind.build(seed);
    let h = kind.hyper();
    let cfg =
        TrainerConfig::new(WORKERS, h.batch_size, h.learning_rate, h.momentum).with_seed(seed);
    Trainer::new(model, train, test, cfg)
}

/// The four sync disciplines the harness drives every workload through.
#[derive(Debug, Clone, Copy)]
enum Discipline {
    Bsp,
    Asp,
    Ssp2,
    BspToAspSwitch,
}

impl Discipline {
    fn all() -> [Discipline; 4] {
        [
            Discipline::Bsp,
            Discipline::Asp,
            Discipline::Ssp2,
            Discipline::BspToAspSwitch,
        ]
    }
}

/// Trains `kind` for its full step budget under `discipline`, asserting
/// finite parameters after every segment, and returns the final probe loss.
fn train_under(kind: TrainableKind, discipline: Discipline) -> f32 {
    let mut t = trainer_for(kind, SEED);
    let budget = kind.hyper().total_steps;
    let segment = 60;
    let run = |t: &mut Trainer, protocol: SyncProtocol, steps: u64| {
        let mut left = steps;
        while left > 0 {
            let chunk = left.min(segment);
            let r = t
                .run_segment(protocol, chunk)
                .unwrap_or_else(|e| panic!("{kind} {discipline:?} {protocol} diverged: {e}"));
            assert_eq!(r.steps, chunk);
            assert!(
                t.check_finite(),
                "{kind} {discipline:?} produced non-finite parameters"
            );
            left -= chunk;
        }
    };
    match discipline {
        Discipline::Bsp => run(&mut t, SyncProtocol::Bsp, budget),
        Discipline::Asp => run(&mut t, SyncProtocol::Asp, budget),
        Discipline::Ssp2 => {
            let mut left = budget;
            while left > 0 {
                let chunk = left.min(segment);
                let r = t
                    .run_ssp_segment(2, chunk)
                    .unwrap_or_else(|e| panic!("{kind} SSP(2) diverged: {e}"));
                assert_eq!(r.steps, chunk);
                assert!(t.check_finite(), "{kind} SSP(2) non-finite parameters");
                left -= chunk;
            }
        }
        Discipline::BspToAspSwitch => {
            // The paper's mechanism, not a bare segment change: BSP for the
            // first half, then a real checkpointed switch into ASP.
            let h = kind.hyper();
            run(&mut t, SyncProtocol::Bsp, budget / 2);
            let plan = SwitchPlan {
                to: SyncProtocol::Asp,
                per_worker_batch: h.batch_size,
                learning_rate: h.learning_rate,
                momentum: h.momentum,
                reset_velocity: false,
            };
            execute_switch(&mut t, &plan).expect("switch executes");
            assert!(t.check_finite(), "{kind} switch left non-finite state");
            run(&mut t, SyncProtocol::Asp, budget - budget / 2);
        }
    }
    assert_eq!(t.global_step(), budget);
    t.training_loss()
}

fn assert_converges(kind: TrainableKind) {
    let initial = trainer_for(kind, SEED).training_loss();
    for discipline in Discipline::all() {
        let final_loss = train_under(kind, discipline);
        assert!(
            final_loss.is_finite(),
            "{kind} {discipline:?}: non-finite final loss"
        );
        assert!(
            final_loss < kind.loss_threshold(),
            "{kind} {discipline:?}: loss {final_loss} above threshold {} (initial {initial})",
            kind.loss_threshold()
        );
        assert!(
            final_loss < initial,
            "{kind} {discipline:?}: loss {final_loss} did not improve on {initial}"
        );
    }
}

#[test]
fn mlp_blobs_converges_under_all_disciplines() {
    assert_converges(TrainableKind::MlpBlobs);
}

#[test]
fn conv_shifted_converges_under_all_disciplines() {
    assert_converges(TrainableKind::ConvShifted);
}

#[test]
fn sparse_embedding_converges_under_all_disciplines() {
    assert_converges(TrainableKind::SparseEmbedding);
}

/// Engine-level sparse ≡ dense: a single-worker ASP run is deterministic,
/// so training the embedding workload with the sparse push path enabled
/// and disabled must produce **bit-identical** parameters, velocity, and
/// staleness accounting — the sparse path is a wire optimization, not a
/// numerics change.
#[test]
fn sparse_push_matches_dense_push_end_to_end() {
    let run = |sparse: bool| {
        let (model, train, test) = TrainableKind::SparseEmbedding.build(7);
        let h = TrainableKind::SparseEmbedding.hyper();
        let cfg = TrainerConfig::new(1, h.batch_size, h.learning_rate, h.momentum)
            .with_seed(7)
            .with_sparse_push(sparse);
        let mut t = Trainer::new(model, train, test, cfg);
        let r = t.run_segment(SyncProtocol::Asp, 40).expect("asp runs");
        (t.checkpoint(), r.staleness, r.shard_staleness.max())
    };
    let (ck_sparse, stale_sparse, shard_sparse) = run(true);
    let (ck_dense, stale_dense, shard_dense) = run(false);
    assert_eq!(ck_sparse.params, ck_dense.params, "parameters diverged");
    assert_eq!(ck_sparse.velocity, ck_dense.velocity, "velocity diverged");
    assert_eq!(stale_sparse, stale_dense, "staleness accounting diverged");
    assert_eq!(shard_sparse, shard_dense);
}

/// BSP on the embedding workload still equals sequential large-batch SGD
/// ≤ 1e-4 — the new layers (embedding lookup, sparse backward) flow
/// through the barrier exactly like dense layers do.
#[test]
fn embedding_bsp_equals_sequential_large_batch_sgd() {
    let seed = 9;
    let rounds = 8;
    let (model, train, test) = TrainableKind::SparseEmbedding.build(seed);
    let h = TrainableKind::SparseEmbedding.hyper();
    let template = model.clone();
    let shards: Vec<Dataset> = (0..WORKERS).map(|k| train.shard(k, WORKERS)).collect();
    let cfg =
        TrainerConfig::new(WORKERS, h.batch_size, h.learning_rate, h.momentum).with_seed(seed);
    let mut t = Trainer::new(model, train, test, cfg);
    let initial = t.checkpoint().params;
    t.run_segment(SyncProtocol::Bsp, rounds).unwrap();
    let distributed = t.checkpoint().params;

    let mut replay = template.clone();
    let mut opt = SgdMomentum::new(replay.param_count(), h.learning_rate, h.momentum);
    let mut params = initial;
    for r in 0..rounds {
        let mut avg = vec![0.0f32; replay.param_count()];
        for (w, shard) in shards.iter().enumerate() {
            replay.set_params_flat(&params);
            let mut rng = step_rng(seed, w, r);
            let (x, y) = shard.sample_batch(h.batch_size, &mut rng);
            let (_, grad) = replay.loss_and_grad(&x, &y);
            for (a, g) in avg.iter_mut().zip(&grad) {
                *a += g / WORKERS as f32;
            }
        }
        opt.apply(&mut params, &avg);
    }
    let max_diff = distributed
        .iter()
        .zip(&params)
        .map(|(a, b)| (a - b).abs())
        .fold(0.0f32, f32::max);
    assert!(
        max_diff < 1e-4,
        "embedding BSP diverged from sequential SGD by {max_diff}"
    );
}

/// The conv workload really rewards locality: training it improves
/// held-out accuracy well past chance under the real PS.
#[test]
fn conv_workload_learns_past_chance() {
    let mut t = trainer_for(TrainableKind::ConvShifted, SEED);
    let before = t.evaluate();
    t.run_segment(SyncProtocol::Bsp, 120).unwrap();
    t.run_segment(SyncProtocol::Asp, 120).unwrap();
    let after = t.evaluate();
    assert!(
        after > before + 0.2 && after > 0.5,
        "conv workload did not learn: {before} -> {after}"
    );
}

/// The embedding workload's ASP pushes actually take the sparse path: a
/// wire-backed run is covered in `tests/transport.rs`; here we pin the
/// in-process invariant that sparse and default configs agree on every
/// observable of the segment report.
#[test]
fn sparse_workload_reports_match_dense_observables() {
    let mut sparse_t = trainer_for(TrainableKind::SparseEmbedding, 21);
    let (model, train, test) = TrainableKind::SparseEmbedding.build(21);
    let h = TrainableKind::SparseEmbedding.hyper();
    let cfg = TrainerConfig::new(WORKERS, h.batch_size, h.learning_rate, h.momentum)
        .with_seed(21)
        .with_sparse_push(false);
    let mut dense_t = Trainer::new(model, train, test, cfg);
    let rs = sparse_t.run_segment(SyncProtocol::Asp, 90).unwrap();
    let rd = dense_t.run_segment(SyncProtocol::Asp, 90).unwrap();
    // One observation per shard per push on both paths.
    assert_eq!(rs.shard_staleness.total(), rd.shard_staleness.total());
    assert_eq!(rs.staleness.total(), rd.staleness.total());
    assert_eq!(sparse_t.push_count(), dense_t.push_count());
}
