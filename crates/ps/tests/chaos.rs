//! Chaos suite: the fault-tolerance tier under injected faults.
//!
//! Every trainable workload trains under BSP and ASP on a **TCP tier
//! behind a seeded [`FaultPlan`]** — dropped replies and straggler latency
//! on every connection — with one server killed mid-run and healed from a
//! [`ServerSupervisor`] checkpoint. Each run must complete without panic
//! and still meet the workload's loss gate: the retry/re-send layer makes
//! the faults invisible to convergence, not just to liveness.
//!
//! The divergence specimen rides along: the sparse-embedding workload at
//! the lr the ASP preset had to back away from runs under the
//! [`DivergenceWatchdog`], which must trip, demote to BSP, and still land
//! under the loss gate.
//!
//! This file is the CI `chaos` stage (`./ci.sh --stage chaos`), run under
//! a hard timeout.

use sync_switch_ps::transport::wire::op;
use sync_switch_ps::{
    ControllerConfig, DivergenceWatchdog, FaultPlan, ServerStatsSnapshot, ServerSupervisor,
    ServerTopology, SyncController, Trainer, TrainerConfig, TransportKind, WatchdogConfig,
};
use sync_switch_workloads::{SyncProtocol, TrainableKind};

const SEED: u64 = 42;
const WORKERS: usize = 3;

/// The standard chaos weather: enough dropped replies that every run
/// exercises the retry path many times, plus occasional injected latency
/// (a transient straggler). Kept within what the default 4-retry budget
/// absorbs with margin — the point is fault *recovery*, not fault death.
fn chaos_plan() -> FaultPlan {
    let mut plan = FaultPlan::seeded(SEED);
    plan.drop_reply_per_mille = 25;
    plan.latency_per_mille = 10;
    plan.latency_ms = 1;
    plan
}

fn chaos_trainer(kind: TrainableKind) -> Trainer {
    let (model, train, test) = kind.build(SEED);
    let h = kind.hyper();
    let cfg = TrainerConfig::new(WORKERS, h.batch_size, h.learning_rate, h.momentum)
        .with_seed(SEED)
        .with_topology(
            ServerTopology::new(2, 1)
                .with_transport(TransportKind::Tcp)
                .with_faults(chaos_plan()),
        );
    Trainer::new(model, train, test, cfg)
}

/// Trains `kind` for its full budget under `protocol` on the faulty TCP
/// tier, killing and healing server 1 at the halfway point, and returns
/// the final probe loss.
fn train_through_chaos(kind: TrainableKind, protocol: SyncProtocol) -> f32 {
    let mut t = chaos_trainer(kind);
    let budget = kind.hyper().total_steps;
    let mut sup = ServerSupervisor::new(t.server_count());
    let segment = 40;
    let mut left = budget;
    let mut killed = false;
    while left > 0 {
        let chunk = left.min(segment);
        let r = t
            .run_segment(protocol, chunk)
            .unwrap_or_else(|e| panic!("{kind} {protocol} under faults: {e}"));
        assert_eq!(r.steps, chunk);
        assert!(r.finite, "{kind} {protocol} non-finite under faults");
        left -= chunk;
        if !killed && left <= budget / 2 {
            // Mid-run crash at a segment boundary: quiesce, checkpoint
            // every server, kill one, heal it from the checkpoint.
            t.drain_sync();
            let router = t.net_router().expect("chaos tier is transport-backed");
            sup.checkpoint(router).expect("supervisor checkpoint");
            router.kill_server(1).expect("kill hook");
            assert!(router.ping_server(1).is_err(), "kill left server 1 alive");
            assert_eq!(sup.heal(router).expect("heal"), 1, "one server healed");
            killed = true;
        }
    }
    assert!(killed, "budget too small to schedule the kill");
    assert!(t.check_finite(), "{kind} {protocol} finished non-finite");
    assert_eq!(t.global_step(), budget);
    let stats = t.transport_stats();
    assert!(
        stats.retries > 0,
        "{kind} {protocol}: fault plan injected no retries"
    );
    t.training_loss()
}

fn assert_chaos_converges(kind: TrainableKind) {
    for protocol in [SyncProtocol::Bsp, SyncProtocol::Asp] {
        let final_loss = train_through_chaos(kind, protocol);
        assert!(
            final_loss.is_finite() && final_loss < kind.loss_threshold(),
            "{kind} {protocol} under chaos: loss {final_loss} above threshold {}",
            kind.loss_threshold()
        );
    }
}

#[test]
fn mlp_blobs_survives_chaos() {
    assert_chaos_converges(TrainableKind::MlpBlobs);
}

#[test]
fn conv_shifted_survives_chaos() {
    assert_chaos_converges(TrainableKind::ConvShifted);
}

#[test]
fn sparse_embedding_survives_chaos() {
    assert_chaos_converges(TrainableKind::SparseEmbedding);
}

/// The paper's experiment-setup-3 failure mode, handled instead of fatal:
/// the embedding workload at a hot learning rate (0.5 — more than 3× its
/// preset, a regime where ASP's stale momentum blows up while BSP's
/// synchronous averaged updates hold) diverges under ASP, the watchdog
/// rolls back and demotes to BSP, and the run still finishes under the
/// workload's loss gate instead of dying with [`PsError::Diverged`].
#[test]
fn embedding_hot_lr_asp_trips_watchdog_and_finishes_under_bsp() {
    let kind = TrainableKind::SparseEmbedding;
    let (model, train, test) = kind.build(SEED);
    let h = kind.hyper();
    let cfg = TrainerConfig::new(WORKERS, h.batch_size, 0.5, h.momentum).with_seed(SEED);
    let mut t = Trainer::new(model, train, test, cfg);
    let mut dog = DivergenceWatchdog::new(WatchdogConfig::default());
    let budget = h.total_steps;
    let segment = 40;
    let mut left = budget;
    while left > 0 {
        let chunk = left.min(segment);
        let r = dog
            .run_segment(&mut t, SyncProtocol::Asp, chunk)
            .expect("watchdog must absorb the hot-lr divergence");
        assert!(r.finite, "watchdog returned a non-finite segment");
        left -= chunk;
    }
    assert!(dog.demoted(), "lr 0.5 ASP never tripped the watchdog");
    assert!(dog.trips() >= 1);
    // A trip rolls back to the last good checkpoint, discarding the
    // diverged steps; grant the demoted run up to one extra budget of
    // recovery steps in their place — the step cost of surviving a
    // divergence instead of dying with it.
    let mut extra = budget;
    while extra > 0 && t.training_loss() >= kind.loss_threshold() {
        let chunk = extra.min(segment);
        dog.run_segment(&mut t, SyncProtocol::Asp, chunk)
            .expect("recovery segment");
        extra -= chunk;
    }
    let final_loss = t.training_loss();
    assert!(
        final_loss.is_finite() && final_loss < kind.loss_threshold(),
        "demoted BSP run missed the loss gate: {final_loss} vs {}",
        kind.loss_threshold()
    );
}

/// The telemetry acceptance gate: one full chaos run — faulty TCP tier,
/// BSP and hot-lr ASP segments, a mid-run kill/heal, a watchdog trip —
/// must leave at least one trace event of **every** kind on the bus, and
/// the resulting Chrome trace must load-ably name them all. The trace is
/// written to `target/tmp` so CI keeps it as an artifact.
#[test]
fn chaos_run_traces_every_event_kind() {
    let kind = TrainableKind::SparseEmbedding;
    let (model, train, test) = kind.build(SEED);
    let h = kind.hyper();
    // The hot learning rate from the watchdog specimen, on the faulty TCP
    // tier: a single run then produces worker events (steps, barrier
    // waits), wire events (retries, sync rounds), fault events (the
    // kill/heal below), and control events (the rollback + demotion).
    let cfg = TrainerConfig::new(WORKERS, h.batch_size, 0.5, h.momentum)
        .with_seed(SEED)
        .with_topology(
            ServerTopology::new(2, 1)
                .with_transport(TransportKind::Tcp)
                .with_faults(chaos_plan()),
        );
    let mut t = Trainer::new(model, train, test, cfg);
    let mut dog = DivergenceWatchdog::new(WatchdogConfig::default());
    dog.run_segment(&mut t, SyncProtocol::Bsp, 40)
        .expect("BSP warm-up under faults");
    t.drain_sync();
    let mut sup = ServerSupervisor::new(t.server_count());
    {
        let router = t.net_router().expect("chaos tier is transport-backed");
        sup.checkpoint(router).expect("supervisor checkpoint");
        router.kill_server(1).expect("kill hook");
        assert_eq!(sup.heal(router).expect("heal"), 1);
    }
    for _ in 0..8 {
        if dog.demoted() {
            break;
        }
        dog.run_segment(&mut t, SyncProtocol::Asp, 40)
            .expect("watchdog must absorb the hot-lr divergence");
    }
    assert!(dog.demoted(), "lr 0.5 ASP never tripped the watchdog");

    let bus = t.telemetry().expect("telemetry defaults on");
    let counts = bus.trace.counts_by_name();
    let every_kind = [
        "step",
        "barrier_wait",
        "push_retry",
        "sync_round",
        "server_kill",
        "server_heal",
        "watchdog_rollback",
        "protocol_switch",
    ];
    for name in every_kind {
        assert!(
            counts.get(name).copied().unwrap_or(0) >= 1,
            "chaos run produced no {name:?} event; retained counts: {counts:?}"
        );
    }
    let json = bus.trace.chrome_trace_json(0);
    assert!(json.starts_with("{\"traceEvents\":["));
    for name in every_kind {
        assert!(
            json.contains(&format!("\"{name}\"")),
            "trace JSON lacks {name:?}"
        );
    }
    let path = std::path::PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join("chaos.trace.json");
    std::fs::write(&path, &json).expect("write trace artifact");
}

/// The controller policy the closed-loop chaos tests share: the barrier
/// threshold is floored so the promote decision hinges on the gates the
/// chaos weather actually stresses — loss stability and wire health — and
/// the retry limit sits well below what the fault plan injects per segment.
fn chaos_policy() -> ControllerConfig {
    ControllerConfig {
        promote_barrier_frac: 0.0,
        demote_retry_limit: 3,
        ..ControllerConfig::default()
    }
}

/// The closed loop end-to-end on real TCP tiers: on a straggler-free clean
/// tier the controller promotes BSP→ASP (stable loss, healthy wire), and on
/// the faulty tier the same policy demotes ASP→BSP on wire distress —
/// without the loss gates (the embedded watchdog) ever tripping.
#[test]
fn controller_promotes_on_clean_tier_then_demotes_under_faults() {
    // Phase 1: clean TCP tier, BSP start. No faults → zero retries, loss
    // improves monotonically enough to count as stable → promote.
    let kind = TrainableKind::MlpBlobs;
    let (model, train, test) = kind.build(SEED);
    let h = kind.hyper();
    let cfg = TrainerConfig::new(WORKERS, h.batch_size, h.learning_rate, h.momentum)
        .with_seed(SEED)
        .with_topology(ServerTopology::new(2, 1).with_transport(TransportKind::Tcp));
    let mut t = Trainer::new(model, train, test, cfg);
    let mut ctl = SyncController::new(chaos_policy());
    for _ in 0..6 {
        let r = ctl.run_segment(&mut t, 40).expect("clean-tier segment");
        assert!(r.finite);
        if t.protocol() == SyncProtocol::Asp {
            break;
        }
    }
    assert_eq!(
        t.protocol(),
        SyncProtocol::Asp,
        "clean tier never promoted; decisions: {:?}",
        ctl.decisions()
    );
    let promote = ctl
        .decisions()
        .iter()
        .find(|d| d.switched())
        .expect("promote decision recorded");
    assert_eq!(promote.from, SyncProtocol::Bsp);
    assert_eq!(promote.to, SyncProtocol::Asp);
    assert!(
        promote.reason.contains("barrier-wait fraction"),
        "{}",
        promote.reason
    );
    let bus = t.telemetry().expect("telemetry defaults on");
    assert!(
        bus.trace
            .counts_by_name()
            .get("protocol_switch")
            .copied()
            .unwrap_or(0)
            >= 1,
        "promotion left no protocol_switch trace event"
    );

    // Phase 2: the chaos tier under the same policy. Forced into ASP, the
    // injected drop/latency weather drives wire.retries over the limit and
    // the controller demotes back to BSP.
    let mut t2 = chaos_trainer(TrainableKind::MlpBlobs);
    t2.run_segment(SyncProtocol::Asp, 20).expect("enter ASP");
    let mut ctl2 = SyncController::new(chaos_policy());
    let mut demoted = false;
    for _ in 0..6 {
        let r = ctl2.run_segment(&mut t2, 40).expect("faulty-tier segment");
        assert!(r.finite);
        if t2.protocol() == SyncProtocol::Bsp {
            demoted = true;
            break;
        }
    }
    assert!(
        demoted,
        "chaos-tier wire distress never demoted ASP; decisions: {:?}",
        ctl2.decisions()
    );
    let demote = ctl2
        .decisions()
        .iter()
        .find(|d| d.switched())
        .expect("demote decision recorded");
    assert_eq!(demote.to, SyncProtocol::Bsp);
    assert!(
        demote.reason.contains("wire.retries"),
        "demotion must come from wire distress, got: {}",
        demote.reason
    );
    // "Without tripping loss gates": the demotion was the controller's
    // wire-health policy, not a watchdog rollback.
    assert_eq!(ctl2.watchdog_trips(), 0, "loss gates tripped under chaos");
    assert!(!ctl2.watchdog_demoted());
}

/// The watchdog specimen driven through the controller: ASP at the hot
/// learning rate from a cold start (the regime where its stale momentum
/// blows up), the embedded watchdog rolls back and demotes, and the
/// controller pins BSP for the rest of the run — finishing finite instead
/// of dying with `PsError::Diverged`. (A BSP warm-up would converge the
/// tiny specimen before any promotion, so the run enters ASP directly,
/// exactly like the standalone watchdog specimen above.)
#[test]
fn controller_absorbs_hot_lr_divergence_and_pins_bsp() {
    let kind = TrainableKind::SparseEmbedding;
    let (model, train, test) = kind.build(SEED);
    let h = kind.hyper();
    let cfg = TrainerConfig::new(WORKERS, h.batch_size, 0.5, h.momentum).with_seed(SEED);
    let mut t = Trainer::new(model, train, test, cfg);
    // A zero-step segment records ASP as the current protocol without
    // training; the controller then drives every real segment.
    t.run_segment(SyncProtocol::Asp, 0).expect("enter ASP");
    let mut ctl = SyncController::new(chaos_policy());
    for _ in 0..12 {
        let r = ctl.run_segment(&mut t, 40).expect("controller segment");
        assert!(r.finite, "controller returned a non-finite segment");
        if ctl.watchdog_demoted() {
            break;
        }
    }
    assert!(
        ctl.watchdog_demoted(),
        "lr 0.5 ASP never tripped the embedded watchdog; decisions: {:?}",
        ctl.decisions()
    );
    assert!(ctl.watchdog_trips() >= 1);
    assert_eq!(t.protocol(), SyncProtocol::Bsp);
    // Post-demotion decisions hold BSP with the watchdog named.
    let r = ctl.run_segment(&mut t, 40).expect("post-demotion segment");
    assert!(r.finite);
    assert_eq!(t.protocol(), SyncProtocol::Bsp);
    let last = ctl.decisions().last().expect("decisions recorded");
    assert!(!last.switched());
    assert!(last.reason.contains("watchdog"), "{}", last.reason);
    assert!(t.check_finite(), "final parameters must be finite");
}

/// Server-vs-client accounting reconciliation on a **clean** network: with
/// no injected faults every request arrives exactly once, so the per-opcode
/// counts scraped from the servers must match the client's
/// [`TransportStats`](sync_switch_ps::TransportStats) exactly — pushes
/// (dense + sparse) against push ops, committed pulls against pull ops,
/// sync rounds + drains against sync ops, and zero dedup hits (the dedup
/// cache only answers retransmissions).
#[test]
fn clean_tcp_server_counts_reconcile_with_client_stats() {
    let kind = TrainableKind::MlpBlobs;
    let (model, train, test) = kind.build(SEED);
    let h = kind.hyper();
    let cfg = TrainerConfig::new(WORKERS, h.batch_size, h.learning_rate, h.momentum)
        .with_seed(SEED)
        .with_topology(ServerTopology::new(2, 1).with_transport(TransportKind::Tcp));
    let mut t = Trainer::new(model, train, test, cfg);
    t.run_segment(SyncProtocol::Bsp, 40).expect("BSP segment");
    t.run_segment(SyncProtocol::Asp, 40).expect("ASP segment");
    t.drain_sync();

    let stats = t.transport_stats();
    assert_eq!(stats.retries, 0, "clean network must not retry");
    let router = t.net_router().expect("transport-backed");
    let mut merged = ServerStatsSnapshot::default();
    for snap in router.scrape_all_stats().iter().flatten() {
        merged.merge(snap);
    }
    assert_eq!(
        merged.requests_for(op::PUSH_SHARD) + merged.requests_for(op::PUSH_SHARD_SPARSE),
        stats.push.ops,
        "server-side push count disagrees with the client"
    );
    assert_eq!(
        merged.requests_for(op::PULL_COMMITTED),
        stats.pull.ops,
        "server-side pull count disagrees with the client"
    );
    assert_eq!(
        merged.requests_for(op::SYNC_ROUND) + merged.requests_for(op::DRAIN),
        stats.sync.ops,
        "server-side sync count disagrees with the client"
    );
    assert_eq!(merged.dedup_hits, 0, "dedup hits on a clean network");
    assert!(merged.apply_ns.count > 0, "servers timed no applies");
}
