//! Property-based tests of the parameter-server concurrency semantics.

use proptest::prelude::*;
use sync_switch_nn::{Dataset, Network};
use sync_switch_ps::transport::{wire, Reply, Request};
use sync_switch_ps::{
    Checkpoint, FaultPlan, NetPort, PullBuffer, RouterBuffer, ServerTopology, ShardRouter,
    ShardedStore, Trainer, TrainerConfig, TransportKind, UpdateData,
};
use sync_switch_workloads::SyncProtocol;

/// Reinterprets raw u32s as f32s — arbitrary bit patterns, NaNs included,
/// because the codec must move gradients without reinterpreting them.
fn bits_to_f32(bits: &[u32]) -> Vec<f32> {
    bits.iter().map(|&b| f32::from_bits(b)).collect()
}

/// Splits raw u64s into `(start, len)` segment pairs for the sparse frame —
/// the codec moves them without interpreting, so arbitrary values are fair.
fn bits_to_segments(bits: &[u64]) -> Vec<(u32, u32)> {
    bits.iter().map(|&b| ((b >> 32) as u32, b as u32)).collect()
}

/// The shard-relative `(start, len)` spans where `mask` is set over
/// `flat[offset..offset + len]`, plus the gathered gradient values — the
/// sparse payload equivalent to the dense slice with zeros elsewhere.
fn spans_of(mask: &[bool], grad: &[f32], offset: usize, len: usize) -> (Vec<(u32, u32)>, Vec<f32>) {
    let mut spans = Vec::new();
    let mut values = Vec::new();
    let mut i = 0;
    while i < len {
        if mask[offset + i] {
            let start = i;
            while i < len && mask[offset + i] {
                i += 1;
            }
            spans.push((start as u32, (i - start) as u32));
            values.extend_from_slice(&grad[offset + start..offset + i]);
        } else {
            i += 1;
        }
    }
    (spans, values)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// BSP produces (nearly) identical parameters regardless of worker
    /// count and scheduling: averaging n per-worker gradients over seeded
    /// batches is deterministic up to float association.
    #[test]
    fn bsp_is_schedule_independent(workers in 2usize..5, rounds in 1u64..8) {
        let data = Dataset::gaussian_blobs(3, 48, 5, 0.3, 99);
        let (train, test) = data.split(0.25);
        let run = || {
            let cfg = TrainerConfig::new(workers, 4, 0.05, 0.9).with_seed(5);
            let mut t = Trainer::new(
                Network::mlp(5, &[8], 3, 5),
                train.clone(),
                test.clone(),
                cfg,
            );
            t.run_segment(SyncProtocol::Bsp, rounds).expect("bsp runs");
            t.store().unwrap().snapshot_params()
        };
        let a = run();
        let b = run();
        let max_diff = a
            .iter()
            .zip(&b)
            .map(|(x, y)| (x - y).abs())
            .fold(0.0f32, f32::max);
        prop_assert!(max_diff < 1e-4, "BSP replay diverged by {max_diff}");
    }

    /// Sharded stores return exactly what was stored, for any shard count.
    #[test]
    fn store_pull_returns_contents(
        params in proptest::collection::vec(-5.0f32..5.0, 1..200),
        shards in 1usize..16,
    ) {
        let store = ShardedStore::new(&params, shards);
        let (pulled, version) = store.pull();
        prop_assert_eq!(pulled, params);
        prop_assert_eq!(version, 0);
    }

    /// Shard layouts partition `0..n` exactly for arbitrary `(n, shards)`:
    /// contiguous, non-overlapping, covering, and near-equal.
    #[test]
    fn shard_layout_partitions_exactly(n in 1usize..600, shards in 1usize..32) {
        let store = ShardedStore::new(&vec![0.0f32; n], shards);
        prop_assert_eq!(store.param_count(), n);
        prop_assert_eq!(store.shard_count(), shards.min(n));
        let mut expected_offset = 0usize;
        let mut lens = Vec::new();
        for i in 0..store.shard_count() {
            let (offset, len) = store.shard_range(i);
            prop_assert_eq!(offset, expected_offset, "shard {} not contiguous", i);
            prop_assert!(len >= 1, "empty shard {}", i);
            expected_offset += len;
            lens.push(len);
        }
        prop_assert_eq!(expected_offset, n, "layout does not cover 0..n");
        let spread = lens.iter().max().unwrap() - lens.iter().min().unwrap();
        prop_assert!(spread <= 1, "unbalanced split: {:?}", lens);
    }

    /// Router ownership partitions shard ids `0..shards` (and the flat
    /// parameter vector `0..n`) exactly across servers: every shard has one
    /// owner, owners hold contiguous non-empty runs, and the servers' param
    /// ranges tile the vector.
    #[test]
    fn router_ownership_partitions_exactly(
        n in 1usize..600,
        shards in 1usize..32,
        servers in 1usize..8,
    ) {
        let initial = vec![0.5f32; n];
        let router = ShardRouter::new(&initial, shards, ServerTopology::new(servers, 1));
        prop_assert_eq!(router.param_count(), n);
        prop_assert_eq!(router.shard_count(), shards.min(n));
        prop_assert_eq!(router.server_count(), servers.min(router.shard_count()));
        let mut shard_cursor = 0usize;
        let mut param_cursor = 0usize;
        for (s, server) in router.servers().iter().enumerate() {
            prop_assert_eq!(server.id(), s);
            prop_assert!(server.shard_count() >= 1, "server {} owns no shards", s);
            prop_assert_eq!(server.shard_offset(), shard_cursor, "non-contiguous ownership");
            let (po, pl) = server.param_range();
            prop_assert_eq!(po, param_cursor, "non-contiguous param range");
            for g in shard_cursor..shard_cursor + server.shard_count() {
                prop_assert_eq!(router.owner_of(g), s, "shard {} owner mismatch", g);
            }
            shard_cursor += server.shard_count();
            param_cursor += pl;
        }
        prop_assert_eq!(shard_cursor, router.shard_count(), "shards not covered");
        prop_assert_eq!(param_cursor, n, "params not covered");
    }

    /// The routed committed view equals a fresh single-store pull whenever
    /// stage 2 is drained, for arbitrary shapes and push counts.
    #[test]
    fn drained_router_matches_single_store(
        n in 1usize..300,
        shards in 1usize..16,
        servers in 1usize..5,
        pushes in 0u64..5,
    ) {
        let initial: Vec<f32> = (0..n).map(|i| (i as f32 * 0.37).sin()).collect();
        let store = ShardedStore::new(&initial, shards);
        let router = ShardRouter::new(&initial, shards, ServerTopology::new(servers, 1));
        let grad: Vec<f32> = (0..n).map(|i| (i as f32 * 0.11).cos()).collect();
        for p in 0..pushes {
            for g in 0..store.shard_count() {
                let (o, l) = store.shard_range(g);
                store.apply_shard_update(g, &grad[o..o + l], 0.05, 0.9);
                router.apply_shard_update(g, &grad[o..o + l], 0.05, 0.9);
            }
            store.complete_push(p);
            router.complete_push(p);
            router.reconcile_if_due();
        }
        let mut buf = RouterBuffer::new();
        router.pull_committed_into(&mut buf);
        let (fresh, version) = store.pull();
        prop_assert_eq!(version, router.version());
        prop_assert_eq!(buf.version(), version);
        prop_assert_eq!(buf.params(), &fresh[..]);
        prop_assert_eq!(router.snapshot_params(), fresh);
        prop_assert_eq!(store.snapshot_velocity(), router.snapshot_velocity());
    }

    /// A reused pull buffer always matches a fresh pull, at every version.
    #[test]
    fn pull_into_matches_fresh_pull(
        params in proptest::collection::vec(-5.0f32..5.0, 1..200),
        shards in 1usize..16,
        pushes in 1u64..6,
    ) {
        let n = params.len();
        let store = ShardedStore::new(&params, shards);
        let mut buf = PullBuffer::new();
        for i in 0..pushes {
            let v = store.pull_into(&mut buf);
            let (fresh, fresh_v) = store.pull();
            prop_assert_eq!(v, fresh_v);
            prop_assert_eq!(v, i);
            prop_assert_eq!(buf.params(), &fresh[..]);
            for s in 0..store.shard_count() {
                prop_assert_eq!(buf.shard_version(s), i);
            }
            store.apply_update(&vec![0.1f32; n], 0.05, 0.5, i);
        }
    }

    /// Applying k unit-gradient updates with lr η moves every parameter by
    /// exactly −k·η (momentum 0), regardless of sharding.
    #[test]
    fn updates_compose_linearly(shards in 1usize..8, k in 1u64..20) {
        let n = 37;
        let store = ShardedStore::new(&vec![1.0f32; n], shards);
        for i in 0..k {
            store.apply_update(&vec![1.0f32; n], 0.01, 0.0, i);
        }
        prop_assert_eq!(store.version(), k);
        for p in store.snapshot_params() {
            prop_assert!((p - (1.0 - 0.01 * k as f32)).abs() < 1e-4);
        }
    }

    /// Sparse push ≡ dense push on the single store: applying the same
    /// touched values as a sparse segment list or as a dense gradient with
    /// zeros elsewhere leaves **bit-identical** parameters, velocity, shard
    /// clocks, and staleness, for arbitrary shapes, masks, and push counts.
    #[test]
    fn sparse_push_equals_dense_push_on_store(
        params in proptest::collection::vec(-2.0f32..2.0, 2..150),
        mask_bits in proptest::collection::vec(any::<bool>(), 1..64),
        shards in 1usize..8,
        pushes in 1u64..4,
    ) {
        let n = params.len();
        let mask: Vec<bool> = (0..n).map(|i| mask_bits[i % mask_bits.len()]).collect();
        let dense = ShardedStore::new(&params, shards);
        let sparse = ShardedStore::new(&params, shards);
        for p in 0..pushes {
            let grad: Vec<f32> = (0..n)
                .map(|i| if mask[i] { ((i as f32) + 0.3 * p as f32).sin() } else { 0.0 })
                .collect();
            for s in 0..dense.shard_count() {
                let (o, l) = dense.shard_range(s);
                let a = dense.apply_shard_update(s, &grad[o..o + l], 0.07, 0.9);
                let (spans, values) = spans_of(&mask, &grad, o, l);
                let b = sparse.apply_shard_update_data(
                    s,
                    UpdateData::Sparse { indices: &spans, rows: &values },
                    0.07,
                    0.9,
                );
                prop_assert_eq!(a, b, "pre-apply clock skew at push {} shard {}", p, s);
                prop_assert_eq!(dense.shard_version(s), sparse.shard_version(s));
            }
            prop_assert_eq!(dense.complete_push(p), sparse.complete_push(p));
        }
        prop_assert_eq!(dense.snapshot_params(), sparse.snapshot_params());
        prop_assert_eq!(dense.snapshot_velocity(), sparse.snapshot_velocity());
    }

    /// Sparse push ≡ dense push through a 2-server router: same routing,
    /// same two-stage schedule, same committed views and clocks — the
    /// sparse payload changes nothing but what would cross a wire.
    #[test]
    fn sparse_push_equals_dense_push_through_router(
        n in 2usize..200,
        mask_bits in proptest::collection::vec(any::<bool>(), 1..48),
        shards in 2usize..10,
        pushes in 1u64..5,
    ) {
        let initial: Vec<f32> = (0..n).map(|i| (i as f32 * 0.17).cos()).collect();
        let mask: Vec<bool> = (0..n).map(|i| mask_bits[i % mask_bits.len()]).collect();
        let topology = ServerTopology::new(2, 2);
        let dense = ShardRouter::new(&initial, shards, topology);
        let sparse = ShardRouter::new(&initial, shards, topology);
        for p in 0..pushes {
            let grad: Vec<f32> = (0..n)
                .map(|i| if mask[i] { ((i as f32) * 0.41 + p as f32).sin() } else { 0.0 })
                .collect();
            for g in 0..dense.shard_count() {
                let (o, l) = dense.shard_range(g);
                let a = dense.apply_shard_update(g, &grad[o..o + l], 0.05, 0.9);
                let (spans, values) = spans_of(&mask, &grad, o, l);
                let b = sparse.apply_shard_update_data(
                    g,
                    UpdateData::Sparse { indices: &spans, rows: &values },
                    0.05,
                    0.9,
                );
                prop_assert_eq!(a, b, "clock skew at push {} shard {}", p, g);
            }
            // Staleness equality through the global clock.
            prop_assert_eq!(dense.complete_push(p), sparse.complete_push(p));
            dense.reconcile_if_due();
            sparse.reconcile_if_due();
        }
        // Live state, committed views, and committed clocks all agree.
        prop_assert_eq!(dense.snapshot_params(), sparse.snapshot_params());
        prop_assert_eq!(dense.snapshot_velocity(), sparse.snapshot_velocity());
        let mut a = RouterBuffer::new();
        let mut b = RouterBuffer::new();
        let va = dense.pull_committed_into(&mut a);
        let vb = sparse.pull_committed_into(&mut b);
        prop_assert_eq!(va, vb, "committed data versions diverged");
        prop_assert_eq!(a.params(), b.params());
        prop_assert_eq!(a.shard_versions(), b.shard_versions());
        prop_assert_eq!(dense.sync_rounds(), sparse.sync_rounds());
    }

    /// At-most-once under duplication: a wire tier whose fault plan
    /// duplicates **every** request frame (and drops some replies, so the
    /// retry layer re-sends on top) ends up bitwise-identical — params,
    /// velocity, per-shard clocks, committed view — to the in-process
    /// router applying each push exactly once. Gradients are arbitrary f32
    /// bit patterns (NaNs included), so equality is compared on bits.
    #[test]
    fn duplicated_push_frames_apply_exactly_once(
        n in 2usize..64,
        shards in 2usize..6,
        pushes in 1u64..5,
        bits in proptest::collection::vec(any::<u32>(), 64),
    ) {
        let plan = FaultPlan {
            duplicate_per_mille: 1000,
            drop_reply_per_mille: 120,
            ..FaultPlan::seeded(17)
        };
        let initial: Vec<f32> = (0..n).map(|i| (i as f32 * 0.23).sin()).collect();
        let clean = ShardRouter::new(&initial, shards, ServerTopology::new(2, 1));
        let net = NetPort::launch(
            &initial,
            shards,
            ServerTopology::new(2, 1)
                .with_transport(TransportKind::Channel)
                .with_faults(plan),
        );
        for p in 0..pushes {
            let grad: Vec<f32> = (0..n)
                .map(|i| f32::from_bits(bits[(i + p as usize * 7) % bits.len()]))
                .collect();
            for g in 0..clean.shard_count() {
                let (o, l) = clean.shard_range(g);
                let a = clean.apply_shard_update(g, &grad[o..o + l], 0.05, 0.9);
                let b = net.apply_shard_update(g, &grad[o..o + l], 0.05, 0.9);
                prop_assert_eq!(a, b, "clock skew at push {} shard {}", p, g);
            }
            prop_assert_eq!(clean.complete_push(p), net.router().complete_push(p));
            clean.reconcile_if_due();
            net.router().reconcile_if_due();
        }
        clean.drain();
        net.router().drain();
        let key = |v: Vec<f32>| v.into_iter().map(f32::to_bits).collect::<Vec<_>>();
        prop_assert_eq!(
            key(clean.snapshot_params()),
            key(net.router().snapshot_params()),
            "params diverged under duplication"
        );
        prop_assert_eq!(
            key(clean.snapshot_velocity()),
            key(net.router().snapshot_velocity()),
            "velocity diverged under duplication"
        );
        let mut a = RouterBuffer::new();
        let mut b = RouterBuffer::new();
        clean.pull_committed_into(&mut a);
        net.pull_into(&mut b);
        prop_assert_eq!(key(a.params().to_vec()), key(b.params().to_vec()));
        prop_assert_eq!(a.shard_versions(), b.shard_versions());
    }

    /// Checkpoints round-trip through bytes for arbitrary contents.
    #[test]
    fn checkpoint_bytes_round_trip(
        step in any::<u64>(),
        params in proptest::collection::vec(-1e3f32..1e3, 0..100),
    ) {
        let velocity: Vec<f32> = params.iter().map(|x| x * 0.5).collect();
        let ck = Checkpoint::new(step, params, velocity);
        let back = Checkpoint::from_bytes(&ck.to_bytes()).expect("parse");
        prop_assert_eq!(back, ck);
    }

    /// ASP completes exactly the requested number of global steps and every
    /// recorded staleness is below the total step count.
    #[test]
    fn asp_step_accounting(workers in 2usize..5, steps in 10u64..80) {
        let data = Dataset::gaussian_blobs(3, 48, 5, 0.3, 7);
        let (train, test) = data.split(0.25);
        let cfg = TrainerConfig::new(workers, 4, 0.02, 0.9).with_seed(7);
        let mut t = Trainer::new(Network::mlp(5, &[8], 3, 7), train, test, cfg);
        let report = t.run_segment(SyncProtocol::Asp, steps).expect("asp runs");
        prop_assert_eq!(report.steps, steps);
        prop_assert_eq!(t.store().unwrap().version(), steps);
        let total: usize = report.worker_profiles.iter().map(|p| p.steps()).sum();
        prop_assert_eq!(total as u64, steps);
        if let Some(max) = report.staleness.max() {
            prop_assert!(max < steps, "staleness {max} of {steps} steps");
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The wire codec round-trips arbitrary request frames byte-exactly:
    /// decode(encode(req)) re-encodes to the identical byte string, for
    /// every opcode and for gradients of arbitrary f32 bit patterns
    /// (NaNs and infinities included).
    #[test]
    fn wire_codec_round_trips_requests_byte_exactly(
        kind in 0u8..10,
        shard in any::<u32>(),
        bits_a in proptest::collection::vec(any::<u32>(), 0..64),
        bits_b in proptest::collection::vec(any::<u32>(), 0..64),
        seg_bits in proptest::collection::vec(any::<u64>(), 0..16),
        lr_bits in any::<u64>(),
        mu_bits in any::<u64>(),
        flag in any::<bool>(),
    ) {
        let req = match kind {
            0 => Request::PushShard {
                shard,
                lr: f64::from_bits(lr_bits),
                momentum: f64::from_bits(mu_bits),
                grad: bits_to_f32(&bits_a),
            },
            1 => Request::PullCommitted,
            2 => Request::SyncRound,
            3 => Request::Drain,
            4 => Request::Snapshot { velocity: flag },
            5 => Request::Restore {
                params: bits_to_f32(&bits_a),
                velocity: bits_to_f32(&bits_b),
            },
            6 => Request::ResetVelocity,
            7 => Request::CheckFinite,
            8 => Request::PushShardSparse {
                shard,
                lr: f64::from_bits(lr_bits),
                momentum: f64::from_bits(mu_bits),
                indices: bits_to_segments(&seg_bits),
                rows: bits_to_f32(&bits_b),
            },
            _ => Request::Shutdown,
        };
        let mut bytes = Vec::new();
        req.encode(&mut bytes);
        let back = Request::decode(&bytes);
        prop_assert!(back.is_ok(), "decode failed: {:?}", back);
        let mut again = Vec::new();
        back.unwrap().encode(&mut again);
        prop_assert_eq!(&bytes, &again, "re-encode drifted");
        // Truncating the frame anywhere must fail, never mis-decode.
        if !bytes.is_empty() {
            prop_assert!(Request::decode(&bytes[..bytes.len() - 1]).is_err());
        }
    }

    /// Reply frames round-trip byte-exactly too, and the zero-allocation
    /// slice decoders agree with the owned decoder on pull/ack frames.
    #[test]
    fn wire_codec_round_trips_replies_byte_exactly(
        kind in 0u8..6,
        clock in any::<u64>(),
        bits in proptest::collection::vec(any::<u32>(), 0..64),
        clocks in proptest::collection::vec(any::<u64>(), 0..16),
        flag in any::<bool>(),
    ) {
        let reply = match kind {
            0 => Reply::PushAck { prev_clock: clock },
            1 => Reply::Pulled { params: bits_to_f32(&bits), clocks: clocks.clone() },
            2 => Reply::Synced,
            3 => Reply::SnapshotData { data: bits_to_f32(&bits) },
            4 => Reply::Ok,
            _ => Reply::Finite { finite: flag },
        };
        let mut bytes = Vec::new();
        reply.encode(&mut bytes);
        let back = Reply::decode(&bytes);
        prop_assert!(back.is_ok(), "decode failed: {:?}", back);
        let mut again = Vec::new();
        back.unwrap().encode(&mut again);
        prop_assert_eq!(&bytes, &again, "re-encode drifted");

        // Slice decoders see the same values bit-for-bit.
        if kind == 0 {
            prop_assert_eq!(wire::decode_push_ack(&bytes), Ok(clock));
        }
        if kind == 1 {
            let mut params_out = vec![0.0f32; bits.len()];
            let mut clocks_out = vec![0u64; clocks.len()];
            prop_assert!(
                wire::decode_pulled_into(&bytes, &mut params_out, &mut clocks_out).is_ok()
            );
            let out_bits: Vec<u32> = params_out.iter().map(|p| p.to_bits()).collect();
            prop_assert_eq!(&out_bits, &bits);
            prop_assert_eq!(&clocks_out, &clocks);
        }
    }

    /// The streaming sparse-push encoder and decoder agree with the owned
    /// codec bit-for-bit — NaN payloads and arbitrary segment descriptors
    /// included — and the sparse frame undercuts the dense frame whenever
    /// the carried values are fewer than the shard's (8 bytes of segment
    /// descriptor vs 4 bytes per skipped value).
    #[test]
    fn streaming_sparse_push_encoder_round_trips(
        shard in any::<u32>(),
        seg_bits in proptest::collection::vec(any::<u64>(), 0..16),
        bits in proptest::collection::vec(any::<u32>(), 0..64),
        lr in 1e-6f64..10.0,
        mu in 0.0f64..1.0,
    ) {
        let indices = bits_to_segments(&seg_bits);
        let rows = bits_to_f32(&bits);
        let mut streamed = Vec::new();
        wire::encode_push_shard_sparse(&mut streamed, shard, lr, mu, &indices, &rows);
        let mut owned = Vec::new();
        Request::PushShardSparse {
            shard,
            lr,
            momentum: mu,
            indices: indices.clone(),
            rows: rows.clone(),
        }
        .encode(&mut owned);
        prop_assert_eq!(&streamed, &owned);
        // Reused decode buffers come back with the exact bits.
        let mut idx_out = vec![(1u32, 1u32)];
        let mut rows_out = vec![0.5f32];
        let (s, l, m) =
            wire::decode_push_shard_sparse_into(&streamed, &mut idx_out, &mut rows_out).unwrap();
        prop_assert_eq!((s, l, m), (shard, lr, mu));
        prop_assert_eq!(&idx_out, &indices);
        let out_bits: Vec<u32> = rows_out.iter().map(|g| g.to_bits()).collect();
        prop_assert_eq!(&out_bits, &bits);
        // Truncations fail, never mis-decode.
        prop_assert!(Request::decode(&streamed[..streamed.len() - 1]).is_err());
    }

    /// The streaming push encoder and the owned request encoder emit
    /// identical bytes, so the hot path and the cold path speak one format.
    #[test]
    fn streaming_push_encoder_matches_owned_encoder(
        shard in any::<u32>(),
        bits in proptest::collection::vec(any::<u32>(), 1..128),
        lr in 1e-6f64..10.0,
        mu in 0.0f64..1.0,
    ) {
        let grad = bits_to_f32(&bits);
        let mut streamed = Vec::new();
        wire::encode_push_shard(&mut streamed, shard, lr, mu, &grad);
        let mut owned = Vec::new();
        Request::PushShard { shard, lr, momentum: mu, grad: grad.clone() }.encode(&mut owned);
        prop_assert_eq!(&streamed, &owned);
        // And the in-place gradient decoder returns the exact bits.
        let mut grad_out = Vec::new();
        let (s, l, m) = wire::decode_push_shard_into(&streamed, &mut grad_out).unwrap();
        prop_assert_eq!((s, l, m), (shard, lr, mu));
        let out_bits: Vec<u32> = grad_out.iter().map(|g| g.to_bits()).collect();
        prop_assert_eq!(&out_bits, &bits);
    }
}
