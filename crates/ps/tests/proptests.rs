//! Property-based tests of the parameter-server concurrency semantics.

use proptest::prelude::*;
use sync_switch_nn::{Dataset, Network};
use sync_switch_ps::{Checkpoint, PullBuffer, ShardedStore, Trainer, TrainerConfig};
use sync_switch_workloads::SyncProtocol;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// BSP produces (nearly) identical parameters regardless of worker
    /// count and scheduling: averaging n per-worker gradients over seeded
    /// batches is deterministic up to float association.
    #[test]
    fn bsp_is_schedule_independent(workers in 2usize..5, rounds in 1u64..8) {
        let data = Dataset::gaussian_blobs(3, 48, 5, 0.3, 99);
        let (train, test) = data.split(0.25);
        let run = || {
            let cfg = TrainerConfig::new(workers, 4, 0.05, 0.9).with_seed(5);
            let mut t = Trainer::new(
                Network::mlp(5, &[8], 3, 5),
                train.clone(),
                test.clone(),
                cfg,
            );
            t.run_segment(SyncProtocol::Bsp, rounds).expect("bsp runs");
            t.store().snapshot_params()
        };
        let a = run();
        let b = run();
        let max_diff = a
            .iter()
            .zip(&b)
            .map(|(x, y)| (x - y).abs())
            .fold(0.0f32, f32::max);
        prop_assert!(max_diff < 1e-4, "BSP replay diverged by {max_diff}");
    }

    /// Sharded stores return exactly what was stored, for any shard count.
    #[test]
    fn store_pull_returns_contents(
        params in proptest::collection::vec(-5.0f32..5.0, 1..200),
        shards in 1usize..16,
    ) {
        let store = ShardedStore::new(&params, shards);
        let (pulled, version) = store.pull();
        prop_assert_eq!(pulled, params);
        prop_assert_eq!(version, 0);
    }

    /// Shard layouts partition `0..n` exactly for arbitrary `(n, shards)`:
    /// contiguous, non-overlapping, covering, and near-equal.
    #[test]
    fn shard_layout_partitions_exactly(n in 1usize..600, shards in 1usize..32) {
        let store = ShardedStore::new(&vec![0.0f32; n], shards);
        prop_assert_eq!(store.param_count(), n);
        prop_assert_eq!(store.shard_count(), shards.min(n));
        let mut expected_offset = 0usize;
        let mut lens = Vec::new();
        for i in 0..store.shard_count() {
            let (offset, len) = store.shard_range(i);
            prop_assert_eq!(offset, expected_offset, "shard {} not contiguous", i);
            prop_assert!(len >= 1, "empty shard {}", i);
            expected_offset += len;
            lens.push(len);
        }
        prop_assert_eq!(expected_offset, n, "layout does not cover 0..n");
        let spread = lens.iter().max().unwrap() - lens.iter().min().unwrap();
        prop_assert!(spread <= 1, "unbalanced split: {:?}", lens);
    }

    /// A reused pull buffer always matches a fresh pull, at every version.
    #[test]
    fn pull_into_matches_fresh_pull(
        params in proptest::collection::vec(-5.0f32..5.0, 1..200),
        shards in 1usize..16,
        pushes in 1u64..6,
    ) {
        let n = params.len();
        let store = ShardedStore::new(&params, shards);
        let mut buf = PullBuffer::new();
        for i in 0..pushes {
            let v = store.pull_into(&mut buf);
            let (fresh, fresh_v) = store.pull();
            prop_assert_eq!(v, fresh_v);
            prop_assert_eq!(v, i);
            prop_assert_eq!(buf.params(), &fresh[..]);
            for s in 0..store.shard_count() {
                prop_assert_eq!(buf.shard_version(s), i);
            }
            store.apply_update(&vec![0.1f32; n], 0.05, 0.5, i);
        }
    }

    /// Applying k unit-gradient updates with lr η moves every parameter by
    /// exactly −k·η (momentum 0), regardless of sharding.
    #[test]
    fn updates_compose_linearly(shards in 1usize..8, k in 1u64..20) {
        let n = 37;
        let store = ShardedStore::new(&vec![1.0f32; n], shards);
        for i in 0..k {
            store.apply_update(&vec![1.0f32; n], 0.01, 0.0, i);
        }
        prop_assert_eq!(store.version(), k);
        for p in store.snapshot_params() {
            prop_assert!((p - (1.0 - 0.01 * k as f32)).abs() < 1e-4);
        }
    }

    /// Checkpoints round-trip through bytes for arbitrary contents.
    #[test]
    fn checkpoint_bytes_round_trip(
        step in any::<u64>(),
        params in proptest::collection::vec(-1e3f32..1e3, 0..100),
    ) {
        let velocity: Vec<f32> = params.iter().map(|x| x * 0.5).collect();
        let ck = Checkpoint::new(step, params, velocity);
        let back = Checkpoint::from_bytes(&ck.to_bytes()).expect("parse");
        prop_assert_eq!(back, ck);
    }

    /// ASP completes exactly the requested number of global steps and every
    /// recorded staleness is below the total step count.
    #[test]
    fn asp_step_accounting(workers in 2usize..5, steps in 10u64..80) {
        let data = Dataset::gaussian_blobs(3, 48, 5, 0.3, 7);
        let (train, test) = data.split(0.25);
        let cfg = TrainerConfig::new(workers, 4, 0.02, 0.9).with_seed(7);
        let mut t = Trainer::new(Network::mlp(5, &[8], 3, 7), train, test, cfg);
        let report = t.run_segment(SyncProtocol::Asp, steps).expect("asp runs");
        prop_assert_eq!(report.steps, steps);
        prop_assert_eq!(t.store().version(), steps);
        let total: usize = report.worker_profiles.iter().map(|p| p.steps()).sum();
        prop_assert_eq!(total as u64, steps);
        if let Some(max) = report.staleness.max() {
            prop_assert!(max < steps, "staleness {max} of {steps} steps");
        }
    }
}
