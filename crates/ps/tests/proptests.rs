//! Property-based tests of the parameter-server concurrency semantics.

use proptest::prelude::*;
use sync_switch_nn::{Dataset, Network};
use sync_switch_ps::{
    Checkpoint, PullBuffer, RouterBuffer, ServerTopology, ShardRouter, ShardedStore, Trainer,
    TrainerConfig,
};
use sync_switch_workloads::SyncProtocol;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// BSP produces (nearly) identical parameters regardless of worker
    /// count and scheduling: averaging n per-worker gradients over seeded
    /// batches is deterministic up to float association.
    #[test]
    fn bsp_is_schedule_independent(workers in 2usize..5, rounds in 1u64..8) {
        let data = Dataset::gaussian_blobs(3, 48, 5, 0.3, 99);
        let (train, test) = data.split(0.25);
        let run = || {
            let cfg = TrainerConfig::new(workers, 4, 0.05, 0.9).with_seed(5);
            let mut t = Trainer::new(
                Network::mlp(5, &[8], 3, 5),
                train.clone(),
                test.clone(),
                cfg,
            );
            t.run_segment(SyncProtocol::Bsp, rounds).expect("bsp runs");
            t.store().snapshot_params()
        };
        let a = run();
        let b = run();
        let max_diff = a
            .iter()
            .zip(&b)
            .map(|(x, y)| (x - y).abs())
            .fold(0.0f32, f32::max);
        prop_assert!(max_diff < 1e-4, "BSP replay diverged by {max_diff}");
    }

    /// Sharded stores return exactly what was stored, for any shard count.
    #[test]
    fn store_pull_returns_contents(
        params in proptest::collection::vec(-5.0f32..5.0, 1..200),
        shards in 1usize..16,
    ) {
        let store = ShardedStore::new(&params, shards);
        let (pulled, version) = store.pull();
        prop_assert_eq!(pulled, params);
        prop_assert_eq!(version, 0);
    }

    /// Shard layouts partition `0..n` exactly for arbitrary `(n, shards)`:
    /// contiguous, non-overlapping, covering, and near-equal.
    #[test]
    fn shard_layout_partitions_exactly(n in 1usize..600, shards in 1usize..32) {
        let store = ShardedStore::new(&vec![0.0f32; n], shards);
        prop_assert_eq!(store.param_count(), n);
        prop_assert_eq!(store.shard_count(), shards.min(n));
        let mut expected_offset = 0usize;
        let mut lens = Vec::new();
        for i in 0..store.shard_count() {
            let (offset, len) = store.shard_range(i);
            prop_assert_eq!(offset, expected_offset, "shard {} not contiguous", i);
            prop_assert!(len >= 1, "empty shard {}", i);
            expected_offset += len;
            lens.push(len);
        }
        prop_assert_eq!(expected_offset, n, "layout does not cover 0..n");
        let spread = lens.iter().max().unwrap() - lens.iter().min().unwrap();
        prop_assert!(spread <= 1, "unbalanced split: {:?}", lens);
    }

    /// Router ownership partitions shard ids `0..shards` (and the flat
    /// parameter vector `0..n`) exactly across servers: every shard has one
    /// owner, owners hold contiguous non-empty runs, and the servers' param
    /// ranges tile the vector.
    #[test]
    fn router_ownership_partitions_exactly(
        n in 1usize..600,
        shards in 1usize..32,
        servers in 1usize..8,
    ) {
        let initial = vec![0.5f32; n];
        let router = ShardRouter::new(&initial, shards, ServerTopology::new(servers, 1));
        prop_assert_eq!(router.param_count(), n);
        prop_assert_eq!(router.shard_count(), shards.min(n));
        prop_assert_eq!(router.server_count(), servers.min(router.shard_count()));
        let mut shard_cursor = 0usize;
        let mut param_cursor = 0usize;
        for (s, server) in router.servers().iter().enumerate() {
            prop_assert_eq!(server.id(), s);
            prop_assert!(server.shard_count() >= 1, "server {} owns no shards", s);
            prop_assert_eq!(server.shard_offset(), shard_cursor, "non-contiguous ownership");
            let (po, pl) = server.param_range();
            prop_assert_eq!(po, param_cursor, "non-contiguous param range");
            for g in shard_cursor..shard_cursor + server.shard_count() {
                prop_assert_eq!(router.owner_of(g), s, "shard {} owner mismatch", g);
            }
            shard_cursor += server.shard_count();
            param_cursor += pl;
        }
        prop_assert_eq!(shard_cursor, router.shard_count(), "shards not covered");
        prop_assert_eq!(param_cursor, n, "params not covered");
    }

    /// The routed committed view equals a fresh single-store pull whenever
    /// stage 2 is drained, for arbitrary shapes and push counts.
    #[test]
    fn drained_router_matches_single_store(
        n in 1usize..300,
        shards in 1usize..16,
        servers in 1usize..5,
        pushes in 0u64..5,
    ) {
        let initial: Vec<f32> = (0..n).map(|i| (i as f32 * 0.37).sin()).collect();
        let store = ShardedStore::new(&initial, shards);
        let router = ShardRouter::new(&initial, shards, ServerTopology::new(servers, 1));
        let grad: Vec<f32> = (0..n).map(|i| (i as f32 * 0.11).cos()).collect();
        for p in 0..pushes {
            for g in 0..store.shard_count() {
                let (o, l) = store.shard_range(g);
                store.apply_shard_update(g, &grad[o..o + l], 0.05, 0.9);
                router.apply_shard_update(g, &grad[o..o + l], 0.05, 0.9);
            }
            store.complete_push(p);
            router.complete_push(p);
            router.reconcile_if_due();
        }
        let mut buf = RouterBuffer::new();
        router.pull_committed_into(&mut buf);
        let (fresh, version) = store.pull();
        prop_assert_eq!(version, router.version());
        prop_assert_eq!(buf.version(), version);
        prop_assert_eq!(buf.params(), &fresh[..]);
        prop_assert_eq!(router.snapshot_params(), fresh);
        prop_assert_eq!(store.snapshot_velocity(), router.snapshot_velocity());
    }

    /// A reused pull buffer always matches a fresh pull, at every version.
    #[test]
    fn pull_into_matches_fresh_pull(
        params in proptest::collection::vec(-5.0f32..5.0, 1..200),
        shards in 1usize..16,
        pushes in 1u64..6,
    ) {
        let n = params.len();
        let store = ShardedStore::new(&params, shards);
        let mut buf = PullBuffer::new();
        for i in 0..pushes {
            let v = store.pull_into(&mut buf);
            let (fresh, fresh_v) = store.pull();
            prop_assert_eq!(v, fresh_v);
            prop_assert_eq!(v, i);
            prop_assert_eq!(buf.params(), &fresh[..]);
            for s in 0..store.shard_count() {
                prop_assert_eq!(buf.shard_version(s), i);
            }
            store.apply_update(&vec![0.1f32; n], 0.05, 0.5, i);
        }
    }

    /// Applying k unit-gradient updates with lr η moves every parameter by
    /// exactly −k·η (momentum 0), regardless of sharding.
    #[test]
    fn updates_compose_linearly(shards in 1usize..8, k in 1u64..20) {
        let n = 37;
        let store = ShardedStore::new(&vec![1.0f32; n], shards);
        for i in 0..k {
            store.apply_update(&vec![1.0f32; n], 0.01, 0.0, i);
        }
        prop_assert_eq!(store.version(), k);
        for p in store.snapshot_params() {
            prop_assert!((p - (1.0 - 0.01 * k as f32)).abs() < 1e-4);
        }
    }

    /// Checkpoints round-trip through bytes for arbitrary contents.
    #[test]
    fn checkpoint_bytes_round_trip(
        step in any::<u64>(),
        params in proptest::collection::vec(-1e3f32..1e3, 0..100),
    ) {
        let velocity: Vec<f32> = params.iter().map(|x| x * 0.5).collect();
        let ck = Checkpoint::new(step, params, velocity);
        let back = Checkpoint::from_bytes(&ck.to_bytes()).expect("parse");
        prop_assert_eq!(back, ck);
    }

    /// ASP completes exactly the requested number of global steps and every
    /// recorded staleness is below the total step count.
    #[test]
    fn asp_step_accounting(workers in 2usize..5, steps in 10u64..80) {
        let data = Dataset::gaussian_blobs(3, 48, 5, 0.3, 7);
        let (train, test) = data.split(0.25);
        let cfg = TrainerConfig::new(workers, 4, 0.02, 0.9).with_seed(7);
        let mut t = Trainer::new(Network::mlp(5, &[8], 3, 7), train, test, cfg);
        let report = t.run_segment(SyncProtocol::Asp, steps).expect("asp runs");
        prop_assert_eq!(report.steps, steps);
        prop_assert_eq!(t.store().version(), steps);
        let total: usize = report.worker_profiles.iter().map(|p| p.steps()).sum();
        prop_assert_eq!(total as u64, steps);
        if let Some(max) = report.staleness.max() {
            prop_assert!(max < steps, "staleness {max} of {steps} steps");
        }
    }
}
