//! Deterministic fault injection over any transport backend.
//!
//! [`FaultyTransport`] wraps a real [`Transport`] (channel or TCP) and
//! perturbs every connection it hands out according to a seeded
//! [`FaultPlan`]: replies are dropped or duplicated, calls are delayed
//! (straggler mode), frames are torn mid-write, and connections are killed
//! on schedule. Faults are drawn from a per-connection xorshift stream
//! seeded by `plan.seed ^ connection_index`, so a chaos run is exactly
//! reproducible — same plan, same faults, same retry trace.
//!
//! The wrapper sits *below* the retry layer in
//! [`crate::transport::NetRouter`]: an injected fault surfaces to the
//! client as an ordinary I/O error (timeout, broken pipe), which the retry
//! machinery must absorb. This is the substrate of the `chaos` CI stage.

use std::io;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use super::{Conn, Transport};
use crate::server::PsServer;

/// A deterministic fault schedule. All rates are per-mille (0 = never,
/// 1000 = every call); the plan is pure data, so it can ride along in
/// [`crate::config::ServerTopology`] (`Copy + Eq`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FaultPlan {
    /// Seed of the fault stream; each connection derives its own stream
    /// from `seed ^ connection_index`.
    pub seed: u64,
    /// Per-mille chance that a call executes on the server but its reply
    /// is dropped (the client sees a timeout; only an idempotent re-send
    /// is safe).
    pub drop_reply_per_mille: u16,
    /// Per-mille chance that a request frame is delivered twice (the
    /// at-most-once dedup on the server must absorb the duplicate).
    pub duplicate_per_mille: u16,
    /// Per-mille chance that a torn (truncated) frame is written and the
    /// connection aborted — TCP only; backends whose framing cannot tear
    /// skip this fault.
    pub torn_per_mille: u16,
    /// Per-mille chance that a call is delayed by [`FaultPlan::latency_ms`]
    /// (straggler mode).
    pub latency_per_mille: u16,
    /// Injected delay for latency faults.
    pub latency_ms: u64,
    /// If non-zero, each connection is killed after this many calls
    /// (forcing a reconnect).
    pub kill_conn_after: u32,
}

impl FaultPlan {
    /// A plan with `seed` and no faults enabled — builder starting point.
    pub fn seeded(seed: u64) -> Self {
        FaultPlan {
            seed,
            ..FaultPlan::default()
        }
    }

    /// Whether any fault is enabled — a plan with all rates zero is
    /// transparent and need not be installed at all.
    pub fn any_fault(&self) -> bool {
        self.drop_reply_per_mille > 0
            || self.duplicate_per_mille > 0
            || self.torn_per_mille > 0
            || self.latency_per_mille > 0
            || self.kill_conn_after > 0
    }
}

/// A [`Transport`] decorator injecting the faults of a [`FaultPlan`] into
/// every connection. Kill/revive hooks delegate to the wrapped backend, so
/// a supervisor works identically with and without fault injection.
pub struct FaultyTransport {
    inner: Box<dyn Transport>,
    plan: FaultPlan,
    /// Connections handed out so far; indexes the per-conn fault streams.
    conn_counter: AtomicU64,
}

impl std::fmt::Debug for FaultyTransport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FaultyTransport")
            .field("inner", &self.inner)
            .field("plan", &self.plan)
            .finish()
    }
}

impl FaultyTransport {
    /// Wraps `inner`, perturbing its connections per `plan`.
    pub fn new(inner: Box<dyn Transport>, plan: FaultPlan) -> Self {
        FaultyTransport {
            inner,
            plan,
            conn_counter: AtomicU64::new(0),
        }
    }

    /// The active fault plan.
    pub fn plan(&self) -> FaultPlan {
        self.plan
    }
}

impl Transport for FaultyTransport {
    fn name(&self) -> &'static str {
        "faulty"
    }

    fn server_count(&self) -> usize {
        self.inner.server_count()
    }

    fn connect(&self, server: usize) -> io::Result<Box<dyn Conn>> {
        let inner = self.inner.connect(server)?;
        let index = self.conn_counter.fetch_add(1, Ordering::Relaxed);
        Ok(Box::new(FaultyConn {
            inner: Some(inner),
            plan: self.plan,
            rng: Xorshift64::new(self.plan.seed ^ index.wrapping_mul(0x9e37_79b9_7f4a_7c15)),
            calls: 0,
            request: Vec::new(),
            reply: Vec::new(),
        }))
    }

    fn kill_server(&self, server: usize) -> io::Result<()> {
        self.inner.kill_server(server)
    }

    fn revive_server(&self, server: usize, fresh: Arc<PsServer>) -> io::Result<()> {
        self.inner.revive_server(server, fresh)
    }
}

/// Tiny deterministic RNG for fault rolls (no external rand dependency on
/// this path; the stream only has to be reproducible, not strong).
#[derive(Debug)]
struct Xorshift64 {
    state: u64,
}

impl Xorshift64 {
    fn new(seed: u64) -> Self {
        Xorshift64 {
            state: seed | 1, // xorshift must not start at 0
        }
    }

    fn next(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.state = x;
        x
    }

    /// One per-mille roll: true with probability `per_mille`/1000.
    fn roll(&mut self, per_mille: u16) -> bool {
        per_mille > 0 && self.next() % 1000 < u64::from(per_mille)
    }
}

/// A connection whose calls are perturbed per the plan. The request payload
/// is staged in an owned buffer so a duplicate fault can replay it into the
/// wrapped connection twice.
struct FaultyConn {
    /// `None` once the connection was killed or aborted by a fault.
    inner: Option<Box<dyn Conn>>,
    plan: FaultPlan,
    rng: Xorshift64,
    calls: u32,
    request: Vec<u8>,
    reply: Vec<u8>,
}

impl std::fmt::Debug for FaultyConn {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FaultyConn")
            .field("alive", &self.inner.is_some())
            .field("calls", &self.calls)
            .finish()
    }
}

impl FaultyConn {
    /// Copies the staged payload into the wrapped conn and executes the
    /// call, caching the reply in `self.reply`.
    fn forward(&mut self) -> io::Result<()> {
        let inner = self
            .inner
            .as_mut()
            .expect("forward called on a dead connection");
        let buf = inner.request_buf();
        buf.extend_from_slice(&self.request);
        let reply = inner.call()?;
        self.reply.clear();
        self.reply.extend_from_slice(reply);
        Ok(())
    }
}

impl Conn for FaultyConn {
    fn request_buf(&mut self) -> &mut Vec<u8> {
        self.request.clear();
        &mut self.request
    }

    fn call(&mut self) -> io::Result<&[u8]> {
        if self.inner.is_none() {
            return Err(io::Error::new(
                io::ErrorKind::BrokenPipe,
                "connection killed by fault plan",
            ));
        }
        self.calls += 1;
        if self.plan.kill_conn_after > 0 && self.calls >= self.plan.kill_conn_after {
            self.inner = None;
            self.calls = 0;
            return Err(io::Error::new(
                io::ErrorKind::ConnectionReset,
                "scheduled connection kill",
            ));
        }
        if self.rng.roll(self.plan.latency_per_mille) {
            std::thread::sleep(Duration::from_millis(self.plan.latency_ms));
        }
        if self.rng.roll(self.plan.torn_per_mille) {
            let inner = self.inner.as_mut().expect("checked above");
            // When the backend cannot tear frames (channel), the Err
            // from inject_torn skips this fault entirely.
            if inner.inject_torn().is_ok() {
                // The peer saw garbage mid-frame; this conn is done.
                self.inner = None;
                return Err(io::Error::new(
                    io::ErrorKind::ConnectionAborted,
                    "torn frame injected",
                ));
            }
        }
        if self.rng.roll(self.plan.duplicate_per_mille) {
            // Deliver the request twice; hand the second reply back. With
            // sequenced requests the server replays the first reply, so the
            // client cannot tell — exactly the at-most-once contract.
            self.forward()?;
        }
        let execute = self.forward();
        if let Err(e) = execute {
            self.inner = None;
            return Err(e);
        }
        if self.rng.roll(self.plan.drop_reply_per_mille) {
            // The server executed, the reply evaporates: the client sees a
            // timeout and must re-send idempotently.
            return Err(io::Error::new(
                io::ErrorKind::TimedOut,
                "reply dropped by fault plan",
            ));
        }
        Ok(&self.reply)
    }

    fn set_op_timeout(&mut self, timeout: Option<Duration>) {
        if let Some(inner) = self.inner.as_mut() {
            inner.set_op_timeout(timeout);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::ShardLayout;
    use crate::transport::{channel::ChannelTransport, wire};

    fn channel_transport(
        n: usize,
        shards: usize,
        servers: usize,
    ) -> (Box<dyn Transport>, Vec<Arc<PsServer>>) {
        let initial: Vec<f32> = (0..n).map(|i| i as f32).collect();
        let layout = ShardLayout::new(n, shards);
        let ownership = ShardLayout::new(layout.len(), servers);
        let servers: Vec<Arc<PsServer>> = (0..ownership.len())
            .map(|s| {
                let (first, count) = ownership.range(s);
                Arc::new(PsServer::new(s, &layout, first, count, &initial))
            })
            .collect();
        let handles = servers.clone();
        (Box::new(ChannelTransport::launch(servers)), handles)
    }

    #[test]
    fn no_fault_plan_is_transparent() {
        let (inner, _servers) = channel_transport(8, 2, 1);
        let t = FaultyTransport::new(inner, FaultPlan::seeded(1));
        assert!(!t.plan().any_fault());
        let mut conn = t.connect(0).unwrap();
        for clock in 0..5 {
            wire::encode_push_shard(conn.request_buf(), 0, 0.1, 0.0, &[1.0; 4]);
            let reply = conn.call().unwrap();
            assert_eq!(wire::decode_push_ack(reply), Ok(clock));
        }
    }

    #[test]
    fn drop_reply_surfaces_as_timeout_but_executes() {
        let plan = FaultPlan {
            drop_reply_per_mille: 1000,
            ..FaultPlan::seeded(2)
        };
        let (inner, servers) = channel_transport(8, 2, 1);
        let t = FaultyTransport::new(inner, plan);
        let mut conn = t.connect(0).unwrap();
        wire::encode_push_shard(conn.request_buf(), 0, 0.1, 0.0, &[1.0; 4]);
        let err = conn.call().unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::TimedOut);
        // The push landed despite the vanished reply.
        assert_eq!(servers[0].live().shard_version(0), 1);
    }

    #[test]
    fn scheduled_kill_breaks_the_connection() {
        let plan = FaultPlan {
            kill_conn_after: 3,
            ..FaultPlan::seeded(3)
        };
        let (inner, _servers) = channel_transport(8, 2, 1);
        let t = FaultyTransport::new(inner, plan);
        let mut conn = t.connect(0).unwrap();
        for _ in 0..2 {
            wire::encode_push_shard(conn.request_buf(), 0, 0.1, 0.0, &[1.0; 4]);
            conn.call().unwrap();
        }
        wire::encode_push_shard(conn.request_buf(), 0, 0.1, 0.0, &[1.0; 4]);
        assert_eq!(
            conn.call().unwrap_err().kind(),
            io::ErrorKind::ConnectionReset
        );
        // Dead stays dead; the client must reconnect.
        wire::encode_push_shard(conn.request_buf(), 0, 0.1, 0.0, &[1.0; 4]);
        assert_eq!(conn.call().unwrap_err().kind(), io::ErrorKind::BrokenPipe);
        // A fresh connection works.
        let mut fresh = t.connect(0).unwrap();
        wire::encode_push_shard(fresh.request_buf(), 0, 0.1, 0.0, &[1.0; 4]);
        fresh.call().unwrap();
    }

    #[test]
    fn duplicate_without_sequencing_applies_twice() {
        // Documents why the retry layer wraps mutating requests: a bare
        // duplicated push advances the clock twice.
        let plan = FaultPlan {
            duplicate_per_mille: 1000,
            ..FaultPlan::seeded(4)
        };
        let (inner, _servers) = channel_transport(8, 2, 1);
        let t = FaultyTransport::new(inner, plan);
        let mut conn = t.connect(0).unwrap();
        wire::encode_push_shard(conn.request_buf(), 0, 0.1, 0.0, &[1.0; 4]);
        let reply = conn.call().unwrap();
        assert_eq!(wire::decode_push_ack(reply), Ok(1), "second apply's ack");
    }

    #[test]
    fn duplicate_with_sequencing_applies_once() {
        let plan = FaultPlan {
            duplicate_per_mille: 1000,
            ..FaultPlan::seeded(5)
        };
        let (inner, _servers) = channel_transport(8, 2, 1);
        let t = FaultyTransport::new(inner, plan);
        let mut conn = t.connect(0).unwrap();
        for seq in 0..3u32 {
            let buf = conn.request_buf();
            wire::encode_sequenced_prefix(buf, 11, seq);
            wire::encode_push_shard(buf, 0, 0.1, 0.0, &[1.0; 4]);
            let reply = conn.call().unwrap();
            assert_eq!(wire::decode_push_ack(reply), Ok(u64::from(seq)));
        }
    }

    #[test]
    fn fault_stream_is_deterministic_per_seed() {
        let mk = |seed| {
            let plan = FaultPlan {
                drop_reply_per_mille: 300,
                ..FaultPlan::seeded(seed)
            };
            let (inner, _servers) = channel_transport(8, 2, 1);
            let t = FaultyTransport::new(inner, plan);
            let mut conn = t.connect(0).unwrap();
            let mut outcomes = Vec::new();
            for seq in 0..32u32 {
                let buf = conn.request_buf();
                wire::encode_sequenced_prefix(buf, 1, seq);
                wire::encode_push_shard(buf, 0, 0.01, 0.0, &[0.0; 4]);
                outcomes.push(conn.call().is_ok());
            }
            outcomes
        };
        assert_eq!(mk(7), mk(7), "same seed, same fault trace");
        assert!(mk(7).iter().any(|ok| !ok), "faults actually fire");
    }
}
