//! The transport-backed shard router: [`crate::ShardRouter`] semantics —
//! ownership layout, cluster version clock, OSP-style two-stage sync —
//! with every server interaction crossing a [`Transport`].
//!
//! The split of responsibilities mirrors a real PS deployment:
//!
//! * **Server-side state** (live + committed stores, shard clocks) lives in
//!   the [`PsServer`]s owned by the transport's serving loops; the client
//!   can only reach it through request/reply frames.
//! * **Client-side state** (the push-counter version clock, the stage-2
//!   watermark, the ownership map) lives here, shared by all workers of one
//!   trainer — the same place [`crate::ShardRouter`] keeps it, so staleness
//!   is measured identically across the in-process and wire tiers.
//!
//! Workers hold a [`NetPort`] clone each; a clone lazily opens its own
//! connection per server (connection-per-worker on both backends), so
//! worker threads never share a socket or contend on a connection lock.

use std::io;
use std::net::SocketAddr;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::Mutex;
use sync_switch_telemetry::{ServerStatsSnapshot, Telemetry, TraceKind};

use super::channel::ChannelTransport;
use super::faulty::FaultyTransport;
use super::remote::RemoteTcpTransport;
use super::tcp::TcpTransport;
use super::wire::{self, op, ServerInfo, WireError};
use super::{Conn, Transport};
use crate::config::{RetryPolicy, ServerTopology, TransportKind};
use crate::error::PsError;
use crate::profiler::{TransportStats, WireOp};
use crate::router::RouterBuffer;
use crate::server::PsServer;
use crate::store::ShardLayout;

/// Process-wide client-id allocator for sequenced requests: every
/// connection slot gets a unique id, so the servers' dedup windows never
/// collide across workers, trainers, or tests in one process.
static CLIENT_IDS: AtomicU64 = AtomicU64::new(1);

/// Process-local deterministic jitter stream for retry backoff
/// (decorrelates workers that fail simultaneously without pulling in an
/// entropy source).
static JITTER_STATE: AtomicU64 = AtomicU64::new(0x9e37_79b9_7f4a_7c15);

fn jitter_ms(cap: u64) -> u64 {
    let mut x = JITTER_STATE.fetch_add(0xa076_1d64_78bd_642f, Ordering::Relaxed);
    x ^= x >> 33;
    x = x.wrapping_mul(0xe993_7d59_3d0d_85f2);
    x ^= x >> 29;
    if cap == 0 {
        0
    } else {
        x % cap
    }
}

/// Client-side description of one server's slice of the tier.
#[derive(Debug, Clone, Copy)]
struct ServerMeta {
    /// First global shard id owned by the server.
    shard_offset: usize,
    /// Number of owned shards.
    shard_count: usize,
    /// `(offset, len)` of the owned slice of the flat parameter vector.
    param_range: (usize, usize),
}

/// Cumulative wire counters for one operation class (lock-free; workers on
/// different threads record concurrently).
#[derive(Debug, Default)]
struct OpCounters {
    ops: AtomicU64,
    ns: AtomicU64,
    bytes_out: AtomicU64,
    bytes_in: AtomicU64,
}

impl OpCounters {
    fn record(&self, elapsed: Duration, bytes_out: usize, bytes_in: usize) {
        // Relaxed throughout: these are statistics counters; nothing is
        // published through them and cross-counter skew is tolerable.
        self.ops.fetch_add(1, Ordering::Relaxed);
        self.ns
            .fetch_add(elapsed.as_nanos() as u64, Ordering::Relaxed);
        self.bytes_out
            .fetch_add(bytes_out as u64, Ordering::Relaxed);
        self.bytes_in.fetch_add(bytes_in as u64, Ordering::Relaxed);
    }

    fn snapshot(&self) -> WireOp {
        WireOp {
            ops: self.ops.load(Ordering::Relaxed),
            wire_ns: self.ns.load(Ordering::Relaxed),
            bytes_out: self.bytes_out.load(Ordering::Relaxed),
            bytes_in: self.bytes_in.load(Ordering::Relaxed),
        }
    }
}

#[derive(Debug, Default)]
struct WireCounters {
    push: OpCounters,
    pull: OpCounters,
    sync: OpCounters,
    /// Failed attempts that were re-sent (zero on a clean network).
    retries: AtomicU64,
    /// Connections re-established after breaking.
    reconnects: AtomicU64,
}

/// One server's connection slot: the (lazily opened) connection plus the
/// idempotent re-send state — this slot's process-unique client id and its
/// next request sequence number.
#[derive(Debug)]
struct ConnSlot {
    conn: Option<Box<dyn Conn>>,
    /// Client id carried in sequenced request headers.
    client: u64,
    /// Sequence of the next mutating request. Advanced only on success, so
    /// every retry of one logical request re-sends the same sequence.
    next_seq: u32,
    /// Whether this slot ever held a connection — distinguishes the first
    /// lazy connect from a reconnect in the stats.
    connected_before: bool,
}

impl ConnSlot {
    fn fresh() -> Self {
        ConnSlot {
            conn: None,
            client: CLIENT_IDS.fetch_add(1, Ordering::Relaxed),
            next_seq: 0,
            connected_before: false,
        }
    }
}

/// A lazily-connected set of connections, one slot per server.
#[derive(Debug, Default)]
pub(crate) struct ConnSet {
    per_server: Vec<ConnSlot>,
}

impl ConnSet {
    fn with_capacity(servers: usize) -> Self {
        ConnSet {
            per_server: (0..servers).map(|_| ConnSlot::fresh()).collect(),
        }
    }

    fn slot(&mut self, server: usize, servers: usize) -> &mut ConnSlot {
        if self.per_server.is_empty() {
            self.per_server = (0..servers).map(|_| ConnSlot::fresh()).collect();
        }
        &mut self.per_server[server]
    }

    /// Drops the cached connection to `server` (after a kill/revive the old
    /// socket points at a dead instance).
    fn invalidate(&mut self, server: usize) {
        if let Some(slot) = self.per_server.get_mut(server) {
            slot.conn = None;
        }
    }
}

/// A multi-server parameter-server tier reached through a wire transport.
///
/// Every wire operation runs under the topology's [`RetryPolicy`]: a per-op
/// timeout, then bounded re-send with exponential backoff and jitter over a
/// freshly opened connection. Mutating requests carry a `(client, seq)`
/// header so a re-send of an already-applied request is deduplicated
/// server-side (the cached ack is replayed) — a dropped *reply* cannot
/// double-apply a gradient. Only when the budget is exhausted does the
/// failure surface, as a [`PsError`] on the fallible APIs or a panic
/// carrying its message on the infallible worker-path ones.
#[derive(Debug)]
pub struct NetRouter {
    kind: TransportKind,
    /// Global parameter layout (shard id → flat range).
    layout: ShardLayout,
    /// Global shard id → owning server index.
    owner: Vec<usize>,
    servers: Vec<ServerMeta>,
    /// Completed pushes — the cluster-global version clock.
    version: AtomicU64,
    /// Stage-2 period in completed pushes.
    sync_every: u64,
    /// Completed stage-2 rounds (drains included).
    rounds: AtomicU64,
    /// Scheduling watermark, exactly as in [`crate::ShardRouter`].
    synced_version: AtomicU64,
    /// Timeout/retry/backoff budget for every wire operation.
    retry: RetryPolicy,
    stats: WireCounters,
    /// Telemetry bus the router emits wire events on (retries, sync
    /// rounds, kills, heals). Interior-mutable because the trainer
    /// installs it after workers already share the router behind an
    /// `Arc`; `None` means telemetry is off and costs one uncontended
    /// read on the rare paths that check it.
    telemetry: Mutex<Option<Arc<Telemetry>>>,
    /// Serializes stage-2 rounds and the control plane; holds their
    /// dedicated connections.
    ///
    /// Field order is load-bearing: `sync` (and the conns inside it) must
    /// drop before `transport`, whose Drop joins the serving threads and
    /// would otherwise wait on our own open connections.
    sync: Mutex<ConnSet>,
    transport: Box<dyn Transport>,
}

impl NetRouter {
    /// Builds the servers, launches the serving infrastructure for
    /// `topology.transport`, and returns the client router. Clamping
    /// matches [`crate::ShardRouter::new`]: servers are clamped to the
    /// shard count, shards to the parameter count.
    ///
    /// # Panics
    ///
    /// Panics if `initial` is empty, `shards == 0`, the topology is
    /// invalid, `topology.transport` is [`TransportKind::InProcess`] (that
    /// is [`crate::ShardRouter`]'s job), or a TCP listener cannot bind.
    pub fn launch(initial: &[f32], shards: usize, topology: ServerTopology) -> Self {
        assert!(!initial.is_empty(), "cannot shard zero parameters");
        assert!(shards > 0, "need at least one shard");
        if let Err(msg) = topology.validate() {
            panic!("invalid topology: {msg}");
        }
        let layout = ShardLayout::new(initial.len(), shards);
        let ownership = ShardLayout::new(layout.len(), topology.servers);
        let mut owner = vec![0usize; layout.len()];
        let mut metas = Vec::with_capacity(ownership.len());
        let instances: Vec<Arc<PsServer>> = (0..ownership.len())
            .map(|s| {
                let (first, count) = ownership.range(s);
                owner[first..first + count].iter_mut().for_each(|o| *o = s);
                let server = PsServer::new(s, &layout, first, count, initial);
                metas.push(ServerMeta {
                    shard_offset: first,
                    shard_count: count,
                    param_range: server.param_range(),
                });
                Arc::new(server)
            })
            .collect();
        let server_count = instances.len();
        let base: Box<dyn Transport> = match topology.transport {
            TransportKind::Channel => Box::new(ChannelTransport::launch(instances)),
            TransportKind::Tcp => {
                Box::new(TcpTransport::launch(instances).expect("bind loopback PS listeners"))
            }
            TransportKind::InProcess => {
                panic!("NetRouter requires a wire transport; use ShardRouter in-process")
            }
        };
        let transport: Box<dyn Transport> = match topology.faults {
            Some(plan) if plan.any_fault() => Box::new(FaultyTransport::new(base, plan)),
            _ => base,
        };
        NetRouter {
            kind: topology.transport,
            layout,
            owner,
            servers: metas,
            version: AtomicU64::new(0),
            sync_every: topology.sync_every.max(1),
            rounds: AtomicU64::new(0),
            synced_version: AtomicU64::new(0),
            retry: topology.retry,
            stats: WireCounters::default(),
            telemetry: Mutex::new(None),
            sync: Mutex::new(ConnSet::with_capacity(server_count)),
            transport,
        }
    }

    /// Connects to an *already-running* tier of `ps-serve` processes at
    /// `addrs` — the cross-process counterpart of [`NetRouter::launch`].
    /// Nothing is spawned and no I/O happens here: the ownership map is
    /// derived from the same pure `(param_count, shards, servers)` layout
    /// math every `ps-serve` process runs, and connections open lazily.
    /// Call [`NetRouter::handshake`] afterwards to wait for the servers to
    /// bind and to verify they agree on the layout.
    ///
    /// # Errors
    ///
    /// Returns [`PsError::InvalidConfig`] if the shape is inconsistent —
    /// zero parameters/shards/addresses, or more servers than shards
    /// (a remote tier is never silently clamped: the spec says `ps-serve`
    /// processes exist, so a shape that cannot give each one shards is a
    /// misconfiguration, not a request to ignore some).
    pub fn connect(
        param_count: usize,
        shards: usize,
        addrs: &[SocketAddr],
        sync_every: u64,
        retry: RetryPolicy,
    ) -> Result<Self, PsError> {
        if param_count == 0 {
            return Err(PsError::InvalidConfig("zero parameters".into()));
        }
        if shards == 0 {
            return Err(PsError::InvalidConfig("zero shards".into()));
        }
        if addrs.is_empty() {
            return Err(PsError::InvalidConfig("no server addresses".into()));
        }
        let layout = ShardLayout::new(param_count, shards);
        if addrs.len() > layout.len() {
            return Err(PsError::InvalidConfig(format!(
                "{} servers but only {} shards — a remote tier is not clamped",
                addrs.len(),
                layout.len()
            )));
        }
        let ownership = ShardLayout::new(layout.len(), addrs.len());
        let mut owner = vec![0usize; layout.len()];
        let metas: Vec<ServerMeta> = (0..ownership.len())
            .map(|s| {
                let (first, count) = ownership.range(s);
                owner[first..first + count].iter_mut().for_each(|o| *o = s);
                let param_offset = layout.range(first).0;
                let param_len: usize = (first..first + count).map(|g| layout.range(g).1).sum();
                ServerMeta {
                    shard_offset: first,
                    shard_count: count,
                    param_range: (param_offset, param_len),
                }
            })
            .collect();
        let server_count = metas.len();
        Ok(NetRouter {
            kind: TransportKind::Tcp,
            layout,
            owner,
            servers: metas,
            version: AtomicU64::new(0),
            sync_every: sync_every.max(1),
            rounds: AtomicU64::new(0),
            synced_version: AtomicU64::new(0),
            retry,
            stats: WireCounters::default(),
            telemetry: Mutex::new(None),
            sync: Mutex::new(ConnSet::with_capacity(server_count)),
            transport: Box::new(RemoteTcpTransport::new(addrs.to_vec())),
        })
    }

    /// Installs the telemetry bus this router emits wire events and
    /// counters on. Callable at any point — workers sharing the router
    /// pick it up on their next event.
    pub fn set_telemetry(&self, telemetry: Arc<Telemetry>) {
        *self.telemetry.lock() = Some(telemetry);
    }

    /// The installed telemetry bus, if any.
    pub fn telemetry(&self) -> Option<Arc<Telemetry>> {
        self.telemetry.lock().clone()
    }

    /// The transport backend kind.
    pub fn transport_kind(&self) -> TransportKind {
        self.kind
    }

    /// Number of servers (after clamping to the shard count).
    pub fn server_count(&self) -> usize {
        self.servers.len()
    }

    /// Total number of parameters.
    pub fn param_count(&self) -> usize {
        self.layout.total()
    }

    /// Number of global shards.
    pub fn shard_count(&self) -> usize {
        self.layout.len()
    }

    /// `(offset, len)` of global shard `g` in the flat vector.
    pub fn shard_range(&self, g: usize) -> (usize, usize) {
        self.layout.range(g)
    }

    /// The server owning global shard `g`.
    pub fn owner_of(&self, g: usize) -> usize {
        self.owner[g]
    }

    /// Stage-2 period in completed pushes.
    pub fn sync_every(&self) -> u64 {
        self.sync_every
    }

    /// Cluster-global version: number of completed pushes.
    pub fn version(&self) -> u64 {
        // Acquire: pairs with the Release bump in `complete_push`.
        self.version.load(Ordering::Acquire)
    }

    /// Completed stage-2 reconciliation rounds (drains included).
    pub fn sync_rounds(&self) -> u64 {
        self.rounds.load(Ordering::Acquire)
    }

    /// Cumulative wire-cost counters since launch.
    pub fn stats(&self) -> TransportStats {
        TransportStats {
            backend: Some(self.kind),
            push: self.stats.push.snapshot(),
            pull: self.stats.pull.snapshot(),
            sync: self.stats.sync.snapshot(),
            retries: self.stats.retries.load(Ordering::Relaxed),
            reconnects: self.stats.reconnects.load(Ordering::Relaxed),
        }
    }

    /// Completes a logical push: bumps the global version and returns the
    /// push's staleness relative to `pulled_version`.
    pub fn complete_push(&self, pulled_version: u64) -> u64 {
        // Release: pairs with the Acquire loads in `version`/`pull`.
        self.version
            .fetch_add(1, Ordering::Release)
            .saturating_sub(pulled_version)
    }

    /// Runs a stage-2 round if the push counter has moved `sync_every`
    /// past the watermark — the same skip-redundant-rounds loop as
    /// [`crate::ShardRouter::reconcile_if_due`], with the round's
    /// commit-alls travelling as `SyncRound` frames.
    pub fn reconcile_if_due(&self) {
        loop {
            let synced = self.synced_version.load(Ordering::Acquire);
            if self.version() < synced.saturating_add(self.sync_every) {
                return;
            }
            let mut conns = self.sync.lock();
            if self.synced_version.load(Ordering::Acquire) != synced {
                continue;
            }
            self.commit_round(&mut conns, op::SYNC_ROUND);
        }
    }

    /// Drains the stage-2 pipeline: waits out any in-flight round, then
    /// unconditionally commits every server so the committed view equals
    /// the live view (BSP barriers, switches, restore).
    pub fn drain(&self) {
        let mut conns = self.sync.lock();
        self.commit_round(&mut conns, op::DRAIN);
    }

    /// One wire round trip under the retry policy.
    ///
    /// Per attempt: ensure a connection (opened lazily with the policy's
    /// op timeout installed; a re-open after a break counts as a
    /// reconnect), encode the request — prefixed with this slot's
    /// `(client, seq)` header when `sequenced` — call, decode. Any failure
    /// drops the connection, sleeps the exponential backoff (plus jitter)
    /// and re-sends **the same sequence number**, so a server that already
    /// applied the request replays its cached ack instead of re-applying.
    /// Wire stats are recorded once, from the successful attempt only, so
    /// a clean network sees byte/latency numbers identical to a
    /// retry-free build.
    #[allow(clippy::too_many_arguments)]
    fn call_resilient<T>(
        &self,
        conns: &mut ConnSet,
        server: usize,
        policy: RetryPolicy,
        counters: Option<&OpCounters>,
        sequenced: bool,
        encode: &dyn Fn(&mut Vec<u8>),
        decode: &mut dyn FnMut(&[u8]) -> Result<T, WireError>,
    ) -> Result<T, PsError> {
        let timeout = Duration::from_millis(policy.op_timeout_ms);
        let slot = conns.slot(server, self.servers.len());
        let seq = slot.next_seq;
        let attempts = policy.max_retries.saturating_add(1);
        let mut timed_out = false;
        let mut unreachable = false;
        for attempt in 0..attempts {
            if attempt > 0 {
                self.stats.retries.fetch_add(1, Ordering::Relaxed);
                if let Some(t) = self.telemetry.lock().as_ref() {
                    t.metrics.counter("wire.retries").inc();
                    t.trace.instant(TraceKind::PushRetry {
                        server: server as u64,
                        attempt: u64::from(attempt),
                    });
                }
                let backoff = policy
                    .backoff_base_ms
                    .checked_shl(attempt - 1)
                    .unwrap_or(u64::MAX)
                    .min(policy.backoff_max_ms);
                std::thread::sleep(Duration::from_millis(backoff + jitter_ms(backoff.max(1))));
            }
            if slot.conn.is_none() {
                match self.transport.connect(server) {
                    Ok(mut c) => {
                        c.set_op_timeout(Some(timeout));
                        if slot.connected_before {
                            self.stats.reconnects.fetch_add(1, Ordering::Relaxed);
                        }
                        slot.connected_before = true;
                        slot.conn = Some(c);
                    }
                    Err(_) => {
                        unreachable = true;
                        timed_out = false;
                        continue;
                    }
                }
            }
            let client = slot.client;
            let conn = slot.conn.as_mut().expect("connected above").as_mut();
            // Timed window starts after connection setup: handshakes and
            // handler-thread spawn are tier bring-up, not wire time, and
            // would skew the calibration samples.
            let t0 = Instant::now();
            let buf = conn.request_buf();
            let base = buf.len();
            if sequenced {
                wire::encode_sequenced_prefix(buf, client, seq);
            }
            encode(buf);
            let out = buf.len() - base;
            let outcome = match conn.call() {
                Ok(reply) => Ok((decode(reply), reply.len())),
                Err(e) => Err(e),
            };
            match outcome {
                Ok((Ok(v), reply_len)) => {
                    if sequenced {
                        slot.next_seq = seq.wrapping_add(1);
                    }
                    if let Some(c) = counters {
                        c.record(t0.elapsed(), out, reply_len);
                    }
                    return Ok(v);
                }
                Ok((Err(_), _)) => {
                    // Corrupt reply: the stream may be desynchronized, so
                    // re-send over a fresh connection.
                    slot.conn = None;
                    timed_out = false;
                    unreachable = false;
                }
                Err(e) => {
                    slot.conn = None;
                    timed_out = matches!(
                        e.kind(),
                        io::ErrorKind::TimedOut | io::ErrorKind::WouldBlock
                    );
                    unreachable = false;
                }
            }
        }
        Err(if timed_out {
            PsError::Timeout { server }
        } else if unreachable {
            PsError::ConnLost { server }
        } else {
            PsError::RetriesExhausted { server, attempts }
        })
    }

    /// One stage-2 round, caller holding the round lock: a commit-all on
    /// every server, then the watermark advance.
    fn commit_round(&self, conns: &mut ConnSet, opcode: u8) {
        let telemetry = self.telemetry.lock().clone();
        let t0 = telemetry.as_ref().map_or(0, |t| t.trace.now_ns());
        let observed = self.version();
        for s in 0..self.servers.len() {
            self.sync_one(conns, s, opcode)
                .unwrap_or_else(|e| panic!("sync round failed: {e}"));
        }
        let round = self.rounds.fetch_add(1, Ordering::Release) + 1;
        // Release: publishes the committed data (ordered by the servers'
        // shard locks and the request/reply round trips) with the
        // watermark, as the in-process router does.
        self.synced_version.store(observed, Ordering::Release);
        if let Some(t) = &telemetry {
            t.metrics.counter("wire.sync_rounds").inc();
            t.trace.span(TraceKind::SyncRound { round }, t0);
        }
    }

    /// One commit-all frame (`SyncRound` or `Drain`) to one server.
    fn sync_one(&self, conns: &mut ConnSet, s: usize, opcode: u8) -> Result<(), PsError> {
        self.call_resilient(
            conns,
            s,
            self.retry,
            Some(&self.stats.sync),
            true,
            &|buf| wire::encode_bodyless(buf, opcode),
            &mut |reply| wire::expect_bodyless(reply, op::SYNCED),
        )
    }

    /// Stage-1 apply through `conns`: routes the gradient for global shard
    /// `g` to its owner as a `PushShard` frame and returns the owner's
    /// pre-apply live shard clock from the ack.
    fn apply_shard_update(
        &self,
        conns: &mut ConnSet,
        g: usize,
        grad: &[f32],
        lr: f64,
        momentum: f64,
    ) -> u64 {
        let s = self.owner[g];
        let local = (g - self.servers[s].shard_offset) as u32;
        self.call_resilient(
            conns,
            s,
            self.retry,
            Some(&self.stats.push),
            true,
            &|buf| wire::encode_push_shard(buf, local, lr, momentum, grad),
            &mut wire::decode_push_ack,
        )
        .unwrap_or_else(|e| panic!("push failed: {e}"))
    }

    /// Stage-1 sparse apply through `conns`: ships only the touched
    /// segments of global shard `g` as a `PushShardSparse` frame. Counted
    /// under the same `push` wire-stats class as the dense path (same op
    /// count, smaller payloads — exactly the comparison the bench pair and
    /// the transport tests read off).
    fn apply_shard_update_sparse(
        &self,
        conns: &mut ConnSet,
        g: usize,
        indices: &[(u32, u32)],
        rows: &[f32],
        lr: f64,
        momentum: f64,
    ) -> u64 {
        let s = self.owner[g];
        let local = (g - self.servers[s].shard_offset) as u32;
        self.call_resilient(
            conns,
            s,
            self.retry,
            Some(&self.stats.push),
            true,
            &|buf| wire::encode_push_shard_sparse(buf, local, lr, momentum, indices, rows),
            &mut wire::decode_push_ack,
        )
        .unwrap_or_else(|e| panic!("sparse push failed: {e}"))
    }

    /// Pulls the committed view of every server through `conns` into `buf`,
    /// decoding each server's `Pulled` frame straight into the flat buffer
    /// (the decode is the pull's single parameter copy). Returns the
    /// effective data version — oldest committed shard clock floored by the
    /// push counter, exactly as [`crate::ShardRouter::pull_committed_into`].
    fn pull_committed_into(&self, conns: &mut ConnSet, buf: &mut RouterBuffer) -> u64 {
        // Acquire: see `version`.
        let version = self.version.load(Ordering::Acquire);
        buf.params.resize(self.param_count(), 0.0);
        buf.shard_versions.resize(self.shard_count(), 0);
        for (s, meta) in self.servers.iter().enumerate() {
            let (po, pl) = meta.param_range;
            let so = meta.shard_offset;
            let params = &mut buf.params[po..po + pl];
            let clocks = &mut buf.shard_versions[so..so + meta.shard_count];
            self.call_resilient(
                conns,
                s,
                self.retry,
                Some(&self.stats.pull),
                false,
                &|req| wire::encode_bodyless(req, op::PULL_COMMITTED),
                &mut |reply| wire::decode_pulled_into(reply, params, clocks),
            )
            .unwrap_or_else(|e| panic!("pull failed: {e}"));
        }
        let effective = buf
            .shard_versions
            .iter()
            .copied()
            .min()
            .unwrap_or(version)
            .min(version);
        buf.version = effective;
        effective
    }

    /// Snapshot of the full live parameter vector, assembled from per-server
    /// `Snapshot` frames.
    pub fn snapshot_params(&self) -> Vec<f32> {
        self.snapshot(false)
    }

    /// Snapshot of the full live velocity vector.
    pub fn snapshot_velocity(&self) -> Vec<f32> {
        self.snapshot(true)
    }

    fn snapshot(&self, velocity: bool) -> Vec<f32> {
        let mut out = vec![0.0f32; self.param_count()];
        let mut conns = self.sync.lock();
        for (s, meta) in self.servers.iter().enumerate() {
            let (po, pl) = meta.param_range;
            let slice = &mut out[po..po + pl];
            self.snapshot_one(&mut conns, s, velocity, slice)
                .unwrap_or_else(|e| panic!("snapshot failed: {e}"));
        }
        out
    }

    /// `Snapshot` frame to one server, decoded into its owned slice.
    fn snapshot_one(
        &self,
        conns: &mut ConnSet,
        s: usize,
        velocity: bool,
        slice: &mut [f32],
    ) -> Result<(), PsError> {
        self.call_resilient(
            conns,
            s,
            self.retry,
            None,
            false,
            &|req| {
                req.push(op::SNAPSHOT);
                req.push(u8::from(velocity));
            },
            &mut |reply| wire::decode_snapshot_into(reply, slice),
        )
    }

    /// Live snapshot of one server's owned parameter (or velocity) slice —
    /// the building block [`crate::supervisor::ServerSupervisor`] uses to
    /// checkpoint servers individually.
    pub fn snapshot_server(&self, s: usize, velocity: bool) -> Result<Vec<f32>, PsError> {
        let (_, pl) = self.servers[s].param_range;
        let mut out = vec![0.0f32; pl];
        let mut conns = self.sync.lock();
        self.snapshot_one(&mut conns, s, velocity, &mut out)?;
        Ok(out)
    }

    /// Overwrites live parameters and velocity from a checkpoint, then
    /// drains so the committed view matches.
    ///
    /// # Panics
    ///
    /// Panics if lengths differ from the parameter count.
    pub fn restore(&self, params: &[f32], velocity: &[f32]) {
        assert_eq!(params.len(), self.param_count(), "params length mismatch");
        assert_eq!(
            velocity.len(),
            self.param_count(),
            "velocity length mismatch"
        );
        let mut conns = self.sync.lock();
        for (s, meta) in self.servers.iter().enumerate() {
            let (po, pl) = meta.param_range;
            self.restore_one(&mut conns, s, &params[po..po + pl], &velocity[po..po + pl])
                .unwrap_or_else(|e| panic!("restore failed: {e}"));
        }
        self.commit_round(&mut conns, op::DRAIN);
    }

    /// `Restore` frame to one server: overwrites its live slice.
    fn restore_one(
        &self,
        conns: &mut ConnSet,
        s: usize,
        params: &[f32],
        velocity: &[f32],
    ) -> Result<(), PsError> {
        self.call_resilient(
            conns,
            s,
            self.retry,
            None,
            true,
            &|buf| wire::encode_restore(buf, params, velocity),
            &mut |reply| wire::expect_bodyless(reply, op::OK),
        )
    }

    /// Re-seeds server `s` from a checkpoint of its owned slice (as
    /// captured by [`Self::snapshot_server`]) and commits it, so pulls see
    /// the restored data — the crash-recovery path after
    /// [`Self::revive_server`].
    ///
    /// # Panics
    ///
    /// Panics if either slice's length differs from the server's owned
    /// parameter count.
    pub fn restore_server(
        &self,
        s: usize,
        params: &[f32],
        velocity: &[f32],
    ) -> Result<(), PsError> {
        let (_, pl) = self.servers[s].param_range;
        assert_eq!(params.len(), pl, "params slice length mismatch");
        assert_eq!(velocity.len(), pl, "velocity slice length mismatch");
        let mut conns = self.sync.lock();
        self.restore_one(&mut conns, s, params, velocity)?;
        self.sync_one(&mut conns, s, op::DRAIN)
    }

    /// Resets the live velocity to zero on every server.
    pub fn reset_velocity(&self) {
        let mut conns = self.sync.lock();
        for s in 0..self.servers.len() {
            self.call_resilient(
                &mut conns,
                s,
                self.retry,
                None,
                true,
                &|buf| wire::encode_bodyless(buf, op::RESET_VELOCITY),
                &mut |reply| wire::expect_bodyless(reply, op::OK),
            )
            .unwrap_or_else(|e| panic!("velocity reset failed: {e}"));
        }
    }

    /// Whether every live parameter on every server is finite.
    pub fn is_finite(&self) -> bool {
        let mut conns = self.sync.lock();
        (0..self.servers.len()).all(|s| {
            self.call_resilient(
                &mut conns,
                s,
                self.retry,
                None,
                false,
                &|buf| wire::encode_bodyless(buf, op::CHECK_FINITE),
                &mut wire::decode_finite,
            )
            .unwrap_or_else(|e| panic!("finiteness check failed: {e}"))
        })
    }

    /// Probes server `s` with a short-timeout round trip; `Ok` means the
    /// server answered. The liveness check behind
    /// [`crate::supervisor::ServerSupervisor::heal`].
    ///
    /// The probe keeps a small retry budget so a transiently lossy link
    /// (fault injection, a congested box) cannot brand a live server dead;
    /// a genuinely dead server fails every attempt fast — its connections
    /// drop at dial or first read — so detection stays prompt.
    pub fn ping_server(&self, s: usize) -> Result<(), PsError> {
        let probe = RetryPolicy {
            max_retries: 2,
            op_timeout_ms: self.retry.op_timeout_ms.min(1000),
            ..self.retry
        };
        let mut conns = self.sync.lock();
        // A cached connection to a killed server fails the probe (as it
        // should); drop it so the probe dials fresh and the verdict
        // reflects the server, not the stale socket.
        conns.invalidate(s);
        self.call_resilient(
            &mut conns,
            s,
            probe,
            None,
            false,
            &|buf| wire::encode_bodyless(buf, op::CHECK_FINITE),
            &mut wire::decode_finite,
        )
        .map(|_| ())
    }

    /// One `Hello` round trip to server `s`: returns its self-description
    /// (identity nonce, owned slice) under the short probe policy of
    /// [`Self::ping_server`]. A changed nonce at the same address means the
    /// instance was replaced (revived in-process, or its process respawned)
    /// and holds reset state.
    ///
    /// # Errors
    ///
    /// Returns the wire error if the server did not answer within the probe
    /// budget.
    pub fn server_info(&self, s: usize) -> Result<ServerInfo, PsError> {
        let probe = RetryPolicy {
            max_retries: 2,
            op_timeout_ms: self.retry.op_timeout_ms.min(1000),
            ..self.retry
        };
        let mut conns = self.sync.lock();
        conns.invalidate(s);
        self.call_resilient(
            &mut conns,
            s,
            probe,
            None,
            false,
            &|buf| wire::encode_bodyless(buf, op::HELLO),
            &mut wire::decode_server_info,
        )
    }

    /// The readiness handshake: probes every server with `Hello` until each
    /// has answered or `deadline` elapses, then cross-checks the answers
    /// against the locally derived layout. This is what lets a `ps-worker`
    /// process be started before (or concurrently with) its `ps-serve`
    /// processes: the worker retries until the listeners bind.
    ///
    /// # Errors
    ///
    /// Returns the last wire error if a server stays unreachable past the
    /// deadline, or [`PsError::InvalidConfig`] if a server answers with an
    /// identity or slice that contradicts the spec (wrong index at an
    /// address, or a different `(param_count, shards, servers)` triple).
    pub fn handshake(&self, deadline: Duration) -> Result<Vec<ServerInfo>, PsError> {
        let start = Instant::now();
        let mut infos = Vec::with_capacity(self.servers.len());
        for (s, meta) in self.servers.iter().enumerate() {
            let info = loop {
                match self.server_info(s) {
                    Ok(info) => break info,
                    Err(e) => {
                        if start.elapsed() >= deadline {
                            return Err(e);
                        }
                        std::thread::sleep(Duration::from_millis(50));
                    }
                }
            };
            let expect = (
                s as u32,
                meta.shard_offset as u32,
                meta.shard_count as u32,
                meta.param_range.0 as u64,
                meta.param_range.1 as u64,
            );
            let got = (
                info.server,
                info.first_shard,
                info.shard_count,
                info.param_offset,
                info.param_len,
            );
            if got != expect {
                return Err(PsError::InvalidConfig(format!(
                    "server {s} answered with identity/slice {got:?}, spec says {expect:?} — \
                     address list and (params, shards, servers) must match across the cluster"
                )));
            }
            infos.push(info);
        }
        Ok(infos)
    }

    /// Kills server `s`'s serving loop through the transport's
    /// fault-injection hook (TCP backend; chaos testing). In-flight and
    /// cached connections are severed; this router's control-plane slot is
    /// invalidated so later ops dial fresh.
    pub fn kill_server(&self, s: usize) -> io::Result<()> {
        self.transport.kill_server(s)?;
        self.sync.lock().invalidate(s);
        if let Some(t) = self.telemetry.lock().as_ref() {
            t.metrics.counter("fault.server_kills").inc();
            t.trace.instant(TraceKind::ServerKill { server: s as u64 });
        }
        Ok(())
    }

    /// Brings a fresh, zero-initialised instance of server `s` back up in
    /// place of a killed one. The instance serves immediately but holds no
    /// trained state — re-seed it with [`Self::restore_server`].
    pub fn revive_server(&self, s: usize) -> io::Result<()> {
        let meta = self.servers[s];
        let zeros = vec![0.0f32; self.layout.total()];
        let fresh = PsServer::new(s, &self.layout, meta.shard_offset, meta.shard_count, &zeros);
        self.transport.revive_server(s, Arc::new(fresh))?;
        self.sync.lock().invalidate(s);
        if let Some(t) = self.telemetry.lock().as_ref() {
            t.metrics.counter("fault.server_heals").inc();
            t.trace.instant(TraceKind::ServerHeal { server: s as u64 });
        }
        Ok(())
    }

    /// One `Stats` round trip to server `s`: a point-in-time copy of its
    /// request accounting (per-opcode counts, payload bytes, dedup hits,
    /// apply timing), under the short probe policy of
    /// [`Self::ping_server`]. Unlike the probes it does *not* drop the
    /// cached control-plane connection — a scrape is a read, not a
    /// liveness verdict, and must not churn a healthy socket.
    ///
    /// # Errors
    ///
    /// Returns the wire error if the server did not answer within the
    /// probe budget.
    pub fn scrape_stats(&self, s: usize) -> Result<ServerStatsSnapshot, PsError> {
        let probe = RetryPolicy {
            max_retries: 2,
            op_timeout_ms: self.retry.op_timeout_ms.min(1000),
            ..self.retry
        };
        let mut conns = self.sync.lock();
        self.call_resilient(
            &mut conns,
            s,
            probe,
            None,
            false,
            &|buf| wire::encode_bodyless(buf, op::STATS),
            &mut wire::decode_stats_snapshot,
        )
    }

    /// Scrapes every server (see [`Self::scrape_stats`]), yielding `None`
    /// for servers that did not answer within the probe budget.
    pub fn scrape_all_stats(&self) -> Vec<Option<ServerStatsSnapshot>> {
        (0..self.servers.len())
            .map(|s| self.scrape_stats(s).ok())
            .collect()
    }

    /// How many servers answered a stats scrape just now — the tier-health
    /// signal the adaptive sync controller folds into its demote decision
    /// (a server that cannot answer a read probe is not one to run ASP
    /// against).
    pub fn reachable_servers(&self) -> usize {
        self.scrape_all_stats().iter().flatten().count()
    }
}

/// A worker's handle onto a [`NetRouter`]: the shared router plus this
/// worker's own lazily-opened connections. Cloning yields a handle with an
/// empty connection set, so every worker thread ends up with its own
/// connections (connection-per-worker) without any cross-thread sharing —
/// the per-clone mutex is only ever contended by its owning thread.
#[derive(Debug)]
pub struct NetPort {
    /// Declared before `router` so a clone's connections close before the
    /// last `Arc` drop can tear the transport down.
    conns: Mutex<ConnSet>,
    router: Arc<NetRouter>,
}

impl Clone for NetPort {
    fn clone(&self) -> Self {
        NetPort {
            conns: Mutex::new(ConnSet::default()),
            router: Arc::clone(&self.router),
        }
    }
}

impl NetPort {
    /// Launches a transport-backed tier (see [`NetRouter::launch`]).
    pub fn launch(initial: &[f32], shards: usize, topology: ServerTopology) -> Self {
        NetPort {
            conns: Mutex::new(ConnSet::default()),
            router: Arc::new(NetRouter::launch(initial, shards, topology)),
        }
    }

    /// Connects to an already-running cross-process tier (see
    /// [`NetRouter::connect`]).
    ///
    /// # Errors
    ///
    /// Returns [`PsError::InvalidConfig`] on an inconsistent shape.
    pub fn connect(
        param_count: usize,
        shards: usize,
        addrs: &[SocketAddr],
        sync_every: u64,
        retry: RetryPolicy,
    ) -> Result<Self, PsError> {
        Ok(NetPort {
            conns: Mutex::new(ConnSet::default()),
            router: Arc::new(NetRouter::connect(
                param_count,
                shards,
                addrs,
                sync_every,
                retry,
            )?),
        })
    }

    /// The shared router.
    pub fn router(&self) -> &Arc<NetRouter> {
        &self.router
    }

    /// Pulls the committed view into `buf` over this worker's connections.
    pub fn pull_into(&self, buf: &mut RouterBuffer) -> u64 {
        self.router.pull_committed_into(&mut self.conns.lock(), buf)
    }

    /// Stage-1 apply over this worker's connection to the owner.
    pub fn apply_shard_update(&self, g: usize, grad: &[f32], lr: f64, momentum: f64) -> u64 {
        self.router
            .apply_shard_update(&mut self.conns.lock(), g, grad, lr, momentum)
    }

    /// Stage-1 sparse apply over this worker's connection to the owner:
    /// only the touched segments of shard `g` cross the wire.
    pub fn apply_shard_update_sparse(
        &self,
        g: usize,
        indices: &[(u32, u32)],
        rows: &[f32],
        lr: f64,
        momentum: f64,
    ) -> u64 {
        self.router.apply_shard_update_sparse(
            &mut self.conns.lock(),
            g,
            indices,
            rows,
            lr,
            momentum,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::router::ShardRouter;

    fn topologies() -> Vec<ServerTopology> {
        vec![
            ServerTopology::new(2, 1).with_transport(TransportKind::Channel),
            ServerTopology::new(2, 1).with_transport(TransportKind::Tcp),
        ]
    }

    #[test]
    fn net_router_matches_in_process_router() {
        let initial: Vec<f32> = (0..37).map(|i| (i as f32).sin()).collect();
        let grad: Vec<f32> = (0..37).map(|i| (i as f32).cos()).collect();
        for topology in topologies() {
            let inproc = ShardRouter::new(&initial, 5, ServerTopology::new(2, 1));
            let net = NetPort::launch(&initial, 5, topology);
            for step in 0..4 {
                for g in 0..5 {
                    let (o, l) = inproc.shard_range(g);
                    assert_eq!(net.router().shard_range(g), (o, l));
                    let a = inproc.apply_shard_update(g, &grad[o..o + l], 0.05, 0.9);
                    let b = net.apply_shard_update(g, &grad[o..o + l], 0.05, 0.9);
                    assert_eq!(a, b, "shard clock skew at step {step} shard {g}");
                }
                inproc.complete_push(step);
                net.router().complete_push(step);
                inproc.reconcile_if_due();
                net.router().reconcile_if_due();
            }
            assert_eq!(inproc.version(), net.router().version());
            assert_eq!(
                inproc.snapshot_params(),
                net.router().snapshot_params(),
                "{:?} diverged from in-process",
                net.router().transport_kind()
            );
            assert_eq!(inproc.snapshot_velocity(), net.router().snapshot_velocity());
            let mut a = RouterBuffer::new();
            let mut b = RouterBuffer::new();
            let va = inproc.pull_committed_into(&mut a);
            let vb = net.pull_into(&mut b);
            assert_eq!(va, vb);
            assert_eq!(a.params(), b.params());
            assert_eq!(a.shard_versions(), b.shard_versions());
        }
    }

    #[test]
    fn pulls_see_committed_view_and_honest_version() {
        for topology in topologies() {
            let initial = vec![1.0f32; 24];
            let net = NetPort::launch(&initial, 4, {
                let mut t = topology;
                t.sync_every = 8;
                t
            });
            let r = net.router();
            let mut buf = RouterBuffer::new();
            net.pull_into(&mut buf);
            let before = buf.params().to_vec();
            for g in 0..r.shard_count() {
                let (_, l) = r.shard_range(g);
                net.apply_shard_update(g, &vec![1.0; l], 0.5, 0.0);
            }
            r.complete_push(0);
            let v = net.pull_into(&mut buf);
            assert_eq!(buf.params(), &before[..], "stage-1 leaked into a pull");
            assert_eq!(v, 0, "pulled version must track the committed data");
            r.drain();
            let v = net.pull_into(&mut buf);
            assert_eq!(v, 1);
            assert_eq!(buf.params(), &r.snapshot_params()[..]);
        }
    }

    #[test]
    fn restore_round_trips_over_the_wire() {
        for topology in topologies() {
            let initial: Vec<f32> = (0..30).map(|i| i as f32 * 0.1).collect();
            let net = NetPort::launch(&initial, 6, topology);
            let r = net.router();
            for g in 0..r.shard_count() {
                let (_, l) = r.shard_range(g);
                net.apply_shard_update(g, &vec![1.0; l], 0.1, 0.9);
            }
            r.complete_push(0);
            let params = r.snapshot_params();
            let velocity = r.snapshot_velocity();
            for g in 0..r.shard_count() {
                let (_, l) = r.shard_range(g);
                net.apply_shard_update(g, &vec![5.0; l], 0.1, 0.9);
            }
            assert_ne!(r.snapshot_params(), params);
            r.restore(&params, &velocity);
            assert_eq!(r.snapshot_params(), params);
            assert_eq!(r.snapshot_velocity(), velocity);
            let mut buf = RouterBuffer::new();
            net.pull_into(&mut buf);
            assert_eq!(buf.params(), &params[..], "restore must drain");
            assert!(r.is_finite());
            r.reset_velocity();
            assert!(r.snapshot_velocity().iter().all(|&v| v == 0.0));
        }
    }

    #[test]
    fn wire_stats_count_every_round_trip() {
        let net = NetPort::launch(
            &[0.5f32; 16],
            4,
            ServerTopology::new(2, 2).with_transport(TransportKind::Channel),
        );
        let r = net.router();
        let mut buf = RouterBuffer::new();
        net.pull_into(&mut buf);
        for g in 0..4 {
            let (_, l) = r.shard_range(g);
            net.apply_shard_update(g, &vec![1.0; l], 0.1, 0.0);
        }
        r.complete_push(0);
        r.drain();
        let stats = r.stats();
        assert_eq!(stats.backend, Some(TransportKind::Channel));
        assert_eq!(stats.push.ops, 4, "one push round trip per shard");
        assert_eq!(stats.pull.ops, 2, "one pull round trip per server");
        assert_eq!(stats.sync.ops, 2, "one sync round trip per server");
        assert!(stats.push.bytes_out > 0 && stats.pull.bytes_in > 0);
        assert!(stats.total_wire_s() > 0.0);
        // Pull replies carry the parameters; push replies only an ack.
        assert!(stats.pull.mean_round_trip_bytes() > stats.push.mean_round_trip_bytes() / 2.0);
        assert_eq!(stats.latency_samples().len(), 3);
        // The retry machinery must be free when nothing fails.
        assert_eq!(stats.retries, 0, "clean network must not retry");
        assert_eq!(stats.reconnects, 0, "clean network must not reconnect");
        // Deltas scope to a window.
        let later = r.stats();
        assert_eq!(later.delta(&stats).total_ops(), 0);
    }

    #[test]
    fn retries_recover_and_dedup_keeps_state_exact() {
        let initial: Vec<f32> = (0..32).map(|i| i as f32 * 0.05).collect();
        let grad: Vec<f32> = (0..32).map(|i| (i as f32).cos()).collect();
        let mut plan = crate::transport::FaultPlan::seeded(7);
        plan.drop_reply_per_mille = 150;
        let clean = ShardRouter::new(&initial, 4, ServerTopology::new(2, 2));
        let net = NetPort::launch(
            &initial,
            4,
            ServerTopology::new(2, 2)
                .with_transport(TransportKind::Channel)
                .with_faults(plan),
        );
        for step in 0..6 {
            for g in 0..4 {
                let (o, l) = clean.shard_range(g);
                let a = clean.apply_shard_update(g, &grad[o..o + l], 0.05, 0.9);
                let b = net.apply_shard_update(g, &grad[o..o + l], 0.05, 0.9);
                // A dropped-reply retry must replay the cached ack, so even
                // the pre-apply clocks match the fault-free run.
                assert_eq!(a, b, "shard clock skew at step {step} shard {g}");
            }
            clean.complete_push(step);
            net.router().complete_push(step);
            clean.reconcile_if_due();
            net.router().reconcile_if_due();
        }
        clean.drain();
        net.router().drain();
        assert_eq!(
            net.router().snapshot_params(),
            clean.snapshot_params(),
            "dropped replies must not double-apply gradients"
        );
        let stats = net.router().stats();
        assert!(stats.retries > 0, "fault plan injected no faults");
    }

    #[test]
    fn per_server_snapshot_and_restore_round_trip() {
        let initial: Vec<f32> = (0..24).map(|i| i as f32 * 0.2).collect();
        let net = NetPort::launch(
            &initial,
            4,
            ServerTopology::new(2, 1).with_transport(TransportKind::Channel),
        );
        let r = net.router();
        for g in 0..r.shard_count() {
            let (_, l) = r.shard_range(g);
            net.apply_shard_update(g, &vec![1.0; l], 0.1, 0.9);
        }
        r.ping_server(0).expect("server 0 alive");
        r.ping_server(1).expect("server 1 alive");
        let p1 = r.snapshot_server(1, false).expect("snapshot params");
        let v1 = r.snapshot_server(1, true).expect("snapshot velocity");
        for g in 0..r.shard_count() {
            let (_, l) = r.shard_range(g);
            net.apply_shard_update(g, &vec![9.0; l], 0.1, 0.9);
        }
        r.restore_server(1, &p1, &v1).expect("restore server 1");
        let full = r.snapshot_params();
        let (po, pl) = (r.param_count() / 2, p1.len());
        assert_eq!(&full[po..po + pl], &p1[..], "server 1 restored");
        let mut buf = RouterBuffer::new();
        net.pull_into(&mut buf);
        assert_eq!(
            &buf.params()[po..po + pl],
            &p1[..],
            "per-server restore must commit"
        );
    }

    #[test]
    fn scraped_server_stats_match_client_round_trips() {
        let net = NetPort::launch(
            &[0.5f32; 16],
            4,
            ServerTopology::new(2, 2).with_transport(TransportKind::Channel),
        );
        let r = net.router();
        let mut buf = RouterBuffer::new();
        net.pull_into(&mut buf);
        for g in 0..4 {
            let (_, l) = r.shard_range(g);
            net.apply_shard_update(g, &vec![1.0; l], 0.1, 0.0);
        }
        r.complete_push(0);
        r.drain();
        let client = r.stats();
        let mut merged = ServerStatsSnapshot::default();
        for snap in r.scrape_all_stats().into_iter().flatten() {
            merged.merge(&snap);
        }
        // On a clean network the servers' per-opcode request counts equal
        // the client's round-trip counts exactly — the consistency the
        // cluster test asserts across processes.
        assert_eq!(
            merged.requests_for(op::PUSH_SHARD) + merged.requests_for(op::PUSH_SHARD_SPARSE),
            client.push.ops
        );
        assert_eq!(merged.requests_for(op::PULL_COMMITTED), client.pull.ops);
        assert_eq!(
            merged.requests_for(op::SYNC_ROUND) + merged.requests_for(op::DRAIN),
            client.sync.ops
        );
        assert_eq!(merged.dedup_hits, 0, "clean network replays nothing");
        assert_eq!(merged.apply_ns.count, 4, "one apply per push");
        assert_eq!(merged.shard_applies, vec![1, 1, 1, 1]);
    }

    #[test]
    fn router_emits_wire_events_on_the_installed_bus() {
        let initial: Vec<f32> = (0..32).map(|i| i as f32 * 0.05).collect();
        let mut plan = crate::transport::FaultPlan::seeded(11);
        plan.drop_reply_per_mille = 200;
        let net = NetPort::launch(
            &initial,
            4,
            ServerTopology::new(2, 2)
                .with_transport(TransportKind::Channel)
                .with_faults(plan),
        );
        let telemetry = Arc::new(Telemetry::new());
        net.router().set_telemetry(Arc::clone(&telemetry));
        for step in 0..8 {
            for g in 0..4 {
                let (_, l) = net.router().shard_range(g);
                net.apply_shard_update(g, &vec![1.0; l], 0.05, 0.9);
            }
            net.router().complete_push(step);
            net.router().reconcile_if_due();
        }
        net.router().drain();
        let counts = telemetry.trace.counts_by_name();
        assert!(counts.get("sync_round").copied().unwrap_or(0) >= 1);
        assert!(
            counts.get("push_retry").copied().unwrap_or(0) >= 1,
            "fault plan injected no retries: {counts:?}"
        );
        let snap = telemetry.metrics.snapshot();
        assert_eq!(
            snap.counters["wire.retries"],
            net.router().stats().retries,
            "telemetry counter must track the wire stat"
        );
        assert_eq!(
            snap.counters["wire.sync_rounds"],
            net.router().sync_rounds()
        );
    }

    #[test]
    fn clamps_servers_to_shards() {
        let net = NetPort::launch(
            &[1.0f32; 8],
            2,
            ServerTopology::new(5, 1).with_transport(TransportKind::Channel),
        );
        assert_eq!(net.router().server_count(), 2);
        assert_eq!(net.router().owner_of(0), 0);
        assert_eq!(net.router().owner_of(1), 1);
    }
}
