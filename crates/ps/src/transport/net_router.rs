//! The transport-backed shard router: [`crate::ShardRouter`] semantics —
//! ownership layout, cluster version clock, OSP-style two-stage sync —
//! with every server interaction crossing a [`Transport`].
//!
//! The split of responsibilities mirrors a real PS deployment:
//!
//! * **Server-side state** (live + committed stores, shard clocks) lives in
//!   the [`PsServer`]s owned by the transport's serving loops; the client
//!   can only reach it through request/reply frames.
//! * **Client-side state** (the push-counter version clock, the stage-2
//!   watermark, the ownership map) lives here, shared by all workers of one
//!   trainer — the same place [`crate::ShardRouter`] keeps it, so staleness
//!   is measured identically across the in-process and wire tiers.
//!
//! Workers hold a [`NetPort`] clone each; a clone lazily opens its own
//! connection per server (connection-per-worker on both backends), so
//! worker threads never share a socket or contend on a connection lock.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::Mutex;

use super::channel::ChannelTransport;
use super::tcp::TcpTransport;
use super::wire::{self, op};
use super::{Conn, Transport};
use crate::config::{ServerTopology, TransportKind};
use crate::profiler::{TransportStats, WireOp};
use crate::router::RouterBuffer;
use crate::server::PsServer;
use crate::store::ShardLayout;

/// Client-side description of one server's slice of the tier.
#[derive(Debug, Clone, Copy)]
struct ServerMeta {
    /// First global shard id owned by the server.
    shard_offset: usize,
    /// Number of owned shards.
    shard_count: usize,
    /// `(offset, len)` of the owned slice of the flat parameter vector.
    param_range: (usize, usize),
}

/// Cumulative wire counters for one operation class (lock-free; workers on
/// different threads record concurrently).
#[derive(Debug, Default)]
struct OpCounters {
    ops: AtomicU64,
    ns: AtomicU64,
    bytes_out: AtomicU64,
    bytes_in: AtomicU64,
}

impl OpCounters {
    fn record(&self, elapsed: Duration, bytes_out: usize, bytes_in: usize) {
        // Relaxed throughout: these are statistics counters; nothing is
        // published through them and cross-counter skew is tolerable.
        self.ops.fetch_add(1, Ordering::Relaxed);
        self.ns
            .fetch_add(elapsed.as_nanos() as u64, Ordering::Relaxed);
        self.bytes_out
            .fetch_add(bytes_out as u64, Ordering::Relaxed);
        self.bytes_in.fetch_add(bytes_in as u64, Ordering::Relaxed);
    }

    fn snapshot(&self) -> WireOp {
        WireOp {
            ops: self.ops.load(Ordering::Relaxed),
            wire_ns: self.ns.load(Ordering::Relaxed),
            bytes_out: self.bytes_out.load(Ordering::Relaxed),
            bytes_in: self.bytes_in.load(Ordering::Relaxed),
        }
    }
}

#[derive(Debug, Default)]
struct WireCounters {
    push: OpCounters,
    pull: OpCounters,
    sync: OpCounters,
}

/// A lazily-connected set of connections, one slot per server.
#[derive(Debug, Default)]
pub(crate) struct ConnSet {
    per_server: Vec<Option<Box<dyn Conn>>>,
}

impl ConnSet {
    fn with_capacity(servers: usize) -> Self {
        ConnSet {
            per_server: (0..servers).map(|_| None).collect(),
        }
    }

    fn get(&mut self, server: usize, transport: &dyn Transport) -> &mut dyn Conn {
        if self.per_server.is_empty() {
            self.per_server = (0..transport.server_count()).map(|_| None).collect();
        }
        let slot = &mut self.per_server[server];
        if slot.is_none() {
            *slot = Some(
                transport
                    .connect(server)
                    .unwrap_or_else(|e| panic!("cannot connect to ps server {server}: {e}")),
            );
        }
        slot.as_mut().expect("slot populated above").as_mut()
    }
}

/// A multi-server parameter-server tier reached through a wire transport.
///
/// Transport failures surface as panics with context: on a loopback
/// transport inside one process, a broken connection means the tier was
/// torn down mid-operation (or a bug), not a recoverable network event.
#[derive(Debug)]
pub struct NetRouter {
    kind: TransportKind,
    /// Global parameter layout (shard id → flat range).
    layout: ShardLayout,
    /// Global shard id → owning server index.
    owner: Vec<usize>,
    servers: Vec<ServerMeta>,
    /// Completed pushes — the cluster-global version clock.
    version: AtomicU64,
    /// Stage-2 period in completed pushes.
    sync_every: u64,
    /// Completed stage-2 rounds (drains included).
    rounds: AtomicU64,
    /// Scheduling watermark, exactly as in [`crate::ShardRouter`].
    synced_version: AtomicU64,
    stats: WireCounters,
    /// Serializes stage-2 rounds and the control plane; holds their
    /// dedicated connections.
    ///
    /// Field order is load-bearing: `sync` (and the conns inside it) must
    /// drop before `transport`, whose Drop joins the serving threads and
    /// would otherwise wait on our own open connections.
    sync: Mutex<ConnSet>,
    transport: Box<dyn Transport>,
}

impl NetRouter {
    /// Builds the servers, launches the serving infrastructure for
    /// `topology.transport`, and returns the client router. Clamping
    /// matches [`crate::ShardRouter::new`]: servers are clamped to the
    /// shard count, shards to the parameter count.
    ///
    /// # Panics
    ///
    /// Panics if `initial` is empty, `shards == 0`, the topology is
    /// invalid, `topology.transport` is [`TransportKind::InProcess`] (that
    /// is [`crate::ShardRouter`]'s job), or a TCP listener cannot bind.
    pub fn launch(initial: &[f32], shards: usize, topology: ServerTopology) -> Self {
        assert!(!initial.is_empty(), "cannot shard zero parameters");
        assert!(shards > 0, "need at least one shard");
        if let Err(msg) = topology.validate() {
            panic!("invalid topology: {msg}");
        }
        let layout = ShardLayout::new(initial.len(), shards);
        let ownership = ShardLayout::new(layout.len(), topology.servers);
        let mut owner = vec![0usize; layout.len()];
        let mut metas = Vec::with_capacity(ownership.len());
        let instances: Vec<Arc<PsServer>> = (0..ownership.len())
            .map(|s| {
                let (first, count) = ownership.range(s);
                owner[first..first + count].iter_mut().for_each(|o| *o = s);
                let server = PsServer::new(s, &layout, first, count, initial);
                metas.push(ServerMeta {
                    shard_offset: first,
                    shard_count: count,
                    param_range: server.param_range(),
                });
                Arc::new(server)
            })
            .collect();
        let server_count = instances.len();
        let transport: Box<dyn Transport> = match topology.transport {
            TransportKind::Channel => Box::new(ChannelTransport::launch(instances)),
            TransportKind::Tcp => {
                Box::new(TcpTransport::launch(instances).expect("bind loopback PS listeners"))
            }
            TransportKind::InProcess => {
                panic!("NetRouter requires a wire transport; use ShardRouter in-process")
            }
        };
        NetRouter {
            kind: topology.transport,
            layout,
            owner,
            servers: metas,
            version: AtomicU64::new(0),
            sync_every: topology.sync_every.max(1),
            rounds: AtomicU64::new(0),
            synced_version: AtomicU64::new(0),
            stats: WireCounters::default(),
            sync: Mutex::new(ConnSet::with_capacity(server_count)),
            transport,
        }
    }

    /// The transport backend kind.
    pub fn transport_kind(&self) -> TransportKind {
        self.kind
    }

    /// Number of servers (after clamping to the shard count).
    pub fn server_count(&self) -> usize {
        self.servers.len()
    }

    /// Total number of parameters.
    pub fn param_count(&self) -> usize {
        self.layout.total()
    }

    /// Number of global shards.
    pub fn shard_count(&self) -> usize {
        self.layout.len()
    }

    /// `(offset, len)` of global shard `g` in the flat vector.
    pub fn shard_range(&self, g: usize) -> (usize, usize) {
        self.layout.range(g)
    }

    /// The server owning global shard `g`.
    pub fn owner_of(&self, g: usize) -> usize {
        self.owner[g]
    }

    /// Stage-2 period in completed pushes.
    pub fn sync_every(&self) -> u64 {
        self.sync_every
    }

    /// Cluster-global version: number of completed pushes.
    pub fn version(&self) -> u64 {
        // Acquire: pairs with the Release bump in `complete_push`.
        self.version.load(Ordering::Acquire)
    }

    /// Completed stage-2 reconciliation rounds (drains included).
    pub fn sync_rounds(&self) -> u64 {
        self.rounds.load(Ordering::Acquire)
    }

    /// Cumulative wire-cost counters since launch.
    pub fn stats(&self) -> TransportStats {
        TransportStats {
            backend: Some(self.kind),
            push: self.stats.push.snapshot(),
            pull: self.stats.pull.snapshot(),
            sync: self.stats.sync.snapshot(),
        }
    }

    /// Completes a logical push: bumps the global version and returns the
    /// push's staleness relative to `pulled_version`.
    pub fn complete_push(&self, pulled_version: u64) -> u64 {
        // Release: pairs with the Acquire loads in `version`/`pull`.
        self.version
            .fetch_add(1, Ordering::Release)
            .saturating_sub(pulled_version)
    }

    /// Runs a stage-2 round if the push counter has moved `sync_every`
    /// past the watermark — the same skip-redundant-rounds loop as
    /// [`crate::ShardRouter::reconcile_if_due`], with the round's
    /// commit-alls travelling as `SyncRound` frames.
    pub fn reconcile_if_due(&self) {
        loop {
            let synced = self.synced_version.load(Ordering::Acquire);
            if self.version() < synced.saturating_add(self.sync_every) {
                return;
            }
            let mut conns = self.sync.lock();
            if self.synced_version.load(Ordering::Acquire) != synced {
                continue;
            }
            self.commit_round(&mut conns, op::SYNC_ROUND);
        }
    }

    /// Drains the stage-2 pipeline: waits out any in-flight round, then
    /// unconditionally commits every server so the committed view equals
    /// the live view (BSP barriers, switches, restore).
    pub fn drain(&self) {
        let mut conns = self.sync.lock();
        self.commit_round(&mut conns, op::DRAIN);
    }

    /// One stage-2 round, caller holding the round lock: a commit-all on
    /// every server, then the watermark advance.
    fn commit_round(&self, conns: &mut ConnSet, opcode: u8) {
        let observed = self.version();
        for s in 0..self.servers.len() {
            // Connect before starting the clock: lazy connection setup
            // (TCP handshake, handler-thread spawn) is tier bring-up, not
            // wire time, and would skew the calibration samples.
            let conn = conns.get(s, self.transport.as_ref());
            let t0 = Instant::now();
            let buf = conn.request_buf();
            let base = buf.len();
            wire::encode_bodyless(buf, opcode);
            let out = buf.len() - base;
            let reply = conn
                .call()
                .unwrap_or_else(|e| panic!("sync round failed on server {s}: {e}"));
            let reply_len = reply.len();
            wire::expect_bodyless(reply, op::SYNCED)
                .unwrap_or_else(|e| panic!("bad sync reply from server {s}: {e}"));
            self.stats.sync.record(t0.elapsed(), out, reply_len);
        }
        self.rounds.fetch_add(1, Ordering::Release);
        // Release: publishes the committed data (ordered by the servers'
        // shard locks and the request/reply round trips) with the
        // watermark, as the in-process router does.
        self.synced_version.store(observed, Ordering::Release);
    }

    /// Stage-1 apply through `conns`: routes the gradient for global shard
    /// `g` to its owner as a `PushShard` frame and returns the owner's
    /// pre-apply live shard clock from the ack.
    fn apply_shard_update(
        &self,
        conns: &mut ConnSet,
        g: usize,
        grad: &[f32],
        lr: f64,
        momentum: f64,
    ) -> u64 {
        let s = self.owner[g];
        let local = (g - self.servers[s].shard_offset) as u32;
        // Connect outside the timed window (see `commit_round`).
        let conn = conns.get(s, self.transport.as_ref());
        let t0 = Instant::now();
        let buf = conn.request_buf();
        let base = buf.len();
        wire::encode_push_shard(buf, local, lr, momentum, grad);
        let out = buf.len() - base;
        let reply = conn
            .call()
            .unwrap_or_else(|e| panic!("push to server {s} failed: {e}"));
        let reply_len = reply.len();
        let prev = wire::decode_push_ack(reply)
            .unwrap_or_else(|e| panic!("bad push ack from server {s}: {e}"));
        self.stats.push.record(t0.elapsed(), out, reply_len);
        prev
    }

    /// Stage-1 sparse apply through `conns`: ships only the touched
    /// segments of global shard `g` as a `PushShardSparse` frame. Counted
    /// under the same `push` wire-stats class as the dense path (same op
    /// count, smaller payloads — exactly the comparison the bench pair and
    /// the transport tests read off).
    fn apply_shard_update_sparse(
        &self,
        conns: &mut ConnSet,
        g: usize,
        indices: &[(u32, u32)],
        rows: &[f32],
        lr: f64,
        momentum: f64,
    ) -> u64 {
        let s = self.owner[g];
        let local = (g - self.servers[s].shard_offset) as u32;
        // Connect outside the timed window (see `commit_round`).
        let conn = conns.get(s, self.transport.as_ref());
        let t0 = Instant::now();
        let buf = conn.request_buf();
        let base = buf.len();
        wire::encode_push_shard_sparse(buf, local, lr, momentum, indices, rows);
        let out = buf.len() - base;
        let reply = conn
            .call()
            .unwrap_or_else(|e| panic!("sparse push to server {s} failed: {e}"));
        let reply_len = reply.len();
        let prev = wire::decode_push_ack(reply)
            .unwrap_or_else(|e| panic!("bad push ack from server {s}: {e}"));
        self.stats.push.record(t0.elapsed(), out, reply_len);
        prev
    }

    /// Pulls the committed view of every server through `conns` into `buf`,
    /// decoding each server's `Pulled` frame straight into the flat buffer
    /// (the decode is the pull's single parameter copy). Returns the
    /// effective data version — oldest committed shard clock floored by the
    /// push counter, exactly as [`crate::ShardRouter::pull_committed_into`].
    fn pull_committed_into(&self, conns: &mut ConnSet, buf: &mut RouterBuffer) -> u64 {
        // Acquire: see `version`.
        let version = self.version.load(Ordering::Acquire);
        buf.params.resize(self.param_count(), 0.0);
        buf.shard_versions.resize(self.shard_count(), 0);
        for (s, meta) in self.servers.iter().enumerate() {
            let (po, pl) = meta.param_range;
            let so = meta.shard_offset;
            // Connect outside the timed window (see `commit_round`).
            let conn = conns.get(s, self.transport.as_ref());
            let t0 = Instant::now();
            let req = conn.request_buf();
            let base = req.len();
            wire::encode_bodyless(req, op::PULL_COMMITTED);
            let out = req.len() - base;
            let reply = conn
                .call()
                .unwrap_or_else(|e| panic!("pull from server {s} failed: {e}"));
            let reply_len = reply.len();
            wire::decode_pulled_into(
                reply,
                &mut buf.params[po..po + pl],
                &mut buf.shard_versions[so..so + meta.shard_count],
            )
            .unwrap_or_else(|e| panic!("bad pull reply from server {s}: {e}"));
            self.stats.pull.record(t0.elapsed(), out, reply_len);
        }
        let effective = buf
            .shard_versions
            .iter()
            .copied()
            .min()
            .unwrap_or(version)
            .min(version);
        buf.version = effective;
        effective
    }

    /// Snapshot of the full live parameter vector, assembled from per-server
    /// `Snapshot` frames.
    pub fn snapshot_params(&self) -> Vec<f32> {
        self.snapshot(false)
    }

    /// Snapshot of the full live velocity vector.
    pub fn snapshot_velocity(&self) -> Vec<f32> {
        self.snapshot(true)
    }

    fn snapshot(&self, velocity: bool) -> Vec<f32> {
        let mut out = vec![0.0f32; self.param_count()];
        let mut conns = self.sync.lock();
        for (s, meta) in self.servers.iter().enumerate() {
            let (po, pl) = meta.param_range;
            let conn = conns.get(s, self.transport.as_ref());
            let req = conn.request_buf();
            req.push(op::SNAPSHOT);
            req.push(u8::from(velocity));
            let reply = conn
                .call()
                .unwrap_or_else(|e| panic!("snapshot from server {s} failed: {e}"));
            wire::decode_snapshot_into(reply, &mut out[po..po + pl])
                .unwrap_or_else(|e| panic!("bad snapshot reply from server {s}: {e}"));
        }
        out
    }

    /// Overwrites live parameters and velocity from a checkpoint, then
    /// drains so the committed view matches.
    ///
    /// # Panics
    ///
    /// Panics if lengths differ from the parameter count.
    pub fn restore(&self, params: &[f32], velocity: &[f32]) {
        assert_eq!(params.len(), self.param_count(), "params length mismatch");
        assert_eq!(
            velocity.len(),
            self.param_count(),
            "velocity length mismatch"
        );
        let mut conns = self.sync.lock();
        for (s, meta) in self.servers.iter().enumerate() {
            let (po, pl) = meta.param_range;
            let conn = conns.get(s, self.transport.as_ref());
            wire::encode_restore(
                conn.request_buf(),
                &params[po..po + pl],
                &velocity[po..po + pl],
            );
            let reply = conn
                .call()
                .unwrap_or_else(|e| panic!("restore on server {s} failed: {e}"));
            wire::expect_bodyless(reply, op::OK)
                .unwrap_or_else(|e| panic!("bad restore reply from server {s}: {e}"));
        }
        self.commit_round(&mut conns, op::DRAIN);
    }

    /// Resets the live velocity to zero on every server.
    pub fn reset_velocity(&self) {
        let mut conns = self.sync.lock();
        for s in 0..self.servers.len() {
            let conn = conns.get(s, self.transport.as_ref());
            wire::encode_bodyless(conn.request_buf(), op::RESET_VELOCITY);
            let reply = conn
                .call()
                .unwrap_or_else(|e| panic!("velocity reset on server {s} failed: {e}"));
            wire::expect_bodyless(reply, op::OK)
                .unwrap_or_else(|e| panic!("bad reset reply from server {s}: {e}"));
        }
    }

    /// Whether every live parameter on every server is finite.
    pub fn is_finite(&self) -> bool {
        let mut conns = self.sync.lock();
        (0..self.servers.len()).all(|s| {
            let conn = conns.get(s, self.transport.as_ref());
            wire::encode_bodyless(conn.request_buf(), op::CHECK_FINITE);
            let reply = conn
                .call()
                .unwrap_or_else(|e| panic!("finiteness check on server {s} failed: {e}"));
            wire::decode_finite(reply)
                .unwrap_or_else(|e| panic!("bad finiteness reply from server {s}: {e}"))
        })
    }
}

/// A worker's handle onto a [`NetRouter`]: the shared router plus this
/// worker's own lazily-opened connections. Cloning yields a handle with an
/// empty connection set, so every worker thread ends up with its own
/// connections (connection-per-worker) without any cross-thread sharing —
/// the per-clone mutex is only ever contended by its owning thread.
#[derive(Debug)]
pub struct NetPort {
    /// Declared before `router` so a clone's connections close before the
    /// last `Arc` drop can tear the transport down.
    conns: Mutex<ConnSet>,
    router: Arc<NetRouter>,
}

impl Clone for NetPort {
    fn clone(&self) -> Self {
        NetPort {
            conns: Mutex::new(ConnSet::default()),
            router: Arc::clone(&self.router),
        }
    }
}

impl NetPort {
    /// Launches a transport-backed tier (see [`NetRouter::launch`]).
    pub fn launch(initial: &[f32], shards: usize, topology: ServerTopology) -> Self {
        NetPort {
            conns: Mutex::new(ConnSet::default()),
            router: Arc::new(NetRouter::launch(initial, shards, topology)),
        }
    }

    /// The shared router.
    pub fn router(&self) -> &Arc<NetRouter> {
        &self.router
    }

    /// Pulls the committed view into `buf` over this worker's connections.
    pub fn pull_into(&self, buf: &mut RouterBuffer) -> u64 {
        self.router.pull_committed_into(&mut self.conns.lock(), buf)
    }

    /// Stage-1 apply over this worker's connection to the owner.
    pub fn apply_shard_update(&self, g: usize, grad: &[f32], lr: f64, momentum: f64) -> u64 {
        self.router
            .apply_shard_update(&mut self.conns.lock(), g, grad, lr, momentum)
    }

    /// Stage-1 sparse apply over this worker's connection to the owner:
    /// only the touched segments of shard `g` cross the wire.
    pub fn apply_shard_update_sparse(
        &self,
        g: usize,
        indices: &[(u32, u32)],
        rows: &[f32],
        lr: f64,
        momentum: f64,
    ) -> u64 {
        self.router.apply_shard_update_sparse(
            &mut self.conns.lock(),
            g,
            indices,
            rows,
            lr,
            momentum,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::router::ShardRouter;

    fn topologies() -> Vec<ServerTopology> {
        vec![
            ServerTopology::new(2, 1).with_transport(TransportKind::Channel),
            ServerTopology::new(2, 1).with_transport(TransportKind::Tcp),
        ]
    }

    #[test]
    fn net_router_matches_in_process_router() {
        let initial: Vec<f32> = (0..37).map(|i| (i as f32).sin()).collect();
        let grad: Vec<f32> = (0..37).map(|i| (i as f32).cos()).collect();
        for topology in topologies() {
            let inproc = ShardRouter::new(&initial, 5, ServerTopology::new(2, 1));
            let net = NetPort::launch(&initial, 5, topology);
            for step in 0..4 {
                for g in 0..5 {
                    let (o, l) = inproc.shard_range(g);
                    assert_eq!(net.router().shard_range(g), (o, l));
                    let a = inproc.apply_shard_update(g, &grad[o..o + l], 0.05, 0.9);
                    let b = net.apply_shard_update(g, &grad[o..o + l], 0.05, 0.9);
                    assert_eq!(a, b, "shard clock skew at step {step} shard {g}");
                }
                inproc.complete_push(step);
                net.router().complete_push(step);
                inproc.reconcile_if_due();
                net.router().reconcile_if_due();
            }
            assert_eq!(inproc.version(), net.router().version());
            assert_eq!(
                inproc.snapshot_params(),
                net.router().snapshot_params(),
                "{:?} diverged from in-process",
                net.router().transport_kind()
            );
            assert_eq!(inproc.snapshot_velocity(), net.router().snapshot_velocity());
            let mut a = RouterBuffer::new();
            let mut b = RouterBuffer::new();
            let va = inproc.pull_committed_into(&mut a);
            let vb = net.pull_into(&mut b);
            assert_eq!(va, vb);
            assert_eq!(a.params(), b.params());
            assert_eq!(a.shard_versions(), b.shard_versions());
        }
    }

    #[test]
    fn pulls_see_committed_view_and_honest_version() {
        for topology in topologies() {
            let initial = vec![1.0f32; 24];
            let net = NetPort::launch(&initial, 4, {
                let mut t = topology;
                t.sync_every = 8;
                t
            });
            let r = net.router();
            let mut buf = RouterBuffer::new();
            net.pull_into(&mut buf);
            let before = buf.params().to_vec();
            for g in 0..r.shard_count() {
                let (_, l) = r.shard_range(g);
                net.apply_shard_update(g, &vec![1.0; l], 0.5, 0.0);
            }
            r.complete_push(0);
            let v = net.pull_into(&mut buf);
            assert_eq!(buf.params(), &before[..], "stage-1 leaked into a pull");
            assert_eq!(v, 0, "pulled version must track the committed data");
            r.drain();
            let v = net.pull_into(&mut buf);
            assert_eq!(v, 1);
            assert_eq!(buf.params(), &r.snapshot_params()[..]);
        }
    }

    #[test]
    fn restore_round_trips_over_the_wire() {
        for topology in topologies() {
            let initial: Vec<f32> = (0..30).map(|i| i as f32 * 0.1).collect();
            let net = NetPort::launch(&initial, 6, topology);
            let r = net.router();
            for g in 0..r.shard_count() {
                let (_, l) = r.shard_range(g);
                net.apply_shard_update(g, &vec![1.0; l], 0.1, 0.9);
            }
            r.complete_push(0);
            let params = r.snapshot_params();
            let velocity = r.snapshot_velocity();
            for g in 0..r.shard_count() {
                let (_, l) = r.shard_range(g);
                net.apply_shard_update(g, &vec![5.0; l], 0.1, 0.9);
            }
            assert_ne!(r.snapshot_params(), params);
            r.restore(&params, &velocity);
            assert_eq!(r.snapshot_params(), params);
            assert_eq!(r.snapshot_velocity(), velocity);
            let mut buf = RouterBuffer::new();
            net.pull_into(&mut buf);
            assert_eq!(buf.params(), &params[..], "restore must drain");
            assert!(r.is_finite());
            r.reset_velocity();
            assert!(r.snapshot_velocity().iter().all(|&v| v == 0.0));
        }
    }

    #[test]
    fn wire_stats_count_every_round_trip() {
        let net = NetPort::launch(
            &[0.5f32; 16],
            4,
            ServerTopology::new(2, 2).with_transport(TransportKind::Channel),
        );
        let r = net.router();
        let mut buf = RouterBuffer::new();
        net.pull_into(&mut buf);
        for g in 0..4 {
            let (_, l) = r.shard_range(g);
            net.apply_shard_update(g, &vec![1.0; l], 0.1, 0.0);
        }
        r.complete_push(0);
        r.drain();
        let stats = r.stats();
        assert_eq!(stats.backend, Some(TransportKind::Channel));
        assert_eq!(stats.push.ops, 4, "one push round trip per shard");
        assert_eq!(stats.pull.ops, 2, "one pull round trip per server");
        assert_eq!(stats.sync.ops, 2, "one sync round trip per server");
        assert!(stats.push.bytes_out > 0 && stats.pull.bytes_in > 0);
        assert!(stats.total_wire_s() > 0.0);
        // Pull replies carry the parameters; push replies only an ack.
        assert!(stats.pull.mean_round_trip_bytes() > stats.push.mean_round_trip_bytes() / 2.0);
        assert_eq!(stats.latency_samples().len(), 3);
        // Deltas scope to a window.
        let later = r.stats();
        assert_eq!(later.delta(&stats).total_ops(), 0);
    }

    #[test]
    fn clamps_servers_to_shards() {
        let net = NetPort::launch(
            &[1.0f32; 8],
            2,
            ServerTopology::new(5, 1).with_transport(TransportKind::Channel),
        );
        assert_eq!(net.router().server_count(), 2);
        assert_eq!(net.router().owner_of(0), 0);
        assert_eq!(net.router().owner_of(1), 1);
    }
}
