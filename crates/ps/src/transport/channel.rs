//! The in-memory channel backend: each [`PsServer`](crate::PsServer) runs
//! its own event-loop thread draining an mpsc request queue.
//!
//! Messages carry *encoded frames*, not typed requests — the channel is a
//! byte transport exactly like TCP, so both backends exercise the same
//! codec path and differ only in how bytes move.
//!
//! Buffers ping-pong to keep the steady state allocation-free: a client
//! sends its request buffer with the message; the server decodes it,
//! encodes the reply into its own spare buffer, sends that back, and keeps
//! the request buffer as its next spare. Two buffers per connection
//! circulate forever; after warm-up neither side allocates.

use std::io;
use std::sync::mpsc;
use std::sync::Arc;
use std::thread::JoinHandle;

use parking_lot::Mutex;

use super::{wire, Conn, Handled, ServerEndpoint, Transport};
use crate::server::PsServer;

/// One queued request: the encoded payload and where to send the reply.
struct Msg {
    frame: Vec<u8>,
    reply_tx: mpsc::Sender<Vec<u8>>,
}

/// The channel transport: one event-loop thread per server.
pub struct ChannelTransport {
    /// Request senders, one per server. A connect clones the sender.
    txs: Vec<mpsc::Sender<Msg>>,
    /// Event-loop threads, joined on drop.
    threads: Mutex<Vec<JoinHandle<()>>>,
}

impl std::fmt::Debug for ChannelTransport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ChannelTransport")
            .field("servers", &self.txs.len())
            .finish()
    }
}

impl ChannelTransport {
    /// Launches one event-loop thread per server.
    pub(crate) fn launch(servers: Vec<Arc<PsServer>>) -> Self {
        let mut txs = Vec::with_capacity(servers.len());
        let mut threads = Vec::with_capacity(servers.len());
        for server in servers {
            let (tx, rx) = mpsc::channel::<Msg>();
            let id = server.id();
            let mut endpoint = ServerEndpoint::new(server);
            threads.push(
                std::thread::Builder::new()
                    .name(format!("ps-server-{id}"))
                    .spawn(move || serve(&mut endpoint, &rx))
                    .expect("spawn ps server event loop"),
            );
            txs.push(tx);
        }
        ChannelTransport {
            txs,
            threads: Mutex::new(threads),
        }
    }
}

/// The event loop: drain the queue until a `Shutdown` frame (or every
/// sender is gone).
fn serve(endpoint: &mut ServerEndpoint, rx: &mpsc::Receiver<Msg>) {
    let mut spare: Vec<u8> = Vec::new();
    while let Ok(msg) = rx.recv() {
        match endpoint.handle(&msg.frame, &mut spare) {
            Ok(Handled::Reply) => {
                // Ping-pong: the reply buffer goes to the client, the
                // request buffer becomes the next reply scratch. A client
                // that hung up (send error) just drops the buffer.
                let reply = std::mem::replace(&mut spare, msg.frame);
                let _ = msg.reply_tx.send(reply);
            }
            Ok(Handled::Shutdown) => break,
            // A malformed frame cannot originate in-process except through
            // memory corruption; surface it loudly.
            Err(e) => panic!("ps server event loop: malformed frame: {e}"),
        }
    }
}

impl Transport for ChannelTransport {
    fn name(&self) -> &'static str {
        "channel"
    }

    fn server_count(&self) -> usize {
        self.txs.len()
    }

    fn connect(&self, server: usize) -> io::Result<Box<dyn Conn>> {
        let (reply_tx, reply_rx) = mpsc::channel();
        Ok(Box::new(ChannelConn {
            tx: self.txs[server].clone(),
            reply_tx,
            reply_rx,
            request: Vec::new(),
            reply: Vec::new(),
            timeout: None,
        }))
    }
}

impl Drop for ChannelTransport {
    fn drop(&mut self) {
        // Ask every event loop to exit even if stray senders are still
        // alive somewhere, then join.
        let mut frame = Vec::new();
        wire::encode_bodyless(&mut frame, wire::op::SHUTDOWN);
        let (reply_tx, _reply_rx) = mpsc::channel();
        for tx in &self.txs {
            let _ = tx.send(Msg {
                frame: frame.clone(),
                reply_tx: reply_tx.clone(),
            });
        }
        for t in self.threads.lock().drain(..) {
            let _ = t.join();
        }
    }
}

/// A client connection on the channel backend.
struct ChannelConn {
    tx: mpsc::Sender<Msg>,
    reply_tx: mpsc::Sender<Vec<u8>>,
    reply_rx: mpsc::Receiver<Vec<u8>>,
    /// Next request payload; recycled from the previous reply.
    request: Vec<u8>,
    /// Last reply payload, kept alive for the caller's borrow.
    reply: Vec<u8>,
    /// Per-call reply wait bound, if any.
    timeout: Option<std::time::Duration>,
}

impl std::fmt::Debug for ChannelConn {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ChannelConn").finish_non_exhaustive()
    }
}

impl Conn for ChannelConn {
    fn request_buf(&mut self) -> &mut Vec<u8> {
        self.request.clear();
        &mut self.request
    }

    fn call(&mut self) -> io::Result<&[u8]> {
        let frame = std::mem::take(&mut self.request);
        self.tx
            .send(Msg {
                frame,
                reply_tx: self.reply_tx.clone(),
            })
            .map_err(|_| io::Error::new(io::ErrorKind::BrokenPipe, "ps server event loop gone"))?;
        let received = match self.timeout {
            Some(t) => self.reply_rx.recv_timeout(t).map_err(|e| match e {
                mpsc::RecvTimeoutError::Timeout => {
                    io::Error::new(io::ErrorKind::TimedOut, "ps server reply timed out")
                }
                mpsc::RecvTimeoutError::Disconnected => {
                    io::Error::new(io::ErrorKind::BrokenPipe, "ps server dropped reply")
                }
            })?,
            None => self.reply_rx.recv().map_err(|_| {
                io::Error::new(io::ErrorKind::BrokenPipe, "ps server dropped reply")
            })?,
        };
        // Recycle: last round's reply allocation becomes the next request
        // buffer, and the received buffer serves the reply borrow — two
        // buffers circulate per connection, neither side allocates in the
        // steady state.
        self.request = std::mem::replace(&mut self.reply, received);
        Ok(&self.reply)
    }

    fn set_op_timeout(&mut self, timeout: Option<std::time::Duration>) {
        self.timeout = timeout;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::ShardLayout;
    use crate::transport::wire::op;

    fn launch(n: usize, shards: usize, servers: usize) -> ChannelTransport {
        let initial: Vec<f32> = (0..n).map(|i| i as f32).collect();
        let layout = ShardLayout::new(n, shards);
        let ownership = ShardLayout::new(layout.len(), servers);
        let servers: Vec<Arc<PsServer>> = (0..ownership.len())
            .map(|s| {
                let (first, count) = ownership.range(s);
                Arc::new(PsServer::new(s, &layout, first, count, &initial))
            })
            .collect();
        ChannelTransport::launch(servers)
    }

    #[test]
    fn request_reply_over_the_queue() {
        let t = launch(12, 4, 2);
        assert_eq!(t.server_count(), 2);
        let mut conn = t.connect(1).unwrap();
        wire::encode_bodyless(conn.request_buf(), op::CHECK_FINITE);
        let reply = conn.call().unwrap();
        assert_eq!(
            wire::Reply::decode(reply),
            Ok(wire::Reply::Finite { finite: true })
        );
        // A second request on the same conn reuses the circulating buffers.
        wire::encode_bodyless(conn.request_buf(), op::SYNC_ROUND);
        let reply = conn.call().unwrap();
        assert_eq!(wire::Reply::decode(reply), Ok(wire::Reply::Synced));
    }

    #[test]
    fn pushes_from_two_conns_serialize_on_the_event_loop() {
        let t = launch(8, 2, 1);
        let t = &t;
        std::thread::scope(|scope| {
            for _ in 0..2 {
                scope.spawn(move || {
                    let mut conn = t.connect(0).unwrap();
                    for _ in 0..50 {
                        wire::encode_push_shard(conn.request_buf(), 0, 0.001, 0.0, &[1.0; 4]);
                        let reply = conn.call().unwrap();
                        wire::decode_push_ack(reply).unwrap();
                    }
                });
            }
        });
        let mut conn = t.connect(0).unwrap();
        wire::encode_bodyless(conn.request_buf(), op::SYNC_ROUND);
        conn.call().unwrap();
        wire::encode_bodyless(conn.request_buf(), op::PULL_COMMITTED);
        let reply = conn.call().unwrap();
        let mut params = [0.0f32; 8];
        let mut clocks = [0u64; 2];
        wire::decode_pulled_into(reply, &mut params, &mut clocks).unwrap();
        // 100 unit-gradient applies at lr 1e-3 moved shard 0 by -0.1.
        assert_eq!(clocks[0], 100);
        assert!((params[0] - (0.0 - 0.1)).abs() < 1e-4, "p0 = {}", params[0]);
    }

    #[test]
    fn drop_shuts_down_event_loops() {
        let t = launch(4, 2, 2);
        let mut conn = t.connect(0).unwrap();
        drop(t);
        // The loop is gone: the send (or the reply wait) fails cleanly.
        wire::encode_bodyless(conn.request_buf(), op::CHECK_FINITE);
        assert!(conn.call().is_err());
    }
}
