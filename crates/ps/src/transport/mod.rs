//! The message-passing transport tier: [`PsServer`]s behind a wire
//! protocol.
//!
//! PR 3 sharded the PS tier across N in-process [`PsServer`]s, which left
//! the "network" cost of the BSP/ASP tradeoff zero by construction. This
//! module puts a real boundary there:
//!
//! * [`wire`] — the compact binary codec (length-prefixed frames, dedicated
//!   zero-allocation encoders for the hot push/pull messages).
//! * [`Transport`] / [`Conn`] — the backend abstraction: a transport knows
//!   how to open a connection to server `s`; a connection sends one encoded
//!   request payload and blocks for the reply payload.
//! * [`channel`] — the in-memory backend: each server runs its own
//!   event-loop thread draining an mpsc request queue; request/reply byte
//!   buffers ping-pong between client and server, so the steady state is
//!   allocation-free.
//! * [`tcp`] — the loopback TCP backend: one listener per server, blocking
//!   I/O, one connection (and one handler thread) per worker.
//! * [`NetRouter`] / [`NetPort`] — the client: implements the same routing,
//!   version-clock, and two-stage-sync semantics as the in-process
//!   [`crate::ShardRouter`], but reaches the servers only through a
//!   transport. The engine's BSP/ASP/SSP loops run unchanged on it via
//!   [`crate::WorkerPort::Net`].
//!
//! Per-operation wire time and frame bytes are recorded in
//! [`crate::profiler::TransportStats`], surfaced on
//! [`crate::SegmentReport::transport`] — the observable that lets
//! `cluster::NetworkModel` calibrate its latency/bandwidth constants
//! against measured loopback costs instead of fitted paper ratios.

pub mod channel;
pub mod faulty;
mod net_router;
pub mod remote;
pub mod tcp;
pub mod wire;

pub use faulty::{FaultPlan, FaultyTransport};
pub use net_router::{NetPort, NetRouter};
pub use remote::RemoteTcpTransport;
pub use tcp::TcpServerHost;
pub use wire::{Reply, Request, ServerInfo, WireError};

use std::fmt;
use std::io;
use std::sync::Arc;
use std::time::{Duration, Instant};

use crate::server::PsServer;
use crate::store::UpdateData;
use wire::op;

/// A transport backend: a way to reach each [`PsServer`] of a tier.
///
/// Implementations own the server instances and whatever serving
/// infrastructure the boundary needs (event-loop threads, listeners);
/// dropping the transport shuts all of it down.
pub trait Transport: Send + Sync + fmt::Debug {
    /// Short backend name for reports ("channel", "tcp").
    fn name(&self) -> &'static str;

    /// Number of servers behind this transport.
    fn server_count(&self) -> usize;

    /// Opens a new connection to server `server`. Each worker thread opens
    /// its own connections (connection-per-worker).
    ///
    /// # Errors
    ///
    /// Returns an I/O error if the server cannot be reached (e.g. the TCP
    /// listener is gone).
    fn connect(&self, server: usize) -> io::Result<Box<dyn Conn>>;

    /// Crash-testing hook: kills server `server` without tearing down the
    /// transport, severing its open connections. Backends that cannot kill
    /// a server in place return [`io::ErrorKind::Unsupported`].
    ///
    /// # Errors
    ///
    /// Returns an I/O error if the backend does not support in-place kills.
    fn kill_server(&self, _server: usize) -> io::Result<()> {
        Err(io::Error::new(
            io::ErrorKind::Unsupported,
            "transport does not support killing servers",
        ))
    }

    /// Recovery hook paired with [`Transport::kill_server`]: installs
    /// `fresh` as the new instance behind server slot `server` and resumes
    /// accepting connections to it.
    ///
    /// # Errors
    ///
    /// Returns an I/O error if the backend does not support revival.
    fn revive_server(&self, _server: usize, _fresh: Arc<PsServer>) -> io::Result<()> {
        Err(io::Error::new(
            io::ErrorKind::Unsupported,
            "transport does not support reviving servers",
        ))
    }
}

/// One client connection to one server: strictly request/reply.
///
/// The two-phase API keeps the hot path allocation-free: the caller encodes
/// the request payload directly into the buffer returned by
/// [`Conn::request_buf`], then [`Conn::call`] sends it and blocks for the
/// reply payload, which stays valid until the next call.
pub trait Conn: Send + fmt::Debug {
    /// A cleared buffer to encode the next request payload into.
    fn request_buf(&mut self) -> &mut Vec<u8>;

    /// Sends the encoded request and blocks for the reply payload.
    ///
    /// # Errors
    ///
    /// Returns an I/O error if the server hung up or the stream broke.
    fn call(&mut self) -> io::Result<&[u8]>;

    /// Bounds how long a single [`Conn::call`] may block (`None` removes
    /// the bound). Backends without timeout support ignore this; the retry
    /// layer then relies on broken-connection errors alone.
    fn set_op_timeout(&mut self, _timeout: Option<Duration>) {}

    /// Fault-injection hook: writes a deliberately torn (truncated) frame
    /// to the peer, as a crashing client would. Backends whose framing
    /// cannot be torn mid-frame return [`io::ErrorKind::Unsupported`].
    ///
    /// # Errors
    ///
    /// Returns an I/O error if tearing is unsupported or the write fails.
    fn inject_torn(&mut self) -> io::Result<()> {
        Err(io::Error::new(
            io::ErrorKind::Unsupported,
            "connection does not support torn frames",
        ))
    }
}

/// What a serving loop should do after handling one frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Handled {
    /// A reply was encoded; send it and keep serving.
    Reply,
    /// The client asked the loop to terminate; no reply.
    Shutdown,
}

/// Server-side request execution, shared by both backends: decodes a
/// request payload, executes it against the [`PsServer`], and encodes the
/// reply. All scratch buffers are reused, so steady-state push/pull/sync
/// service allocates nothing.
pub(crate) struct ServerEndpoint {
    server: Arc<PsServer>,
    /// Gradient decode scratch (push path).
    grad: Vec<f32>,
    /// Segment-list decode scratch (sparse push path).
    segments: Vec<(u32, u32)>,
    /// Stage-2 commit scratch.
    commit: Vec<f32>,
    /// Pull/snapshot assembly scratch.
    params: Vec<f32>,
    clocks: Vec<u64>,
}

impl ServerEndpoint {
    pub(crate) fn new(server: Arc<PsServer>) -> Self {
        let (_, param_len) = server.param_range();
        let shards = server.shard_count();
        ServerEndpoint {
            server,
            grad: Vec::new(),
            segments: Vec::new(),
            commit: Vec::new(),
            params: vec![0.0; param_len],
            clocks: vec![0; shards],
        }
    }

    /// Handles one request payload, encoding the reply into `reply`
    /// (cleared first).
    ///
    /// A [`op::SEQUENCED`] wrapper is unwrapped here: a duplicate
    /// `(client, seq)` replays the cached reply without re-executing, so a
    /// client that re-sends after a lost reply gets at-most-once apply
    /// semantics for mutating requests.
    ///
    /// # Errors
    ///
    /// Returns a [`WireError`] on a malformed request — the serving loop
    /// treats that as a broken peer and closes.
    pub(crate) fn handle(
        &mut self,
        request: &[u8],
        reply: &mut Vec<u8>,
    ) -> Result<Handled, WireError> {
        reply.clear();
        let opcode = *request.first().ok_or(WireError::Truncated)?;
        if opcode == op::SEQUENCED {
            let (client, seq, inner) = wire::decode_sequenced_prefix(request)?;
            let inner_op = *inner.first().ok_or(WireError::Truncated)?;
            // Counted under the inner opcode (what the request does) with
            // the wrapper's full size (what crossed the wire).
            self.server.stats().record_request(inner_op, request.len());
            let entry = self.server.seq_entry(client);
            // Held across execution: a duplicate racing a still-running
            // original waits here and then sees the cached reply.
            let mut entry = entry.lock();
            if entry.last == Some(seq) {
                self.server.stats().record_dedup_hit();
                reply.extend_from_slice(&entry.reply);
                self.server.stats().record_reply(reply.len());
                return Ok(Handled::Reply);
            }
            let handled = self.handle_inner(inner, reply)?;
            if handled == Handled::Reply {
                entry.last = Some(seq);
                entry.reply.clear();
                entry.reply.extend_from_slice(reply);
                self.server.stats().record_reply(reply.len());
            }
            return Ok(handled);
        }
        self.server.stats().record_request(opcode, request.len());
        let handled = self.handle_inner(request, reply)?;
        if handled == Handled::Reply {
            self.server.stats().record_reply(reply.len());
        }
        Ok(handled)
    }

    fn handle_inner(&mut self, request: &[u8], reply: &mut Vec<u8>) -> Result<Handled, WireError> {
        let opcode = *request.first().ok_or(WireError::Truncated)?;
        match opcode {
            op::PUSH_SHARD => {
                let (shard, lr, momentum) = wire::decode_push_shard_into(request, &mut self.grad)?;
                let t0 = Instant::now();
                let prev = self
                    .server
                    .apply_local(shard as usize, &self.grad, lr, momentum);
                self.server
                    .stats()
                    .record_apply(shard as usize, t0.elapsed().as_nanos() as u64);
                wire::encode_push_ack(reply, prev);
            }
            op::PUSH_SHARD_SPARSE => {
                let (shard, lr, momentum) = wire::decode_push_shard_sparse_into(
                    request,
                    &mut self.segments,
                    &mut self.grad,
                )?;
                let t0 = Instant::now();
                let prev = self.server.apply_local_data(
                    shard as usize,
                    UpdateData::Sparse {
                        indices: &self.segments,
                        rows: &self.grad,
                    },
                    lr,
                    momentum,
                );
                self.server
                    .stats()
                    .record_apply(shard as usize, t0.elapsed().as_nanos() as u64);
                wire::encode_push_ack(reply, prev);
            }
            op::PULL_COMMITTED => {
                self.server
                    .pull_committed_into(&mut self.params, &mut self.clocks);
                wire::encode_pulled(reply, &self.params, &self.clocks);
            }
            op::SYNC_ROUND | op::DRAIN => {
                self.server.commit_all(&mut self.commit);
                wire::encode_bodyless(reply, op::SYNCED);
            }
            op::SNAPSHOT => {
                let velocity = match wire::Request::decode(request)? {
                    wire::Request::Snapshot { velocity } => velocity,
                    _ => unreachable!("opcode dispatched as SNAPSHOT"),
                };
                if velocity {
                    self.server.live().snapshot_velocity_into(&mut self.params);
                } else {
                    self.server.live().snapshot_params_into(&mut self.params);
                }
                wire::encode_snapshot_data(reply, &self.params);
            }
            op::RESTORE => {
                let (params, velocity) = match wire::Request::decode(request)? {
                    wire::Request::Restore { params, velocity } => (params, velocity),
                    _ => unreachable!("opcode dispatched as RESTORE"),
                };
                self.server.live().restore(&params, &velocity);
                wire::encode_bodyless(reply, op::OK);
            }
            op::RESET_VELOCITY => {
                self.server.live().reset_velocity();
                wire::encode_bodyless(reply, op::OK);
            }
            op::CHECK_FINITE => {
                reply.push(op::FINITE);
                reply.push(u8::from(self.server.live().is_finite()));
            }
            op::HELLO => {
                let (param_offset, param_len) = self.server.param_range();
                wire::encode_server_info(
                    reply,
                    &wire::ServerInfo {
                        nonce: self.server.nonce(),
                        server: self.server.id() as u32,
                        first_shard: self.server.shard_offset() as u32,
                        shard_count: self.server.shard_count() as u32,
                        param_offset: param_offset as u64,
                        param_len: param_len as u64,
                    },
                );
            }
            op::STATS => {
                // Snapshot taken after this request was counted, so a
                // scrape sees itself — scrapers comparing against client
                // counts use the push/pull/sync opcodes, which it never
                // inflates.
                wire::encode_stats_snapshot(reply, &self.server.stats_snapshot());
            }
            op::SHUTDOWN => return Ok(Handled::Shutdown),
            other => return Err(WireError::UnknownOpcode(other)),
        }
        Ok(Handled::Reply)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::ShardLayout;

    fn endpoint(n: usize, shards: usize) -> ServerEndpoint {
        let initial: Vec<f32> = (0..n).map(|i| i as f32 * 0.1).collect();
        let layout = ShardLayout::new(n, shards);
        let server = Arc::new(PsServer::new(0, &layout, 0, shards, &initial));
        ServerEndpoint::new(server)
    }

    #[test]
    fn endpoint_serves_the_full_protocol() {
        let mut ep = endpoint(10, 2);
        let mut req = Vec::new();
        let mut reply = Vec::new();

        // Push to shard 1 (5 params per shard).
        wire::encode_push_shard(&mut req, 1, 0.5, 0.0, &[1.0; 5]);
        assert_eq!(ep.handle(&req, &mut reply), Ok(Handled::Reply));
        assert_eq!(wire::decode_push_ack(&reply), Ok(0));

        // The committed view has not seen the push yet.
        req.clear();
        wire::encode_bodyless(&mut req, op::PULL_COMMITTED);
        ep.handle(&req, &mut reply).unwrap();
        let mut params = [0.0f32; 10];
        let mut clocks = [0u64; 2];
        wire::decode_pulled_into(&reply, &mut params, &mut clocks).unwrap();
        assert_eq!(clocks, [0, 0]);
        assert!((params[9] - 0.9).abs() < 1e-6);

        // Sync round publishes it.
        req.clear();
        wire::encode_bodyless(&mut req, op::SYNC_ROUND);
        ep.handle(&req, &mut reply).unwrap();
        assert_eq!(Reply::decode(&reply), Ok(Reply::Synced));
        req.clear();
        wire::encode_bodyless(&mut req, op::PULL_COMMITTED);
        ep.handle(&req, &mut reply).unwrap();
        wire::decode_pulled_into(&reply, &mut params, &mut clocks).unwrap();
        assert_eq!(clocks, [0, 1]);
        assert!((params[9] - 0.4).abs() < 1e-6, "p9 = {}", params[9]);

        // Finiteness and shutdown.
        req.clear();
        wire::encode_bodyless(&mut req, op::CHECK_FINITE);
        ep.handle(&req, &mut reply).unwrap();
        assert_eq!(Reply::decode(&reply), Ok(Reply::Finite { finite: true }));
        req.clear();
        wire::encode_bodyless(&mut req, op::SHUTDOWN);
        assert_eq!(ep.handle(&req, &mut reply), Ok(Handled::Shutdown));
    }

    #[test]
    fn endpoint_sparse_push_matches_dense_scatter() {
        // Same state through PUSH_SHARD with a scattered-zero gradient and
        // through PUSH_SHARD_SPARSE with only the touched segment.
        let mut dense_ep = endpoint(20, 2);
        let mut sparse_ep = endpoint(20, 2);
        let mut req = Vec::new();
        let mut reply = Vec::new();
        // Shard 0 holds 10 params; touch [1..3).
        let mut grad = [0.0f32; 10];
        grad[1] = 2.0;
        grad[2] = -1.0;
        wire::encode_push_shard(&mut req, 0, 0.2, 0.9, &grad);
        dense_ep.handle(&req, &mut reply).unwrap();
        let dense_ack = wire::decode_push_ack(&reply).unwrap();
        let dense_bytes = req.len();
        req.clear();
        wire::encode_push_shard_sparse(&mut req, 0, 0.2, 0.9, &[(1, 2)], &[2.0, -1.0]);
        sparse_ep.handle(&req, &mut reply).unwrap();
        assert_eq!(wire::decode_push_ack(&reply), Ok(dense_ack));
        assert!(req.len() < dense_bytes, "sparse frame not smaller");
        // Both committed views agree after a sync round.
        let mut params_a = [0.0f32; 20];
        let mut params_b = [0.0f32; 20];
        let mut clocks = [0u64; 2];
        for (ep, params) in [
            (&mut dense_ep, &mut params_a),
            (&mut sparse_ep, &mut params_b),
        ] {
            req.clear();
            wire::encode_bodyless(&mut req, op::SYNC_ROUND);
            ep.handle(&req, &mut reply).unwrap();
            req.clear();
            wire::encode_bodyless(&mut req, op::PULL_COMMITTED);
            ep.handle(&req, &mut reply).unwrap();
            wire::decode_pulled_into(&reply, params, &mut clocks).unwrap();
        }
        assert_eq!(params_a, params_b);
        assert_eq!(clocks, [1, 0]);
    }

    #[test]
    fn snapshot_restore_round_trip_over_the_endpoint() {
        let mut ep = endpoint(6, 2);
        let mut req = Vec::new();
        let mut reply = Vec::new();
        wire::encode_push_shard(&mut req, 0, 0.1, 0.9, &[1.0; 3]);
        ep.handle(&req, &mut reply).unwrap();

        let snap = |ep: &mut ServerEndpoint, velocity: bool| -> Vec<f32> {
            let mut req = Vec::new();
            Request::Snapshot { velocity }.encode(&mut req);
            let mut reply = Vec::new();
            ep.handle(&req, &mut reply).unwrap();
            match Reply::decode(&reply).unwrap() {
                Reply::SnapshotData { data } => data,
                other => panic!("wrong reply {other:?}"),
            }
        };
        let params = snap(&mut ep, false);
        let velocity = snap(&mut ep, true);
        assert!(velocity[..3].iter().all(|&v| v != 0.0));

        // Mutate, then restore.
        req.clear();
        wire::encode_push_shard(&mut req, 0, 0.7, 0.9, &[2.0; 3]);
        ep.handle(&req, &mut reply).unwrap();
        assert_ne!(snap(&mut ep, false), params);
        req.clear();
        Request::Restore {
            params: params.clone(),
            velocity: velocity.clone(),
        }
        .encode(&mut req);
        ep.handle(&req, &mut reply).unwrap();
        assert_eq!(Reply::decode(&reply), Ok(Reply::Ok));
        assert_eq!(snap(&mut ep, false), params);
        assert_eq!(snap(&mut ep, true), velocity);

        // Velocity reset.
        req.clear();
        wire::encode_bodyless(&mut req, op::RESET_VELOCITY);
        ep.handle(&req, &mut reply).unwrap();
        assert!(snap(&mut ep, true).iter().all(|&v| v == 0.0));
    }

    #[test]
    fn duplicate_sequenced_push_replays_cached_ack() {
        let mut ep = endpoint(10, 2);
        let mut req = Vec::new();
        let mut reply = Vec::new();
        wire::encode_sequenced_prefix(&mut req, 7, 0);
        wire::encode_push_shard(&mut req, 1, 0.5, 0.0, &[1.0; 5]);
        ep.handle(&req, &mut reply).unwrap();
        assert_eq!(wire::decode_push_ack(&reply), Ok(0));
        // Same (client, seq): the apply does not land twice and the ack is
        // byte-identical (same pre-apply clock, not the advanced one).
        ep.handle(&req, &mut reply).unwrap();
        assert_eq!(wire::decode_push_ack(&reply), Ok(0));
        // A new seq from the same client executes.
        req.clear();
        wire::encode_sequenced_prefix(&mut req, 7, 1);
        wire::encode_push_shard(&mut req, 1, 0.5, 0.0, &[1.0; 5]);
        ep.handle(&req, &mut reply).unwrap();
        assert_eq!(wire::decode_push_ack(&reply), Ok(1));
        // A different client is not confused by client 7's window.
        req.clear();
        wire::encode_sequenced_prefix(&mut req, 8, 1);
        wire::encode_push_shard(&mut req, 1, 0.5, 0.0, &[1.0; 5]);
        ep.handle(&req, &mut reply).unwrap();
        assert_eq!(wire::decode_push_ack(&reply), Ok(2));
    }

    #[test]
    fn hello_reports_identity_and_nonce_changes_on_replacement() {
        let initial: Vec<f32> = (0..10).map(|i| i as f32 * 0.1).collect();
        let layout = ShardLayout::new(10, 2);
        let server = Arc::new(PsServer::new(0, &layout, 0, 2, &initial));
        let mut ep = ServerEndpoint::new(server.clone());
        let mut req = Vec::new();
        let mut reply = Vec::new();
        wire::encode_bodyless(&mut req, op::HELLO);
        assert_eq!(ep.handle(&req, &mut reply), Ok(Handled::Reply));
        let info = wire::decode_server_info(&reply).unwrap();
        assert_eq!(info.nonce, server.nonce());
        assert_eq!(info.server, 0);
        assert_eq!(info.first_shard, 0);
        assert_eq!(info.shard_count, 2);
        assert_eq!(info.param_offset, 0);
        assert_eq!(info.param_len, 10);
        // A replacement instance — same slice, fresh construction — answers
        // with a different nonce: how respawns are detected on the wire.
        let fresh = Arc::new(PsServer::new(0, &layout, 0, 2, &initial));
        let mut ep2 = ServerEndpoint::new(fresh);
        ep2.handle(&req, &mut reply).unwrap();
        let info2 = wire::decode_server_info(&reply).unwrap();
        assert_ne!(info2.nonce, info.nonce);
        assert_eq!(info2.first_shard, info.first_shard);
    }

    #[test]
    fn stats_frame_reports_request_accounting() {
        let mut ep = endpoint(10, 2);
        let mut req = Vec::new();
        let mut reply = Vec::new();
        wire::encode_push_shard(&mut req, 1, 0.5, 0.0, &[1.0; 5]);
        let push_bytes = req.len();
        ep.handle(&req, &mut reply).unwrap();
        req.clear();
        wire::encode_bodyless(&mut req, op::PULL_COMMITTED);
        ep.handle(&req, &mut reply).unwrap();
        // A duplicate sequenced push counts under PUSH_SHARD (the inner
        // opcode) and as a dedup hit, without re-applying.
        req.clear();
        wire::encode_sequenced_prefix(&mut req, 3, 0);
        wire::encode_push_shard(&mut req, 0, 0.5, 0.0, &[1.0; 5]);
        ep.handle(&req, &mut reply).unwrap();
        ep.handle(&req, &mut reply).unwrap();
        req.clear();
        wire::encode_bodyless(&mut req, op::STATS);
        ep.handle(&req, &mut reply).unwrap();
        let snap = match Reply::decode(&reply).unwrap() {
            Reply::Stats(s) => s,
            other => panic!("wrong reply {other:?}"),
        };
        assert_eq!(snap.requests_for(op::PUSH_SHARD), 3);
        assert_eq!(snap.requests_for(op::PULL_COMMITTED), 1);
        assert_eq!(snap.requests_for(op::STATS), 1, "scrape sees itself");
        assert_eq!(snap.dedup_hits, 1);
        assert!(snap.bytes_in >= push_bytes as u64);
        assert!(snap.bytes_out > 0);
        assert_eq!(snap.apply_ns.count, 2, "replay must not re-apply");
        assert_eq!(snap.shard_applies, vec![1, 1]);
        assert!(snap.shard_apply_ns.iter().all(|&ns| ns > 0));
    }

    #[test]
    fn malformed_requests_are_errors_not_panics() {
        let mut ep = endpoint(4, 1);
        let mut reply = Vec::new();
        assert!(ep.handle(&[], &mut reply).is_err());
        assert!(ep.handle(&[0x7f], &mut reply).is_err());
        // Truncated push.
        let mut req = Vec::new();
        wire::encode_push_shard(&mut req, 0, 0.1, 0.0, &[1.0; 4]);
        assert!(ep.handle(&req[..req.len() - 2], &mut reply).is_err());
    }
}
