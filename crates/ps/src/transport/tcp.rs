//! The TCP backend: one listener per server, blocking I/O, one connection
//! (and one handler thread) per worker.
//!
//! This is the "real sockets" end of the transport tier: every push, pull,
//! and sync round crosses the kernel's TCP stack, so the wire cost the
//! paper's BSP/ASP tradeoff hinges on is measured, not modeled. Nagle is
//! disabled (`TCP_NODELAY`) — the protocol is strict request/reply, where
//! delayed ACKs would serialize into ~40 ms stalls per round trip.
//!
//! Handler threads execute directly against the shared [`PsServer`]
//! (`ShardedStore` is internally locked per shard), so two workers pushing
//! to different shards of one server proceed concurrently — the same
//! contention profile as the in-process tier, plus the socket hop.
//!
//! The serving side is factored as [`TcpServerHost`] — one listener, one
//! server instance, its accept loop and handler threads — so it can be
//! hosted two ways: [`TcpTransport`] embeds N hosts on loopback ephemeral
//! ports for in-process tests, while the `ps-serve` binary embeds exactly
//! one, bound to a configured address, to put each server in its own OS
//! process.

use std::io::{self, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use parking_lot::Mutex;

use super::{wire, Conn, Handled, ServerEndpoint, Transport};
use crate::server::PsServer;
use crate::store::ShardLayout;

/// Per-server serving state, shared between the host handle and the
/// server's accept loop. The indirection is what makes crash/restart
/// possible without tearing the host down: the listener stays bound
/// while the server instance behind it is swapped.
struct ServerSlot {
    /// The live server instance; replaced wholesale by a revive.
    server: Mutex<Arc<PsServer>>,
    /// Set by a kill: the accept loop drops incoming connections (clients
    /// observe EOF) until a revive clears it.
    dead: AtomicBool,
    /// Handler-side clones of every live accepted stream, keyed by a
    /// connection id. A kill shuts them down to unblock handler threads
    /// parked in a blocking read on an idle connection.
    conns: Mutex<Vec<(u64, TcpStream)>>,
    next_conn: AtomicU64,
}

/// One served [`PsServer`]: a bound TCP listener, the accept loop thread,
/// and the per-connection handler threads. Dropping the host stops the
/// accept loop and joins every thread.
///
/// This is the unit the `ps-serve` binary runs one of per process; the
/// in-process [`TcpTransport`] is simply a vector of these on loopback.
pub struct TcpServerHost {
    addr: SocketAddr,
    slot: Arc<ServerSlot>,
    stop: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
    handlers: Arc<Mutex<Vec<JoinHandle<()>>>>,
}

impl std::fmt::Debug for TcpServerHost {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TcpServerHost")
            .field("addr", &self.addr)
            .finish()
    }
}

impl TcpServerHost {
    /// Binds `addr` and serves server `index` of an `servers`-way tier over
    /// `param_count` flat parameters split into `shards` shards, initialized
    /// from `initial`. This is the cross-process entry point: every process
    /// of a cluster derives the same [`ShardLayout`] from the same
    /// `(param_count, shards, servers)` triple, so the slice this host owns
    /// is agreed on without any coordination traffic.
    ///
    /// # Errors
    ///
    /// Returns [`io::ErrorKind::InvalidInput`] if the tier shape is
    /// inconsistent (no servers, more servers than shards, `index` out of
    /// range, or `initial` not matching `param_count`), or the bind error.
    pub fn bind(
        addr: impl ToSocketAddrs,
        initial: &[f32],
        shards: usize,
        servers: usize,
        index: usize,
    ) -> io::Result<Self> {
        let invalid = |msg: String| io::Error::new(io::ErrorKind::InvalidInput, msg);
        if servers == 0 {
            return Err(invalid("cluster has zero servers".into()));
        }
        if index >= servers {
            return Err(invalid(format!(
                "server index {index} out of range for {servers} servers"
            )));
        }
        if initial.is_empty() {
            return Err(invalid("model has zero parameters".into()));
        }
        let layout = ShardLayout::new(initial.len(), shards);
        if servers > layout.len() {
            return Err(invalid(format!(
                "{servers} servers but only {} shards",
                layout.len()
            )));
        }
        let ownership = ShardLayout::new(layout.len(), servers);
        let (first, count) = ownership.range(index);
        let server = Arc::new(PsServer::new(index, &layout, first, count, initial));
        Self::bind_instance(addr, server)
    }

    /// Binds `addr` and serves an already-constructed instance.
    pub(crate) fn bind_instance(
        addr: impl ToSocketAddrs,
        server: Arc<PsServer>,
    ) -> io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let handlers = Arc::new(Mutex::new(Vec::new()));
        let id = server.id();
        let slot = Arc::new(ServerSlot {
            server: Mutex::new(server),
            dead: AtomicBool::new(false),
            conns: Mutex::new(Vec::new()),
            next_conn: AtomicU64::new(0),
        });
        let accept_thread = {
            let slot = Arc::clone(&slot);
            let stop = Arc::clone(&stop);
            let handlers = Arc::clone(&handlers);
            std::thread::Builder::new()
                .name(format!("ps-listen-{id}"))
                .spawn(move || accept_loop(&listener, &slot, &stop, &handlers))
                .expect("spawn ps tcp accept loop")
        };
        Ok(TcpServerHost {
            addr,
            slot,
            stop,
            accept_thread: Some(accept_thread),
            handlers,
        })
    }

    /// The address the listener actually bound (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The hosted instance's nonce (what a [`wire::ServerInfo`] reply
    /// carries).
    pub fn nonce(&self) -> u64 {
        self.slot.server.lock().nonce()
    }

    /// A point-in-time copy of the *current* instance's request accounting
    /// — what `ps-serve` periodically dumps to its metrics file. Reads
    /// through the slot, so it follows a revive to the fresh instance.
    pub fn stats_snapshot(&self) -> sync_switch_telemetry::ServerStatsSnapshot {
        self.slot.server.lock().stats_snapshot()
    }

    /// Blocks until the accept loop exits — which it only does when the
    /// host is stopped, so for the `ps-serve` binary this is "serve until
    /// the process is killed".
    pub fn wait(&mut self) {
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
    }

    /// Crash-testing hook: refuse service and sever open connections while
    /// keeping the listener bound (see [`Transport::kill_server`]).
    pub(crate) fn kill(&self) {
        self.slot.dead.store(true, Ordering::Release);
        // Sever every live connection: handlers parked in a blocking read
        // on an idle-but-open client conn wake with an error and exit.
        for (_, stream) in self.slot.conns.lock().drain(..) {
            let _ = stream.shutdown(Shutdown::Both);
        }
    }

    /// Installs `fresh` behind the same listener and resumes service.
    pub(crate) fn revive(&self, fresh: Arc<PsServer>) {
        *self.slot.server.lock() = fresh;
        self.slot.dead.store(false, Ordering::Release);
    }
}

impl Drop for TcpServerHost {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Release);
        // Wake the accept loop with a throwaway connection; it observes
        // the stop flag and returns, dropping the listener.
        let _ = TcpStream::connect(self.addr);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
        // Sever every registered connection so handler threads parked in a
        // blocking read wake and exit even while their clients keep the
        // other end open — a standalone host (unlike the embedded
        // transport) cannot assume its clients dropped their conns first.
        for (_, stream) in self.slot.conns.lock().drain(..) {
            let _ = stream.shutdown(Shutdown::Both);
        }
        for t in self.handlers.lock().drain(..) {
            let _ = t.join();
        }
    }
}

/// The in-process TCP transport: one loopback [`TcpServerHost`] per server.
pub struct TcpTransport {
    hosts: Vec<TcpServerHost>,
}

impl std::fmt::Debug for TcpTransport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TcpTransport")
            .field(
                "addrs",
                &self.hosts.iter().map(|h| h.addr).collect::<Vec<_>>(),
            )
            .finish()
    }
}

impl TcpTransport {
    /// Binds one loopback listener per server and starts the accept loops.
    ///
    /// # Errors
    ///
    /// Returns an I/O error if a listener cannot bind.
    pub(crate) fn launch(servers: Vec<Arc<PsServer>>) -> io::Result<Self> {
        let hosts = servers
            .into_iter()
            .map(|server| TcpServerHost::bind_instance("127.0.0.1:0", server))
            .collect::<io::Result<Vec<_>>>()?;
        Ok(TcpTransport { hosts })
    }
}

fn accept_loop(
    listener: &TcpListener,
    slot: &Arc<ServerSlot>,
    stop: &Arc<AtomicBool>,
    handlers: &Mutex<Vec<JoinHandle<()>>>,
) {
    loop {
        let (stream, _) = match listener.accept() {
            Ok(c) => c,
            Err(_) => return,
        };
        if stop.load(Ordering::Acquire) {
            // The wake-up connection from shutdown (or a late client).
            return;
        }
        if slot.dead.load(Ordering::Acquire) {
            // A killed server refuses service (the client observes EOF on
            // its next read) but the listener stays bound, so a revive
            // resumes on the same address without re-launching.
            continue;
        }
        let server = Arc::clone(&slot.server.lock());
        let id = server.id();
        let mut endpoint = ServerEndpoint::new(server);
        let slot = Arc::clone(slot);
        let handle = std::thread::Builder::new()
            .name(format!("ps-conn-{id}"))
            .spawn(move || handle_conn(stream, &mut endpoint, &slot))
            .expect("spawn ps tcp connection handler");
        let mut guard = handlers.lock();
        // Reap handlers whose clients already hung up, so a long-lived
        // tier that keeps opening per-segment connections does not
        // accumulate dead JoinHandles until drop.
        let mut i = 0;
        while i < guard.len() {
            if guard[i].is_finished() {
                let _ = guard.swap_remove(i).join();
            } else {
                i += 1;
            }
        }
        guard.push(handle);
    }
}

/// Serves one client connection until EOF, a `Shutdown` frame, an error, or
/// a server kill. An abrupt client disconnect — EOF at a frame boundary or
/// a broken stream mid-frame — exits the handler cleanly rather than
/// leaving it parked in a blocking read.
fn handle_conn(stream: TcpStream, endpoint: &mut ServerEndpoint, slot: &ServerSlot) {
    let _ = stream.set_nodelay(true);
    // Register a clone so a kill can force this handler's blocking read to
    // return even while the client keeps its end open but idle.
    let id = slot.next_conn.fetch_add(1, Ordering::Relaxed);
    if let Ok(clone) = stream.try_clone() {
        slot.conns.lock().push((id, clone));
    }
    // Re-check after registering: a kill that raced the accept has already
    // drained the registry and would never reach this clone.
    if !slot.dead.load(Ordering::Acquire) {
        serve_conn(stream, endpoint);
    }
    slot.conns.lock().retain(|&(i, _)| i != id);
}

fn serve_conn(mut stream: TcpStream, endpoint: &mut ServerEndpoint) {
    let mut request = Vec::new();
    // Reply frame laid out as [len][payload]; the prefix is patched after
    // encoding so the whole frame goes out in one write.
    let mut reply = Vec::new();
    let mut payload = Vec::new();
    loop {
        match wire::read_frame(&mut stream, &mut request) {
            Ok(true) => {}
            Ok(false) | Err(_) => return, // client hung up / stream broke
        }
        match endpoint.handle(&request, &mut payload) {
            Ok(Handled::Reply) => {
                reply.clear();
                reply.extend_from_slice(&[0u8; 4]);
                reply.extend_from_slice(&payload);
                wire::patch_frame_len(&mut reply);
                if stream.write_all(&reply).is_err() {
                    return;
                }
            }
            Ok(Handled::Shutdown) | Err(_) => return,
        }
    }
}

impl Transport for TcpTransport {
    fn name(&self) -> &'static str {
        "tcp"
    }

    fn server_count(&self) -> usize {
        self.hosts.len()
    }

    fn connect(&self, server: usize) -> io::Result<Box<dyn Conn>> {
        Ok(Box::new(TcpConn::connect(self.hosts[server].addr)?))
    }

    fn kill_server(&self, server: usize) -> io::Result<()> {
        self.hosts[server].kill();
        Ok(())
    }

    fn revive_server(&self, server: usize, fresh: Arc<PsServer>) -> io::Result<()> {
        self.hosts[server].revive(fresh);
        Ok(())
    }
}

/// A client connection on the TCP backend — shared by the in-process
/// [`TcpTransport`] and the cross-process
/// [`crate::transport::RemoteTcpTransport`].
pub(crate) struct TcpConn {
    stream: TcpStream,
    /// Outgoing frame: `[4-byte length placeholder][payload]`.
    send: Vec<u8>,
    /// Last reply payload.
    reply: Vec<u8>,
}

impl TcpConn {
    /// Connects to a serving host and disables Nagle.
    pub(crate) fn connect(addr: SocketAddr) -> io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(TcpConn {
            stream,
            send: Vec::new(),
            reply: Vec::new(),
        })
    }
}

impl std::fmt::Debug for TcpConn {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TcpConn")
            .field("peer", &self.stream.peer_addr().ok())
            .finish()
    }
}

impl Conn for TcpConn {
    fn request_buf(&mut self) -> &mut Vec<u8> {
        self.send.clear();
        self.send.extend_from_slice(&[0u8; 4]);
        &mut self.send
    }

    fn call(&mut self) -> io::Result<&[u8]> {
        wire::patch_frame_len(&mut self.send);
        self.stream.write_all(&self.send)?;
        if !wire::read_frame(&mut self.stream, &mut self.reply)? {
            // Clean EOF is fine for a serving loop, but a client waiting
            // for a reply was hung up on.
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "ps server closed the connection mid-call",
            ));
        }
        Ok(&self.reply)
    }

    fn set_op_timeout(&mut self, timeout: Option<Duration>) {
        let _ = self.stream.set_read_timeout(timeout);
        let _ = self.stream.set_write_timeout(timeout);
    }

    fn inject_torn(&mut self) -> io::Result<()> {
        // A frame whose length prefix promises 8 payload bytes delivers
        // only 3 — what a client crashing mid-write leaves on the stream.
        self.stream.write_all(&[8, 0, 0, 0, 1, 2, 3])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::ShardLayout;
    use crate::transport::wire::op;
    use std::io::Read;

    fn launch(n: usize, shards: usize, servers: usize) -> TcpTransport {
        let initial: Vec<f32> = (0..n).map(|i| i as f32).collect();
        let layout = ShardLayout::new(n, shards);
        let ownership = ShardLayout::new(layout.len(), servers);
        let servers: Vec<Arc<PsServer>> = (0..ownership.len())
            .map(|s| {
                let (first, count) = ownership.range(s);
                Arc::new(PsServer::new(s, &layout, first, count, &initial))
            })
            .collect();
        TcpTransport::launch(servers).expect("bind loopback listeners")
    }

    #[test]
    fn request_reply_over_a_socket() {
        let t = launch(12, 4, 2);
        let mut conn = t.connect(0).unwrap();
        wire::encode_push_shard(conn.request_buf(), 0, 0.5, 0.0, &[1.0; 3]);
        let reply = conn.call().unwrap();
        assert_eq!(wire::decode_push_ack(reply), Ok(0));
        wire::encode_push_shard(conn.request_buf(), 0, 0.5, 0.0, &[1.0; 3]);
        let reply = conn.call().unwrap();
        assert_eq!(wire::decode_push_ack(reply), Ok(1), "clock advanced");
    }

    #[test]
    fn concurrent_conns_share_one_server() {
        let t = launch(8, 2, 1);
        let t = &t;
        std::thread::scope(|scope| {
            for _ in 0..3 {
                scope.spawn(move || {
                    let mut conn = t.connect(0).unwrap();
                    for _ in 0..40 {
                        wire::encode_push_shard(conn.request_buf(), 1, 0.001, 0.0, &[1.0; 4]);
                        let reply = conn.call().unwrap();
                        wire::decode_push_ack(reply).unwrap();
                    }
                });
            }
        });
        let mut conn = t.connect(0).unwrap();
        wire::encode_bodyless(conn.request_buf(), op::DRAIN);
        conn.call().unwrap();
        wire::encode_bodyless(conn.request_buf(), op::PULL_COMMITTED);
        let reply = conn.call().unwrap();
        let mut params = [0.0f32; 8];
        let mut clocks = [0u64; 2];
        wire::decode_pulled_into(reply, &mut params, &mut clocks).unwrap();
        assert_eq!(clocks[1], 120);
    }

    #[test]
    fn kill_severs_idle_conns_and_revive_restores_service() {
        let t = launch(12, 4, 2);
        // An idle, open connection whose handler is parked in a read.
        let mut idle = t.connect(1).unwrap();
        wire::encode_push_shard(idle.request_buf(), 0, 0.5, 0.0, &[1.0; 3]);
        idle.call().unwrap();
        t.kill_server(1).unwrap();
        // The severed conn fails its next call instead of hanging.
        wire::encode_bodyless(idle.request_buf(), op::CHECK_FINITE);
        assert!(idle.call().is_err());
        // While dead, fresh conns are accepted then dropped: EOF on call.
        let mut probe = t.connect(1).unwrap();
        wire::encode_bodyless(probe.request_buf(), op::CHECK_FINITE);
        assert!(probe.call().is_err());
        // Revive with a fresh instance; service resumes on the same
        // address, with the restarted server's (blank) state.
        let initial: Vec<f32> = (0..12).map(|i| i as f32).collect();
        let layout = ShardLayout::new(12, 4);
        let fresh = Arc::new(PsServer::new(1, &layout, 2, 2, &initial));
        t.revive_server(1, fresh).unwrap();
        let mut conn = t.connect(1).unwrap();
        wire::encode_bodyless(conn.request_buf(), op::CHECK_FINITE);
        conn.call().unwrap();
        // Server 0 was untouched throughout.
        let mut other = t.connect(0).unwrap();
        wire::encode_bodyless(other.request_buf(), op::CHECK_FINITE);
        other.call().unwrap();
    }

    #[test]
    fn abrupt_client_disconnect_frees_the_handler() {
        let t = launch(8, 2, 1);
        {
            let mut conn = t.connect(0).unwrap();
            wire::encode_bodyless(conn.request_buf(), op::CHECK_FINITE);
            conn.call().unwrap();
            // A torn frame followed by an abrupt close: the handler must
            // treat the mid-frame EOF as a closed conn and exit.
            conn.inject_torn().unwrap();
        }
        // Drop joins every handler thread — it would hang here if the
        // handler stayed parked after the disconnect.
        drop(t);
    }

    #[test]
    fn drop_closes_listeners() {
        let t = launch(4, 2, 1);
        let addr = t.hosts[0].addr;
        drop(t);
        // The listener is gone: either the connect fails outright or the
        // socket is closed without serving.
        if let Ok(mut s) = TcpStream::connect(addr) {
            let mut frame = Vec::new();
            wire::frame_payload(&mut frame, &[op::CHECK_FINITE]);
            let write = s.write_all(&frame);
            let mut buf = [0u8; 1];
            assert!(
                write.is_err() || matches!(s.read(&mut buf), Ok(0) | Err(_)),
                "dropped transport still serving"
            );
        }
    }

    #[test]
    fn standalone_host_serves_hello_on_a_configured_addr() {
        let initial: Vec<f32> = (0..24).map(|i| i as f32 * 0.5).collect();
        // Server 1 of a 3-server × 6-shard tier.
        let host = TcpServerHost::bind("127.0.0.1:0", &initial, 6, 3, 1).unwrap();
        let mut conn = TcpConn::connect(host.local_addr()).unwrap();
        wire::encode_bodyless(conn.request_buf(), op::HELLO);
        let info = wire::decode_server_info(conn.call().unwrap()).unwrap();
        assert_eq!(info.server, 1);
        assert_eq!(info.first_shard, 2);
        assert_eq!(info.shard_count, 2);
        assert_eq!(info.nonce, host.nonce());
        // Param slice: 24 params / 6 shards = 4 per shard; shards 2..4.
        assert_eq!(info.param_offset, 8);
        assert_eq!(info.param_len, 8);
        // Misconfigured specs are rejected before binding threads.
        for (shards, servers, index) in [(6, 0, 0), (6, 3, 3), (2, 3, 0)] {
            let err =
                TcpServerHost::bind("127.0.0.1:0", &initial, shards, servers, index).unwrap_err();
            assert_eq!(
                err.kind(),
                io::ErrorKind::InvalidInput,
                "{shards} {servers} {index}"
            );
        }
    }
}
